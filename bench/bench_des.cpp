/// \file bench_des.cpp
/// The stochastic hot path: legacy callback DES vs the flat event core.
///
/// PR 2 gave the learning loop an incremental index, PR 3 gave the
/// exhaustive walkers a devirtualized sharded engine; this harness measures
/// the same treatment applied to the stochastic simulators. Old vs new on
/// identical workloads: the legacy path runs `chain::EventQueue`
/// (std::function per event, heap allocation at schedule, full miner scans
/// per block), the flat path runs `sim::EventCore` (POD events, enum
/// switch, generation invalidation in the core, per-chain member lists).
/// Both paths consume the RNG identically, so trajectories must be
/// **bit-identical** — every row checks the trajectory hash, and any
/// divergence fails the run (`--compare-scan` is implied; the flag is
/// accepted for CI symmetry with the other engine benches).
///
/// The second table exercises layer 2: a Monte Carlo chain batch fanned
/// across the thread pool, replayed on one lane — bit-identical aggregates
/// at any `--threads`, with the parallel speedup reported.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "market/fee_market.hpp"
#include "market/market_sim.hpp"
#include "market/price_process.hpp"
#include "sim/event_core.hpp"
#include "sim/scenarios.hpp"
#include "sim/trajectory.hpp"
#include "util/rng.hpp"

namespace {

using namespace goc;

// ------------------------------------------------------------- workloads

/// The reference chain workload lives in sim/scenarios.hpp now — the serve
/// daemon submits the identical scenario, and CI asserts the daemon batch
/// and this bench produce bit-identical `values_hash`.
chain::MultiChainSimulator make_reference_chain(std::size_t miners,
                                                std::size_t num_chains,
                                                double days,
                                                sim::EngineKind engine,
                                                std::uint64_t seed) {
  sim::ReferenceChainParams params;
  params.miners = miners;
  params.chains = num_chains;
  params.days = days;
  return sim::make_reference_chain(params, engine, seed);
}

/// The EDA stress: few miners, hot invalidation churn (every epoch moves
/// hashrate, so races go stale constantly) — the queue-mechanics case.
chain::MultiChainSimulator make_eda_chain(double days, sim::EngineKind engine,
                                          std::uint64_t seed) {
  std::vector<chain::ChainSpec> chains;
  chains.push_back(chain::ChainSpec{
      "btc", 20.0, 1.0 / 6.0, 60.0,
      std::make_unique<chain::SmaRetarget>(20, 1.0 / 6.0, 1.2)});
  chains.push_back(chain::ChainSpec{
      "bch", 20.0, 1.0 / 6.0, 10.0,
      std::make_unique<chain::EmergencyAdjuster>(20, 1.0 / 6.0, 0.5, 0.20)});
  chain::ChainSimOptions options;
  options.duration_hours = days * 24.0;
  options.policy = chain::MinerPolicy::kMyopicDifficulty;
  options.reevaluation_fraction = 0.5;
  options.seed = seed;
  options.record_timeline = false;
  options.engine = engine;
  std::vector<double> powers(12, 10.0);
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options);
}

market::MarketSimulator make_market(std::size_t epochs, sim::EngineKind engine,
                                    std::uint64_t seed) {
  std::vector<market::CoinSpec> coins;
  coins.emplace_back("major", 12.5, 6.0,
                     std::make_unique<market::GbmProcess>(7400.0, 0.0, 0.03),
                     market::FeeMarket(400.0, 0.05, 1.5));
  coins.emplace_back("minor", 12.5, 6.0,
                     std::make_unique<market::GbmProcess>(620.0, 0.0, 0.06),
                     market::FeeMarket(60.0, 0.02, 1.5));
  coins.emplace_back("tail", 25.0, 12.0,
                     std::make_unique<market::GbmProcess>(40.0, 0.0, 0.10),
                     market::FeeMarket(10.0, 0.01, 1.5));
  market::MarketOptions options;
  options.epochs = epochs;
  options.seed = seed;
  options.engine = engine;
  std::vector<std::int64_t> powers;
  for (std::size_t i = 0; i < 48; ++i) {
    powers.push_back(10 + static_cast<std::int64_t>(i) * 37 % 900);
  }
  return market::MarketSimulator(std::move(powers), std::move(coins), options);
}

/// The decision-epoch workload: a large population under synchronous
/// better-response epochs (`reevaluation_fraction = 1`, hourly decisions,
/// slow block cadence) so `decision_epoch()` dominates the run. Rewards are
/// proportional to each chain's initial hashrate, which puts the population
/// at a better-response equilibrium: every miner still evaluates the full
/// chain menu each epoch — the cost the sharded mode attacks — but nobody
/// migrates, so the apply phase is identical across modes and the table
/// isolates evaluation throughput (the regime the paper's dynamics converge
/// to). Used by the `--adaptive` table to compare the sequential scan
/// (`epoch_lanes = 0`) against the sharded frozen-state mode.
chain::MultiChainSimulator make_epoch_chain(std::size_t miners,
                                            std::size_t num_chains,
                                            double hours,
                                            std::size_t epoch_lanes,
                                            sim::EngineKind engine,
                                            std::uint64_t seed) {
  Rng setup(seed ^ 0xE90CULL);
  std::vector<double> powers;
  powers.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    powers.push_back(std::min(4000.0, std::ceil(setup.pareto(10.0, 1.16))));
  }
  std::vector<std::size_t> assignment;
  assignment.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    assignment.push_back(i % num_chains);
  }
  std::vector<double> mass(num_chains, 0.0);
  for (std::size_t i = 0; i < miners; ++i) mass[assignment[i]] += powers[i];

  std::vector<chain::ChainSpec> chains;
  for (std::size_t c = 0; c < num_chains; ++c) {
    // Reward proportional to initial mass: staying strictly dominates every
    // candidate (reward_c·p/(mass_c+p) < reward_cur·p/mass_cur), so the
    // epochs are pure evaluation. One block per hour keeps blocks cheap.
    const double reward = 0.01 * std::max(1.0, mass[c]);
    chains.push_back(chain::ChainSpec{
        "c" + std::to_string(c), std::max(1.0, mass[c]), 1.0, reward,
        std::make_unique<chain::FixedWindowRetarget>(24, 1.0)});
  }
  chain::ChainSimOptions options;
  options.duration_hours = hours;
  options.decision_interval_hours = 1.0;
  options.policy = chain::MinerPolicy::kBetterResponse;
  options.reevaluation_fraction = 1.0;
  options.seed = seed;
  options.record_timeline = false;
  options.engine = engine;
  options.epoch_lanes = epoch_lanes;
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options, std::move(assignment));
}

struct EngineRun {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
};

template <typename MakeSim>
EngineRun time_chain(const MakeSim& make, sim::EngineKind engine) {
  goc::bench::Stopwatch watch;
  chain::MultiChainSimulator sim = make(engine);
  const chain::ChainSimResult result = sim.run();
  EngineRun run;
  run.wall_ms = watch.elapsed_ms();
  run.events = result.events_dispatched;
  run.hash = sim::chain_result_hash(result);
  return run;
}

EngineRun time_market(std::size_t epochs, sim::EngineKind engine,
                      std::uint64_t seed) {
  goc::bench::Stopwatch watch;
  market::MarketSimulator sim = make_market(epochs, engine, seed);
  const auto records = sim.run();
  EngineRun run;
  run.wall_ms = watch.elapsed_ms();
  // One price tick + one fee update per coin per epoch, plus the epoch.
  run.events = records.size() * (2 * sim.num_coins() + 1);
  run.hash = sim::market_records_hash(records);
  return run;
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  {
    // Fail fast on typos (`--stop-maxx=64` silently running the full study
    // is exactly the kind of wasted night this guards against).
    std::vector<std::string> known = {"quick",    "threads", "seed",
                                      "compare-scan", "adaptive", "csv",
                                      "json"};
    const auto& batch = sim::batch_cli_names();
    known.insert(known.end(), batch.begin(), batch.end());
    const std::vector<std::string> stray = cli.unknown(known);
    if (!stray.empty()) {
      std::cerr << "bench_des: unknown option(s):";
      for (const auto& name : stray) std::cerr << " --" << name;
      std::cerr << "\n";
      return 2;
    }
  }
  const bool quick = cli.get_bool("quick", false);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const std::uint64_t seed0 = cli.get_u64("seed", 2017);
  // The old-vs-new table always runs both engines and verifies trajectory
  // bit-equality; the flag is accepted so CI invocations read like the
  // other engine benches.
  (void)cli.get_bool("compare-scan", false);

  bench::banner(
      "DES engine old-vs-new (speedup = legacy_ms/flat_ms, single lane)",
      "Legacy = std::function EventQueue + full miner scans; flat = "
      "sim::EventCore POD events + enum dispatch + member lists. Identical "
      "RNG draws: trajectories must be bit-identical.");

  bool all_identical = true;
  Table table({"workload", "events", "legacy_ms", "flat_ms", "speedup",
               "flat_events/s", "identical"});
  const auto add_row = [&](const std::string& name, const EngineRun& legacy,
                           const EngineRun& flat) {
    const bool identical =
        legacy.hash == flat.hash && legacy.events == flat.events;
    all_identical = all_identical && identical;
    table.row() << name << fmt_group(flat.events)
                << fmt_double(legacy.wall_ms, 2) << fmt_double(flat.wall_ms, 2)
                << fmt_double(legacy.wall_ms / flat.wall_ms, 1)
                << fmt_group(static_cast<std::uint64_t>(
                       1000.0 * static_cast<double>(flat.events) /
                       flat.wall_ms))
                << (identical ? "yes" : "NO");
  };

  {
    const std::size_t miners = 2048;  // the acceptance reference shape
    const std::size_t num_chains = 128;
    const double days = quick ? 5.0 : 20.0;
    const auto make = [&](sim::EngineKind engine) {
      return make_reference_chain(miners, num_chains, days, engine, seed0);
    };
    add_row("chain " + std::to_string(miners) + "m x " +
                std::to_string(num_chains) + "c better-response (reference)",
            time_chain(make, sim::EngineKind::kLegacy),
            time_chain(make, sim::EngineKind::kFlat));
  }
  {
    const double days = quick ? 60.0 : 240.0;
    const auto make = [&](sim::EngineKind engine) {
      return make_eda_chain(days, engine, seed0 + 1);
    };
    add_row("chain 12m x 2c EDA sawtooth (invalidation churn)",
            time_chain(make, sim::EngineKind::kLegacy),
            time_chain(make, sim::EngineKind::kFlat));
  }
  {
    const std::size_t epochs = quick ? 24 * 30 : 24 * 90;
    add_row("market 48m x 3c epoch events",
            time_market(epochs, sim::EngineKind::kLegacy, seed0 + 2),
            time_market(epochs, sim::EngineKind::kFlat, seed0 + 2));
  }
  bench::emit(cli, table, "Old vs new (trajectory hashes checked per row)");

  // ---------------------------------------------------- Monte Carlo batch
  sim::TrajectoryBatchOptions batch;
  batch.replicas = quick ? 16 : 48;
  batch.root_seed = seed0;
  batch.threads = threads;
  bench::apply_batch_cli(cli, batch);  // --replicas/--stop-*/--checkpoint
  const std::size_t replicas = batch.replicas;
  const auto chain_factory = [&](std::uint64_t seed) {
    return make_reference_chain(quick ? 128 : 256, 8, quick ? 10.0 : 20.0,
                                sim::EngineKind::kFlat, seed);
  };
  bench::Stopwatch watch;
  const sim::TrajectoryBatchResult parallel =
      sim::run_chain_batch(chain_factory, batch);
  const double parallel_ms = watch.elapsed_ms();
  batch.threads = 1;
  batch.checkpoint.reset();  // the 1-lane replay must recompute, not resume
  watch.restart();
  const sim::TrajectoryBatchResult serial =
      sim::run_chain_batch(chain_factory, batch);
  const double serial_ms = watch.elapsed_ms();
  const bool batch_identical = parallel.deterministic_equals(serial);
  all_identical = all_identical && batch_identical;

  bench::emit(cli, parallel.to_table(),
              "Monte Carlo chain batch: " + std::to_string(replicas) +
                  " replicas (mean / 95% CI per metric)",
              "batch");
  std::cout << "[batch: " << replicas << " replicas in "
            << fmt_double(parallel_ms, 1) << " ms; 1-lane replay "
            << fmt_double(serial_ms, 1) << " ms; speedup "
            << fmt_double(serial_ms / parallel_ms, 2) << "x; aggregates "
            << (batch_identical ? "bit-identical" : "DIVERGED")
            << " (values_hash " << parallel.values_hash() << ")]\n";

  // ----------------------------------------------- adaptive Monte Carlo
  if (cli.get_bool("adaptive", false)) {
    bench::banner(
        "Adaptive Monte Carlo (CI-driven stopping + sharded decision epochs)",
        "Stopping: waves of replicas stop once the replica-ordered prefix "
        "95% CI meets the tolerance — same chosen R at any --threads. "
        "Epochs: frozen-state sharded decision_epoch vs the sequential "
        "scan; sharded trajectories are hash-checked across lane counts "
        "and both event engines.");

    Table adaptive_table(
        {"case", "mode", "n", "wall_ms", "gain", "detail", "ok"});

    // (a) Sequential stopping on the low-variance chain batch: a fixed-R
    // study wildly overshoots the 2% relative CI target; the stopping rule
    // reaches the same target in a fraction of the replicas.
    {
      const double tol = 0.02;  // relative 95% half-width on blocks_total
      sim::TrajectoryBatchOptions fixed;
      fixed.replicas = quick ? 64 : 256;
      fixed.root_seed = seed0 + 7;
      fixed.threads = threads;
      bench::Stopwatch stop_watch;
      const sim::TrajectoryBatchResult full =
          sim::run_chain_batch(chain_factory, fixed);
      const double fixed_ms = stop_watch.elapsed_ms();

      sim::TrajectoryBatchOptions adaptive = fixed;
      sim::StoppingRule rule;
      rule.metric = "blocks_total";
      rule.tolerance = tol;
      rule.relative = true;
      rule.min_replicas = 8;
      rule.max_replicas = fixed.replicas;
      rule.wave = 8;
      adaptive.stopping = rule;
      stop_watch.restart();
      const sim::TrajectoryBatchResult stopped =
          sim::run_chain_batch(chain_factory, adaptive);
      const double adaptive_ms = stop_watch.elapsed_ms();

      const auto rel_ci = [](const sim::TrajectoryBatchResult& result) {
        const sim::MetricSummary& s = result.summary("blocks_total");
        return s.ci95_halfwidth / std::abs(s.mean);
      };
      const double reduction = static_cast<double>(full.replicas()) /
                               static_cast<double>(stopped.replicas());
      const bool fixed_ok = rel_ci(full) <= tol;
      const bool stopped_ok =
          stopped.stop_reason() != sim::StopReason::kToleranceMet ||
          rel_ci(stopped) <= tol;
      all_identical = all_identical && fixed_ok && stopped_ok;
      adaptive_table.row()
          << "stopping low-variance" << "fixed-R"
          << fmt_group(full.replicas()) << fmt_double(fixed_ms, 1) << "1.0"
          << ("rel_ci95=" + fmt_double(100.0 * rel_ci(full), 3) + "% tol=" +
              fmt_double(100.0 * tol, 1) + "%")
          << (fixed_ok ? "yes" : "NO");
      adaptive_table.row()
          << "stopping low-variance" << "adaptive"
          << fmt_group(stopped.replicas()) << fmt_double(adaptive_ms, 1)
          << (fmt_double(reduction, 1) + "x fewer")
          << ("reason=" + std::string(stop_reason_name(stopped.stop_reason())) +
              " rel_ci95=" + fmt_double(100.0 * rel_ci(stopped), 3) +
              "% of " + fmt_group(stopped.replicas_requested()) + " requested")
          << (stopped_ok ? "yes" : "NO");

      // A noisy metric under a tight tolerance escalates to the ceiling.
      sim::TrajectoryBatchOptions noisy = fixed;
      sim::StoppingRule tight;
      tight.metric = "share_mae";
      tight.tolerance = 0.002;
      tight.relative = true;
      tight.min_replicas = 8;
      tight.max_replicas = quick ? 32 : 64;
      tight.wave = 8;
      noisy.stopping = tight;
      stop_watch.restart();
      const sim::TrajectoryBatchResult capped =
          sim::run_chain_batch(chain_factory, noisy);
      adaptive_table.row()
          << "stopping high-variance" << "adaptive"
          << fmt_group(capped.replicas())
          << fmt_double(stop_watch.elapsed_ms(), 1) << "-"
          << ("reason=" + std::string(stop_reason_name(capped.stop_reason())) +
              " of " + fmt_group(capped.replicas_requested()) + " requested")
          << "yes";
    }

    // (b) The decision-epoch workload: sequential scan vs the sharded
    // frozen-state epoch. The two are *different dynamics* (the scan sees
    // live mid-epoch state), so only sharded rows are hash-compared — at
    // every lane count and on both event engines they must coincide.
    {
      const std::size_t miners = quick ? 20000 : 100000;
      const std::size_t num_chains = 128;
      const double hours = quick ? 8.0 : 16.0;
      const std::string name = std::to_string(miners / 1000) + "k m x " +
                               std::to_string(num_chains) + "c";
      const auto run_epoch = [&](std::size_t lanes, sim::EngineKind engine) {
        bench::Stopwatch epoch_watch;
        chain::MultiChainSimulator sim = make_epoch_chain(
            miners, num_chains, hours, lanes, engine, seed0 + 11);
        const chain::ChainSimResult result = sim.run();
        EngineRun run;
        run.wall_ms = epoch_watch.elapsed_ms();
        run.events = result.events_dispatched;
        run.hash = sim::chain_result_hash(result);
        return run;
      };
      const EngineRun scan = run_epoch(0, sim::EngineKind::kFlat);
      const EngineRun lane1 = run_epoch(1, sim::EngineKind::kFlat);
      const EngineRun lane8 = run_epoch(8, sim::EngineKind::kFlat);
      const EngineRun legacy8 = run_epoch(8, sim::EngineKind::kLegacy);
      const bool lanes_identical =
          lane1.hash == lane8.hash && lane1.hash == legacy8.hash;
      all_identical = all_identical && lanes_identical;
      adaptive_table.row()
          << ("epoch " + name) << "sequential-scan" << "-"
          << fmt_double(scan.wall_ms, 1) << "1.0"
          << (fmt_group(scan.events) + " events") << "yes";
      adaptive_table.row()
          << ("epoch " + name) << "sharded lanes=1" << "1"
          << fmt_double(lane1.wall_ms, 1)
          << (fmt_double(scan.wall_ms / lane1.wall_ms, 1) + "x")
          << ("hash=" + std::to_string(lane1.hash))
          << (lanes_identical ? "yes" : "NO");
      adaptive_table.row()
          << ("epoch " + name) << "sharded lanes=8" << "8"
          << fmt_double(lane8.wall_ms, 1)
          << (fmt_double(scan.wall_ms / lane8.wall_ms, 1) + "x")
          << "hash matches lanes=1" << (lanes_identical ? "yes" : "NO");
      adaptive_table.row()
          << ("epoch " + name) << "sharded legacy lanes=8" << "8"
          << fmt_double(legacy8.wall_ms, 1)
          << (fmt_double(scan.wall_ms / legacy8.wall_ms, 1) + "x")
          << "hash matches flat" << (lanes_identical ? "yes" : "NO");
    }

    bench::emit(cli, adaptive_table,
                "Adaptive Monte Carlo: stopping + sharded epochs", "adaptive");
  }

  std::cout << "trajectory equality: "
            << (all_identical ? "OK (all bit-identical)" : "FAIL") << "\n";
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
