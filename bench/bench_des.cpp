/// \file bench_des.cpp
/// The stochastic hot path: legacy callback DES vs the flat event core.
///
/// PR 2 gave the learning loop an incremental index, PR 3 gave the
/// exhaustive walkers a devirtualized sharded engine; this harness measures
/// the same treatment applied to the stochastic simulators. Old vs new on
/// identical workloads: the legacy path runs `chain::EventQueue`
/// (std::function per event, heap allocation at schedule, full miner scans
/// per block), the flat path runs `sim::EventCore` (POD events, enum
/// switch, generation invalidation in the core, per-chain member lists).
/// Both paths consume the RNG identically, so trajectories must be
/// **bit-identical** — every row checks the trajectory hash, and any
/// divergence fails the run (`--compare-scan` is implied; the flag is
/// accepted for CI symmetry with the other engine benches).
///
/// The second table exercises layer 2: a Monte Carlo chain batch fanned
/// across the thread pool, replayed on one lane — bit-identical aggregates
/// at any `--threads`, with the parallel speedup reported.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "market/fee_market.hpp"
#include "market/market_sim.hpp"
#include "market/price_process.hpp"
#include "sim/event_core.hpp"
#include "sim/trajectory.hpp"
#include "util/rng.hpp"

namespace {

using namespace goc;

// ------------------------------------------------------------- workloads

/// The reference chain workload: a heavy-tailed population spread over
/// many chains under game-semantics migration — block events dominate, and
/// the legacy path pays a full miner scan per block.
chain::MultiChainSimulator make_reference_chain(std::size_t miners,
                                                std::size_t num_chains,
                                                double days,
                                                sim::EngineKind engine,
                                                std::uint64_t seed) {
  Rng setup(seed ^ 0xDE5ULL);
  std::vector<double> powers;
  powers.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    powers.push_back(std::min(4000.0, std::ceil(setup.pareto(10.0, 1.16))));
  }
  std::vector<std::size_t> assignment;
  assignment.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    assignment.push_back(i % num_chains);
  }
  std::vector<double> mass(num_chains, 0.0);
  for (std::size_t i = 0; i < miners; ++i) mass[assignment[i]] += powers[i];

  std::vector<chain::ChainSpec> chains;
  for (std::size_t c = 0; c < num_chains; ++c) {
    // Difficulty calibrated to the initial split (protocol cadence 6/h);
    // rewards spread 3:1 so better-response migration stays busy.
    const double reward = 10.0 + 20.0 * static_cast<double>(c) /
                                     static_cast<double>(num_chains);
    chains.push_back(chain::ChainSpec{
        "c" + std::to_string(c), std::max(1.0, mass[c] / 6.0), 1.0 / 6.0,
        reward,
        std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)});
  }
  chain::ChainSimOptions options;
  options.duration_hours = days * 24.0;
  options.decision_interval_hours = 4.0;
  options.policy = chain::MinerPolicy::kBetterResponse;
  options.reevaluation_fraction = 0.15;
  options.seed = seed;
  options.record_timeline = false;
  options.engine = engine;
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options, std::move(assignment));
}

/// The EDA stress: few miners, hot invalidation churn (every epoch moves
/// hashrate, so races go stale constantly) — the queue-mechanics case.
chain::MultiChainSimulator make_eda_chain(double days, sim::EngineKind engine,
                                          std::uint64_t seed) {
  std::vector<chain::ChainSpec> chains;
  chains.push_back(chain::ChainSpec{
      "btc", 20.0, 1.0 / 6.0, 60.0,
      std::make_unique<chain::SmaRetarget>(20, 1.0 / 6.0, 1.2)});
  chains.push_back(chain::ChainSpec{
      "bch", 20.0, 1.0 / 6.0, 10.0,
      std::make_unique<chain::EmergencyAdjuster>(20, 1.0 / 6.0, 0.5, 0.20)});
  chain::ChainSimOptions options;
  options.duration_hours = days * 24.0;
  options.policy = chain::MinerPolicy::kMyopicDifficulty;
  options.reevaluation_fraction = 0.5;
  options.seed = seed;
  options.record_timeline = false;
  options.engine = engine;
  std::vector<double> powers(12, 10.0);
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options);
}

market::MarketSimulator make_market(std::size_t epochs, sim::EngineKind engine,
                                    std::uint64_t seed) {
  std::vector<market::CoinSpec> coins;
  coins.emplace_back("major", 12.5, 6.0,
                     std::make_unique<market::GbmProcess>(7400.0, 0.0, 0.03),
                     market::FeeMarket(400.0, 0.05, 1.5));
  coins.emplace_back("minor", 12.5, 6.0,
                     std::make_unique<market::GbmProcess>(620.0, 0.0, 0.06),
                     market::FeeMarket(60.0, 0.02, 1.5));
  coins.emplace_back("tail", 25.0, 12.0,
                     std::make_unique<market::GbmProcess>(40.0, 0.0, 0.10),
                     market::FeeMarket(10.0, 0.01, 1.5));
  market::MarketOptions options;
  options.epochs = epochs;
  options.seed = seed;
  options.engine = engine;
  std::vector<std::int64_t> powers;
  for (std::size_t i = 0; i < 48; ++i) {
    powers.push_back(10 + static_cast<std::int64_t>(i) * 37 % 900);
  }
  return market::MarketSimulator(std::move(powers), std::move(coins), options);
}

struct EngineRun {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
};

template <typename MakeSim>
EngineRun time_chain(const MakeSim& make, sim::EngineKind engine) {
  goc::bench::Stopwatch watch;
  chain::MultiChainSimulator sim = make(engine);
  const chain::ChainSimResult result = sim.run();
  EngineRun run;
  run.wall_ms = watch.elapsed_ms();
  run.events = result.events_dispatched;
  run.hash = sim::chain_result_hash(result);
  return run;
}

EngineRun time_market(std::size_t epochs, sim::EngineKind engine,
                      std::uint64_t seed) {
  goc::bench::Stopwatch watch;
  market::MarketSimulator sim = make_market(epochs, engine, seed);
  const auto records = sim.run();
  EngineRun run;
  run.wall_ms = watch.elapsed_ms();
  // One price tick + one fee update per coin per epoch, plus the epoch.
  run.events = records.size() * (2 * sim.num_coins() + 1);
  run.hash = sim::market_records_hash(records);
  return run;
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const std::uint64_t seed0 = cli.get_u64("seed", 2017);
  // The old-vs-new table always runs both engines and verifies trajectory
  // bit-equality; the flag is accepted so CI invocations read like the
  // other engine benches.
  (void)cli.get_bool("compare-scan", false);

  bench::banner(
      "DES engine old-vs-new (speedup = legacy_ms/flat_ms, single lane)",
      "Legacy = std::function EventQueue + full miner scans; flat = "
      "sim::EventCore POD events + enum dispatch + member lists. Identical "
      "RNG draws: trajectories must be bit-identical.");

  bool all_identical = true;
  Table table({"workload", "events", "legacy_ms", "flat_ms", "speedup",
               "flat_events/s", "identical"});
  const auto add_row = [&](const std::string& name, const EngineRun& legacy,
                           const EngineRun& flat) {
    const bool identical =
        legacy.hash == flat.hash && legacy.events == flat.events;
    all_identical = all_identical && identical;
    table.row() << name << fmt_group(flat.events)
                << fmt_double(legacy.wall_ms, 2) << fmt_double(flat.wall_ms, 2)
                << fmt_double(legacy.wall_ms / flat.wall_ms, 1)
                << fmt_group(static_cast<std::uint64_t>(
                       1000.0 * static_cast<double>(flat.events) /
                       flat.wall_ms))
                << (identical ? "yes" : "NO");
  };

  {
    const std::size_t miners = 2048;  // the acceptance reference shape
    const std::size_t num_chains = 128;
    const double days = quick ? 5.0 : 20.0;
    const auto make = [&](sim::EngineKind engine) {
      return make_reference_chain(miners, num_chains, days, engine, seed0);
    };
    add_row("chain " + std::to_string(miners) + "m x " +
                std::to_string(num_chains) + "c better-response (reference)",
            time_chain(make, sim::EngineKind::kLegacy),
            time_chain(make, sim::EngineKind::kFlat));
  }
  {
    const double days = quick ? 60.0 : 240.0;
    const auto make = [&](sim::EngineKind engine) {
      return make_eda_chain(days, engine, seed0 + 1);
    };
    add_row("chain 12m x 2c EDA sawtooth (invalidation churn)",
            time_chain(make, sim::EngineKind::kLegacy),
            time_chain(make, sim::EngineKind::kFlat));
  }
  {
    const std::size_t epochs = quick ? 24 * 30 : 24 * 90;
    add_row("market 48m x 3c epoch events",
            time_market(epochs, sim::EngineKind::kLegacy, seed0 + 2),
            time_market(epochs, sim::EngineKind::kFlat, seed0 + 2));
  }
  bench::emit(cli, table, "Old vs new (trajectory hashes checked per row)");

  // ---------------------------------------------------- Monte Carlo batch
  const std::size_t replicas = quick ? 16 : 48;
  sim::TrajectoryBatchOptions batch;
  batch.replicas = replicas;
  batch.root_seed = seed0;
  batch.threads = threads;
  const auto chain_factory = [&](std::uint64_t seed) {
    return make_reference_chain(quick ? 128 : 256, 8, quick ? 10.0 : 20.0,
                                sim::EngineKind::kFlat, seed);
  };
  bench::Stopwatch watch;
  const sim::TrajectoryBatchResult parallel =
      sim::run_chain_batch(chain_factory, batch);
  const double parallel_ms = watch.elapsed_ms();
  batch.threads = 1;
  watch.restart();
  const sim::TrajectoryBatchResult serial =
      sim::run_chain_batch(chain_factory, batch);
  const double serial_ms = watch.elapsed_ms();
  const bool batch_identical = parallel.deterministic_equals(serial);
  all_identical = all_identical && batch_identical;

  bench::emit(cli, parallel.to_table(),
              "Monte Carlo chain batch: " + std::to_string(replicas) +
                  " replicas (mean / 95% CI per metric)",
              "batch");
  std::cout << "[batch: " << replicas << " replicas in "
            << fmt_double(parallel_ms, 1) << " ms; 1-lane replay "
            << fmt_double(serial_ms, 1) << " ms; speedup "
            << fmt_double(serial_ms / parallel_ms, 2) << "x; aggregates "
            << (batch_identical ? "bit-identical" : "DIVERGED")
            << " (values_hash " << parallel.values_hash() << ")]\n";

  std::cout << "trajectory equality: "
            << (all_identical ? "OK (all bit-identical)" : "FAIL") << "\n";
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
