/// \file bench_enumeration.cpp
/// The enumeration-engine headline: old vs new on every exhaustive path.
///
/// The legacy walker visits all |C|^n configurations through a
/// `std::function` callback and re-verifies each candidate with full
/// O(n·|C|) exact-Rational payoff scans. The engine (core/enumerate.hpp)
/// walks canonical representatives with a templated incremental odometer,
/// checks equilibria with i128 cross-multiplications, and shards the space
/// across a ThreadPool with deterministic concatenation. This harness
/// measures both on the same workloads and — under `--compare-scan` —
/// asserts the results are bit-identical at 1 and `--threads` lanes.
///
/// Workloads: the E5 reference exhaustive rows (distinct powers — no
/// symmetry to exploit, so the speedup is pure devirtualization + i128 +
/// threads), an equal-power family where canonical reduction collapses
/// |C|^n to the multiset count, and the Assumption-1 / exact-potential
/// walks ported onto the same engine.

#include <vector>

#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/generators.hpp"
#include "engine/thread_pool.hpp"
#include "equilibrium/assumptions.hpp"
#include "equilibrium/enumerate.hpp"
#include "potential/exact_potential.hpp"

namespace {

using namespace goc;

GameSpec reference_spec(std::size_t miners, std::size_t coins) {
  // bench_better_equilibrium's reference exhaustive workload (E5).
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.power_lo = 1;
  spec.power_hi = 60;
  spec.reward_lo = 150;
  spec.reward_hi = 400;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  return spec;
}

std::vector<Game> make_games(const GameSpec& spec, std::size_t trials,
                             std::uint64_t seed0) {
  std::vector<Game> games;
  games.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(seed0 + t * 6151 + spec.num_miners * 17 + spec.num_coins);
    games.push_back(random_game(spec, rng));
  }
  return games;
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const std::size_t trials = cli.get_u64("trials", quick ? 3 : 10);
  const std::uint64_t seed0 = cli.get_u64("seed", 5);
  const std::size_t threads = cli.get_u64("threads", 8);
  const bool compare_scan = cli.has("compare-scan");

  bench::banner(
      "Enumeration engine — parallel, symmetry-reduced exhaustive walks",
      "Old (std::function walk + Rational payoff scans) vs new (templated "
      "canonical odometer + i128 checks + ThreadPool shards); "
      "--compare-scan asserts bit-identical results at any thread count.");

  // One pool for the whole run — per-call spawning would swamp small
  // games. Sized at min(--threads, hardware): extra lanes on a smaller
  // box only add scheduler noise, never throughput.
  const std::size_t hw = engine::ThreadPool::default_threads();
  const std::size_t requested = engine::ThreadPool::resolve_lanes(threads);
  const std::size_t lanes = requested < hw ? requested : hw;
  engine::ThreadPool pool(engine::ThreadPool::workers_for(lanes));
  EnumerationOptions engine_opts;
  engine_opts.threads = threads;
  engine_opts.symmetry = true;
  engine_opts.pool = &pool;

  Table table({"workload", "games", "configs", "scan_ms", "engine_ms",
               "speedup", "threads", "identical"});
  bool all_identical = true;
  double ref_scan_ms = 0.0;
  double ref_engine_ms = 0.0;

  // ---- equilibrium enumeration rows -----------------------------------
  struct EqRow {
    std::string name;
    GameSpec spec;
    bool reference;  // counts toward the E5-reference headline
  };
  std::vector<EqRow> rows;
  rows.push_back({"equilibria 8mx2c distinct (E5)", reference_spec(8, 2), true});
  rows.push_back({"equilibria 9mx3c distinct (E5)", reference_spec(9, 3), true});
  {
    GameSpec symmetric = reference_spec(quick ? 10 : 12, 3);
    symmetric.power_shape = PowerShape::kEqual;
    symmetric.distinct_powers = false;
    rows.push_back({"equilibria equal-power symmetric", symmetric, false});
  }

  for (const EqRow& row : rows) {
    const std::vector<Game> games = make_games(row.spec, trials, seed0);
    std::uint64_t configs = 0;
    for (const Game& g : games) configs += *configuration_count(g.system());

    bench::Stopwatch watch;
    std::vector<std::vector<Configuration>> scan_sets;
    for (const Game& g : games) scan_sets.push_back(enumerate_equilibria_scan(g));
    const double scan_ms = watch.elapsed_ms();

    watch.restart();
    std::vector<std::vector<Configuration>> engine_sets;
    for (const Game& g : games) {
      engine_sets.push_back(enumerate_equilibria(g, engine_opts));
    }
    const double engine_ms = watch.elapsed_ms();

    bool identical = engine_sets == scan_sets;
    if (compare_scan) {
      // Thread-count invariance: the serial engine must reproduce the
      // parallel result element-for-element.
      EnumerationOptions serial = engine_opts;
      serial.threads = 1;
      serial.pool = nullptr;
      for (std::size_t i = 0; i < games.size(); ++i) {
        if (enumerate_equilibria(games[i], serial) != engine_sets[i]) {
          identical = false;
        }
      }
    }
    all_identical = all_identical && identical;
    if (row.reference) {
      ref_scan_ms += scan_ms;
      ref_engine_ms += engine_ms;
    }
    table.row() << row.name << std::uint64_t(games.size()) << configs
                << fmt_double(scan_ms, 2) << fmt_double(engine_ms, 2)
                << fmt_double(scan_ms / engine_ms, 1) << std::uint64_t(threads)
                << (identical ? "yes" : "NO");
  }

  // ---- Assumption 1 row ------------------------------------------------
  {
    const std::vector<Game> games = make_games(reference_spec(8, 2), trials, seed0);
    std::uint64_t configs = 0;
    for (const Game& g : games) configs += *configuration_count(g.system());

    bench::Stopwatch watch;
    std::vector<bool> scan_verdicts;
    for (const Game& g : games) {
      scan_verdicts.push_back(find_never_alone_violation_scan(g).has_value());
    }
    const double scan_ms = watch.elapsed_ms();

    watch.restart();
    std::vector<bool> engine_verdicts;
    for (const Game& g : games) {
      engine_verdicts.push_back(
          find_never_alone_violation(g, engine_opts).has_value());
    }
    const double engine_ms = watch.elapsed_ms();

    const bool identical = engine_verdicts == scan_verdicts;
    all_identical = all_identical && identical;
    table.row() << "never-alone 8mx2c (A1 check)" << std::uint64_t(games.size())
                << configs << fmt_double(scan_ms, 2) << fmt_double(engine_ms, 2)
                << fmt_double(scan_ms / engine_ms, 1) << std::uint64_t(threads)
                << (identical ? "yes" : "NO");
  }

  // ---- canonical-only row ---------------------------------------------
  {
    // The symmetry-reduction headline: counting equilibria (canonical
    // representatives + orbit sizes) without materializing the full set.
    GameSpec spec = reference_spec(quick ? 10 : 12, 3);
    spec.power_shape = PowerShape::kEqual;
    spec.distinct_powers = false;
    const std::vector<Game> games = make_games(spec, trials, seed0);
    std::uint64_t configs = 0;
    for (const Game& g : games) configs += *configuration_count(g.system());

    bench::Stopwatch watch;
    std::vector<std::uint64_t> scan_counts;
    for (const Game& g : games) {
      scan_counts.push_back(enumerate_equilibria_scan(g).size());
    }
    const double scan_ms = watch.elapsed_ms();

    watch.restart();
    std::vector<std::uint64_t> engine_counts;
    for (const Game& g : games) {
      engine_counts.push_back(enumerate_canonical_equilibria(g, engine_opts).total());
    }
    const double engine_ms = watch.elapsed_ms();

    const bool identical = engine_counts == scan_counts;
    all_identical = all_identical && identical;
    table.row() << "equilibrium counts, orbit-only" << std::uint64_t(games.size())
                << configs << fmt_double(scan_ms, 2) << fmt_double(engine_ms, 2)
                << fmt_double(scan_ms / engine_ms, 1) << std::uint64_t(threads)
                << (identical ? "yes" : "NO");
  }

  // ---- exact-potential row --------------------------------------------
  {
    // Equal powers: every 4-cycle sums to zero (congestion game), so both
    // paths must walk the whole base space — the regime where the
    // canonical reduction and in-place cycle walk matter. Unequal-power
    // games exit at the first base and measure nothing.
    GameSpec spec;
    spec.num_miners = quick ? 5 : 6;
    spec.num_coins = 3;
    spec.power_shape = PowerShape::kEqual;
    spec.power_lo = 1;
    spec.power_hi = 1;
    const std::vector<Game> games = make_games(spec, trials, seed0);
    std::uint64_t configs = 0;
    for (const Game& g : games) configs += *configuration_count(g.system());

    bench::Stopwatch watch;
    std::vector<bool> scan_verdicts;
    for (const Game& g : games) scan_verdicts.push_back(has_exact_potential_scan(g));
    const double scan_ms = watch.elapsed_ms();

    watch.restart();
    std::vector<bool> engine_verdicts;
    for (const Game& g : games) {
      EnumerationOptions opts = engine_opts;
      opts.max_configs = 1u << 20;
      engine_verdicts.push_back(has_exact_potential(g, opts));
    }
    const double engine_ms = watch.elapsed_ms();

    const bool identical = engine_verdicts == scan_verdicts;
    all_identical = all_identical && identical;
    table.row() << "exact-potential 4-cycle walk" << std::uint64_t(games.size())
                << configs << fmt_double(scan_ms, 2) << fmt_double(engine_ms, 2)
                << fmt_double(scan_ms / engine_ms, 1) << std::uint64_t(threads)
                << (identical ? "yes" : "NO");
  }

  bench::emit(cli, table,
              "Enumeration engine old-vs-new (speedup = scan_ms/engine_ms)");

  const double headline = ref_scan_ms / ref_engine_ms;
  std::cout << "[E5 reference workload: scan " << fmt_double(ref_scan_ms, 1)
            << " ms vs engine " << fmt_double(ref_engine_ms, 1) << " ms at "
            << threads << " threads (" << lanes
            << " effective lanes on this hardware) => " << fmt_double(headline, 1)
            << "x]\n";
  if (compare_scan) {
    std::cout << (all_identical
                      ? "[compare-scan: all results bit-identical across "
                        "scan/engine and 1/N threads]\n"
                      : "[compare-scan: MISMATCH]\n");
  }
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
