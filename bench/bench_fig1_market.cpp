/// \file bench_fig1_market.cpp
/// Experiment E1/E2 — Figure 1a/1b reproduction.
///
/// The paper's Figure 1 shows (a) the BTC and BCH exchange rates around
/// November 12, 2017 and (b) the corresponding hashrates, documenting a
/// reward-driven miner migration. The authors used public market data; we
/// regenerate the phenomenon with the scripted fork-flip market scenario
/// (DESIGN.md, Substitutions): a shock multiplies the minor coin's price
/// while the major dips, flipping the weight ordering, and the simulated
/// miner population's better-response dynamics produce the hashrate
/// crossover — then partially unwind after the reversal.
///
/// Expected shape (paper): BCH price spikes ≈3×, BTC dips ≈20%; BCH
/// hashrate share surges from a small fraction to a majority for the flip
/// window, then recedes. Absolute magnitudes are calibration, not claims.

#include <algorithm>

#include "bench_common.hpp"
#include "market/fig1_replay.hpp"
#include "engine/sweep.hpp"
#include "market/scenario.hpp"
#include "sim/trajectory.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  using namespace goc::market;
  const Cli cli(argc, argv);
  ForkFlipParams params;
  params.days = cli.get_double("days", 30.0);
  params.shock_day = cli.get_double("shock-day", 12.0);
  params.revert_day = cli.get_double("revert-day", 15.0);
  params.miners = cli.get_u64("miners", 64);
  params.seed = cli.get_u64("seed", 1711);
  const bool quick = cli.get_bool("quick", false);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const bool compare_scan = cli.get_bool("compare-scan", false);
  const std::size_t replicas = cli.get_u64("replicas", quick ? 4 : 12);
  // --adaptive: stop the replay batch once the flip-window share's 95% CI
  // is inside 2 percentage points (replicas = floor, 8x replicas = cap).
  const bool adaptive = cli.get_bool("adaptive", false);

  bench::banner("E1/E2 — Figure 1a/1b: BTC/BCH fork-flip migration",
                "Scripted exchange-rate shock at day " +
                    fmt_double(params.shock_day, 0) + ", reversal at day " +
                    fmt_double(params.revert_day, 0) +
                    "; miners follow better-response dynamics on coin weights.");

  MarketSimulator sim = fork_flip_scenario(params);
  const auto records = sim.run();

  // Figure 1a analogue: exchange rates; Figure 1b analogue: hashrate.
  Table series({"day", "btc_price", "bch_price", "bch/btc", "btc_hash%",
                "bch_hash%", "at_eq"});
  const std::size_t stride = 24;  // daily samples
  for (std::size_t i = stride - 1; i < records.size(); i += stride) {
    const auto& r = records[i];
    series.row() << fmt_double(r.t_hours / 24.0, 0)
                 << fmt_double(r.prices[0], 0) << fmt_double(r.prices[1], 0)
                 << fmt_double(r.prices[1] / r.prices[0], 3)
                 << fmt_double(100.0 * r.hashrate_share[0], 1)
                 << fmt_double(100.0 * r.hashrate_share[1], 1)
                 << (r.at_equilibrium ? "y" : "n");
  }
  bench::emit(cli, series, "Daily series (Fig 1a: prices; Fig 1b: hashrate)",
              "series");

  // Shape summary, the checkable claims.
  const auto share_at = [&](double day) {
    const std::size_t idx =
        std::min(records.size() - 1,
                 static_cast<std::size_t>(day * 24.0) - 1);
    return records[idx].hashrate_share[1];
  };
  const double pre = share_at(params.shock_day - 2.0);
  const double peak = share_at(params.shock_day + 2.0);
  const double post = share_at(params.days - 1.0);
  Table summary({"phase", "bch_hash_share%"});
  summary.row() << "pre-shock" << fmt_double(100.0 * pre, 1);
  summary.row() << "post-shock peak window" << fmt_double(100.0 * peak, 1);
  summary.row() << "after reversal" << fmt_double(100.0 * post, 1);
  bench::emit(cli, summary, "Migration shape (paper: small -> surge -> recede)",
              "summary");

  std::cout << "shape check: surge " << (peak > pre ? "OK" : "FAIL")
            << ", recede " << (post < peak ? "OK" : "FAIL") << "\n\n";

  // High-fidelity replay: the same price shock driving the discrete-event
  // chain simulator (EDA difficulty + myopic profit-chasers) — this is
  // where Fig 1b's fine structure lives: the pre-shock sawtooth (the real
  // BCH EDA era), transient hashrate *crossovers*, and the elevated flip
  // window. Run as a Monte Carlo batch on the trajectory engine: R
  // replicas across the thread pool, phase shares reported with 95% CIs
  // (bit-identical at any --threads).
  Fig1ReplayParams replay_params;
  replay_params.days = params.days;
  replay_params.shock_day = params.shock_day;
  replay_params.revert_day = params.revert_day;
  replay_params.seed = params.seed;
  // --epoch-lanes=N runs the replay's decision rounds as sharded
  // simultaneous-move epochs (0 keeps the sequential scan default).
  replay_params.epoch_lanes = bench::epoch_lanes_from_cli(cli);
  sim::TrajectoryBatchOptions batch;
  batch.replicas = replicas;
  batch.root_seed = params.seed;
  batch.threads = threads;
  if (adaptive) {
    sim::StoppingRule rule;
    rule.metric = "flip_window_share";
    rule.tolerance = 0.04;  // 4 hashrate-share points, absolute
    rule.min_replicas = std::max<std::size_t>(2, replicas);
    rule.max_replicas = 8 * std::max<std::size_t>(2, replicas);
    rule.wave = std::max<std::size_t>(2, replicas);
    batch.stopping = rule;
  }
  bench::apply_batch_cli(cli, batch);  // --stop-*/--checkpoint override
  const sim::TrajectoryBatchResult replay =
      run_fig1_replay_batch(replay_params, batch);
  if (adaptive) {
    std::cout << "[adaptive: " << replay.replicas() << " of "
              << replay.replicas_requested() << " replicas ("
              << sim::stop_reason_name(replay.stop_reason()) << ")]\n\n";
  }

  Table fidelity({"phase", "avg_bch_hash_share%", "ci95", "min", "max"});
  const auto phase_row = [&](const std::string& label,
                             const std::string& metric) {
    const sim::MetricSummary& s = replay.summary(metric);
    fidelity.row() << label << fmt_double(100.0 * s.mean, 1)
                   << fmt_double(100.0 * s.ci95_halfwidth, 1)
                   << fmt_double(100.0 * s.min, 1)
                   << fmt_double(100.0 * s.max, 1);
  };
  phase_row("pre-shock (EDA sawtooth era)", "pre_shock_share");
  phase_row("flip window [shock, revert]", "flip_window_share");
  phase_row("after reversal", "post_revert_share");
  bench::emit(cli, fidelity,
              "Chain-level replay, " + std::to_string(replay.replicas()) +
                  " Monte Carlo replicas (difficulty dynamics + myopic "
                  "miners)",
              "replay");
  const sim::MetricSummary& peak_share = replay.summary("peak_minor_share");
  std::cout << "replay peak BCH share: mean "
            << fmt_double(100.0 * peak_share.mean, 1) << "% (max "
            << fmt_double(100.0 * peak_share.max, 1) << "%; crossover in "
            << (peak_share.max > 0.5 ? "at least one" : "no") << " replica); "
            << fmt_double(replay.summary("migrations").mean, 0)
            << " migrations/replica\n";

  bool scans_identical = true;
  if (compare_scan) {
    // One replica replayed on the legacy EventQueue engine: the coupled
    // chain trajectories must be bit-identical, series included.
    Fig1ReplayParams one = replay_params;
    one.seed = engine::task_seed(batch.root_seed, 0, 0);
    one.engine = sim::EngineKind::kFlat;
    const Fig1ReplayResult flat = run_fig1_replay(one);
    one.engine = sim::EngineKind::kLegacy;
    const Fig1ReplayResult legacy = run_fig1_replay(one);
    scans_identical = flat.migrations == legacy.migrations &&
                      flat.peak_minor_share == legacy.peak_minor_share &&
                      flat.series.size() == legacy.series.size();
    for (std::size_t i = 0; scans_identical && i < flat.series.size(); ++i) {
      scans_identical =
          flat.series[i].minor_hash == legacy.series[i].minor_hash &&
          flat.series[i].major_hash == legacy.series[i].major_hash &&
          flat.series[i].minor_difficulty == legacy.series[i].minor_difficulty;
    }
    std::cout << "[legacy replay: trajectories "
              << (scans_identical ? "bit-identical" : "DIVERGED") << "]\n";
  }

  const sim::MetricSummary& pre_s = replay.summary("pre_shock_share");
  const sim::MetricSummary& flip_s = replay.summary("flip_window_share");
  const sim::MetricSummary& post_s = replay.summary("post_revert_share");
  const bool replay_ok =
      flip_s.mean > pre_s.mean && post_s.mean < flip_s.mean;
  std::cout << "replay shape check: " << (replay_ok ? "OK" : "FAIL") << "\n";
  return (peak > pre && post < peak && replay_ok && scans_identical) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
