/// \file bench_fig1_market.cpp
/// Experiment E1/E2 — Figure 1a/1b reproduction.
///
/// The paper's Figure 1 shows (a) the BTC and BCH exchange rates around
/// November 12, 2017 and (b) the corresponding hashrates, documenting a
/// reward-driven miner migration. The authors used public market data; we
/// regenerate the phenomenon with the scripted fork-flip market scenario
/// (DESIGN.md, Substitutions): a shock multiplies the minor coin's price
/// while the major dips, flipping the weight ordering, and the simulated
/// miner population's better-response dynamics produce the hashrate
/// crossover — then partially unwind after the reversal.
///
/// Expected shape (paper): BCH price spikes ≈3×, BTC dips ≈20%; BCH
/// hashrate share surges from a small fraction to a majority for the flip
/// window, then recedes. Absolute magnitudes are calibration, not claims.

#include "bench_common.hpp"
#include "market/fig1_replay.hpp"
#include "market/scenario.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  using namespace goc::market;
  const Cli cli(argc, argv);
  ForkFlipParams params;
  params.days = cli.get_double("days", 30.0);
  params.shock_day = cli.get_double("shock-day", 12.0);
  params.revert_day = cli.get_double("revert-day", 15.0);
  params.miners = cli.get_u64("miners", 64);
  params.seed = cli.get_u64("seed", 1711);

  bench::banner("E1/E2 — Figure 1a/1b: BTC/BCH fork-flip migration",
                "Scripted exchange-rate shock at day " +
                    fmt_double(params.shock_day, 0) + ", reversal at day " +
                    fmt_double(params.revert_day, 0) +
                    "; miners follow better-response dynamics on coin weights.");

  MarketSimulator sim = fork_flip_scenario(params);
  const auto records = sim.run();

  // Figure 1a analogue: exchange rates; Figure 1b analogue: hashrate.
  Table series({"day", "btc_price", "bch_price", "bch/btc", "btc_hash%",
                "bch_hash%", "at_eq"});
  const std::size_t stride = 24;  // daily samples
  for (std::size_t i = stride - 1; i < records.size(); i += stride) {
    const auto& r = records[i];
    series.row() << fmt_double(r.t_hours / 24.0, 0)
                 << fmt_double(r.prices[0], 0) << fmt_double(r.prices[1], 0)
                 << fmt_double(r.prices[1] / r.prices[0], 3)
                 << fmt_double(100.0 * r.hashrate_share[0], 1)
                 << fmt_double(100.0 * r.hashrate_share[1], 1)
                 << (r.at_equilibrium ? "y" : "n");
  }
  bench::emit(cli, series, "Daily series (Fig 1a: prices; Fig 1b: hashrate)",
              "series");

  // Shape summary, the checkable claims.
  const auto share_at = [&](double day) {
    const std::size_t idx =
        std::min(records.size() - 1,
                 static_cast<std::size_t>(day * 24.0) - 1);
    return records[idx].hashrate_share[1];
  };
  const double pre = share_at(params.shock_day - 2.0);
  const double peak = share_at(params.shock_day + 2.0);
  const double post = share_at(params.days - 1.0);
  Table summary({"phase", "bch_hash_share%"});
  summary.row() << "pre-shock" << fmt_double(100.0 * pre, 1);
  summary.row() << "post-shock peak window" << fmt_double(100.0 * peak, 1);
  summary.row() << "after reversal" << fmt_double(100.0 * post, 1);
  bench::emit(cli, summary, "Migration shape (paper: small -> surge -> recede)",
              "summary");

  std::cout << "shape check: surge " << (peak > pre ? "OK" : "FAIL")
            << ", recede " << (post < peak ? "OK" : "FAIL") << "\n\n";

  // High-fidelity replay: the same price shock driving the discrete-event
  // chain simulator (EDA difficulty + myopic profit-chasers) — this is
  // where Fig 1b's fine structure lives: the pre-shock sawtooth (the real
  // BCH EDA era), transient hashrate *crossovers*, and the elevated flip
  // window.
  Fig1ReplayParams replay_params;
  replay_params.days = params.days;
  replay_params.shock_day = params.shock_day;
  replay_params.revert_day = params.revert_day;
  replay_params.seed = params.seed;
  const Fig1ReplayResult replay = run_fig1_replay(replay_params);

  Table fidelity({"phase", "avg_bch_hash_share%"});
  fidelity.row() << "pre-shock (EDA sawtooth era)"
                 << fmt_double(100.0 * replay.pre_shock_share, 1);
  fidelity.row() << "flip window [shock, revert]"
                 << fmt_double(100.0 * replay.flip_window_share, 1);
  fidelity.row() << "after reversal"
                 << fmt_double(100.0 * replay.post_revert_share, 1);
  bench::emit(cli, fidelity,
              "Chain-level replay (difficulty dynamics + myopic miners)",
              "replay");
  std::cout << "replay peak BCH share: "
            << fmt_double(100.0 * replay.peak_minor_share, 1) << "% at day "
            << fmt_double(replay.peak_day, 1) << " ("
            << (replay.peak_minor_share > 0.5 ? "crossover reproduced"
                                              : "no crossover")
            << "); " << replay.migrations << " migrations\n";

  const bool replay_ok = replay.flip_window_share > replay.pre_shock_share &&
                         replay.post_revert_share < replay.flip_window_share;
  std::cout << "replay shape check: " << (replay_ok ? "OK" : "FAIL") << "\n";
  return (peak > pre && post < peak && replay_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
