/// \file bench_pool_schemes.cpp
/// Experiment E13 — why the paper may treat pools as rational unit players.
///
/// The paper's players are "miners with power m_p"; in practice they are
/// pools aggregating thousands of small rigs. Two properties make the
/// paper's expected-value payoff u_p = m_p·F/M the right abstraction:
/// (1) every sound scheme pays members proportionally to hashrate in
/// expectation, and (2) pooling crushes income variance, so maximizing
/// expected value is what members (and hence pools) actually do. This
/// harness measures both across the classic schemes, plus the hopping
/// incentive profile that separates them (cf. the paper's ref [30]).

#include "bench_common.hpp"
#include "pool/pool_sim.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  using namespace goc::pool;
  const Cli cli(argc, argv);
  PoolSimOptions opts;
  opts.duration_hours = cli.get_double("days", 180.0) * 24.0;
  opts.shares_per_block = cli.get_double("shares-per-block", 200.0);
  opts.seed = cli.get_u64("seed", 13);

  bench::banner(
      "E13 — pool reward schemes: the aggregation behind the paper's miners",
      "Members at 50/30/15/5 hashrate shares; daily income windows over " +
          fmt_double(opts.duration_hours / 24.0, 0) + " days.");

  const std::vector<double> rates{50.0, 30.0, 15.0, 5.0};

  Table table({"scheme", "blocks", "prop_error", "cv_largest", "cv_smallest",
               "operator_pnl"});
  for (const SchemeKind kind :
       {SchemeKind::kProportional, SchemeKind::kPps, SchemeKind::kPplns}) {
    auto scheme = make_scheme(kind, opts.reward_per_block, opts.shares_per_block);
    const PoolSimResult result = simulate_pool(rates, *scheme, opts);
    table.row() << scheme->name() << result.blocks_found
                << fmt_double(result.proportionality_error, 4)
                << fmt_double(result.members.front().window_income_cv, 3)
                << fmt_double(result.members.back().window_income_cv, 3)
                << fmt_double(result.operator_balance, 1);
  }
  // Solo baseline for the smallest member (a pool of one).
  {
    ProportionalScheme solo;
    const PoolSimResult result = simulate_pool({5.0}, solo, opts);
    table.row() << "solo (5% member alone)" << result.blocks_found
                << fmt_double(0.0, 4)
                << fmt_double(result.members.front().window_income_cv, 3)
                << fmt_double(result.members.front().window_income_cv, 3)
                << fmt_double(0.0, 1);
  }
  bench::emit(cli, table,
              "Income proportionality and payday variance "
              "(expected: prop_error ~ 0 everywhere; pooled CV << solo CV)");

  // Hopping incentive: payout per share by round age.
  Table hop({"scheme", "age 0-25%", "25-50%", "50-75%", "75-100%", "100-125%",
             ">125%"});
  for (const SchemeKind kind :
       {SchemeKind::kProportional, SchemeKind::kPps, SchemeKind::kPplns}) {
    Rng rng(opts.seed + 1);
    const auto profile = hopping_profile(kind, opts, 6, rng, 8000);
    auto scheme = make_scheme(kind, opts.reward_per_block, opts.shares_per_block);
    auto row = hop.row();
    row << scheme->name();
    for (const double v : profile) row << fmt_double(v, 3);
  }
  bench::emit(cli, hop,
              "Per-share expected payout by round age "
              "(expected: proportional decays — hoppable; PPS/PPLNS flat)",
              "hopping");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
