/// \file bench_convergence.cpp
/// Experiment E3 — Theorem 1: any better-response learning converges.
///
/// The paper proves convergence for arbitrary Π, C, F and arbitrary
/// improving paths; it reports no empirical speed numbers (the Discussion
/// names convergence speed as an open question). This harness measures it:
/// steps to equilibrium across system sizes, coin counts and schedulers,
/// with every small-instance run audited against the ordinal potential.
/// The grid is expanded and fanned across all cores by the sweep engine;
/// per-task seeding is a pure function of the root seed, so the table is
/// identical at any `--threads` value. `--compare-serial` additionally
/// replays the sweep on the 1-lane serial path, checks bit-identical
/// records, and reports the parallel speedup.
///
/// The headline row the paper's theory predicts: convergence rate 100%
/// everywhere, including the adversarial min-gain scheduler.

#include "bench_common.hpp"
#include "engine/sweep.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 10);
  const std::uint64_t seed0 = cli.get_u64("seed", 2021);
  const bool quick = cli.get_bool("quick", false);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const bool compare_serial = cli.get_bool("compare-serial", false);
  const bool compare_scan = cli.get_bool("compare-scan", false);

  bench::banner(
      "E3 — Theorem 1: convergence of arbitrary better-response learning",
      "Steps to pure equilibrium from a uniform random start; audit = ordinal-"
      "potential ascent verified every step (small instances). Sweep engine, "
      "deterministic per-task seeding.");

  engine::SweepSpec spec;
  spec.base.power_shape = PowerShape::kPareto;
  spec.base.power_lo = 10;
  spec.base.reward_lo = 100;
  spec.base.reward_hi = 100000;
  spec.miner_counts = quick ? std::vector<std::size_t>{10, 50}
                            : std::vector<std::size_t>{10, 30, 100, 300, 1000};
  spec.coin_counts = quick ? std::vector<std::size_t>{3}
                           : std::vector<std::size_t>{2, 5, 10};
  spec.scheduler_kinds = {SchedulerKind::kRandomMove, SchedulerKind::kRoundRobin,
                          SchedulerKind::kMaxGain, SchedulerKind::kMinGain};
  spec.trials = trials;
  spec.root_seed = seed0;
  // The audit is O(|C| log |C|) per step; keep it for small runs.
  spec.audit_max_miners = 100;
  spec.filter = [trials](const engine::SweepTask& task) {
    const std::size_t n = task.game_spec.num_miners;
    const std::size_t coins = task.game_spec.num_coins;
    const SchedulerKind kind = task.scheduler;
    // The adversarial min-gain rule's path length explodes with n and |C|
    // (measured: ~32k steps at n=300, |C|=10 — see EXPERIMENTS.md); its
    // n≤100 rows already exhibit the blow-up, so cap it there. At n=1000
    // the other global-scan rules are likewise sampled on the two-coin
    // column only — the scaling trend is established by then.
    if (kind == SchedulerKind::kMinGain && (n > 100 && coins > 2)) return false;
    if (kind == SchedulerKind::kMinGain && n > 300) return false;
    if (n >= 1000 && coins > 2 && kind != SchedulerKind::kRoundRobin) {
      return false;
    }
    // Large instances run fewer replicates.
    const std::size_t row_trials =
        (n >= 300) ? std::max<std::size_t>(3, trials / 3) : trials;
    return task.trial < row_trials;
  };

  const engine::SweepRunner runner({threads});
  bench::Stopwatch watch;
  const engine::SweepResult result = runner.run(spec);
  const double parallel_ms = watch.elapsed_ms();

  bench::emit(cli, result.to_table(),
              "Better-response learning: steps to equilibrium "
              "(theory: converged% == 100 in every row)");
  std::cout << "[" << result.records().size() << " scenarios on "
            << result.threads() << " lanes in " << fmt_double(parallel_ms, 1)
            << " ms]\n";

  // Emission cost of the sweep layer (the ROADMAP "sweep-record allocation
  // churn" item): labels are interned and CSV streams into one buffer, so
  // per-record emission cost stays flat rather than allocating a cell
  // string per column.
  {
    watch.restart();
    const std::string csv = result.to_csv(/*include_timing=*/false);
    const double csv_ms = watch.elapsed_ms();
    watch.restart();
    const std::string json = result.to_json(/*include_timing=*/false);
    const double json_ms = watch.elapsed_ms();
    const double n = static_cast<double>(result.records().size());
    Table emission({"records", "csv_bytes", "csv_ms", "json_bytes", "json_ms",
                    "us_per_record"});
    emission.row() << std::uint64_t(result.records().size())
                   << std::uint64_t(csv.size()) << fmt_double(csv_ms, 3)
                   << std::uint64_t(json.size()) << fmt_double(json_ms, 3)
                   << fmt_double(n > 0 ? 1000.0 * (csv_ms + json_ms) / n : 0.0,
                                 3);
    bench::emit(cli, emission,
                "Record emission (interned labels, streamed CSV)", "emission");
  }

  if (compare_serial) {
    engine::SweepRunner serial({/*threads=*/1});
    watch.restart();
    const engine::SweepResult serial_result = serial.run(spec);
    const double serial_ms = watch.elapsed_ms();
    const bool identical = result.deterministic_equals(serial_result);
    std::cout << "[serial replay: " << fmt_double(serial_ms, 1) << " ms; "
              << "speedup " << fmt_double(serial_ms / parallel_ms, 2) << "x; "
              << "records " << (identical ? "bit-identical" : "DIVERGED")
              << "]\n";
    if (!identical) return 1;
  }

  if (compare_scan) {
    // Replay the whole sweep on the from-scratch scan path. Records include
    // the per-trajectory move hash, so equality means every scenario's move
    // sequence — not just its endpoint — matched the index path.
    engine::SweepSpec scan_spec = spec;
    scan_spec.learning.use_index = false;
    watch.restart();
    const engine::SweepResult scan_result =
        engine::SweepRunner({threads}).run(scan_spec);
    const double scan_ms = watch.elapsed_ms();
    const bool identical = result.deterministic_equals(scan_result);
    std::cout << "[scan replay: " << fmt_double(scan_ms, 1) << " ms; "
              << "index speedup " << fmt_double(scan_ms / parallel_ms, 2)
              << "x; move sequences "
              << (identical ? "bit-identical" : "DIVERGED") << "]\n";
    if (!identical) return 1;
  }
  return result.all_converged() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
