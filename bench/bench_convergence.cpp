/// \file bench_convergence.cpp
/// Experiment E3 — Theorem 1: any better-response learning converges.
///
/// The paper proves convergence for arbitrary Π, C, F and arbitrary
/// improving paths; it reports no empirical speed numbers (the Discussion
/// names convergence speed as an open question). This harness measures it:
/// steps to equilibrium across system sizes, coin counts, power skews and
/// schedulers, with every run audited against the ordinal potential on
/// small instances. The headline row the paper's theory predicts:
/// convergence rate 100% everywhere, including the adversarial min-gain
/// scheduler.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "dynamics/learning.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 10);
  const std::uint64_t seed0 = cli.get_u64("seed", 2021);
  const bool quick = cli.get_bool("quick", false);

  bench::banner(
      "E3 — Theorem 1: convergence of arbitrary better-response learning",
      "Steps to pure equilibrium from a uniform random start; audit = ordinal-"
      "potential ascent verified every step (small instances).");

  const std::vector<std::size_t> miner_counts =
      quick ? std::vector<std::size_t>{10, 50}
            : std::vector<std::size_t>{10, 30, 100, 300, 1000};
  const std::vector<std::size_t> coin_counts = quick
                                                   ? std::vector<std::size_t>{3}
                                                   : std::vector<std::size_t>{2, 5, 10};
  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kRandomMove, SchedulerKind::kRoundRobin,
      SchedulerKind::kMaxGain, SchedulerKind::kMinGain};

  Table table({"miners", "coins", "scheduler", "trials", "converged%",
               "steps_mean", "steps_p95", "steps_max", "steps/n", "ms_mean"});

  for (const std::size_t n : miner_counts) {
    for (const std::size_t coins : coin_counts) {
      for (const SchedulerKind kind : kinds) {
        // The adversarial min-gain rule's path length explodes with n and
        // |C| (measured: ~32k steps at n=300, |C|=10 — see EXPERIMENTS.md);
        // its n≤100 rows already exhibit the blow-up, so cap it there. At
        // n=1000 the other global-scan rules are likewise sampled on the
        // two-coin column only, with fewer trials — the scaling trend is
        // established by then.
        if (kind == SchedulerKind::kMinGain && (n > 100 && coins > 2)) continue;
        if (kind == SchedulerKind::kMinGain && n > 300) continue;
        if (n >= 1000 && coins > 2 && kind != SchedulerKind::kRoundRobin) continue;
        const std::size_t row_trials =
            (n >= 300) ? std::max<std::size_t>(3, trials / 3) : trials;
        Sample steps;
        Sample wall;
        std::size_t converged = 0;
        for (std::size_t t = 0; t < row_trials; ++t) {
          Rng rng(seed0 + t * 7919 + n * 13 + coins);
          GameSpec spec;
          spec.num_miners = n;
          spec.num_coins = coins;
          spec.power_shape = PowerShape::kPareto;
          spec.power_lo = 10;
          spec.reward_lo = 100;
          spec.reward_hi = 100000;
          const Game game = random_game(spec, rng);
          const Configuration start = random_configuration(game, rng);
          auto sched = make_scheduler(kind, seed0 ^ (t * 104729));
          LearningOptions opts;
          // The audit is O(|C| log |C|) per step; keep it for small runs.
          opts.audit_potential = (n <= 100);
          bench::Stopwatch watch;
          const LearningResult result = run_learning(game, start, *sched, opts);
          wall.add(watch.elapsed_ms());
          steps.add(static_cast<double>(result.steps));
          if (result.converged) ++converged;
        }
        table.row() << std::uint64_t(n) << std::uint64_t(coins)
                    << scheduler_kind_name(kind) << std::uint64_t(row_trials)
                    << fmt_double(100.0 * static_cast<double>(converged) /
                                      static_cast<double>(row_trials),
                                  1)
                    << fmt_double(steps.mean(), 1)
                    << fmt_double(steps.percentile(95), 1)
                    << fmt_double(steps.max(), 0)
                    << fmt_double(steps.mean() / static_cast<double>(n), 2)
                    << fmt_double(wall.mean(), 2);
      }
    }
  }
  bench::emit(cli, table,
              "Better-response learning: steps to equilibrium "
              "(theory: converged% == 100 in every row)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
