/// \file bench_better_equilibrium.cpp
/// Experiment E5 — Section 4: there is often a better equilibrium.
///
/// On exhaustively-enumerable games satisfying Assumptions 1–2, the paper
/// proves (Prop 2) that every equilibrium leaves some miner strictly better
/// off in another equilibrium. This harness quantifies the landscape:
/// how many pure equilibria random games have, how often the assumptions
/// hold, that the welfare identity (Obs 3) holds at every equilibrium, and
/// the payoff gains on the table for the would-be manipulator.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "equilibrium/assumptions.hpp"
#include "equilibrium/better_equilibrium.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/welfare.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 60);
  const std::uint64_t seed0 = cli.get_u64("seed", 5);

  bench::banner(
      "E5 — Proposition 2: every equilibrium has a better one for someone",
      "Exhaustive equilibrium enumeration on random small games; assumption "
      "checks are exact (never-alone over all configurations, genericity "
      "over all subset sums).");

  Table table({"miners", "coins", "games", "A1&A2_ok", "avg_eqs",
               "multi_eq%", "prop2_holds%", "obs3_holds%", "avg_gain%",
               "max_gain%"});

  // Assumption 1 needs miners to clearly outnumber coins (|Π| ≥ 2|C| is
  // necessary); the sweep keeps that regime, adding a 3-coin row with a
  // proportionally larger population.
  for (const auto& [n, coins] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {5, 2}, {6, 2}, {8, 2}, {9, 3}}) {
    std::size_t assumption_ok = 0;
    std::size_t multi = 0;
    std::size_t prop2_ok = 0;
    std::size_t obs3_ok = 0;
    std::size_t obs3_total = 0;
    RunningStats eq_counts;
    Sample gains;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(seed0 + t * 6151 + n * 17 + coins);
      GameSpec spec;
      spec.num_miners = n;
      spec.num_coins = coins;
      spec.power_lo = 1;
      spec.power_hi = 60;
      // Balanced rewards keep the never-alone regime reachable: a coin an
      // order of magnitude lighter than the rest is rationally ignored.
      spec.reward_lo = 150;
      spec.reward_hi = 400;
      spec.distinct_powers = true;
      spec.sort_desc = true;
      const Game game = random_game(spec, rng);
      if (find_never_alone_violation(game).has_value()) continue;
      if (!is_generic(game)) continue;
      ++assumption_ok;

      const auto eqs = enumerate_equilibria(game);
      eq_counts.add(static_cast<double>(eqs.size()));
      // Observation 3 at every equilibrium.
      for (const auto& s : eqs) {
        ++obs3_total;
        if (globally_optimal(game, s)) ++obs3_ok;
      }
      if (eqs.size() < 2) continue;
      ++multi;
      bool all_have_better = true;
      for (const auto& s : eqs) {
        const auto witness = find_better_equilibrium(game, s, eqs);
        if (!witness) {
          all_have_better = false;
          continue;
        }
        const double gain =
            (witness->payoff_after - witness->payoff_before).to_double() /
            witness->payoff_before.to_double();
        gains.add(100.0 * gain);
      }
      if (all_have_better) ++prop2_ok;
    }
    const auto pct = [](std::size_t a, std::size_t b) {
      return b == 0 ? 0.0 : 100.0 * static_cast<double>(a) / static_cast<double>(b);
    };
    table.row() << std::uint64_t(n) << std::uint64_t(coins)
                << std::uint64_t(trials) << std::uint64_t(assumption_ok)
                << fmt_double(eq_counts.mean(), 2)
                << fmt_double(pct(multi, assumption_ok), 1)
                << fmt_double(pct(prop2_ok, multi), 1)
                << fmt_double(pct(obs3_ok, obs3_total), 1)
                << fmt_double(gains.empty() ? 0.0 : gains.mean(), 1)
                << fmt_double(gains.empty() ? 0.0 : gains.max(), 1);
  }
  bench::emit(cli, table,
              "Equilibrium landscape (theory: prop2_holds% == 100 and "
              "obs3_holds% == 100 whenever A1 & A2 hold)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
