/// \file bench_better_equilibrium.cpp
/// Experiment E5 — Section 4: there is often a better equilibrium.
///
/// On exhaustively-enumerable games satisfying Assumptions 1–2, the paper
/// proves (Prop 2) that every equilibrium leaves some miner strictly better
/// off in another equilibrium. This harness quantifies the landscape:
/// how many pure equilibria random games have, how often the assumptions
/// hold, that the welfare identity (Obs 3) holds at every equilibrium, and
/// the payoff gains on the table for the would-be manipulator.

#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/generators.hpp"
#include "engine/thread_pool.hpp"
#include "equilibrium/assumptions.hpp"
#include "equilibrium/better_equilibrium.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/welfare.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 60);
  const std::uint64_t seed0 = cli.get_u64("seed", 5);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const bool compare_scan = cli.has("compare-scan");

  bench::banner(
      "E5 — Proposition 2: every equilibrium has a better one for someone",
      "Exhaustive equilibrium enumeration on random small games; assumption "
      "checks are exact (never-alone over all configurations, genericity "
      "over all subset sums). Exhaustive walks run on the enumeration "
      "engine (--threads; --compare-scan replays them on the legacy "
      "walker and asserts identical results while timing both).");

  // The engine's exhaustive walks share one pool across all games.
  engine::ThreadPool pool(engine::ThreadPool::workers_for(
      engine::ThreadPool::resolve_lanes(threads)));
  EnumerationOptions engine_opts;
  engine_opts.pool = &pool;
  bench::Stopwatch split;
  double engine_ms = 0.0;
  double scan_ms = 0.0;
  bool identical = true;

  Table table({"miners", "coins", "games", "A1&A2_ok", "avg_eqs",
               "multi_eq%", "prop2_holds%", "obs3_holds%", "avg_gain%",
               "max_gain%"});

  // Assumption 1 needs miners to clearly outnumber coins (|Π| ≥ 2|C| is
  // necessary); the sweep keeps that regime, adding a 3-coin row with a
  // proportionally larger population.
  for (const auto& [n, coins] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {5, 2}, {6, 2}, {8, 2}, {9, 3}}) {
    std::size_t assumption_ok = 0;
    std::size_t multi = 0;
    std::size_t prop2_ok = 0;
    std::size_t obs3_ok = 0;
    std::size_t obs3_total = 0;
    RunningStats eq_counts;
    Sample gains;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(seed0 + t * 6151 + n * 17 + coins);
      GameSpec spec;
      spec.num_miners = n;
      spec.num_coins = coins;
      spec.power_lo = 1;
      spec.power_hi = 60;
      // Balanced rewards keep the never-alone regime reachable: a coin an
      // order of magnitude lighter than the rest is rationally ignored.
      spec.reward_lo = 150;
      spec.reward_hi = 400;
      spec.distinct_powers = true;
      spec.sort_desc = true;
      const Game game = random_game(spec, rng);
      split.restart();
      const bool never_alone_violated =
          find_never_alone_violation(game, engine_opts).has_value();
      engine_ms += split.elapsed_ms();
      if (compare_scan) {
        split.restart();
        const bool scan_violated = find_never_alone_violation_scan(game).has_value();
        scan_ms += split.elapsed_ms();
        identical = identical && scan_violated == never_alone_violated;
      }
      if (never_alone_violated) continue;
      if (!is_generic(game)) continue;
      ++assumption_ok;

      split.restart();
      const auto eqs = enumerate_equilibria(game, engine_opts);
      engine_ms += split.elapsed_ms();
      if (compare_scan) {
        split.restart();
        const auto scan_eqs = enumerate_equilibria_scan(game);
        scan_ms += split.elapsed_ms();
        identical = identical && scan_eqs == eqs;
      }
      eq_counts.add(static_cast<double>(eqs.size()));
      // Observation 3 at every equilibrium.
      for (const auto& s : eqs) {
        ++obs3_total;
        if (globally_optimal(game, s)) ++obs3_ok;
      }
      if (eqs.size() < 2) continue;
      ++multi;
      bool all_have_better = true;
      for (const auto& s : eqs) {
        const auto witness = find_better_equilibrium(game, s, eqs);
        if (!witness) {
          all_have_better = false;
          continue;
        }
        const double gain =
            (witness->payoff_after - witness->payoff_before).to_double() /
            witness->payoff_before.to_double();
        gains.add(100.0 * gain);
      }
      if (all_have_better) ++prop2_ok;
    }
    const auto pct = [](std::size_t a, std::size_t b) {
      return b == 0 ? 0.0 : 100.0 * static_cast<double>(a) / static_cast<double>(b);
    };
    table.row() << std::uint64_t(n) << std::uint64_t(coins)
                << std::uint64_t(trials) << std::uint64_t(assumption_ok)
                << fmt_double(eq_counts.mean(), 2)
                << fmt_double(pct(multi, assumption_ok), 1)
                << fmt_double(pct(prop2_ok, multi), 1)
                << fmt_double(pct(obs3_ok, obs3_total), 1)
                << fmt_double(gains.empty() ? 0.0 : gains.mean(), 1)
                << fmt_double(gains.empty() ? 0.0 : gains.max(), 1);
  }
  bench::emit(cli, table,
              "Equilibrium landscape (theory: prop2_holds% == 100 and "
              "obs3_holds% == 100 whenever A1 & A2 hold)");
  std::cout << "[exhaustive walks on the enumeration engine: "
            << fmt_double(engine_ms, 1) << " ms]\n";
  if (compare_scan) {
    std::cout << "[legacy scan replay: " << fmt_double(scan_ms, 1) << " ms => "
              << fmt_double(scan_ms / engine_ms, 1) << "x, results "
              << (identical ? "identical" : "MISMATCH") << "]\n";
    return identical ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
