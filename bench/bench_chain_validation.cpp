/// \file bench_chain_validation.cpp
/// Experiment E9 — grounding the model: proof-of-work reward shares and
/// difficulty dynamics.
///
/// The paper's model assumes each coin divides its reward in proportion to
/// invested power. Part A validates that abstraction from first principles:
/// in a discrete-event block-race simulation, each miner's realized fiat
/// share converges to its power share as the horizon grows (law of large
/// numbers over block lotteries). Part B shows the migration equilibrium
/// of the induced game emerging from chain-level dynamics. Part C exhibits
/// what the abstraction hides: the EDA difficulty rule plus myopic
/// profitability-chasers yields the 2017 hashrate sawtooth (Figure 1b's
/// fine structure), while game-semantics miners settle.

#include <cmath>

#include "bench_common.hpp"
#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  using namespace goc::chain;
  const Cli cli(argc, argv);
  const std::uint64_t seed0 = cli.get_u64("seed", 9);

  bench::banner("E9 — chain-level validation of the proportional-reward model",
                "Exponential block races with power-proportional winner "
                "lotteries; difficulty adjustment per real protocols.");

  // Part A: realized vs predicted reward share, by horizon.
  Table share({"horizon_days", "blocks", "share_MAE", "largest_realized",
               "largest_power_share"});
  for (const double days : {2.0, 10.0, 60.0, 240.0}) {
    std::vector<ChainSpec> chains;
    chains.push_back(ChainSpec{"solo", 600.0, 1.0 / 6.0, 10.0,
                               std::make_unique<FixedWindowRetarget>(
                                   10, 1.0 / 6.0)});
    ChainSimOptions opts;
    opts.duration_hours = days * 24.0;
    opts.policy = MinerPolicy::kStatic;
    opts.seed = seed0;
    std::vector<double> powers{100.0, 50.0, 30.0, 20.0};
    MultiChainSimulator sim(powers, std::move(chains), opts);
    const auto result = sim.run();
    double total = 0.0;
    for (const double r : result.miner_rewards_fiat) total += r;
    share.row() << fmt_double(days, 0) << result.blocks_per_chain[0]
                << fmt_double(result.share_prediction_mae, 4)
                << fmt_double(total > 0 ? result.miner_rewards_fiat[0] / total
                                        : 0.0,
                              3)
                << fmt_double(0.5, 3);
  }
  bench::emit(cli, share,
              "Part A — reward share vs power share "
              "(theory: MAE -> 0 as horizon grows)",
              "share");

  // Part B: migration equilibrium from chain dynamics.
  Table split({"weights", "predicted_heavy_share", "simulated_heavy_share"});
  for (const auto& [heavy, light] :
       std::vector<std::pair<double, double>>{{30, 10}, {20, 20}, {50, 10}}) {
    std::vector<ChainSpec> chains;
    chains.push_back(ChainSpec{"heavy", 600.0, 1.0 / 6.0, heavy,
                               std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0)});
    chains.push_back(ChainSpec{"light", 600.0, 1.0 / 6.0, light,
                               std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0)});
    ChainSimOptions opts;
    opts.duration_hours = 24.0 * 20;
    opts.policy = MinerPolicy::kBetterResponse;
    opts.reevaluation_fraction = 0.5;
    opts.seed = seed0 + 1;
    std::vector<double> powers(16, 10.0);
    MultiChainSimulator sim(std::move(powers), std::move(chains), opts);
    const auto result = sim.run();
    const auto& last = result.timeline.back();
    const double total = last.hashrate[0] + last.hashrate[1];
    split.row() << (fmt_double(heavy, 0) + ":" + fmt_double(light, 0))
                << fmt_double(heavy / (heavy + light), 3)
                << fmt_double(last.hashrate[0] / total, 3);
  }
  bench::emit(cli, split,
              "Part B — hashrate split at migration equilibrium "
              "(theory: proportional to coin weights)",
              "split");

  // Part C: EDA sawtooth vs game-semantics stability.
  Table churn({"policy", "migrations", "late_share_changes", "bch_share_sd%"});
  for (const MinerPolicy policy :
       {MinerPolicy::kMyopicDifficulty, MinerPolicy::kBetterResponse}) {
    std::vector<ChainSpec> chains;
    chains.push_back(ChainSpec{"btc", 20.0, 1.0 / 6.0, 60.0,
                               std::make_unique<SmaRetarget>(20, 1.0 / 6.0, 1.2)});
    chains.push_back(ChainSpec{"bch", 20.0, 1.0 / 6.0, 10.0,
                               std::make_unique<EmergencyAdjuster>(
                                   20, 1.0 / 6.0, 0.5, 0.20)});
    ChainSimOptions opts;
    opts.duration_hours = 24.0 * 20;
    opts.policy = policy;
    opts.reevaluation_fraction = 0.5;
    opts.seed = seed0 + 2;
    std::vector<double> powers(12, 10.0);
    MultiChainSimulator sim(std::move(powers), std::move(chains), opts);
    const auto result = sim.run();
    std::size_t late_changes = 0;
    double mean = 0.0, m2 = 0.0;
    std::size_t count = 0;
    for (std::size_t i = result.timeline.size() / 2;
         i < result.timeline.size(); ++i) {
      const auto& p = result.timeline[i];
      const double bch_share = p.hashrate[1] / (p.hashrate[0] + p.hashrate[1]);
      ++count;
      const double delta = bch_share - mean;
      mean += delta / static_cast<double>(count);
      m2 += delta * (bch_share - mean);
      if (i + 1 < result.timeline.size() &&
          std::fabs(result.timeline[i + 1].hashrate[1] - p.hashrate[1]) > 1e-9) {
        ++late_changes;
      }
    }
    const double sd =
        count > 1 ? std::sqrt(m2 / static_cast<double>(count - 1)) : 0.0;
    churn.row() << (policy == MinerPolicy::kMyopicDifficulty
                        ? "myopic (reward/difficulty)"
                        : "game better-response")
                << result.migrations << std::uint64_t(late_changes)
                << fmt_double(100.0 * sd, 2);
  }
  bench::emit(cli, churn,
              "Part C — EDA sawtooth: myopic chasers churn forever, "
              "game-semantics miners settle",
              "churn");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
