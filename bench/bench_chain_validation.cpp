/// \file bench_chain_validation.cpp
/// Experiment E9 — grounding the model: proof-of-work reward shares and
/// difficulty dynamics.
///
/// The paper's model assumes each coin divides its reward in proportion to
/// invested power. Part A validates that abstraction from first principles
/// as a Monte Carlo batch: R independent block-race replicas per horizon,
/// fanned across the thread pool by the trajectory engine, each miner's
/// realized fiat share converging to its power share (law of large numbers
/// over block lotteries) — now with the variance quantified (mean ± 95% CI
/// across replicas, bit-identical at any `--threads`). Part B shows the
/// migration equilibrium of the induced game emerging from chain-level
/// dynamics. Part C exhibits what the abstraction hides: the EDA
/// difficulty rule plus myopic profitability-chasers yields the 2017
/// hashrate sawtooth (Figure 1b's fine structure), while game-semantics
/// miners settle.
///
/// `--compare-scan` replays every Part B/C scenario (and one Part A
/// replica per horizon) on the legacy `chain::EventQueue` engine and
/// requires bit-identical trajectories against the flat event core.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "engine/sweep.hpp"
#include "sim/trajectory.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  using namespace goc::chain;
  const Cli cli(argc, argv);
  const std::uint64_t seed0 = cli.get_u64("seed", 9);
  const bool quick = cli.get_bool("quick", false);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const bool compare_scan = cli.get_bool("compare-scan", false);
  const std::size_t replicas = cli.get_u64("replicas", quick ? 4 : 16);
  // --adaptive: replace the fixed replica count with a CI-driven stopping
  // rule on share_mae — replicas is then the floor, 8x replicas the cap.
  const bool adaptive = cli.get_bool("adaptive", false);

  bench::banner("E9 — chain-level validation of the proportional-reward "
                "model",
                "Exponential block races with power-proportional winner "
                "lotteries; difficulty adjustment per real protocols. "
                "Part A is a Monte Carlo batch (mean ± 95% CI over " +
                    std::to_string(replicas) + " replicas).");

  bool scans_identical = true;
  // Builds the Part A single-chain validation scenario.
  const auto make_validation = [&](double days, sim::EngineKind engine,
                                   std::uint64_t seed) {
    std::vector<ChainSpec> chains;
    chains.push_back(ChainSpec{"solo", 600.0, 1.0 / 6.0, 10.0,
                               std::make_unique<FixedWindowRetarget>(
                                   10, 1.0 / 6.0)});
    ChainSimOptions opts;
    opts.duration_hours = days * 24.0;
    opts.policy = MinerPolicy::kStatic;
    opts.seed = seed;
    opts.engine = engine;
    opts.record_timeline = false;
    return MultiChainSimulator({100.0, 50.0, 30.0, 20.0}, std::move(chains),
                               opts);
  };

  // Part A: realized vs predicted reward share, by horizon — batched.
  Table share({"horizon_days", "replicas", "stop", "blocks_mean",
               "share_MAE_mean", "share_MAE_ci95", "largest_realized_mean",
               "largest_power_share"});
  for (const double days : {2.0, 10.0, 60.0, 240.0}) {
    sim::TrajectoryBatchOptions batch;
    batch.replicas = replicas;
    batch.root_seed = seed0 + static_cast<std::uint64_t>(days);
    batch.threads = threads;
    if (adaptive) {
      sim::StoppingRule rule;
      rule.metric = "share_mae";
      rule.tolerance = 0.25;  // 25% relative half-width on the MAE trend
      rule.relative = true;
      rule.min_replicas = std::max<std::size_t>(2, replicas);
      rule.max_replicas = 8 * std::max<std::size_t>(2, replicas);
      rule.wave = std::max<std::size_t>(2, replicas);
      batch.stopping = rule;
    }
    // --stop-* / --checkpoint override the --adaptive preset; the horizon
    // suffix keeps the four studies from sharing one checkpoint file
    // (their root seeds differ, so a shared file would refuse to resume).
    bench::apply_batch_cli(cli, batch);
    if (batch.checkpoint.has_value()) {
      batch.checkpoint->path +=
          "." + std::to_string(static_cast<int>(days)) + "d";
    }
    const sim::TrajectoryBatchResult result = sim::run_trajectory_batch(
        {"blocks", "share_mae", "largest_realized"}, batch,
        [&](std::size_t, std::uint64_t seed) {
          MultiChainSimulator sim =
              make_validation(days, sim::EngineKind::kFlat, seed);
          const ChainSimResult r = sim.run();
          double total = 0.0;
          for (const double v : r.miner_rewards_fiat) total += v;
          return std::vector<double>{
              static_cast<double>(r.blocks_per_chain[0]),
              r.share_prediction_mae,
              total > 0.0 ? r.miner_rewards_fiat[0] / total : 0.0};
        });
    share.row() << fmt_double(days, 0)
                << (fmt_group(result.replicas()) + "/" +
                    fmt_group(result.replicas_requested()))
                << sim::stop_reason_name(result.stop_reason())
                << fmt_double(result.summary("blocks").mean, 0)
                << fmt_double(result.summary("share_mae").mean, 4)
                << fmt_double(result.summary("share_mae").ci95_halfwidth, 4)
                << fmt_double(result.summary("largest_realized").mean, 3)
                << fmt_double(0.5, 3);
    if (compare_scan) {
      // One replica per horizon replayed on the legacy engine.
      const std::uint64_t seed = engine::task_seed(batch.root_seed, 0, 0);
      MultiChainSimulator flat =
          make_validation(days, sim::EngineKind::kFlat, seed);
      MultiChainSimulator legacy =
          make_validation(days, sim::EngineKind::kLegacy, seed);
      scans_identical =
          scans_identical && sim::chain_result_hash(flat.run()) ==
                                 sim::chain_result_hash(legacy.run());
    }
  }
  bench::emit(cli, share,
              "Part A — reward share vs power share, Monte Carlo "
              "(theory: MAE -> 0 as horizon grows)",
              "share");

  // Runs a Part B/C scenario; with --compare-scan, also on the legacy
  // engine, requiring bit-identical trajectories.
  const auto run_checked = [&](auto make_sim) {
    MultiChainSimulator flat = make_sim(sim::EngineKind::kFlat);
    ChainSimResult result = flat.run();
    if (compare_scan) {
      MultiChainSimulator legacy = make_sim(sim::EngineKind::kLegacy);
      scans_identical = scans_identical &&
                        sim::chain_result_hash(result) ==
                            sim::chain_result_hash(legacy.run());
    }
    return result;
  };

  // Part B: migration equilibrium from chain dynamics.
  Table split({"weights", "predicted_heavy_share", "simulated_heavy_share"});
  for (const auto& [heavy, light] :
       std::vector<std::pair<double, double>>{{30, 10}, {20, 20}, {50, 10}}) {
    const auto result = run_checked([&, heavy = heavy,
                                     light = light](sim::EngineKind engine) {
      std::vector<ChainSpec> chains;
      chains.push_back(
          ChainSpec{"heavy", 600.0, 1.0 / 6.0, heavy,
                    std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0)});
      chains.push_back(
          ChainSpec{"light", 600.0, 1.0 / 6.0, light,
                    std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0)});
      ChainSimOptions opts;
      opts.duration_hours = 24.0 * 20;
      opts.policy = MinerPolicy::kBetterResponse;
      opts.reevaluation_fraction = 0.5;
      opts.seed = seed0 + 1;
      opts.engine = engine;
      std::vector<double> powers(16, 10.0);
      return MultiChainSimulator(std::move(powers), std::move(chains), opts);
    });
    const auto& last = result.timeline.back();
    const double total = last.hashrate[0] + last.hashrate[1];
    split.row() << (fmt_double(heavy, 0) + ":" + fmt_double(light, 0))
                << fmt_double(heavy / (heavy + light), 3)
                << fmt_double(last.hashrate[0] / total, 3);
  }
  bench::emit(cli, split,
              "Part B — hashrate split at migration equilibrium "
              "(theory: proportional to coin weights)",
              "split");

  // Part C: EDA sawtooth vs game-semantics stability.
  Table churn({"policy", "migrations", "late_share_changes", "bch_share_sd%"});
  for (const MinerPolicy policy :
       {MinerPolicy::kMyopicDifficulty, MinerPolicy::kBetterResponse}) {
    const auto result = run_checked([&](sim::EngineKind engine) {
      std::vector<ChainSpec> chains;
      chains.push_back(
          ChainSpec{"btc", 20.0, 1.0 / 6.0, 60.0,
                    std::make_unique<SmaRetarget>(20, 1.0 / 6.0, 1.2)});
      chains.push_back(ChainSpec{"bch", 20.0, 1.0 / 6.0, 10.0,
                                 std::make_unique<EmergencyAdjuster>(
                                     20, 1.0 / 6.0, 0.5, 0.20)});
      ChainSimOptions opts;
      opts.duration_hours = 24.0 * 20;
      opts.policy = policy;
      opts.reevaluation_fraction = 0.5;
      opts.seed = seed0 + 2;
      opts.engine = engine;
      std::vector<double> powers(12, 10.0);
      return MultiChainSimulator(std::move(powers), std::move(chains), opts);
    });
    std::size_t late_changes = 0;
    double mean = 0.0, m2 = 0.0;
    std::size_t count = 0;
    for (std::size_t i = result.timeline.size() / 2;
         i < result.timeline.size(); ++i) {
      const auto& p = result.timeline[i];
      const double bch_share = p.hashrate[1] / (p.hashrate[0] + p.hashrate[1]);
      ++count;
      const double delta = bch_share - mean;
      mean += delta / static_cast<double>(count);
      m2 += delta * (bch_share - mean);
      if (i + 1 < result.timeline.size() &&
          std::fabs(result.timeline[i + 1].hashrate[1] - p.hashrate[1]) >
              1e-9) {
        ++late_changes;
      }
    }
    const double sd =
        count > 1 ? std::sqrt(m2 / static_cast<double>(count - 1)) : 0.0;
    churn.row() << (policy == MinerPolicy::kMyopicDifficulty
                        ? "myopic (reward/difficulty)"
                        : "game better-response")
                << result.migrations << std::uint64_t(late_changes)
                << fmt_double(100.0 * sd, 2);
  }
  bench::emit(cli, churn,
              "Part C — EDA sawtooth: myopic chasers churn forever, "
              "game-semantics miners settle",
              "churn");

  if (compare_scan) {
    std::cout << "[legacy replay: trajectories "
              << (scans_identical ? "bit-identical" : "DIVERGED") << "]\n";
    if (!scans_identical) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
