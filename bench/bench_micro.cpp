/// \file bench_micro.cpp
/// Experiment E10 — core-operation microbenchmarks and the hot-loop
/// headline: better-response learning steps/sec, scan path vs the
/// incremental BestResponseIndex.
///
/// Not a paper artifact; these keep the exact-arithmetic core honest. The
/// headline table runs the same 1000-miner × 10-coin random-move learning
/// trajectory through both scheduler paths and reports the speedup; the
/// `--compare-scan` check (on by default) asserts the two paths picked
/// bit-identical move sequences (steps, FNV move hash, final
/// configuration) and the binary exits nonzero if they diverged.
///
/// Self-contained harness (no google-benchmark): supports `--quick`,
/// `--json=<base>` / `--csv=<base>`, `--miners/--coins/--steps/--seed`,
/// `--compare-scan=false`.

#include <functional>

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "core/moves.hpp"
#include "dynamics/best_response_index.hpp"
#include "dynamics/learning.hpp"
#include "potential/list_potential.hpp"

namespace {

using namespace goc;

Game make_game(std::size_t miners, std::size_t coins, std::uint64_t seed) {
  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.power_shape = PowerShape::kPareto;
  spec.power_lo = 10;
  spec.reward_lo = 100;
  spec.reward_hi = 100000;
  return random_game(spec, rng);
}

/// Times `op` over `iters` iterations and appends an ops-table row.
void time_op(Table& table, const std::string& name, std::size_t iters,
             const std::function<void()>& op) {
  bench::Stopwatch watch;
  for (std::size_t i = 0; i < iters; ++i) op();
  const double ms = watch.elapsed_ms();
  table.row() << name << std::uint64_t(iters) << fmt_double(ms, 2)
              << fmt_double(ms * 1e6 / static_cast<double>(iters), 1);
}

struct PathRun {
  LearningResult learned;
  double ms = 0.0;
};

PathRun run_path(const Game& game, const Configuration& start,
                 std::uint64_t scheduler_seed, bool use_index,
                 std::uint64_t max_steps) {
  auto scheduler = make_scheduler(SchedulerKind::kRandomMove, scheduler_seed);
  LearningOptions options;
  options.use_index = use_index;
  options.max_steps = max_steps;
  bench::Stopwatch watch;
  LearningResult learned = run_learning(game, start, *scheduler, options);
  return PathRun{std::move(learned), watch.elapsed_ms()};
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::size_t miners = cli.get_u64("miners", quick ? 200 : 1000);
  const std::size_t coins = cli.get_u64("coins", quick ? 6 : 10);
  const std::uint64_t steps = cli.get_u64("steps", quick ? 200 : 600);
  const std::uint64_t seed = cli.get_u64("seed", 42);
  const bool compare_scan = cli.get_bool("compare-scan", true);

  bench::banner(
      "E10 — core-op microbenchmarks + hot-loop scan-vs-index headline",
      "Exact-arithmetic core operations, then random-move learning steps/sec "
      "through the scan path vs the incremental BestResponseIndex on the "
      "same trajectory.");

  // ------------------------------------------------------- core operations
  const std::size_t base_iters = quick ? 20000 : 200000;
  Table ops({"op", "iters", "total_ms", "ns_per_op"});
  {
    const Game game = make_game(1000, 8, seed);
    Rng rng(1);
    Configuration s = random_configuration(game, rng);
    std::uint32_t p = 0;
    time_op(ops, "payoff_eval(n=1000)", base_iters, [&] {
      volatile bool sink = game.payoff(s, MinerId(p)).is_positive();
      (void)sink;
      p = (p + 1) % 1000;
    });
    p = 0;
    time_op(ops, "best_response_scan(n=1000,|C|=8)", base_iters / 50, [&] {
      volatile bool sink = best_response(game, s, MinerId(p)).has_value();
      (void)sink;
      p = (p + 1) % 1000;
    });
    time_op(ops, "index_build(n=1000,|C|=8)", quick ? 20 : 200, [&] {
      dynamics::BestResponseIndex index(game, s);
      volatile bool sink = index.at_equilibrium();
      (void)sink;
    });
    p = 0;
    time_op(ops, "move_apply(n=1000)", base_iters, [&] {
      const CoinId to(
          static_cast<std::uint32_t>((s.of(MinerId(p)).value + 1) % 8));
      s.move(MinerId(p), to);
      p = (p + 1) % 1000;
    });
    time_op(ops, "potential_key(n=1000,|C|=8)", quick ? 200 : 2000, [&] {
      volatile bool sink = potential_key(game, s).entries().empty();
      (void)sink;
    });
  }
  {
    const Rational a(123456789, 987654321);
    const Rational b(123456788, 987654321);
    time_op(ops, "rational_cmp_fast", base_iters, [&] {
      volatile bool sink = a < b;
      (void)sink;
    });
    const Rational big_a = Rational::from_parts(
        (static_cast<i128>(1) << 100) + 1, (static_cast<i128>(1) << 99) + 7);
    const Rational big_b = Rational::from_parts(
        (static_cast<i128>(1) << 100) + 3, (static_cast<i128>(1) << 99) + 5);
    time_op(ops, "rational_cmp_huge", base_iters / 10, [&] {
      volatile bool sink = big_a < big_b;
      (void)sink;
    });
  }
  bench::emit(cli, ops, "Core operations", "ops");

  // ------------------------------------------------- hot-loop headline
  const Game game = make_game(miners, coins, seed);
  Rng rng(seed ^ 0x5eed);
  const Configuration start = random_configuration(game, rng);
  const std::uint64_t scheduler_seed = seed * 7919 + 1;

  const PathRun indexed =
      run_path(game, start, scheduler_seed, /*use_index=*/true, steps);
  const PathRun scan =
      run_path(game, start, scheduler_seed, /*use_index=*/false, steps);

  const auto steps_per_sec = [](const PathRun& r) {
    return r.ms > 0.0 ? 1e3 * static_cast<double>(r.learned.steps) / r.ms : 0.0;
  };
  Table hot({"path", "miners", "coins", "steps", "ms", "steps_per_sec",
             "speedup"});
  const double scan_rate = steps_per_sec(scan);
  const double index_rate = steps_per_sec(indexed);
  hot.row() << "scan" << std::uint64_t(miners) << std::uint64_t(coins)
            << std::uint64_t(scan.learned.steps) << fmt_double(scan.ms, 1)
            << fmt_double(scan_rate, 0) << fmt_double(1.0, 2);
  hot.row() << "index" << std::uint64_t(miners) << std::uint64_t(coins)
            << std::uint64_t(indexed.learned.steps)
            << fmt_double(indexed.ms, 1) << fmt_double(index_rate, 0)
            << fmt_double(scan_rate > 0.0 ? index_rate / scan_rate : 0.0, 2);
  bench::emit(cli, hot,
              "Random-move learning hot loop (same trajectory, both paths; "
              "acceptance: index ≥ 5x scan at n=1000, |C|=10)",
              "hotloop");

  if (compare_scan) {
    const bool identical =
        scan.learned.steps == indexed.learned.steps &&
        scan.learned.move_hash == indexed.learned.move_hash &&
        scan.learned.final_configuration == indexed.learned.final_configuration;
    std::cout << "[compare-scan: move sequences "
              << (identical ? "bit-identical" : "DIVERGED") << " over "
              << scan.learned.steps << " steps]\n";
    if (!identical) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
