/// \file bench_micro.cpp
/// Experiment E10 — core-operation microbenchmarks (google-benchmark).
///
/// Not a paper artifact; these keep the exact-arithmetic core honest:
/// payoff evaluation, better-response scans, move application, and
/// ordinal-potential key construction across system sizes, plus the
/// Rational comparison fast/slow paths.

#include <benchmark/benchmark.h>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "potential/list_potential.hpp"

namespace {

using namespace goc;

Game make_game(std::size_t miners, std::size_t coins) {
  Rng rng(42);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.power_shape = PowerShape::kPareto;
  spec.power_lo = 10;
  spec.reward_lo = 100;
  spec.reward_hi = 100000;
  return random_game(spec, rng);
}

void BM_PayoffEval(benchmark::State& state) {
  const Game game = make_game(static_cast<std::size_t>(state.range(0)), 8);
  Rng rng(1);
  const Configuration s = random_configuration(game, rng);
  std::uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.payoff(s, MinerId(p)));
    p = (p + 1) % static_cast<std::uint32_t>(game.num_miners());
  }
}
BENCHMARK(BM_PayoffEval)->Arg(100)->Arg(1000);

void BM_BetterResponseScan(benchmark::State& state) {
  const Game game = make_game(1000, static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  const Configuration s = random_configuration(game, rng);
  std::uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_response(game, s, MinerId(p)));
    p = (p + 1) % 1000;
  }
}
BENCHMARK(BM_BetterResponseScan)->Arg(2)->Arg(8)->Arg(32);

void BM_MoveApply(benchmark::State& state) {
  const Game game = make_game(static_cast<std::size_t>(state.range(0)), 8);
  Rng rng(3);
  Configuration s = random_configuration(game, rng);
  std::uint32_t p = 0;
  for (auto _ : state) {
    const CoinId to(
        static_cast<std::uint32_t>((s.of(MinerId(p)).value + 1) % 8));
    s.move(MinerId(p), to);
    benchmark::DoNotOptimize(s.mass(to));
    p = (p + 1) % static_cast<std::uint32_t>(game.num_miners());
  }
}
BENCHMARK(BM_MoveApply)->Arg(100)->Arg(1000);

void BM_PotentialKey(benchmark::State& state) {
  const Game game = make_game(1000, static_cast<std::size_t>(state.range(0)));
  Rng rng(4);
  const Configuration s = random_configuration(game, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(potential_key(game, s));
  }
}
BENCHMARK(BM_PotentialKey)->Arg(2)->Arg(8)->Arg(32);

void BM_RationalCompareFast(benchmark::State& state) {
  const Rational a(123456789, 987654321);
  const Rational b(123456788, 987654321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_RationalCompareFast);

void BM_RationalCompareHuge(benchmark::State& state) {
  // Cross products exceed 128 bits → continued-fraction path.
  const Rational a = Rational::from_parts((static_cast<i128>(1) << 100) + 1,
                                          (static_cast<i128>(1) << 99) + 7);
  const Rational b = Rational::from_parts((static_cast<i128>(1) << 100) + 3,
                                          (static_cast<i128>(1) << 99) + 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_RationalCompareHuge);

void BM_FullLearningRun(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const Game game = make_game(n, 8);
    Rng rng(5);
    Configuration s = random_configuration(game, rng);
    state.ResumeTiming();
    // Inline lexicographic-style loop to avoid timing scheduler allocation.
    for (;;) {
      bool moved = false;
      for (std::uint32_t p = 0; p < n && !moved; ++p) {
        if (const auto to = best_response(game, s, MinerId(p))) {
          s.move(MinerId(p), *to);
          moved = true;
        }
      }
      if (!moved) break;
    }
    benchmark::DoNotOptimize(s.occupied_coins());
  }
}
BENCHMARK(BM_FullLearningRun)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
