/// \file bench_exact_potential.cpp
/// Experiment E4 — Proposition 1: no exact potential.
///
/// Reproduces the paper's worked 2×2 counterexample — the four
/// configurations, their payoffs, and the nonzero improvement sum around
/// the deviation 4-cycle — then scans random games to show the obstruction
/// is generic for unequal powers and vanishes for equal powers (where the
/// game degenerates to a congestion game).

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "potential/exact_potential.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 200);
  const std::uint64_t seed0 = cli.get_u64("seed", 4);

  bench::banner("E4 — Proposition 1: the game has no exact potential",
                "Worked example: m=(2,1), F≡1, two coins; then a random-game "
                "scan for 4-cycle obstructions (Monderer–Shapley).");

  // The paper's table of four configurations and payoffs.
  const Game g = proposition1_game();
  const auto sys = g.system_ptr();
  const std::vector<std::pair<std::string, Configuration>> configs = {
      {"s1=<c1,c1>", Configuration(sys, {CoinId(0), CoinId(0)})},
      {"s2=<c1,c2>", Configuration(sys, {CoinId(0), CoinId(1)})},
      {"s3=<c2,c2>", Configuration(sys, {CoinId(1), CoinId(1)})},
      {"s4=<c2,c1>", Configuration(sys, {CoinId(1), CoinId(0)})}};
  Table worked({"config", "u_p1", "u_p2"});
  for (const auto& [name, s] : configs) {
    worked.row() << name << g.payoff(s, MinerId(0)).to_string()
                 << g.payoff(s, MinerId(1)).to_string();
  }
  bench::emit(cli, worked, "Worked example payoffs (paper Section 3)", "worked");

  const Rational cycle = four_cycle_sum(g, configs[0].second, MinerId(0),
                                        CoinId(1), MinerId(1), CoinId(1));
  std::cout << "4-cycle improvement sum = " << cycle.to_string()
            << "  (paper: 2/3 != 0 => no exact potential)\n\n";

  // Random scan: unequal powers vs equal powers.
  Table scan({"family", "games", "with_obstruction", "fraction"});
  const auto scan_family = [&](const std::string& label, bool distinct) {
    std::size_t with = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(seed0 + t * 31 + (distinct ? 1 : 0));
      GameSpec spec;
      spec.num_miners = 3;
      spec.num_coins = 2;
      spec.power_lo = 1;
      spec.power_hi = distinct ? 30 : 1;
      spec.power_shape = distinct ? PowerShape::kUniform : PowerShape::kEqual;
      spec.distinct_powers = distinct;
      const Game game = random_game(spec, rng);
      if (find_nonzero_four_cycle(game).has_value()) ++with;
    }
    scan.row() << label << std::uint64_t(trials) << std::uint64_t(with)
               << fmt_double(static_cast<double>(with) /
                                 static_cast<double>(trials),
                             3);
  };
  scan_family("distinct powers", true);
  scan_family("equal powers (congestion game)", false);
  bench::emit(cli, scan,
              "Exact-potential obstruction scan "
              "(theory: ~1.0 for distinct powers, 0.0 for equal)");
  return cycle.is_zero() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
