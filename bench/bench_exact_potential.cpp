/// \file bench_exact_potential.cpp
/// Experiment E4 — Proposition 1: no exact potential.
///
/// Reproduces the paper's worked 2×2 counterexample — the four
/// configurations, their payoffs, and the nonzero improvement sum around
/// the deviation 4-cycle — then scans random games to show the obstruction
/// is generic for unequal powers and vanishes for equal powers (where the
/// game degenerates to a congestion game).
///
/// The random scan runs on the sweep-engine treatment: the
/// (family × trial) grid fans across a ThreadPool (`--threads`, 0 = all
/// cores) with per-task seeds derived from the root seed and grid position
/// (`engine::task_seed`), and per-task results land in a pre-sized slot
/// vector — bit-identical tables at any thread count.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"
#include "potential/exact_potential.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 200);
  const std::uint64_t seed0 = cli.get_u64("seed", 4);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores
  const bool compare_scan = cli.has("compare-scan");

  bench::banner("E4 — Proposition 1: the game has no exact potential",
                "Worked example: m=(2,1), F≡1, two coins; then a random-game "
                "scan for 4-cycle obstructions (Monderer–Shapley). 4-cycle "
                "searches run on the enumeration engine (--compare-scan "
                "replays them on the legacy walker and asserts agreement).");

  // The paper's table of four configurations and payoffs.
  const Game g = proposition1_game();
  const auto sys = g.system_ptr();
  const std::vector<std::pair<std::string, Configuration>> configs = {
      {"s1=<c1,c1>", Configuration(sys, {CoinId(0), CoinId(0)})},
      {"s2=<c1,c2>", Configuration(sys, {CoinId(0), CoinId(1)})},
      {"s3=<c2,c2>", Configuration(sys, {CoinId(1), CoinId(1)})},
      {"s4=<c2,c1>", Configuration(sys, {CoinId(1), CoinId(0)})}};
  Table worked({"config", "u_p1", "u_p2"});
  for (const auto& [name, s] : configs) {
    worked.row() << name << g.payoff(s, MinerId(0)).to_string()
                 << g.payoff(s, MinerId(1)).to_string();
  }
  bench::emit(cli, worked, "Worked example payoffs (paper Section 3)", "worked");

  const Rational cycle = four_cycle_sum(g, configs[0].second, MinerId(0),
                                        CoinId(1), MinerId(1), CoinId(1));
  std::cout << "4-cycle improvement sum = " << cycle.to_string()
            << "  (paper: 2/3 != 0 => no exact potential)\n\n";

  // Random scan: unequal powers vs equal powers, fanned over the pool.
  // Task grid: family-major, trial-minor; one bool slot per task.
  const std::vector<std::pair<std::string, bool>> families = {
      {"distinct powers", true}, {"equal powers (congestion game)", false}};
  // One game per task slot, shared by the engine pass and the
  // --compare-scan replay so both always judge the same games.
  const auto task_game = [&](std::size_t i) {
    const bool distinct = families[i / trials].second;
    Rng rng(engine::task_seed(seed0, i, 0));
    GameSpec spec;
    spec.num_miners = 3;
    spec.num_coins = 2;
    spec.power_lo = 1;
    spec.power_hi = distinct ? 30 : 1;
    spec.power_shape = distinct ? PowerShape::kUniform : PowerShape::kEqual;
    spec.distinct_powers = distinct;
    return random_game(spec, rng);
  };
  std::vector<std::uint8_t> obstructed(families.size() * trials, 0);
  const std::size_t lanes = engine::ThreadPool::resolve_lanes(threads);
  engine::ThreadPool pool(engine::ThreadPool::workers_for(lanes));
  bench::Stopwatch watch;
  pool.parallel_for(obstructed.size(), [&](std::size_t i) {
    if (find_nonzero_four_cycle(task_game(i)).has_value()) obstructed[i] = 1;
  });
  const double wall_ms = watch.elapsed_ms();

  Table scan({"family", "games", "with_obstruction", "fraction"});
  for (std::size_t f = 0; f < families.size(); ++f) {
    std::size_t with = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      with += obstructed[f * trials + t];
    }
    scan.row() << families[f].first << std::uint64_t(trials)
               << std::uint64_t(with)
               << fmt_double(static_cast<double>(with) /
                                 static_cast<double>(trials),
                             3);
  }
  bench::emit(cli, scan,
              "Exact-potential obstruction scan "
              "(theory: ~1.0 for distinct powers, 0.0 for equal)");
  std::cout << "[" << obstructed.size() << " scan games on " << lanes
            << " lanes in " << fmt_double(wall_ms, 1) << " ms]\n";

  if (compare_scan) {
    // Replay the obstruction scan on the legacy full-space walker (same
    // tasks, same seeds) and assert verdict-for-verdict agreement.
    std::vector<std::uint8_t> legacy(obstructed.size(), 0);
    watch.restart();
    pool.parallel_for(legacy.size(), [&](std::size_t i) {
      if (find_nonzero_four_cycle_scan(task_game(i)).has_value()) legacy[i] = 1;
    });
    const double legacy_ms = watch.elapsed_ms();
    const bool identical = legacy == obstructed;
    std::cout << "[compare-scan: legacy walker " << fmt_double(legacy_ms, 1)
              << " ms vs engine " << fmt_double(wall_ms, 1) << " ms => "
              << fmt_double(legacy_ms / wall_ms, 1) << "x, verdicts "
              << (identical ? "identical" : "MISMATCH") << "]\n";
    if (!identical) return 1;
  }
  return cycle.is_zero() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
