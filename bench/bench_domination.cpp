/// \file bench_domination.cpp
/// Experiment E12 — the §6 security attack: buying a dominant position.
///
/// The Discussion warns that reward design can park the system in a state
/// where "a particular miner will have a dominant position in a coin,
/// killing … the basic guarantee of non-manipulation (security)". We make
/// that concrete: for each attacker rank, search the (sampled) equilibrium
/// set for the target maximizing the attacker's share of its own coin,
/// drive the system there with Algorithm 2 (guaranteed, bounded cost), and
/// report the share before vs after and how often the attacker ends with a
/// strict majority — i.e. a persistent 51% position bought with a *finite*
/// reward subsidy.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "design/reward_design.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/security.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 30);
  const std::size_t n = cli.get_u64("miners", 8);
  const std::uint64_t seed0 = cli.get_u64("seed", 12);

  bench::banner(
      "E12 — domination via reward design (paper §6 'bad configurations')",
      "Attacker = miner of the given power rank (0 = largest). Target = the "
      "sampled equilibrium maximizing the attacker's share of its coin; "
      "Algorithm 2 moves the system there and the rewards revert.");

  Table table({"attacker_rank", "games", "share_before_mean",
               "share_after_mean", "majority_before%", "majority_after%",
               "cost_epochs_mean"});

  for (const std::size_t rank : {std::size_t{0}, n / 2, n - 1}) {
    Sample before, after, cost;
    std::size_t majority_before = 0, majority_after = 0, games = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(seed0 + t * 977);
      GameSpec spec;
      spec.num_miners = n;
      spec.num_coins = 3;
      spec.power_lo = 1;
      spec.power_hi = 100;
      spec.reward_lo = 50;
      spec.reward_hi = 900;
      spec.distinct_powers = true;
      spec.sort_desc = true;
      const Game game = random_game(spec, rng);
      auto equilibria = sample_equilibria(game, rng, 64);
      if (equilibria.size() < 2) continue;

      const MinerId attacker(static_cast<std::uint32_t>(rank));
      const Configuration& s0 = equilibria.front();
      const auto target = best_domination_target(game, attacker, equilibria);
      if (!target) continue;
      ++games;

      const Rational share0 =
          game.system().power(attacker) / s0.mass(s0.of(attacker));
      before.add(share0.to_double());
      if (share0 > Rational(1, 2)) ++majority_before;

      auto sched = make_scheduler(SchedulerKind::kRandomMiner, seed0 + t);
      const DesignResult result = run_reward_design(
          game, s0, target->equilibrium, *sched);
      GOC_ASSERT(result.success, "Algorithm 2 must reach the target");
      after.add(target->attacker_share.to_double());
      if (target->attacker_share > Rational(1, 2)) ++majority_after;
      cost.add(result.total_cost.to_double() /
               game.rewards().total_reward().to_double());
    }
    if (games == 0) continue;
    const auto pct = [&](std::size_t x) {
      return fmt_double(100.0 * static_cast<double>(x) / static_cast<double>(games), 1);
    };
    table.row() << std::uint64_t(rank) << std::uint64_t(games)
                << fmt_double(before.mean(), 3) << fmt_double(after.mean(), 3)
                << pct(majority_before) << pct(majority_after)
                << fmt_double(cost.mean(), 1);
  }
  bench::emit(cli, table,
              "Domination attack (expected: share_after > share_before; "
              "large attackers frequently secure >50% positions)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
