/// \file bench_domination.cpp
/// Experiment E12 — the §6 security attack: buying a dominant position.
///
/// The Discussion warns that reward design can park the system in a state
/// where "a particular miner will have a dominant position in a coin,
/// killing … the basic guarantee of non-manipulation (security)". We make
/// that concrete: for each attacker rank, search the (sampled) equilibrium
/// set for the target maximizing the attacker's share of its own coin,
/// drive the system there with Algorithm 2 (guaranteed, bounded cost), and
/// report the share before vs after and how often the attacker ends with a
/// strict majority — i.e. a persistent 51% position bought with a *finite*
/// reward subsidy.
///
/// Runs on the sweep-engine treatment: the (rank × trial) grid is fanned
/// across a ThreadPool (`--threads`, 0 = all cores), per-task seeds derive
/// from the root seed and grid position alone (`engine::task_seed`), and
/// records land in a pre-sized slot vector — so the table is bit-identical
/// at any thread count. The same game seed serves every rank at a given
/// trial, keeping the three attacker rows comparable on identical markets.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "design/reward_design.hpp"
#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/security.hpp"
#include "util/stats.hpp"

namespace {

using namespace goc;

struct AttackOutcome {
  bool counted = false;  ///< the game had ≥2 equilibria and a valid target
  double share_before = 0.0;
  double share_after = 0.0;
  double cost_epochs = 0.0;
  bool majority_before = false;
  bool majority_after = false;
};

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 30);
  const std::size_t n = cli.get_u64("miners", 8);
  const std::uint64_t seed0 = cli.get_u64("seed", 12);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores

  bench::banner(
      "E12 — domination via reward design (paper §6 'bad configurations')",
      "Attacker = miner of the given power rank (0 = largest). Target = the "
      "sampled equilibrium maximizing the attacker's share of its coin; "
      "Algorithm 2 moves the system there and the rewards revert.");

  const std::vector<std::size_t> ranks = {std::size_t{0}, n / 2, n - 1};

  // (rank × trial) task grid; slot vector indexed by grid position.
  std::vector<AttackOutcome> outcomes(ranks.size() * trials);
  const std::size_t lanes = engine::ThreadPool::resolve_lanes(threads);
  engine::ThreadPool pool(engine::ThreadPool::workers_for(lanes));
  bench::Stopwatch watch;
  pool.parallel_for(outcomes.size(), [&](std::size_t i) {
    const std::size_t rank_index = i / trials;
    const std::size_t t = i % trials;
    // The game seed depends on the trial alone: every rank row attacks the
    // same sampled market family.
    Rng rng(engine::task_seed(seed0, t, 0));
    GameSpec spec;
    spec.num_miners = n;
    spec.num_coins = 3;
    spec.power_lo = 1;
    spec.power_hi = 100;
    spec.reward_lo = 50;
    spec.reward_hi = 900;
    spec.distinct_powers = true;
    spec.sort_desc = true;
    const Game game = random_game(spec, rng);
    auto equilibria = sample_equilibria(game, rng, 64);
    if (equilibria.size() < 2) return;

    const MinerId attacker(static_cast<std::uint32_t>(ranks[rank_index]));
    const Configuration& s0 = equilibria.front();
    const auto target = best_domination_target(game, attacker, equilibria);
    if (!target) return;

    AttackOutcome& out = outcomes[i];
    out.counted = true;
    const Rational share0 =
        game.system().power(attacker) / s0.mass(s0.of(attacker));
    out.share_before = share0.to_double();
    out.majority_before = share0 > Rational(1, 2);

    auto sched = make_scheduler(SchedulerKind::kRandomMiner,
                                engine::task_seed(seed0, i, 1));
    const DesignResult result =
        run_reward_design(game, s0, target->equilibrium, *sched);
    GOC_ASSERT(result.success, "Algorithm 2 must reach the target");
    out.share_after = target->attacker_share.to_double();
    out.majority_after = target->attacker_share > Rational(1, 2);
    out.cost_epochs = result.total_cost.to_double() /
                      game.rewards().total_reward().to_double();
  });
  const double wall_ms = watch.elapsed_ms();

  Table table({"attacker_rank", "games", "share_before_mean",
               "share_after_mean", "majority_before%", "majority_after%",
               "cost_epochs_mean"});
  for (std::size_t rank_index = 0; rank_index < ranks.size(); ++rank_index) {
    Sample before, after, cost;
    std::size_t majority_before = 0, majority_after = 0, games = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const AttackOutcome& out = outcomes[rank_index * trials + t];
      if (!out.counted) continue;
      ++games;
      before.add(out.share_before);
      after.add(out.share_after);
      cost.add(out.cost_epochs);
      if (out.majority_before) ++majority_before;
      if (out.majority_after) ++majority_after;
    }
    if (games == 0) continue;
    const auto pct = [&](std::size_t x) {
      return fmt_double(
          100.0 * static_cast<double>(x) / static_cast<double>(games), 1);
    };
    table.row() << std::uint64_t(ranks[rank_index]) << std::uint64_t(games)
                << fmt_double(before.mean(), 3) << fmt_double(after.mean(), 3)
                << pct(majority_before) << pct(majority_after)
                << fmt_double(cost.mean(), 1);
  }
  bench::emit(cli, table,
              "Domination attack (expected: share_after > share_before; "
              "large attackers frequently secure >50% positions)");
  std::cout << "[" << outcomes.size() << " attack scenarios on " << lanes
            << " lanes in " << fmt_double(wall_ms, 1) << " ms]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
