/// \file bench_asymmetric.cpp
/// Experiment E11 — the §6 asymmetric case: player-specific coin sets.
///
/// The paper leaves the asymmetric market (hardware-restricted mining) as
/// future work. Our implementation shows Theorem 1's convergence is
/// unaffected — the ordinal potential argument never inspects the action
/// sets — and measures what restrictions *do* change: the equilibrium
/// landscape (counts via exhaustive enumeration on small games), welfare
/// (reward stranded on coins nobody can or wants to mine), revenue
/// fairness, and worst-case convergence time (longest improving path in
/// the full improvement DAG).

#include "bench_common.hpp"
#include "core/access.hpp"
#include "core/generators.hpp"
#include "dynamics/improvement_graph.hpp"
#include "dynamics/learning.hpp"
#include "equilibrium/welfare.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 25);
  const std::uint64_t seed0 = cli.get_u64("seed", 11);

  bench::banner(
      "E11 — asymmetric mining (player-specific coin sets, paper §6)",
      "Random access matrices of varying density over n=6, |C|=3 games; "
      "exhaustive improvement-graph analysis plus audited learning.");

  Table table({"density", "games", "converged%", "avg_equilibria",
               "longest_path_mean", "longest_path_max", "steps_mean",
               "stranded_reward%", "fairness_mean"});

  for (const double density : {1.0, 0.75, 0.5, 0.25}) {
    Sample eqs, longest, steps, stranded, fairness;
    std::size_t converged = 0;
    std::size_t runs = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(seed0 + t * 331);
      GameSpec spec;
      spec.num_miners = 6;
      spec.num_coins = 3;
      spec.power_lo = 1;
      spec.power_hi = 60;
      spec.reward_lo = 50;
      spec.reward_hi = 400;
      const Game base = random_game(spec, rng);
      const AccessPolicy policy =
          density >= 1.0 ? AccessPolicy{}
                         : AccessPolicy::random(6, 3, density, rng);
      const Game game(base.system_ptr(), base.rewards(), policy);
      ++runs;

      const ImprovementGraphStats stats = analyze_improvement_graph(game);
      eqs.add(static_cast<double>(stats.equilibria));
      longest.add(static_cast<double>(stats.longest_path));

      auto sched = make_scheduler(SchedulerKind::kRandomMove, seed0 ^ t);
      LearningOptions opts;
      opts.audit_potential = true;
      const auto result =
          run_learning(game, random_configuration(game, rng), *sched, opts);
      if (result.converged) ++converged;
      steps.add(static_cast<double>(result.steps));
      const double total = game.rewards().total_reward().to_double();
      const double collected =
          distributed_reward(game, result.final_configuration).to_double();
      stranded.add(100.0 * (total - collected) / total);
      fairness.add(rpu_fairness_index(game, result.final_configuration));
    }
    table.row() << fmt_double(density, 2) << std::uint64_t(runs)
                << fmt_double(100.0 * static_cast<double>(converged) /
                                  static_cast<double>(runs),
                              1)
                << fmt_double(eqs.mean(), 1) << fmt_double(longest.mean(), 1)
                << fmt_double(longest.max(), 0) << fmt_double(steps.mean(), 1)
                << fmt_double(stranded.mean(), 1)
                << fmt_double(fairness.mean(), 3);
  }
  bench::emit(cli, table,
              "Access density sweep (theory: converged% == 100 at every "
              "density; restrictions strand reward and skew revenue)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
