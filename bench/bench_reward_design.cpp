/// \file bench_reward_design.cpp
/// Experiment E6 — Figure 2 / Theorem 2: the dynamic reward-design
/// mechanism.
///
/// Reproduces the paper's Figure 2 as an executable trace (stage structure
/// and mover/anchor iterations of one run), then sweeps system sizes and
/// schedulers: Algorithm 2 must reach the target equilibrium with success
/// rate 1.0 for every better-response scheduler, in ~n stages with a
/// bounded number of iterations per stage, at finite manipulator cost.
/// The cost column normalizes total overpayment by the per-epoch base
/// reward Σ_c F(c) — "how many epochs' worth of extra reward the attack
/// burned".

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "design/intermediate.hpp"
#include "design/reward_design.hpp"
#include "equilibrium/enumerate.hpp"
#include "util/stats.hpp"

namespace {

using namespace goc;

struct Fixture {
  Game game;
  Configuration s0;
  Configuration sf;
};

std::optional<Fixture> make_fixture(std::uint64_t seed, std::size_t miners,
                                    std::size_t coins) {
  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.power_lo = 1;
  spec.power_hi = 100;
  spec.reward_lo = 50;
  spec.reward_hi = 900;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  Game game = random_game(spec, rng);
  auto eqs = sample_equilibria(game, rng, 48);
  if (eqs.size() < 2) return std::nullopt;
  return Fixture{std::move(game), std::move(eqs.front()), std::move(eqs.back())};
}

void figure2_trace(const Cli& cli) {
  const auto fixture = make_fixture(/*seed=*/7, /*miners=*/6, /*coins=*/3);
  if (!fixture) return;
  auto sched = make_scheduler(SchedulerKind::kRandomMiner, 13);
  DesignOptions opts;
  opts.audit = true;
  const DesignResult result = run_reward_design(fixture->game, fixture->s0,
                                                fixture->sf, *sched, opts);
  Table trace({"stage", "target_coin", "iterations", "br_steps",
               "epoch_cost", "peak_overpay"});
  for (const StageRecord& rec : result.stages) {
    const CoinId target = fixture->sf.of(
        MinerId(static_cast<std::uint32_t>(rec.stage - 1)));
    trace.row() << std::uint64_t(rec.stage) << target.to_string()
                << rec.iterations << rec.learning_steps
                << fmt_double(rec.stage_cost.to_double(), 0)
                << fmt_double(rec.peak_overpayment.to_double(), 0);
  }
  std::cout << "one run, n=6, |C|=3:  s0 = " << fixture->s0.to_string()
            << "  ->  sf = " << fixture->sf.to_string() << "\n";
  bench::emit(cli, trace,
              "Figure 2 analogue: per-stage mover iterations "
              "(stage i herds p_i..p_n onto sf.p_i)",
              "fig2");
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 10);
  const std::uint64_t seed0 = cli.get_u64("seed", 6);
  const bool quick = cli.get_bool("quick", false);

  bench::banner(
      "E6 — Theorem 2 / Figure 2: dynamic reward design between equilibria",
      "Algorithm 2 drives any better-response learning from s0 to sf; "
      "success must be 100% for every scheduler. Cost in epochs of Σ F.");

  figure2_trace(cli);

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4, 8} : std::vector<std::size_t>{4, 6, 8, 12, 16, 24};
  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kRandomMiner, SchedulerKind::kMinGain,
      SchedulerKind::kMaxGain, SchedulerKind::kRoundRobin};

  Table table({"miners", "scheduler", "runs", "success%", "iters_mean",
               "iters/stage", "br_steps_mean", "cost_epochs", "peak/sumF"});
  for (const std::size_t n : sizes) {
    for (const SchedulerKind kind : kinds) {
      Sample iters, steps, cost_epochs, peak_ratio;
      std::size_t runs = 0, successes = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto fixture = make_fixture(seed0 + t * 211 + n, n, 3);
        if (!fixture) continue;
        ++runs;
        auto sched = make_scheduler(kind, seed0 ^ (t * 37));
        const DesignResult result = run_reward_design(
            fixture->game, fixture->s0, fixture->sf, *sched);
        if (result.success) ++successes;
        const double sum_f = fixture->game.rewards().total_reward().to_double();
        iters.add(static_cast<double>(result.total_iterations));
        steps.add(static_cast<double>(result.total_learning_steps));
        cost_epochs.add(result.total_cost.to_double() / sum_f);
        peak_ratio.add(result.peak_overpayment.to_double() / sum_f);
      }
      if (runs == 0) continue;
      table.row() << std::uint64_t(n) << scheduler_kind_name(kind)
                  << std::uint64_t(runs)
                  << fmt_double(100.0 * static_cast<double>(successes) /
                                    static_cast<double>(runs),
                                1)
                  << fmt_double(iters.mean(), 1)
                  << fmt_double(iters.mean() / static_cast<double>(n), 2)
                  << fmt_double(steps.mean(), 1)
                  << fmt_double(cost_epochs.mean(), 1)
                  << fmt_double(peak_ratio.mean(), 1);
    }
  }
  bench::emit(cli, table,
              "Algorithm 2 sweep (theory: success% == 100 in every row)");

  // Ablation — cost drivers of the robustified design level (DESIGN.md
  // §2.2): R̂(s) ≥ λ = 2·max F / min m, so the manipulator's epoch cost
  // scales with the reward skew and inversely with the smallest miner.
  // Sweeping each knob isolates its effect.
  Table ablation({"knob", "value", "runs", "success%", "cost_epochs",
                  "peak/sumF"});
  const auto ablate = [&](const std::string& knob, const std::string& value,
                          std::int64_t power_lo, std::int64_t power_hi,
                          std::int64_t reward_lo, std::int64_t reward_hi) {
    Sample cost_epochs, peak_ratio;
    std::size_t runs = 0, successes = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng(seed0 + t * 613);
      GameSpec spec;
      spec.num_miners = 8;
      spec.num_coins = 3;
      spec.power_lo = power_lo;
      spec.power_hi = power_hi;
      spec.reward_lo = reward_lo;
      spec.reward_hi = reward_hi;
      spec.distinct_powers = true;
      spec.sort_desc = true;
      Game game = random_game(spec, rng);
      auto eqs = sample_equilibria(game, rng, 48);
      if (eqs.size() < 2) continue;
      ++runs;
      auto sched = make_scheduler(SchedulerKind::kRandomMiner, seed0 + t);
      const DesignResult result =
          run_reward_design(game, eqs.front(), eqs.back(), *sched);
      if (result.success) ++successes;
      const double sum_f = game.rewards().total_reward().to_double();
      cost_epochs.add(result.total_cost.to_double() / sum_f);
      peak_ratio.add(result.peak_overpayment.to_double() / sum_f);
    }
    if (runs == 0) return;
    ablation.row() << knob << value << std::uint64_t(runs)
                   << fmt_double(100.0 * static_cast<double>(successes) /
                                     static_cast<double>(runs),
                                 1)
                   << fmt_double(cost_epochs.mean(), 1)
                   << fmt_double(peak_ratio.mean(), 1);
  };
  // Power *spread* ↑ (Σm/min m grows) → the designed levels R̂·M_c grow
  // relative to F → cost rises.
  ablate("power_spread", "10x", 1, 10, 50, 900);
  ablate("power_spread", "100x", 1, 100, 50, 900);
  ablate("power_spread", "1000x", 1, 1000, 50, 900);
  // Uniform power scaling (spread fixed at 100×) — negative control: the
  // game is invariant under scaling all powers, so cost must stay flat.
  ablate("uniform_scale", "1x", 1, 100, 50, 900);
  ablate("uniform_scale", "10x", 10, 1000, 50, 900);
  ablate("uniform_scale", "100x", 100, 10000, 50, 900);
  // Reward skew ↓ (max/min → 1) → λ and the inter-stage levels shrink.
  ablate("reward_skew", "18x", 1, 100, 50, 900);
  ablate("reward_skew", "3x", 1, 100, 300, 900);
  ablate("reward_skew", "1.1x", 1, 100, 820, 900);
  bench::emit(cli, ablation,
              "Cost-driver ablation (expected: cost grows with the power "
              "spread and reward skew, is invariant to uniform power "
              "scaling; success stays 100%)",
              "ablation");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
