/// \file bench_naive_vs_design.cpp
/// Experiment E8 — why the staged mechanism is necessary.
///
/// Section 5's motivation is that a manipulator wants a *guarantee*: pay a
/// bounded cost, end at the chosen equilibrium, for any better-response
/// learning. The obvious cheaper manipulations — pump the target coins
/// once, or greedily pump whichever coin is under target — carry no such
/// guarantee. This harness measures their success rates and costs against
/// Algorithm 2 on the same instances and schedulers.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "design/naive.hpp"
#include "design/reward_design.hpp"
#include "equilibrium/enumerate.hpp"
#include "util/stats.hpp"

namespace {

using namespace goc;

struct Fixture {
  Game game;
  Configuration s0;
  Configuration sf;
};

std::optional<Fixture> make_fixture(std::uint64_t seed, std::size_t miners) {
  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = 3;
  spec.power_lo = 1;
  spec.power_hi = 100;
  spec.reward_lo = 50;
  spec.reward_hi = 900;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  Game game = random_game(spec, rng);
  auto eqs = sample_equilibria(game, rng, 48);
  if (eqs.size() < 2) return std::nullopt;
  return Fixture{std::move(game), std::move(eqs.front()), std::move(eqs.back())};
}

int run(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 40);
  const std::uint64_t seed0 = cli.get_u64("seed", 8);
  const std::size_t n = cli.get_u64("miners", 8);

  bench::banner("E8 — naive manipulation vs Algorithm 2",
                "Same instances (n=" + std::to_string(n) +
                    ", |C|=3), same random-miner scheduler; success = system "
                    "sits exactly at sf after reverting to F.");

  Sample cost_naive1, cost_naive2, cost_design;
  Sample steps_naive1, steps_naive2, steps_design;
  std::size_t runs = 0, ok_naive1 = 0, ok_naive2 = 0, ok_design = 0;

  for (std::size_t t = 0; t < trials; ++t) {
    const auto fixture = make_fixture(seed0 + t * 443, n);
    if (!fixture) continue;
    ++runs;
    const double sum_f = fixture->game.rewards().total_reward().to_double();

    auto s1 = make_scheduler(SchedulerKind::kRandomMiner, seed0 + t);
    const auto naive1 = naive_proportional_pump(fixture->game, fixture->s0,
                                                fixture->sf, *s1);
    if (naive1.success) ++ok_naive1;
    cost_naive1.add(naive1.total_cost.to_double() / sum_f);
    steps_naive1.add(static_cast<double>(naive1.learning_steps));

    auto s2 = make_scheduler(SchedulerKind::kRandomMiner, seed0 + t);
    const auto naive2 =
        naive_deficit_pump(fixture->game, fixture->s0, fixture->sf, *s2);
    if (naive2.success) ++ok_naive2;
    cost_naive2.add(naive2.total_cost.to_double() / sum_f);
    steps_naive2.add(static_cast<double>(naive2.learning_steps));

    auto s3 = make_scheduler(SchedulerKind::kRandomMiner, seed0 + t);
    const auto design =
        run_reward_design(fixture->game, fixture->s0, fixture->sf, *s3);
    if (design.success) ++ok_design;
    cost_design.add(design.total_cost.to_double() / sum_f);
    steps_design.add(static_cast<double>(design.total_learning_steps));
  }

  Table table({"method", "runs", "success%", "cost_epochs_mean", "br_steps_mean"});
  const auto pct = [&](std::size_t ok) {
    return fmt_double(100.0 * static_cast<double>(ok) / static_cast<double>(runs), 1);
  };
  table.row() << "naive proportional pump" << std::uint64_t(runs)
              << pct(ok_naive1) << fmt_double(cost_naive1.mean(), 1)
              << fmt_double(steps_naive1.mean(), 1);
  table.row() << "naive deficit pump" << std::uint64_t(runs) << pct(ok_naive2)
              << fmt_double(cost_naive2.mean(), 1)
              << fmt_double(steps_naive2.mean(), 1);
  table.row() << "Algorithm 2 (staged)" << std::uint64_t(runs)
              << pct(ok_design) << fmt_double(cost_design.mean(), 1)
              << fmt_double(steps_design.mean(), 1);
  bench::emit(cli, table,
              "Manipulator comparison (theory: Algorithm 2 at 100%; naive "
              "methods strictly below)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
