#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "io/serialize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

/// \file bench_common.hpp
/// Conventions shared by the experiment harnesses: a wall-clock stopwatch
/// and a uniform header/CSV/JSON-export treatment so every binary prints
/// the paper-style rows and can optionally persist them. The JSON mode
/// (`--json=<base>`) emits machine-readable result files for trajectory
/// tracking (`BENCH_*.json`) alongside the human-readable tables.

namespace goc::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prints the experiment banner.
inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Prints a table and, when --csv=<base> / --json=<base> were passed,
/// saves it in those formats too (suffix keeps multi-table binaries from
/// overwriting themselves).
inline void emit(const Cli& cli, const Table& table, const std::string& title,
                 const std::string& csv_suffix = "") {
  table.print(std::cout, title);
  std::cout << "\n";
  // A bare `--csv` / `--json` flag parses as an empty value; fall back to
  // "bench" rather than emitting a hidden ".csv" / ".json" file.
  if (cli.has("csv")) {
    std::string base = cli.get_string("csv", "bench");
    if (base.empty()) base = "bench";
    const std::string path =
        csv_suffix.empty() ? base + ".csv" : base + "." + csv_suffix + ".csv";
    table.save_csv(path);
    std::cout << "[csv saved to " << path << "]\n\n";
  }
  if (cli.has("json")) {
    std::string base = cli.get_string("json", "bench");
    if (base.empty()) base = "bench";
    const std::string path = csv_suffix.empty()
                                 ? base + ".json"
                                 : base + "." + csv_suffix + ".json";
    io::write_text_file(io::table_to_json(table, title), path);
    std::cout << "[json saved to " << path << "]\n\n";
  }
}

}  // namespace goc::bench
