#pragma once

#include <sys/resource.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "io/serialize.hpp"
#include "obs/registry.hpp"
#include "sim/batch_cli.hpp"
#include "sim/trajectory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

/// \file bench_common.hpp
/// Conventions shared by the experiment harnesses: a wall-clock stopwatch,
/// a uniform header/CSV/JSON-export treatment so every binary prints the
/// paper-style rows and can optionally persist them, and the shared Monte
/// Carlo batch flags (`apply_batch_cli`). The JSON mode (`--json=<base>`)
/// emits machine-readable result files for trajectory tracking
/// (`BENCH_*.json`) alongside the human-readable tables — atomically, so
/// an interrupted bench never leaves a torn baseline behind. Every JSON
/// file additionally carries `peak_rss_bytes` and `total_wall_ms` so a
/// perf regression in memory or startup shows up in the same artifact as
/// the timing rows.

namespace goc::bench {

/// Wall-clock stopwatch on the obs time base (`obs::now_ns` — the same
/// steady clock every span and latency histogram uses, so bench timings
/// and registry histograms are directly comparable).
class Stopwatch {
 public:
  Stopwatch() : start_ns_(obs::now_ns()) {}
  double elapsed_ms() const {
    return static_cast<double>(obs::now_ns() - start_ns_) / 1e6;
  }
  void restart() { start_ns_ = obs::now_ns(); }

 private:
  std::uint64_t start_ns_;
};

/// Peak resident set size of this process so far, in bytes (getrusage
/// reports kilobytes on Linux). 0 when the kernel call fails.
inline std::uint64_t peak_rss_bytes() {
  ::rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

namespace detail {
/// Process-lifetime stopwatch backing `total_wall_ms`; started by the
/// first `banner()` call (every bench banners before it works).
inline Stopwatch& process_stopwatch() {
  static Stopwatch watch;
  return watch;
}
}  // namespace detail

/// Prints the experiment banner (and starts the process-wide stopwatch
/// that `emit` stamps into JSON as `total_wall_ms`).
inline void banner(const std::string& experiment, const std::string& claim) {
  detail::process_stopwatch();
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

namespace detail {

/// One export format of `emit`: if `--<format>=<base>` was passed, saves
/// the table via `save` to `<base>[.suffix].<format>` and announces the
/// path. A bare `--<format>` flag parses as an empty value; fall back to
/// "bench" rather than emitting a hidden dotfile.
template <typename SaveFn>
void emit_as(const Cli& cli, const std::string& format,
             const std::string& suffix, SaveFn&& save) {
  if (!cli.has(format)) return;
  std::string base = cli.get_string(format, "bench");
  if (base.empty()) base = "bench";
  const std::string path = suffix.empty()
                               ? base + "." + format
                               : base + "." + suffix + "." + format;
  save(path);
  std::cout << "[" << format << " saved to " << path << "]\n\n";
}

}  // namespace detail

/// Prints a table and, when --csv=<base> / --json=<base> were passed,
/// saves it in those formats too (suffix keeps multi-table binaries from
/// overwriting themselves).
inline void emit(const Cli& cli, const Table& table, const std::string& title,
                 const std::string& csv_suffix = "") {
  table.print(std::cout, title);
  std::cout << "\n";
  detail::emit_as(cli, "csv", csv_suffix,
                  [&](const std::string& path) { table.save_csv(path); });
  detail::emit_as(cli, "json", csv_suffix, [&](const std::string& path) {
    const std::vector<std::pair<std::string, std::string>> extras = {
        {"peak_rss_bytes", std::to_string(peak_rss_bytes())},
        {"total_wall_ms",
         std::to_string(detail::process_stopwatch().elapsed_ms())},
    };
    io::atomic_write_file(io::table_to_json(table, title, extras), path);
  });
}

/// The shared Monte Carlo batch flags, uniform across every bench that
/// fans replicas (`bench_des --adaptive`, `bench_chain_validation`,
/// `bench_fig1_market`, `sweep_demo`). The grammar and the pre-seeding
/// contract live with the implementation in `sim/batch_cli.hpp`, which
/// the serve daemon's request parser shares — these wrappers only keep
/// the historical `bench::` spelling alive.
inline void apply_batch_cli(const Cli& cli,
                            sim::TrajectoryBatchOptions& options) {
  sim::apply_batch_cli(cli, options);
}

/// See `sim::epoch_lanes_from_cli` (the `--epoch-lanes` flag).
inline std::size_t epoch_lanes_from_cli(const Cli& cli,
                                        std::size_t fallback = 0) {
  return sim::epoch_lanes_from_cli(cli, fallback);
}

}  // namespace goc::bench
