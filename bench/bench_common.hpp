#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "io/serialize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

/// \file bench_common.hpp
/// Conventions shared by the experiment harnesses: a wall-clock stopwatch
/// and a uniform header/CSV/JSON-export treatment so every binary prints
/// the paper-style rows and can optionally persist them. The JSON mode
/// (`--json=<base>`) emits machine-readable result files for trajectory
/// tracking (`BENCH_*.json`) alongside the human-readable tables.

namespace goc::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prints the experiment banner.
inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

namespace detail {

/// One export format of `emit`: if `--<format>=<base>` was passed, saves
/// the table via `save` to `<base>[.suffix].<format>` and announces the
/// path. A bare `--<format>` flag parses as an empty value; fall back to
/// "bench" rather than emitting a hidden dotfile.
template <typename SaveFn>
void emit_as(const Cli& cli, const std::string& format,
             const std::string& suffix, SaveFn&& save) {
  if (!cli.has(format)) return;
  std::string base = cli.get_string(format, "bench");
  if (base.empty()) base = "bench";
  const std::string path = suffix.empty()
                               ? base + "." + format
                               : base + "." + suffix + "." + format;
  save(path);
  std::cout << "[" << format << " saved to " << path << "]\n\n";
}

}  // namespace detail

/// Prints a table and, when --csv=<base> / --json=<base> were passed,
/// saves it in those formats too (suffix keeps multi-table binaries from
/// overwriting themselves).
inline void emit(const Cli& cli, const Table& table, const std::string& title,
                 const std::string& csv_suffix = "") {
  table.print(std::cout, title);
  std::cout << "\n";
  detail::emit_as(cli, "csv", csv_suffix,
                  [&](const std::string& path) { table.save_csv(path); });
  detail::emit_as(cli, "json", csv_suffix, [&](const std::string& path) {
    io::write_text_file(io::table_to_json(table, title), path);
  });
}

}  // namespace goc::bench
