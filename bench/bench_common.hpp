#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "io/serialize.hpp"
#include "sim/batch_cli.hpp"
#include "sim/trajectory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

/// \file bench_common.hpp
/// Conventions shared by the experiment harnesses: a wall-clock stopwatch,
/// a uniform header/CSV/JSON-export treatment so every binary prints the
/// paper-style rows and can optionally persist them, and the shared Monte
/// Carlo batch flags (`apply_batch_cli`). The JSON mode (`--json=<base>`)
/// emits machine-readable result files for trajectory tracking
/// (`BENCH_*.json`) alongside the human-readable tables — atomically, so
/// an interrupted bench never leaves a torn baseline behind.

namespace goc::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prints the experiment banner.
inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

namespace detail {

/// One export format of `emit`: if `--<format>=<base>` was passed, saves
/// the table via `save` to `<base>[.suffix].<format>` and announces the
/// path. A bare `--<format>` flag parses as an empty value; fall back to
/// "bench" rather than emitting a hidden dotfile.
template <typename SaveFn>
void emit_as(const Cli& cli, const std::string& format,
             const std::string& suffix, SaveFn&& save) {
  if (!cli.has(format)) return;
  std::string base = cli.get_string(format, "bench");
  if (base.empty()) base = "bench";
  const std::string path = suffix.empty()
                               ? base + "." + format
                               : base + "." + suffix + "." + format;
  save(path);
  std::cout << "[" << format << " saved to " << path << "]\n\n";
}

}  // namespace detail

/// Prints a table and, when --csv=<base> / --json=<base> were passed,
/// saves it in those formats too (suffix keeps multi-table binaries from
/// overwriting themselves).
inline void emit(const Cli& cli, const Table& table, const std::string& title,
                 const std::string& csv_suffix = "") {
  table.print(std::cout, title);
  std::cout << "\n";
  detail::emit_as(cli, "csv", csv_suffix,
                  [&](const std::string& path) { table.save_csv(path); });
  detail::emit_as(cli, "json", csv_suffix, [&](const std::string& path) {
    io::atomic_write_file(io::table_to_json(table, title), path);
  });
}

/// The shared Monte Carlo batch flags, uniform across every bench that
/// fans replicas (`bench_des --adaptive`, `bench_chain_validation`,
/// `bench_fig1_market`, `sweep_demo`). The grammar and the pre-seeding
/// contract live with the implementation in `sim/batch_cli.hpp`, which
/// the serve daemon's request parser shares — these wrappers only keep
/// the historical `bench::` spelling alive.
inline void apply_batch_cli(const Cli& cli,
                            sim::TrajectoryBatchOptions& options) {
  sim::apply_batch_cli(cli, options);
}

/// See `sim::epoch_lanes_from_cli` (the `--epoch-lanes` flag).
inline std::size_t epoch_lanes_from_cli(const Cli& cli,
                                        std::size_t fallback = 0) {
  return sim::epoch_lanes_from_cli(cli, fallback);
}

}  // namespace goc::bench
