#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

/// \file bench_common.hpp
/// Conventions shared by the experiment harnesses: a wall-clock stopwatch
/// and a uniform header/CSV-export treatment so every binary prints the
/// paper-style rows and can optionally persist them.

namespace goc::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }
  void restart() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prints the experiment banner.
inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Prints a table and, when --csv=<path> was passed, saves it too.
inline void emit(const Cli& cli, const Table& table, const std::string& title,
                 const std::string& csv_suffix = "") {
  table.print(std::cout, title);
  std::cout << "\n";
  if (cli.has("csv")) {
    const std::string base = cli.get_string("csv", "bench");
    const std::string path =
        csv_suffix.empty() ? base + ".csv" : base + "." + csv_suffix + ".csv";
    table.save_csv(path);
    std::cout << "[csv saved to " << path << "]\n\n";
  }
}

}  // namespace goc::bench
