/// \file bench_scheduler_ablation.cpp
/// Experiment E7 — Discussion §6: speed of convergence under specific
/// markets.
///
/// The paper leaves convergence speed open; this ablation measures it for
/// every scheduler in the suite on a fixed market family (heavy-tailed
/// powers, majors+tail rewards), and contrasts strict better-response
/// dynamics with the noisy variants (ε-exploration, logit) the Discussion
/// gestures at: noise trades convergence for perpetual churn, quantified
/// by the fraction of time spent at equilibrium.

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "dynamics/learning.hpp"
#include "dynamics/noisy.hpp"
#include "engine/sweep.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 15);
  const std::size_t n = cli.get_u64("miners", 200);
  const std::size_t coins = cli.get_u64("coins", 5);
  const std::uint64_t seed0 = cli.get_u64("seed", 7);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores

  bench::banner("E7 — scheduler ablation: convergence speed by learning rule",
                "Fixed market family: n=" + std::to_string(n) + ", |C|=" +
                    std::to_string(coins) +
                    ", Pareto powers, majors+tail rewards.");

  // The one market family every section below measures.
  GameSpec market;
  market.num_miners = n;
  market.num_coins = coins;
  market.power_shape = PowerShape::kPareto;
  market.power_lo = 10;
  market.reward_shape = RewardShape::kMajors;
  market.reward_lo = 100;
  market.reward_hi = 100000;

  const auto make_game = [&](std::uint64_t seed) {
    Rng rng(seed);
    return random_game(market, rng);
  };

  // The strict-rule ablation is a one-point sweep over the scheduler axis;
  // the engine fans the trials across all cores.
  engine::SweepSpec spec;
  spec.base = market;
  spec.scheduler_kinds = all_scheduler_kinds();
  spec.trials = trials;
  spec.root_seed = seed0;
  const engine::SweepRunner runner({threads});
  const engine::SweepResult sweep = runner.run(spec);
  bench::emit(cli, sweep.to_table(), "Strict better-response rules", "strict");
  std::cout << "[" << sweep.records().size() << " scenarios on "
            << sweep.threads() << " lanes in "
            << fmt_double(sweep.total_wall_ms(), 1) << " ms]\n\n";

  // ε-equilibrium: how much of the convergence tail is negligible-gain
  // churn? Steps to reach a relative ε-equilibrium vs the exact one.
  Table eps_table({"epsilon", "trials", "steps_mean", "fraction_of_exact"});
  Sample exact_steps;
  for (std::size_t t = 0; t < trials; ++t) {
    const Game game = make_game(seed0 + t * 101);
    Rng rng(seed0 + t * 131);
    const Configuration start = random_configuration(game, rng);
    exact_steps.add(static_cast<double>(
        run_learning_to_epsilon(game, start, Rational(0)).steps));
  }
  for (const auto& [label, eps] :
       std::vector<std::pair<std::string, Rational>>{
           {"0", Rational(0)},
           {"1%", Rational(1, 100)},
           {"5%", Rational(1, 20)},
           {"25%", Rational(1, 4)}}) {
    Sample steps;
    for (std::size_t t = 0; t < trials; ++t) {
      const Game game = make_game(seed0 + t * 101);
      Rng rng(seed0 + t * 131);
      const Configuration start = random_configuration(game, rng);
      steps.add(static_cast<double>(
          run_learning_to_epsilon(game, start, eps).steps));
    }
    eps_table.row() << label << std::uint64_t(trials)
                    << fmt_double(steps.mean(), 1)
                    << fmt_double(exact_steps.mean() > 0
                                      ? steps.mean() / exact_steps.mean()
                                      : 1.0,
                                  3);
  }
  bench::emit(cli, eps_table,
              "Steps to relative ε-equilibrium (max-relative-gain dynamics)",
              "epsilon");

  // Noisy dynamics: no convergence guarantee — measure equilibrium dwell.
  // The dwell metric samples every 25th step (the membership check is
  // O(n·|C|) and dominates the horizon otherwise).
  Table noisy({"rule", "param", "steps", "eq_visit%", "ends_at_eq%"});
  const std::uint64_t horizon = 10000;
  const std::uint64_t stride = 25;
  for (const double eps : {0.0, 0.01, 0.05, 0.2}) {
    Sample dwell;
    std::size_t at_eq = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const Game game = make_game(seed0 + t * 101);
      Rng rng(seed0 + t * 555);
      NoisyOptions opts;
      opts.epsilon = eps;
      opts.max_steps = horizon;
      opts.equilibrium_check_stride = stride;
      const auto r = run_epsilon_noisy(game, random_configuration(game, rng),
                                       rng, opts);
      dwell.add(100.0 * r.equilibrium_visit_rate);
      if (r.ended_at_equilibrium) ++at_eq;
    }
    noisy.row() << "epsilon-noisy" << fmt_double(eps, 2)
                << std::uint64_t(horizon) << fmt_double(dwell.mean(), 1)
                << fmt_double(100.0 * static_cast<double>(at_eq) /
                                  static_cast<double>(trials),
                              1);
  }
  for (const double beta : {0.0, 1.0, 50.0, 400.0}) {
    Sample dwell;
    std::size_t at_eq = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const Game game = make_game(seed0 + t * 101);
      Rng rng(seed0 + t * 777);
      NoisyOptions opts;
      opts.beta = beta;
      opts.max_steps = horizon;
      opts.equilibrium_check_stride = stride;
      const auto r =
          run_logit(game, random_configuration(game, rng), rng, opts);
      dwell.add(100.0 * r.equilibrium_visit_rate);
      if (r.ended_at_equilibrium) ++at_eq;
    }
    noisy.row() << "logit" << fmt_double(beta, 1) << std::uint64_t(horizon)
                << fmt_double(dwell.mean(), 1)
                << fmt_double(100.0 * static_cast<double>(at_eq) /
                                  static_cast<double>(trials),
                              1);
  }
  bench::emit(cli, noisy,
              "Noisy dynamics (Discussion §6): equilibrium dwell time",
              "noisy");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
