#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "market/scenario.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/stats_log.hpp"
#include "sim/scenarios.hpp"
#include "sim/trajectory.hpp"

namespace goc::obs {
namespace {

/// Restores the runtime obs switch even when an assertion fails mid-test.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(true); }
};

// ------------------------------------------------------------- registry

TEST(Registry, InternsOneObjectPerName) {
  Counter& a = Registry::instance().counter("test.intern.counter");
  Counter& b = Registry::instance().counter("test.intern.counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = Registry::instance().gauge("test.intern.gauge");
  Gauge& g2 = Registry::instance().gauge("test.intern.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = Registry::instance().histogram("test.intern.hist");
  Histogram& h2 = Registry::instance().histogram("test.intern.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, RejectsKindCollisions) {
  Registry::instance().counter("test.collision.name");
  EXPECT_THROW(Registry::instance().gauge("test.collision.name"),
               std::invalid_argument);
  EXPECT_THROW(Registry::instance().histogram("test.collision.name"),
               std::invalid_argument);
  // The original registration survives the failed lookups.
  EXPECT_NO_THROW(Registry::instance().counter("test.collision.name"));
}

TEST(Registry, CounterSumsExactlyAcrossThreads) {
  Counter& counter = Registry::instance().counter("test.mt.counter");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), kThreads * kAddsPerThread);
}

TEST(Registry, GaugeBalancesAddAndSubAcrossThreads) {
  Gauge& gauge = Registry::instance().gauge("test.mt.gauge");
  gauge.reset();
  constexpr int kThreads = 6;
  constexpr int kRounds = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kRounds; ++i) {
        gauge.add(3);
        gauge.sub(2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), std::int64_t{kThreads} * kRounds);
  gauge.sub(std::int64_t{kThreads} * kRounds);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Registry, RecordingIsANoOpWhenDisabled) {
  Counter& counter = Registry::instance().counter("test.disabled.counter");
  Histogram& hist = Registry::instance().histogram("test.disabled.hist");
  counter.reset();
  hist.reset();
  {
    EnabledGuard off(false);
    counter.add(41);
    hist.record(7);
    Span span(hist);
    span.finish();
  }
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  counter.add(1);  // back on after the guard
  EXPECT_EQ(counter.total(), 1u);
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BucketOfFollowsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  static_assert(Histogram::kBuckets == 65);
}

TEST(Histogram, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_bound(11), 2047u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~std::uint64_t{0});
  // Every value lands in the bucket whose bound covers it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 100ull, 65535ull}) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_bound(b));
    if (b > 0) EXPECT_GT(v, Histogram::bucket_bound(b - 1));
  }
}

TEST(Histogram, CountSumAndSnapshotBucketsAgree) {
  Histogram& hist = Registry::instance().histogram("test.hist.fill");
  hist.reset();
  const std::vector<std::uint64_t> values = {0, 1, 2, 3, 4, 7, 8, 1000};
  std::uint64_t expected_sum = 0;
  for (const std::uint64_t v : values) {
    hist.record(v);
    expected_sum += v;
  }
  EXPECT_EQ(hist.count(), values.size());
  EXPECT_EQ(hist.sum(), expected_sum);
  const Snapshot snap = Registry::instance().snapshot();
  const HistogramSnapshot* view = snap.find_histogram("test.hist.fill");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->count, values.size());
  EXPECT_EQ(view->sum, expected_sum);
  ASSERT_EQ(view->buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(view->buckets[0], 1u);   // {0}
  EXPECT_EQ(view->buckets[1], 1u);   // {1}
  EXPECT_EQ(view->buckets[2], 2u);   // {2, 3}
  EXPECT_EQ(view->buckets[3], 2u);   // {4, 7}
  EXPECT_EQ(view->buckets[4], 1u);   // {8}
  EXPECT_EQ(view->buckets[10], 1u);  // {1000}
  EXPECT_DOUBLE_EQ(view->mean(), static_cast<double>(expected_sum) /
                                     static_cast<double>(values.size()));
}

// ----------------------------------------------------------------- span

TEST(Span, NestedSpansRecordIndependently) {
  Histogram& outer = Registry::instance().histogram("test.span.outer");
  Histogram& inner = Registry::instance().histogram("test.span.inner");
  outer.reset();
  inner.reset();
  {
    Span outer_span(outer);
    {
      Span inner_span(inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      Span inner_span(inner);
    }
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 2u);
  // The outer span covers both inner ones, so its time dominates.
  EXPECT_GE(outer.sum(), inner.sum());
  EXPECT_GE(inner.sum(), 1000000u);  // the 1 ms sleep was measured
}

TEST(Span, FinishIsIdempotent) {
  Histogram& hist = Registry::instance().histogram("test.span.finish");
  hist.reset();
  Span span(hist);
  span.finish();
  span.finish();  // second finish (and the destructor later) record nothing
  EXPECT_EQ(hist.count(), 1u);
  // The clock keeps reading (only the histogram is detached).
  EXPECT_GT(span.elapsed_ns(), 0u);
}

// ------------------------------------------------------------- snapshot

TEST(Snapshot, JsonCarriesAllThreeSections) {
  Registry::instance().counter("test.json.counter").reset();
  Registry::instance().counter("test.json.counter").add(12);
  Registry::instance().gauge("test.json.gauge").reset();
  Registry::instance().gauge("test.json.gauge").add(-3);
  Registry::instance().histogram("test.json.hist").reset();
  Registry::instance().histogram("test.json.hist").record(5);
  const Snapshot snap = Registry::instance().snapshot();

  const CounterSnapshot* counter = snap.find_counter("test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 12u);
  const GaugeSnapshot* gauge = snap.find_gauge("test.json.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, -3);
  EXPECT_EQ(snap.find_counter("no.such.metric"), nullptr);
  EXPECT_EQ(snap.find_gauge("no.such.metric"), nullptr);
  EXPECT_EQ(snap.find_histogram("no.such.metric"), nullptr);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);

  // Compact mode is a single line (the --stats-log JSONL record body).
  const std::string compact = snap.to_json(true);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_EQ(compact.front(), '{');
  EXPECT_EQ(compact.back(), '}');
}

TEST(Snapshot, PrometheusRendersCumulativeBuckets) {
  Histogram& hist = Registry::instance().histogram("test.prom.hist");
  hist.reset();
  hist.record(0);
  hist.record(2);
  hist.record(1000);
  const Snapshot snap = Registry::instance().snapshot();
  const std::string text = snap.to_prometheus();
  // Dots map to underscores under the goc_ prefix.
  EXPECT_NE(text.find("goc_test_prom_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("goc_test_prom_hist_sum 1002"), std::string::npos);
  // Buckets are cumulative: le="0" sees only the zero, le="3" adds the 2,
  // le="+Inf" equals the count.
  EXPECT_NE(text.find("goc_test_prom_hist_bucket{le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("goc_test_prom_hist_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("goc_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
}

// ------------------------------------------------------------ stats log

TEST(StatsLogger, AppendsParseableLinesAndAFinalOneOnStop) {
  const std::string path = ::testing::TempDir() + "goc_test_stats.jsonl";
  std::remove(path.c_str());
  {
    StatsLogger::Options options;
    options.path = path;
    options.interval_ms = 20;
    StatsLogger logger(options);
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    logger.stop();
    EXPECT_GE(logger.lines_written(), 2u);  // >=1 periodic + the final line
    logger.stop();                          // idempotent
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("{\"seq\": ", 0), 0u) << line;
    EXPECT_NE(line.find("\"t_ms\": "), std::string::npos);
    EXPECT_NE(line.find("\"stats\": {"), std::string::npos);
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_GE(lines, 2u);
  std::remove(path.c_str());
}

TEST(StatsLogger, ThrowsWhenThePathCannotBeOpened) {
  StatsLogger::Options options;
  options.path = "/nonexistent-dir/goc_stats.jsonl";
  EXPECT_THROW(StatsLogger logger(options), std::runtime_error);
}

// --------------------------------------------------- determinism parity
// The acceptance contract: instrumentation is strictly out of band, so a
// batch produces a bit-identical values_hash with obs on and off.

sim::TrajectoryBatchResult run_parity_chain_batch() {
  sim::ReferenceChainParams params;
  params.miners = 24;
  params.chains = 4;
  params.days = 2.0;
  sim::TrajectoryBatchOptions options;
  options.replicas = 8;
  options.root_seed = 2021;
  options.threads = 4;
  const auto factory = [&](std::uint64_t seed) {
    return sim::make_reference_chain(params, sim::EngineKind::kFlat, seed);
  };
  return sim::run_chain_batch(factory, options);
}

sim::TrajectoryBatchResult run_parity_market_batch() {
  sim::TrajectoryBatchOptions options;
  options.replicas = 6;
  options.root_seed = 7;
  options.threads = 4;
  const market::Scenario proto = market::random_market_prototype(12, 2, 5.0, 7);
  return sim::run_market_batch(proto, options);
}

TEST(Parity, ChainBatchHashUnchangedWithObsOff) {
  const std::uint64_t with_obs = run_parity_chain_batch().values_hash();
  std::uint64_t without_obs = 0;
  {
    EnabledGuard off(false);
    without_obs = run_parity_chain_batch().values_hash();
  }
  EXPECT_EQ(with_obs, without_obs);
}

TEST(Parity, MarketBatchHashUnchangedWithObsOff) {
  const std::uint64_t with_obs = run_parity_market_batch().values_hash();
  std::uint64_t without_obs = 0;
  {
    EnabledGuard off(false);
    without_obs = run_parity_market_batch().values_hash();
  }
  EXPECT_EQ(with_obs, without_obs);
}

// ------------------------------------------------------- batch progress

TEST(BatchProgress, FixedBatchReportsMonotoneWaves) {
  sim::ReferenceChainParams params;
  params.miners = 16;
  params.chains = 2;
  params.days = 1.0;
  sim::TrajectoryBatchOptions options;
  options.replicas = 24;
  options.root_seed = 11;
  options.threads = 4;
  options.progress_interval = 8;
  std::vector<sim::BatchProgress> reports;
  options.on_progress = [&reports](const sim::BatchProgress& progress) {
    reports.push_back(progress);
  };
  const auto factory = [&](std::uint64_t seed) {
    return sim::make_reference_chain(params, sim::EngineKind::kFlat, seed);
  };
  const sim::TrajectoryBatchResult result =
      sim::run_chain_batch(factory, options);
  ASSERT_EQ(reports.size(), 3u);  // 24 replicas / interval 8
  std::size_t previous = 0;
  for (const sim::BatchProgress& progress : reports) {
    EXPECT_GT(progress.completed, previous);
    EXPECT_EQ(progress.requested, 24u);
    EXPECT_EQ(progress.ci_halfwidth, 0.0);  // fixed R: no stopping metric
    previous = progress.completed;
  }
  EXPECT_EQ(reports.back().completed, result.replicas());

  // The reporting chunks are observational only: the same batch without a
  // callback produces the identical value matrix.
  sim::TrajectoryBatchOptions plain = options;
  plain.on_progress = nullptr;
  EXPECT_TRUE(
      sim::run_chain_batch(factory, plain).deterministic_equals(result));
}

TEST(BatchProgress, AdaptiveBatchReportsCiAtWaveBoundaries) {
  sim::ReferenceChainParams params;
  params.miners = 16;
  params.chains = 2;
  params.days = 1.0;
  sim::TrajectoryBatchOptions options;
  options.root_seed = 5;
  options.threads = 4;
  sim::StoppingRule rule;
  rule.metric = "blocks_total";
  rule.tolerance = 0.0;  // never met: the batch escalates to max_replicas
  rule.min_replicas = 8;
  rule.max_replicas = 24;
  rule.wave = 8;
  options.stopping = rule;
  std::vector<sim::BatchProgress> reports;
  options.on_progress = [&reports](const sim::BatchProgress& progress) {
    reports.push_back(progress);
  };
  const auto factory = [&](std::uint64_t seed) {
    return sim::make_reference_chain(params, sim::EngineKind::kFlat, seed);
  };
  const sim::TrajectoryBatchResult result =
      sim::run_chain_batch(factory, options);
  ASSERT_GE(reports.size(), 2u);  // min 8, then waves of 8 up to 24
  std::size_t previous = 0;
  for (const sim::BatchProgress& progress : reports) {
    EXPECT_GT(progress.completed, previous);
    EXPECT_EQ(progress.requested, 24u);
    EXPECT_GT(progress.ci_halfwidth, 0.0);  // a live CI over >= 2 replicas
    previous = progress.completed;
  }
  EXPECT_EQ(reports.back().completed, result.replicas());
  EXPECT_EQ(result.stop_reason(), sim::StopReason::kMaxReplicas);
}

}  // namespace
}  // namespace goc::obs
