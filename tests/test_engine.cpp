#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/generators.hpp"
#include "dynamics/learning.hpp"
#include "engine/cancel.hpp"
#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"
#include "equilibrium/welfare.hpp"
#include "sim/batch_cli.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace goc::engine {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(3);
  auto a = pool.submit([] { return 7; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, InlineModeRunsOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  const auto caller = std::this_thread::get_id();
  auto ran_on = pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(ran_on.get(), caller);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> visits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ParallelForChunksCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    for (const std::size_t grain :
         {std::size_t{1}, std::size_t{7}, std::size_t{256}, std::size_t{5000}}) {
      ThreadPool pool(threads);
      constexpr std::size_t kCount = 1000;
      std::vector<std::atomic<int>> visits(kCount);
      pool.parallel_for_chunks(kCount, grain,
                               [&](std::size_t begin, std::size_t end) {
                                 ASSERT_LE(begin, end);
                                 ASSERT_LE(end, kCount);
                                 for (std::size_t i = begin; i < end; ++i) {
                                   ++visits[i];
                                 }
                               });
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(visits[i].load(), 1)
            << "threads=" << threads << " grain=" << grain << " index=" << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelForChunksHandlesDegenerateArguments) {
  ThreadPool pool(2);
  // Empty range: the callback never fires.
  pool.parallel_for_chunks(0, 16, [](std::size_t, std::size_t) { FAIL(); });
  // Grain 0 is clamped to 1 rather than dividing by zero.
  std::vector<std::atomic<int>> visits(5);
  pool.parallel_for_chunks(5, 0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(visits[i].load(), 1);
  // A grain covering the whole range runs as one direct call.
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(10, 100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForChunksMatchesSerialAccumulation) {
  // Disjoint chunk writes into a plain vector must land identically with
  // and without workers.
  const auto run_with = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(777, 0.0);
    pool.parallel_for_chunks(out.size(), 64,
                             [&](std::size_t begin, std::size_t end) {
                               for (std::size_t i = begin; i < end; ++i) {
                                 out[i] = static_cast<double>(i) * 1.5 + 0.25;
                               }
                             });
    return out;
  };
  EXPECT_EQ(run_with(0), run_with(4));
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

// ---------------------------------------------------------- grid expansion

SweepSpec small_spec() {
  SweepSpec spec;
  spec.base.power_lo = 1;
  spec.base.power_hi = 50;
  spec.base.reward_lo = 10;
  spec.base.reward_hi = 1000;
  spec.miner_counts = {4, 8};
  spec.coin_counts = {2, 3};
  spec.power_shapes = {PowerShape::kUniform, PowerShape::kPareto};
  spec.reward_shapes = {RewardShape::kUniform};
  spec.scheduler_kinds = {SchedulerKind::kRandomMove,
                          SchedulerKind::kRoundRobin,
                          SchedulerKind::kMaxGain};
  spec.trials = 3;
  spec.root_seed = 99;
  return spec;
}

TEST(SweepSpec, GridCardinalityIsAxisProductTimesTrials) {
  const SweepSpec spec = small_spec();
  // 2 miners × 2 coins × 2 powers × 1 rewards × 3 schedulers × 3 trials.
  EXPECT_EQ(spec.grid_size(), 2u * 2u * 2u * 1u * 3u * 3u);
  EXPECT_EQ(spec.expand().size(), spec.grid_size());
}

TEST(SweepSpec, EmptyAxesFallBackToBaseSpec) {
  SweepSpec spec;
  spec.base.num_miners = 6;
  spec.base.num_coins = 4;
  spec.trials = 2;
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].game_spec.num_miners, 6u);
  EXPECT_EQ(tasks[0].game_spec.num_coins, 4u);
  EXPECT_EQ(tasks[0].trial, 0u);
  EXPECT_EQ(tasks[1].trial, 1u);
}

TEST(SweepSpec, TaskSeedsAreDistinctAndDeterministic) {
  const SweepSpec spec = small_spec();
  const auto tasks = spec.expand();
  std::set<std::uint64_t> seeds;
  for (const SweepTask& task : tasks) {
    seeds.insert(task.game_seed);
    seeds.insert(task.scheduler_seed);
    EXPECT_EQ(task.game_seed, task_seed(spec.root_seed, task.grid_index, 0));
    EXPECT_EQ(task.scheduler_seed,
              task_seed(spec.root_seed, task.grid_index, 1));
  }
  EXPECT_EQ(seeds.size(), 2 * tasks.size()) << "seed collision";
}

TEST(SweepSpec, FilterPrunesWithoutReseedingSurvivors) {
  SweepSpec spec = small_spec();
  const auto all_tasks = spec.expand();
  spec.filter = [](const SweepTask& task) {
    return task.game_spec.num_miners != 8;
  };
  const auto pruned = spec.expand();
  ASSERT_LT(pruned.size(), all_tasks.size());
  for (const SweepTask& task : pruned) {
    EXPECT_NE(task.game_spec.num_miners, 8u);
    // The survivor keeps the seeds it had in the unfiltered grid.
    EXPECT_EQ(task.game_seed, all_tasks[task.grid_index].game_seed);
    EXPECT_EQ(task.scheduler_seed, all_tasks[task.grid_index].scheduler_seed);
  }
}

// ------------------------------------------------------------ determinism

TEST(SweepRunner, OneThreadAndManyThreadsProduceBitIdenticalResults) {
  const SweepSpec spec = small_spec();
  const SweepResult serial = SweepRunner({/*threads=*/1}).run(spec);
  const SweepResult parallel = SweepRunner({/*threads=*/8}).run(spec);

  ASSERT_EQ(serial.records().size(), parallel.records().size());
  EXPECT_TRUE(serial.deterministic_equals(parallel));
  for (std::size_t i = 0; i < serial.records().size(); ++i) {
    EXPECT_TRUE(serial.records()[i].deterministic_equals(parallel.records()[i]))
        << "record " << i;
  }
  // The emitted artifacts (timing columns excluded) are bit-identical too.
  EXPECT_EQ(serial.to_csv(/*include_timing=*/false),
            parallel.to_csv(/*include_timing=*/false));
  EXPECT_EQ(serial.to_json(/*include_timing=*/false),
            parallel.to_json(/*include_timing=*/false));
}

TEST(SweepRunner, EngineReproducesTheDirectSerialPath) {
  // One task replayed by hand with the same derived seeds must match the
  // engine's record exactly: the engine adds scheduling, not semantics.
  const SweepSpec spec = small_spec();
  const auto tasks = spec.expand();
  const SweepResult result = SweepRunner({/*threads=*/4}).run(spec);
  ASSERT_EQ(result.records().size(), tasks.size());

  for (const std::size_t i : {std::size_t{0}, tasks.size() / 2}) {
    const SweepTask& task = tasks[i];
    Rng rng(task.game_seed);
    const Game game = random_game(task.game_spec, rng);
    const Configuration start = random_configuration(game, rng);
    auto scheduler = make_scheduler(task.scheduler, task.scheduler_seed);
    const LearningResult learned =
        run_learning(game, start, *scheduler, spec.learning);
    EXPECT_EQ(result.records()[i].steps, learned.steps);
    EXPECT_EQ(result.records()[i].converged, learned.converged);
    const double welfare =
        (distributed_reward(game, learned.final_configuration) /
         game.rewards().total_reward())
            .to_double();
    EXPECT_EQ(result.records()[i].welfare_efficiency, welfare);
  }
}

TEST(SweepRunner, IndexAndScanPathsProduceBitIdenticalRecords) {
  // The --compare-scan contract: a sweep scheduled through the incremental
  // BestResponseIndex must reproduce the from-scratch scan path's records
  // exactly — including the per-trajectory move hash, i.e. every scenario
  // picked the same move sequence.
  SweepSpec spec = small_spec();
  spec.scheduler_kinds = all_scheduler_kinds();
  spec.learning.use_index = true;
  const SweepResult indexed = SweepRunner({/*threads=*/4}).run(spec);
  spec.learning.use_index = false;
  const SweepResult scanned = SweepRunner({/*threads=*/4}).run(spec);
  ASSERT_EQ(indexed.records().size(), scanned.records().size());
  EXPECT_TRUE(indexed.deterministic_equals(scanned));
  for (std::size_t i = 0; i < indexed.records().size(); ++i) {
    EXPECT_EQ(indexed.records()[i].move_hash, scanned.records()[i].move_hash)
        << "record " << i;
  }
}

// ------------------------------------------------------------ aggregation

TEST(SweepResult, AggregatesMatchHandComputedStats) {
  SweepSpec spec;
  spec.base.num_miners = 10;
  spec.base.num_coins = 3;
  spec.scheduler_kinds = {SchedulerKind::kRoundRobin,
                          SchedulerKind::kLexicographic};
  spec.trials = 4;
  spec.root_seed = 7;
  const SweepResult result = SweepRunner({/*threads=*/2}).run(spec);

  ASSERT_EQ(result.records().size(), 8u);
  ASSERT_EQ(result.points().size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    const SweepPointStats& point = result.points()[p];
    EXPECT_EQ(point.trials, 4u);
    double steps_sum = 0.0;
    double steps_max = 0.0;
    std::size_t converged = 0;
    for (std::size_t t = 0; t < 4; ++t) {
      const SweepRecord& record = result.records()[p * 4 + t];
      EXPECT_EQ(record.task.scheduler, point.scheduler);
      steps_sum += static_cast<double>(record.steps);
      steps_max = std::max(steps_max, static_cast<double>(record.steps));
      if (record.converged) ++converged;
    }
    EXPECT_DOUBLE_EQ(point.steps.mean(), steps_sum / 4.0);
    EXPECT_DOUBLE_EQ(point.steps.max(), steps_max);
    EXPECT_EQ(point.converged, converged);
    EXPECT_EQ(point.steps.count(), 4u);
  }
}

TEST(SweepResult, ConvergedRunsReportConsistentMetricsAndTheoremOneHolds) {
  // Theorem 1: every scheduler converges (audited against the ordinal
  // potential). Welfare efficiency is the distributed-reward fraction, so
  // it is exactly 1 iff every coin is occupied (random games need not
  // satisfy Assumption 1, so an unmined dust coin is legitimate).
  SweepSpec spec;
  spec.base.num_miners = 12;
  spec.base.num_coins = 3;
  spec.scheduler_kinds = all_scheduler_kinds();
  spec.trials = 2;
  spec.root_seed = 2021;
  spec.audit_max_miners = 100;  // audit the potential on every run
  const SweepResult result = SweepRunner({/*threads=*/4}).run(spec);
  EXPECT_TRUE(result.all_converged());
  for (const SweepRecord& record : result.records()) {
    EXPECT_GT(record.welfare_efficiency, 0.0);
    EXPECT_LE(record.welfare_efficiency, 1.0);
    EXPECT_EQ(record.welfare_efficiency == 1.0, record.occupied_coins == 3u);
    EXPECT_GE(record.occupied_coins, 1u);
    EXPECT_GT(record.rpu_fairness, 0.0);
    EXPECT_LE(record.max_domination_share, 1.0);
  }
}

TEST(SweepResult, TableHasOneRowPerGridPoint) {
  const SweepSpec spec = small_spec();
  const SweepResult result = SweepRunner({/*threads=*/2}).run(spec);
  // 2 × 2 × 2 × 1 × 3 grid points (trials collapse into rows).
  EXPECT_EQ(result.to_table().rows(), 24u);
  EXPECT_EQ(result.points().size(), 24u);
}

// ------------------------------------------------- pool sharing + cancel

TEST(SweepRunner, SharedPoolMatchesOwnedPoolBitForBit) {
  const SweepSpec spec = small_spec();
  const SweepResult owned = SweepRunner({/*threads=*/4}).run(spec);
  ThreadPool pool(3);  // + the driving thread = 4 lanes
  SweepRunner::Options options;
  options.pool = &pool;
  const SweepResult shared = SweepRunner(options).run(spec);
  EXPECT_TRUE(owned.deterministic_equals(shared));
}

TEST(SweepRunner, StaleCancelViewAbortsTheSweep) {
  const SweepSpec spec = small_spec();
  CancelToken token;
  SweepRunner::Options options;
  options.threads = 2;
  options.cancel = CancelView::of(token);
  token.invalidate();  // stale before the sweep starts
  EXPECT_THROW(SweepRunner(options).run(spec), Cancelled);
  // A fresh view runs normally.
  options.cancel = CancelView::of(token);
  EXPECT_NO_THROW(SweepRunner(options).run(spec));
}

// ------------------------------------------------------------ batch CLI

/// Regression: `apply_batch_cli` once resolved `--stop-max` as
/// `cli.get_u64("stop-max", options.replicas)`, silently flattening a
/// caller's pre-seeded `stopping->max_replicas` ceiling to the replica
/// count whenever the flag was absent.
TEST(BatchCli, PreSeededStoppingRuleSurvivesWithoutStopMax) {
  sim::TrajectoryBatchOptions options;
  options.replicas = 64;
  sim::StoppingRule rule;
  rule.metric = "blocks_total";
  rule.tolerance = 0.02;
  rule.relative = true;
  rule.max_replicas = 1024;  // a deliberate, wider-than-replicas ceiling
  rule.wave = 8;
  options.stopping = rule;

  const char* argv[] = {"test", "--stop-tol=0.01"};
  sim::apply_batch_cli(Cli(2, argv), options);
  ASSERT_TRUE(options.stopping.has_value());
  EXPECT_EQ(options.stopping->metric, "blocks_total");
  EXPECT_DOUBLE_EQ(options.stopping->tolerance, 0.01);  // flag applied
  EXPECT_EQ(options.stopping->max_replicas, 1024u);     // ceiling survives
  EXPECT_EQ(options.stopping->wave, 8u);

  // An explicit --stop-max still overrides the pre-seeded ceiling.
  const char* argv_max[] = {"test", "--stop-max=32"};
  sim::apply_batch_cli(Cli(2, argv_max), options);
  EXPECT_EQ(options.stopping->max_replicas, 32u);

  // Without pre-seeding, --stop-max still defaults to --replicas.
  sim::TrajectoryBatchOptions fresh;
  const char* argv_fresh[] = {"test", "--replicas=48",
                              "--stop-metric=share_mae"};
  sim::apply_batch_cli(Cli(3, argv_fresh), fresh);
  ASSERT_TRUE(fresh.stopping.has_value());
  EXPECT_EQ(fresh.stopping->max_replicas, 48u);
}

TEST(BatchCli, NoStoppingFlagsLeaveOptionsAlone) {
  sim::TrajectoryBatchOptions options;
  const char* argv[] = {"test", "--replicas=8"};
  sim::apply_batch_cli(Cli(2, argv), options);
  EXPECT_EQ(options.replicas, 8u);
  EXPECT_FALSE(options.stopping.has_value());
  EXPECT_FALSE(options.checkpoint.has_value());
}

// ------------------------------------------------------------ Cli::unknown

TEST(CliUnknown, FlagsOutsideTheKnownSet) {
  const char* argv[] = {"prog", "--alpha=1", "--beta", "--gamma", "2"};
  const Cli cli(5, argv);
  EXPECT_TRUE(cli.unknown({"alpha", "beta", "gamma"}).empty());
  EXPECT_EQ(cli.unknown({"alpha", "gamma"}),
            (std::vector<std::string>{"beta"}));
  EXPECT_EQ(cli.unknown({}), (std::vector<std::string>{"alpha", "beta",
                                                       "gamma"}));
  // Positional arguments are not options and never flagged.
  const char* argv_pos[] = {"prog", "file.txt"};
  EXPECT_TRUE(Cli(2, argv_pos).unknown({}).empty());
}

}  // namespace
}  // namespace goc::engine
