#include <gtest/gtest.h>

#include <cmath>

#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "market/fig1_replay.hpp"

namespace goc::market {
namespace {

// --------------------------------------------------------- reward hook

TEST(RewardHook, UpdatesFiatRewardsPerEpoch) {
  using namespace goc::chain;
  std::vector<ChainSpec> chains;
  chains.push_back(ChainSpec{"c", 10.0, 1.0 / 6.0, 100.0,
                             std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0)});
  ChainSimOptions opts;
  opts.duration_hours = 10.0;
  opts.policy = MinerPolicy::kStatic;
  opts.seed = 1;
  MultiChainSimulator sim({60.0}, std::move(chains), opts);
  // Reward doubles every hour; the timeline must reflect it.
  sim.set_reward_hook([](std::size_t, double t) { return 100.0 + 50.0 * t; });
  const auto result = sim.run();
  ASSERT_GE(result.timeline.size(), 2u);
  EXPECT_LT(result.timeline.front().reward_fiat[0],
            result.timeline.back().reward_fiat[0]);
  EXPECT_NEAR(result.timeline.back().reward_fiat[0],
              100.0 + 50.0 * result.timeline.back().t_hours, 1e-9);
}

TEST(RewardHook, NonpositiveRewardRejected) {
  using namespace goc::chain;
  std::vector<ChainSpec> chains;
  chains.push_back(ChainSpec{"c", 10.0, 1.0 / 6.0, 100.0,
                             std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0)});
  ChainSimOptions opts;
  opts.duration_hours = 5.0;
  opts.seed = 1;
  MultiChainSimulator sim({60.0}, std::move(chains), opts);
  sim.set_reward_hook([](std::size_t, double) { return 0.0; });
  EXPECT_THROW(sim.run(), InvariantError);
}

TEST(MyopicHysteresis, SuppressesMarginalSwitching) {
  using namespace goc::chain;
  // Two chains, 5% profitability difference. Without hysteresis everyone
  // migrates to the slightly better one; with a 10% threshold nobody moves.
  const auto build = [](double hysteresis) {
    std::vector<ChainSpec> chains;
    chains.push_back(ChainSpec{"a", 10.0, 1.0 / 6.0, 100.0,
                               std::make_unique<FixedWindowRetarget>(1000000, 1.0 / 6.0)});
    chains.push_back(ChainSpec{"b", 10.0, 1.0 / 6.0, 105.0,
                               std::make_unique<FixedWindowRetarget>(1000000, 1.0 / 6.0)});
    ChainSimOptions opts;
    opts.duration_hours = 24.0;
    opts.policy = MinerPolicy::kMyopicDifficulty;
    opts.reevaluation_fraction = 1.0;
    opts.myopic_hysteresis = hysteresis;
    opts.seed = 3;
    std::vector<std::size_t> split{0, 0, 1, 1};
    return MultiChainSimulator({10, 10, 10, 10}, std::move(chains), opts,
                               std::move(split));
  };
  auto frictionless = build(0.0);
  EXPECT_GT(frictionless.run().migrations, 0u);
  auto frictional = build(0.10);
  EXPECT_EQ(frictional.run().migrations, 0u);
}

// --------------------------------------------------------- fig1 replay

TEST(Fig1Replay, ReproducesTheThreePhaseShape) {
  Fig1ReplayParams params;
  params.days = 24.0;
  params.shock_day = 10.0;
  params.revert_day = 13.0;
  const Fig1ReplayResult result = run_fig1_replay(params);
  EXPECT_GT(result.flip_window_share, result.pre_shock_share);
  EXPECT_LT(result.post_revert_share, result.flip_window_share);
  EXPECT_GT(result.migrations, 100u);  // sustained EDA churn
  ASSERT_EQ(result.series.size(), static_cast<std::size_t>(params.days * 24.0));
}

TEST(Fig1Replay, SeriesInternallyConsistent) {
  Fig1ReplayParams params;
  params.days = 10.0;
  params.shock_day = 4.0;
  params.revert_day = 6.0;
  const Fig1ReplayResult result = run_fig1_replay(params);
  double total_hash = result.series.front().major_hash +
                      result.series.front().minor_hash;
  for (const Fig1ReplayPoint& p : result.series) {
    EXPECT_GT(p.major_price, 0.0);
    EXPECT_GT(p.minor_price, 0.0);
    EXPECT_GT(p.minor_difficulty, 0.0);
    // Hashpower is conserved (miners only migrate).
    EXPECT_NEAR(p.major_hash + p.minor_hash, total_hash, 1e-6);
  }
  // The scripted spike is visible in the minor price path.
  const auto at_day = [&](double d) {
    return result.series[static_cast<std::size_t>(d * 24.0)].minor_price;
  };
  EXPECT_GT(at_day(4.5), 2.0 * at_day(3.5));
}

TEST(Fig1Replay, DeterministicPerSeed) {
  Fig1ReplayParams params;
  params.days = 6.0;
  params.shock_day = 2.0;
  params.revert_day = 4.0;
  const Fig1ReplayResult a = run_fig1_replay(params);
  const Fig1ReplayResult b = run_fig1_replay(params);
  ASSERT_EQ(a.series.size(), b.series.size());
  EXPECT_EQ(a.migrations, b.migrations);
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[i].minor_hash, b.series[i].minor_hash);
    EXPECT_DOUBLE_EQ(a.series[i].minor_price, b.series[i].minor_price);
  }
}

TEST(Fig1Replay, ValidatesParameters) {
  Fig1ReplayParams params;
  params.shock_day = 20.0;
  params.revert_day = 10.0;
  EXPECT_THROW(run_fig1_replay(params), std::invalid_argument);
  Fig1ReplayParams tiny;
  tiny.miners = 2;
  EXPECT_THROW(run_fig1_replay(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace goc::market
