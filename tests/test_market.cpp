#include <gtest/gtest.h>

#include <cmath>

#include "market/fee_market.hpp"
#include "market/market_sim.hpp"
#include "market/price_process.hpp"
#include "market/scenario.hpp"
#include "util/stats.hpp"

namespace goc::market {
namespace {

// ---------------------------------------------------------- price processes

TEST(Gbm, PositiveAndDeterministic) {
  GbmProcess a(100.0, 0.0, 0.05);
  GbmProcess b(100.0, 0.0, 0.05);
  Rng r1(1), r2(1);
  for (int i = 0; i < 200; ++i) {
    const double pa = a.step(1.0, r1);
    const double pb = b.step(1.0, r2);
    ASSERT_GT(pa, 0.0);
    ASSERT_DOUBLE_EQ(pa, pb);
  }
}

TEST(Gbm, DriftMovesTheMean) {
  // Strong positive drift should lift the 30-day mean well above start.
  RunningStats finals;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    GbmProcess p(100.0, 0.05, 0.02);
    Rng rng(seed);
    for (int day = 0; day < 30 * 24; ++day) p.step(1.0, rng);
    finals.add(p.price());
  }
  EXPECT_GT(finals.mean(), 100.0 * std::exp(0.05 * 30) * 0.8);
}

TEST(Gbm, ResetRestoresInitialPrice) {
  GbmProcess p(42.0, 0.0, 0.1);
  Rng rng(3);
  p.step(5.0, rng);
  EXPECT_NE(p.price(), 42.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.price(), 42.0);
}

TEST(Gbm, RejectsBadParameters) {
  EXPECT_THROW(GbmProcess(0.0, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(GbmProcess(1.0, 0.0, -0.1), std::invalid_argument);
  GbmProcess p(1.0, 0.0, 0.1);
  Rng rng(1);
  EXPECT_THROW(p.step(0.0, rng), std::invalid_argument);
}

TEST(JumpDiffusion, JumpsWidenTheDistribution) {
  RunningStats no_jumps, jumps;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    JumpDiffusionProcess a(100.0, 0.0, 0.02, 0.0, 0.0, 0.3);
    JumpDiffusionProcess b(100.0, 0.0, 0.02, 1.0, 0.0, 0.3);
    Rng r1(seed), r2(seed + 1000);
    for (int h = 0; h < 24 * 20; ++h) {
      a.step(1.0, r1);
      b.step(1.0, r2);
    }
    no_jumps.add(std::log(a.price()));
    jumps.add(std::log(b.price()));
  }
  EXPECT_GT(jumps.stddev(), no_jumps.stddev());
}

TEST(ScheduledShock, FiresOnceAtTheRightTime) {
  // Constant base (σ=0, μ=0) isolates the scripted shock.
  auto base = std::make_unique<GbmProcess>(100.0, 0.0, 0.0);
  ScheduledShockProcess p(std::move(base),
                          {{10.0, 2.0}, {20.0, 0.5}});
  Rng rng(1);
  for (int h = 1; h <= 30; ++h) {
    p.step(1.0, rng);
    if (h < 10) {
      EXPECT_NEAR(p.price(), 100.0, 1e-9) << h;
    } else if (h < 20) {
      EXPECT_NEAR(p.price(), 200.0, 1e-9) << h;
    } else {
      EXPECT_NEAR(p.price(), 100.0, 1e-9) << h;
    }
  }
}

TEST(ScheduledShock, ResetRearmsShocks) {
  auto base = std::make_unique<GbmProcess>(100.0, 0.0, 0.0);
  ScheduledShockProcess p(std::move(base), {{1.0, 3.0}});
  Rng rng(1);
  p.step(2.0, rng);
  EXPECT_NEAR(p.price(), 300.0, 1e-9);
  p.reset();
  EXPECT_NEAR(p.price(), 100.0, 1e-9);
  p.step(2.0, rng);
  EXPECT_NEAR(p.price(), 300.0, 1e-9);
}

// ---------------------------------------------------------------- fee market

TEST(FeeMarket, AccrualMatchesExpectation) {
  FeeMarket fees(100.0, 0.01, 2.0);  // mean fee = 0.02, so ≈ 2/hour
  Rng rng(5);
  double total = 0.0;
  const int hours = 2000;
  for (int h = 0; h < hours; ++h) total += fees.accrue(1.0, rng);
  EXPECT_NEAR(total / hours, fees.expected_hourly(), 0.25);
}

TEST(FeeMarket, CollectDrainsPool) {
  FeeMarket fees(10.0, 1.0, 2.0);
  Rng rng(7);
  fees.accrue(5.0, rng);
  EXPECT_GT(fees.pending(), 0.0);
  const double collected = fees.collect();
  EXPECT_GT(collected, 0.0);
  EXPECT_DOUBLE_EQ(fees.pending(), 0.0);
  EXPECT_DOUBLE_EQ(fees.collect(), 0.0);
}

TEST(FeeMarket, WhaleInjection) {
  FeeMarket fees(0.001, 1.0, 2.0);
  fees.inject_whale(500.0);
  fees.inject_whale(250.0);
  EXPECT_DOUBLE_EQ(fees.whale_total(), 750.0);
  EXPECT_GE(fees.pending(), 750.0);
  EXPECT_GE(fees.collect(), 750.0);
}

TEST(FeeMarket, RejectsBadParameters) {
  EXPECT_THROW(FeeMarket(-1.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(FeeMarket(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(FeeMarket(1.0, 1.0, 1.0), std::invalid_argument);
  FeeMarket fees(1.0, 1.0, 2.0);
  EXPECT_THROW(fees.inject_whale(-5.0), std::invalid_argument);
}

// ----------------------------------------------------------------- simulator

MarketSimulator tiny_market(std::uint64_t seed, std::uint64_t br_cap = 0) {
  std::vector<CoinSpec> coins;
  coins.emplace_back("a", 10.0, 6.0,
                     std::make_unique<GbmProcess>(100.0, 0.0, 0.01),
                     FeeMarket(10.0, 0.01, 2.0));
  coins.emplace_back("b", 10.0, 6.0,
                     std::make_unique<GbmProcess>(50.0, 0.0, 0.01),
                     FeeMarket(10.0, 0.01, 2.0));
  MarketOptions opts;
  opts.epochs = 48;
  opts.br_steps_per_epoch = br_cap;
  opts.seed = seed;
  return MarketSimulator({5, 4, 3, 2, 1, 1}, std::move(coins), opts);
}

TEST(MarketSim, SharesFormDistribution) {
  MarketSimulator sim = tiny_market(1);
  const auto records = sim.run();
  ASSERT_EQ(records.size(), 48u);
  for (const EpochRecord& rec : records) {
    double total = 0.0;
    for (const double share : rec.hashrate_share) {
      EXPECT_GE(share, 0.0);
      total += share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(rec.weights[0], 0.0);
    EXPECT_GT(rec.prices[0], 0.0);
  }
}

TEST(MarketSim, ConvergencePerEpochWhenUncapped) {
  // br_steps_per_epoch = 0 → run to equilibrium every epoch.
  MarketSimulator sim = tiny_market(2, 0);
  const auto records = sim.run();
  for (const EpochRecord& rec : records) {
    EXPECT_TRUE(rec.at_equilibrium);
  }
}

TEST(MarketSim, DeterministicForSeed) {
  MarketSimulator a = tiny_market(3);
  MarketSimulator b = tiny_market(3);
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].prices[0], rb[i].prices[0]);
    EXPECT_DOUBLE_EQ(ra[i].hashrate_share[1], rb[i].hashrate_share[1]);
  }
}

TEST(MarketSim, WhaleInjectionShiftsWeight) {
  MarketSimulator sim = tiny_market(4, 0);
  sim.inject_whale(1, 1e9);  // native units; enormous relative to subsidy
  const auto records = sim.run();
  // First epoch: coin b's weight dominated by the whale fee → everyone
  // migrates there.
  EXPECT_GT(records.front().weights[1], records.front().weights[0]);
  EXPECT_GT(records.front().hashrate_share[1], 0.99);
  // Whale gone: weights revert and so does hashrate (coin a is heavier).
  EXPECT_GT(records.back().hashrate_share[0], 0.5);
}

// ------------------------------------------------------------- fork flip E1/E2

TEST(ForkFlip, ReproducesFigureOneShape) {
  ForkFlipParams params;
  params.days = 20.0;
  params.shock_day = 8.0;
  params.revert_day = 12.0;
  MarketSimulator sim = fork_flip_scenario(params);
  const auto records = sim.run();
  ASSERT_EQ(records.size(), 480u);

  const auto share_at_day = [&](double day) {
    return records[static_cast<std::size_t>(day * 24.0) - 1].hashrate_share[1];
  };
  const auto price_ratio_at_day = [&](double day) {
    const auto& r = records[static_cast<std::size_t>(day * 24.0) - 1];
    return r.prices[1] / r.prices[0];
  };

  // Before the shock: BCH-like coin is minor in price and hashrate.
  EXPECT_LT(price_ratio_at_day(7.0), 0.25);
  EXPECT_LT(share_at_day(7.0), 0.35);
  // Right after the shock: price ratio jumps and miners pile in (Fig 1b's
  // spike).
  EXPECT_GT(price_ratio_at_day(9.0), price_ratio_at_day(7.0) * 2.0);
  EXPECT_GT(share_at_day(9.0), share_at_day(7.0));
  // After reversal, the inrush partially unwinds.
  EXPECT_LT(share_at_day(19.0), share_at_day(9.0));
}

TEST(ForkFlip, ValidatesParameters) {
  ForkFlipParams params;
  params.shock_day = 20.0;
  params.revert_day = 10.0;
  EXPECT_THROW(fork_flip_scenario(params), std::invalid_argument);
}

TEST(RandomMarket, RunsAndStaysConsistent) {
  MarketSimulator sim = random_market_scenario(24, 4, 5.0, 9);
  const auto records = sim.run();
  ASSERT_EQ(records.size(), 120u);
  for (const auto& rec : records) {
    double total = 0.0;
    for (double share : rec.hashrate_share) total += share;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace goc::market
