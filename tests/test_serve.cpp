#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/cancel.hpp"
#include "obs/registry.hpp"
#include "serve/job_table.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "sim/scenarios.hpp"
#include "sim/trajectory.hpp"

namespace goc::serve {
namespace {

// ------------------------------------------------------------ request

TEST(Request, TokenizeSplitsOnWhitespaceAndStripsCr) {
  EXPECT_EQ(tokenize("submit batch --replicas=4"),
            (std::vector<std::string>{"submit", "batch", "--replicas=4"}));
  EXPECT_EQ(tokenize("  status \t 7 \r"),
            (std::vector<std::string>{"status", "7"}));
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize(" \t \r").empty());
}

TEST(Request, CliFromTokensSharesCliConventions) {
  const Cli cli = cli_from_tokens(
      "goc-serve:batch", {"--replicas=4", "--stop-rel", "--seed", "11"});
  EXPECT_EQ(cli.get_u64("replicas", 0), 4u);
  EXPECT_TRUE(cli.get_bool("stop-rel", false));
  EXPECT_EQ(cli.get_u64("seed", 0), 11u);
  EXPECT_THROW(reject_unknown(cli, {"replicas", "seed"}),
               std::invalid_argument);
  EXPECT_NO_THROW(reject_unknown(cli, {"replicas", "stop-rel", "seed"}));
}

TEST(Request, ParseSizeList) {
  EXPECT_EQ(parse_size_list("4,8,16", "--miners"),
            (std::vector<std::size_t>{4, 8, 16}));
  EXPECT_TRUE(parse_size_list("", "--miners").empty());
  EXPECT_THROW(parse_size_list("4,x", "--miners"), std::invalid_argument);
}

TEST(Request, NameParsersRoundTripAndRejectUnknown) {
  EXPECT_EQ(power_shape_from_name("pareto"), PowerShape::kPareto);
  EXPECT_EQ(reward_shape_from_name("majors"), RewardShape::kMajors);
  EXPECT_EQ(scheduler_kind_from_name("max-gain"), SchedulerKind::kMaxGain);
  EXPECT_THROW(power_shape_from_name("bogus"), std::invalid_argument);
  EXPECT_THROW(reward_shape_from_name("bogus"), std::invalid_argument);
  EXPECT_THROW(scheduler_kind_from_name("bogus"), std::invalid_argument);
}

// ------------------------------------------------------------ job table

TEST(JobTable, LifecycleDoneAndFetchedOnce) {
  JobTable table;
  const std::uint64_t id = table.submit(
      "test", [](const engine::CancelView&, const JobTable::ProgressFn&) {
        JobOutcome outcome;
        outcome.json = "{}\n";
        outcome.values_hash = 42;
        outcome.summary = "answer";
        return outcome;
      });
  const auto fetched = table.fetch(id, /*wait=*/true);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->status.state, JobState::kDone);
  EXPECT_EQ(fetched->outcome.values_hash, 42u);
  // Retained-until-fetched: the entry is gone after the first fetch.
  EXPECT_FALSE(table.fetch(id, true).has_value());
  EXPECT_EQ(table.size(), 0u);
}

TEST(JobTable, FailedJobReportsDetail) {
  JobTable table;
  const std::uint64_t id = table.submit(
      "test",
      [](const engine::CancelView&, const JobTable::ProgressFn&) -> JobOutcome {
        throw std::runtime_error("boom");
      });
  const auto fetched = table.fetch(id, true);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->status.state, JobState::kFailed);
  EXPECT_NE(fetched->status.detail.find("boom"), std::string::npos);
}

TEST(JobTable, CancelMarksPromptlyAndWorkUnwinds) {
  JobTable table;
  std::atomic<bool> started{false};
  const std::uint64_t id = table.submit(
      "test",
      [&](const engine::CancelView& cancel,
          const JobTable::ProgressFn&) -> JobOutcome {
        started = true;
        for (;;) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          cancel.throw_if_stale("test job cancelled");
        }
      });
  while (!started) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // cancel returns immediately — the work is still inside its poll loop.
  EXPECT_TRUE(table.cancel(id));
  const auto status = table.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_FALSE(table.cancel(id));  // already terminal
  const auto fetched = table.fetch(id, true);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->status.state, JobState::kCancelled);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.cancel(9999));  // unknown id
}

TEST(JobTable, ShutdownCancelsEverything) {
  JobTable table;
  for (int i = 0; i < 3; ++i) {
    table.submit(
        "test",
        [](const engine::CancelView& cancel,
           const JobTable::ProgressFn&) -> JobOutcome {
          for (;;) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            cancel.throw_if_stale("shutdown");
          }
        });
  }
  table.shutdown();
  EXPECT_EQ(table.size(), 0u);
}

// ------------------------------------------------------------ protocol

std::string respond(Server& server, const std::string& line) {
  std::ostringstream out;
  server.handle_line(line, out);
  return out.str();
}

std::uint64_t values_hash_of(const std::string& reply) {
  const std::string key = "values_hash=";
  const std::size_t pos = reply.find(key);
  EXPECT_NE(pos, std::string::npos) << "no values_hash in: " << reply;
  if (pos == std::string::npos) return 0;
  return std::stoull(reply.substr(pos + key.size()));
}

TEST(Server, PingHelpAndUnknownCommand) {
  Server server(ServerOptions{2});
  EXPECT_EQ(respond(server, "ping"), "ok pong\n");
  EXPECT_EQ(respond(server, ""), "");          // blank: no response
  EXPECT_EQ(respond(server, "# comment"), ""); // comment: no response
  const std::string help = respond(server, "help");
  EXPECT_NE(help.find("ok help"), std::string::npos);
  const std::string err = respond(server, "frobnicate 1");
  EXPECT_EQ(err.rfind("err ", 0), 0u);
  std::ostringstream out;
  EXPECT_FALSE(server.handle_line("quit", out));
  EXPECT_EQ(out.str(), "ok bye\n");
}

TEST(Server, RejectsUnknownFlagsAndKinds) {
  Server server(ServerOptions{2});
  const std::string err = respond(server, "submit batch --replicaz=4");
  EXPECT_EQ(err.rfind("err ", 0), 0u);
  EXPECT_NE(err.find("replicaz"), std::string::npos);
  EXPECT_EQ(respond(server, "submit frob").rfind("err ", 0), 0u);
  EXPECT_EQ(respond(server, "status nope").rfind("err ", 0), 0u);
  EXPECT_EQ(respond(server, "result 99 --wait").rfind("err unknown job", 0),
            0u);
  EXPECT_EQ(server.jobs().size(), 0u);
}

/// The acceptance criterion: a daemon-submitted trajectory batch produces
/// a bit-identical `values_hash` to the equivalent one-shot run — the
/// scenario factory and flag grammar are single-sourced (sim/scenarios.hpp,
/// sim/batch_cli.hpp), and the batch engine is thread-count-invariant, so
/// the warm shared pool changes nothing.
TEST(Server, BatchMatchesOneShotRunBitForBit) {
  sim::ReferenceChainParams params;
  params.miners = 32;
  params.chains = 4;
  params.days = 2.0;
  sim::TrajectoryBatchOptions options;
  options.replicas = 4;
  options.root_seed = 2017;
  options.threads = 1;
  const sim::TrajectoryBatchResult oneshot = sim::run_chain_batch(
      [&](std::uint64_t seed) {
        return sim::make_reference_chain(params, sim::EngineKind::kFlat, seed);
      },
      options);

  Server server(ServerOptions{4});
  const std::string submitted = respond(
      server,
      "submit batch --scenario=chain-reference --miners=32 --chains=4 "
      "--days=2 --replicas=4 --seed=2017");
  EXPECT_EQ(submitted, "ok id=1 kind=batch\n");
  const std::string reply = respond(server, "result 1 --wait");
  EXPECT_NE(reply.find("\"title\""), std::string::npos);
  EXPECT_NE(reply.find("ok id=1 kind=batch state=done"), std::string::npos);
  EXPECT_EQ(values_hash_of(reply), oneshot.values_hash());
  EXPECT_EQ(server.jobs().size(), 0u);
}

TEST(Server, AdaptiveBatchReportsStopReason) {
  Server server(ServerOptions{4});
  respond(server,
          "batch --scenario=chain-reference --miners=16 --chains=2 --days=1 "
          "--seed=3 --replicas=8 --stop-metric=blocks_total --stop-tol=1 "
          "--stop-rel --stop-min=4 --stop-wave=4 --stop-max=16");
  const std::string reply = respond(server, "result 1 --wait");
  EXPECT_NE(reply.find("state=done"), std::string::npos);
  EXPECT_NE(reply.find("stop=tolerance"), std::string::npos);
}

TEST(Server, SweepAndEnumerateAreDeterministicAcrossSubmissions) {
  Server server(ServerOptions{4});
  const std::string sweep =
      "sweep --miners=6 --coins=2 --trials=2 --seed=7 --schedulers=max-gain";
  respond(server, sweep);
  respond(server, sweep);
  const std::string first = respond(server, "result 1 --wait");
  const std::string second = respond(server, "result 2 --wait");
  EXPECT_NE(first.find("state=done"), std::string::npos);
  EXPECT_EQ(values_hash_of(first), values_hash_of(second));

  const std::string enumerate = "enumerate --miners=5 --coins=3 --seed=5";
  respond(server, enumerate);
  respond(server, enumerate);
  const std::string e1 = respond(server, "result 3 --wait");
  const std::string e2 = respond(server, "result 4 --wait");
  EXPECT_NE(e1.find("state=done"), std::string::npos);
  EXPECT_NE(e1.find("canonical="), std::string::npos);
  EXPECT_EQ(values_hash_of(e1), values_hash_of(e2));
}

TEST(Server, CancelInFlightJobReturnsPromptlyAndFetchReportsIt) {
  Server server(ServerOptions{2});
  // A batch big enough that cancel always lands mid-flight (hundreds of
  // replicas, each itself nontrivial); the cancel poll runs per replica.
  respond(server,
          "submit batch --scenario=chain-reference --miners=128 --chains=8 "
          "--days=20 --replicas=512 --seed=1");
  const auto before = std::chrono::steady_clock::now();
  const std::string cancelled = respond(server, "cancel 1");
  const double cancel_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - before)
          .count();
  EXPECT_EQ(cancelled, "ok id=1 state=cancelled\n");
  // "Promptly": cancel only flips state and bumps the token — it must not
  // wait for the batch (which would take seconds).
  EXPECT_LT(cancel_ms, 500.0);
  const std::string status = respond(server, "status 1");
  EXPECT_NE(status.find("state=cancelled"), std::string::npos);
  const std::string reply = respond(server, "result 1 --wait");
  EXPECT_EQ(reply.rfind("err ", 0), 0u);
  EXPECT_NE(reply.find("cancelled"), std::string::npos);
  EXPECT_EQ(server.jobs().size(), 0u);
  // Double-cancel after fetch: the id no longer exists.
  EXPECT_EQ(respond(server, "cancel 1").rfind("err unknown job", 0), 0u);
}

TEST(Server, ResultWithoutWaitOnRunningJobKeepsTheEntry) {
  Server server(ServerOptions{2});
  respond(server,
          "submit batch --scenario=chain-reference --miners=128 --chains=8 "
          "--days=20 --replicas=512 --seed=1");
  const std::string reply = respond(server, "result 1");
  EXPECT_EQ(reply.rfind("err ", 0), 0u);
  EXPECT_NE(reply.find("--wait"), std::string::npos);
  EXPECT_EQ(server.jobs().size(), 1u);
  respond(server, "cancel 1");
  respond(server, "result 1 --wait");
  EXPECT_EQ(server.jobs().size(), 0u);
}

TEST(Server, JobsListsLiveEntries) {
  Server server(ServerOptions{2});
  EXPECT_EQ(respond(server, "jobs"), "ok jobs=0\n");
  respond(server, "enumerate --miners=4 --coins=2 --seed=1");
  const std::string listing = respond(server, "jobs");
  EXPECT_NE(listing.find("job id=1 kind=enumerate"), std::string::npos);
  EXPECT_NE(listing.find("ok jobs=1"), std::string::npos);
  respond(server, "result 1 --wait");
  EXPECT_EQ(respond(server, "jobs"), "ok jobs=0\n");
}

TEST(Server, StatusReportsProgressAndElapsed) {
  Server server(ServerOptions{2});
  respond(server,
          "batch --scenario=chain-reference --miners=8 --chains=2 --days=1 "
          "--replicas=4 --seed=3");
  // Poll status (which never consumes the entry) until the job lands.
  std::string status;
  for (int i = 0; i < 2000; ++i) {
    status = respond(server, "status 1");
    if (status.find("state=done") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_NE(status.find("state=done"), std::string::npos);
  EXPECT_NE(status.find(" progress=4/4"), std::string::npos);
  EXPECT_NE(status.find(" ci="), std::string::npos);
  EXPECT_NE(status.find(" elapsed_ms="), std::string::npos);
  respond(server, "result 1 --wait");
}

TEST(Server, WatchStreamsMonotoneProgressRows) {
  Server server(ServerOptions{2});
  respond(server,
          "batch --scenario=chain-reference --miners=16 --chains=2 --days=2 "
          "--replicas=64 --seed=5");
  const std::string reply = respond(server, "watch 1 --interval-ms=2");
  std::istringstream lines(reply);
  std::string line;
  std::size_t rows = 0;
  std::uint64_t previous_done = 0;
  std::string last_row;
  while (std::getline(lines, line)) {
    if (line.rfind("progress id=1 ", 0) != 0) continue;
    ++rows;
    const std::size_t pos = line.find(" progress=");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::uint64_t done =
        std::stoull(line.substr(pos + std::string(" progress=").size()));
    EXPECT_GE(done, previous_done) << line;  // monotone across rows
    previous_done = done;
    last_row = line;
  }
  // The protocol guarantee: an initial row plus a terminal row at minimum.
  EXPECT_GE(rows, 2u);
  EXPECT_NE(last_row.find("state=done"), std::string::npos);
  EXPECT_NE(last_row.find(" progress=64/64"), std::string::npos);
  EXPECT_NE(reply.find("ok id=1 rows="), std::string::npos);
  respond(server, "result 1 --wait");
  // After the fetch the id is gone; watch reports that instead of hanging.
  EXPECT_EQ(respond(server, "watch 1").rfind("err unknown job", 0), 0u);
  EXPECT_EQ(respond(server, "watch 1 --bogus=1").rfind("err ", 0), 0u);
}

TEST(Server, StatsExposesRegistryCounters) {
  Server server(ServerOptions{2});
  respond(server,
          "batch --scenario=chain-reference --miners=8 --chains=2 --days=1 "
          "--replicas=4 --seed=9");
  respond(server, "result 1 --wait");
  const std::string json = respond(server, "stats --json");
  // One compact JSON payload line, then the ok terminator.
  EXPECT_EQ(json.rfind("{\"counters\": ", 0), 0u);
  EXPECT_NE(json.find("\"serve.jobs.submitted\": "), std::string::npos);
  EXPECT_NE(json.find("\"engine.pool.tasks\": "), std::string::npos);
  EXPECT_NE(json.find("\nok stats counters="), std::string::npos);
  // The counters reflect the drained job.
  const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
  const obs::CounterSnapshot* submitted =
      snapshot.find_counter("serve.jobs.submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_GE(submitted->value, 1u);
  const obs::CounterSnapshot* pool_tasks =
      snapshot.find_counter("engine.pool.tasks");
  ASSERT_NE(pool_tasks, nullptr);
  EXPECT_GE(pool_tasks->value, 1u);
  // Default rendering is Prometheus-style exposition text.
  const std::string prom = respond(server, "stats");
  EXPECT_NE(prom.find("goc_serve_jobs_submitted "), std::string::npos);
  EXPECT_NE(prom.find("goc_engine_pool_task_run_ns_bucket{le="),
            std::string::npos);
  EXPECT_EQ(respond(server, "stats --frob").rfind("err ", 0), 0u);
}

TEST(Server, ServeLoopDrivesAFullSession) {
  Server server(ServerOptions{2});
  std::istringstream in(
      "ping\n"
      "enumerate --miners=4 --coins=2 --seed=9\n"
      "result 1 --wait\n"
      "quit\n"
      "ping\n");  // after quit: never reached
  std::ostringstream out;
  server.serve(in, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("ok pong"), std::string::npos);
  EXPECT_NE(text.find("values_hash="), std::string::npos);
  EXPECT_NE(text.find("ok bye"), std::string::npos);
  // The loop stopped at quit: exactly one pong.
  EXPECT_EQ(text.find("ok pong"), text.rfind("ok pong"));
}

}  // namespace
}  // namespace goc::serve
