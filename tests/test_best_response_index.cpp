#include <gtest/gtest.h>

#include <tuple>

#include "core/generators.hpp"
#include "core/move_compare.hpp"
#include "core/moves.hpp"
#include "dynamics/best_response_index.hpp"
#include "dynamics/learning.hpp"
#include "dynamics/scheduler.hpp"

/// The index contract: `dynamics::BestResponseIndex` must agree with the
/// scan-based reference implementation in core/moves.* on every cached
/// fact, and schedulers driven through it must pick bit-identical move
/// sequences — for every scheduler kind, under adversarial mass ties
/// (Assumption 2 off), under restricted access, and in the non-integer
/// exact-arithmetic fallback mode.

namespace goc {
namespace {

using dynamics::BestResponseIndex;

Game random_integer_game(Rng& rng) {
  GameSpec spec;
  spec.num_miners = 3 + static_cast<std::size_t>(rng.next_below(15));
  spec.num_coins = 2 + static_cast<std::size_t>(rng.next_below(5));
  spec.power_lo = 1;
  spec.power_hi = 500;
  spec.reward_lo = 10;
  spec.reward_hi = 5000;
  return random_game(spec, rng);
}

/// A game whose powers and rewards are non-integer rationals, forcing the
/// comparator off the i128 fast path.
Game rational_game() {
  std::vector<Rational> powers = {Rational(7, 3), Rational(5, 3),
                                  Rational(11, 7), Rational(1, 2),
                                  Rational(13, 6)};
  std::vector<Rational> rewards = {Rational(10, 3), Rational(7, 2),
                                   Rational(9, 4)};
  const std::size_t coins = rewards.size();
  return Game(System(std::move(powers), coins),
              RewardFunction(std::move(rewards)));
}

/// Equal powers and equal rewards: Assumption 2 (genericity) is maximally
/// violated, so post-move payoffs tie constantly and every tie-break in
/// the index is exercised.
Game tie_game(std::size_t miners, std::size_t coins) {
  return Game(System::from_integer_powers(
                  std::vector<std::int64_t>(miners, 3), coins),
              RewardFunction::constant(coins, Rational(12)));
}

void expect_index_matches_scan(const Game& g, const Configuration& s,
                               const BestResponseIndex& index) {
  ASSERT_NO_THROW(index.audit());
  EXPECT_EQ(index.unstable(), unstable_miners(g, s));
  EXPECT_EQ(index.total_improving(), all_better_response_moves(g, s).size());
  EXPECT_EQ(index.at_equilibrium(), is_equilibrium(g, s));
  for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
    const MinerId miner(p);
    EXPECT_EQ(index.best_of(miner), best_response(g, s, miner));
    const auto options = better_responses(g, s, miner);
    ASSERT_EQ(index.improving_count(miner), options.size());
    for (std::size_t i = 0; i < options.size(); ++i) {
      EXPECT_EQ(index.nth_improving(miner, i), options[i]);
    }
  }
}

// ---------------------------------------------------- configuration hook

TEST(MoveEpoch, EffectiveMovesBumpEpochAndRecordDelta) {
  const Game g = tie_game(4, 3);
  Configuration s = Configuration::all_at(g.system_ptr(), CoinId(0));
  EXPECT_EQ(s.move_epoch(), 0u);
  s.move(MinerId(2), CoinId(1));
  EXPECT_EQ(s.move_epoch(), 1u);
  EXPECT_EQ(s.last_delta().miner, MinerId(2));
  EXPECT_EQ(s.last_delta().from, CoinId(0));
  EXPECT_EQ(s.last_delta().to, CoinId(1));
  // No-op move: epoch unchanged.
  s.move(MinerId(2), CoinId(1));
  EXPECT_EQ(s.move_epoch(), 1u);
  // Copies inherit the epoch counter.
  const Configuration copy = s;
  EXPECT_EQ(copy.move_epoch(), 1u);
}

// -------------------------------------------------------- move comparator

TEST(MoveComparator, AgreesWithPayoffOrderOnRandomConfigurations) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const Game g = random_integer_game(rng);
    const MoveComparator cmp(g);
    EXPECT_TRUE(cmp.integer_mode());
    const Configuration s = random_configuration(g, rng);
    for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
      const MinerId miner(p);
      for (std::uint32_t a = 0; a < g.num_coins(); ++a) {
        for (std::uint32_t b = 0; b < g.num_coins(); ++b) {
          const Rational va = g.payoff_if_move(s, miner, CoinId(a));
          const Rational vb = g.payoff_if_move(s, miner, CoinId(b));
          EXPECT_EQ(cmp.compare(s, miner, CoinId(a), CoinId(b)), va <=> vb);
        }
      }
    }
  }
}

TEST(MoveComparator, ExactModeForNonIntegerGames) {
  const Game g = rational_game();
  const MoveComparator cmp(g);
  EXPECT_FALSE(cmp.integer_mode());
  Rng rng(7);
  const Configuration s = random_configuration(g, rng);
  for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
    const MinerId miner(p);
    for (std::uint32_t a = 0; a < g.num_coins(); ++a) {
      for (std::uint32_t b = 0; b < g.num_coins(); ++b) {
        const Rational va = g.payoff_if_move(s, miner, CoinId(a));
        const Rational vb = g.payoff_if_move(s, miner, CoinId(b));
        EXPECT_EQ(cmp.compare(s, miner, CoinId(a), CoinId(b)), va <=> vb);
      }
    }
  }
}

TEST(MoveComparator, FastModeForCommonDenominatorRewards) {
  // Non-integer rewards over integer powers: integer_mode stays off (the
  // enumeration/potential layers rely on its strict all-integers meaning)
  // but the rescaled-numerator path still applies — this is the market
  // epoch engine's workload, whose weights are from_double quantizations.
  const Game g(System::from_integer_powers({5, 9, 2, 14}, 3),
               RewardFunction({Rational(7, 4), Rational(3, 2),
                               Rational::from_double(0.371, 1 << 20)}));
  const MoveComparator cmp(g);
  EXPECT_FALSE(cmp.integer_mode());
  EXPECT_TRUE(cmp.fast_mode());
  Rng rng(19);
  const Configuration s = random_configuration(g, rng);
  for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
    const MinerId miner(p);
    for (std::uint32_t a = 0; a < g.num_coins(); ++a) {
      for (std::uint32_t b = 0; b < g.num_coins(); ++b) {
        const Rational va = g.payoff_if_move(s, miner, CoinId(a));
        const Rational vb = g.payoff_if_move(s, miner, CoinId(b));
        EXPECT_EQ(cmp.compare(s, miner, CoinId(a), CoinId(b)), va <=> vb);
      }
    }
  }
  // Non-integer powers kill both modes regardless of the rewards.
  const MoveComparator exact(rational_game());
  EXPECT_FALSE(exact.fast_mode());
}

TEST(MoveComparator, RefreshTracksReweightedRewards) {
  Rng rng(23);
  Game g = random_integer_game(rng);
  const Configuration s = random_configuration(g, rng);
  MoveComparator cmp(g);
  EXPECT_TRUE(cmp.integer_mode());
  // Swing through fractional weights and back to integers; after every
  // reweight+refresh the comparator must agree with the exact payoff
  // order and report the right mode.
  std::vector<Rational> weights(g.num_coins());
  for (int round = 0; round < 4; ++round) {
    for (std::size_t c = 0; c < weights.size(); ++c) {
      weights[c] = round % 2 == 0
                       ? Rational::from_double(
                             0.2 + 0.37 * static_cast<double>(c + round),
                             1 << 20)
                       : Rational(static_cast<std::int64_t>(3 + c + round));
    }
    g.reweight(weights);
    cmp.refresh();
    EXPECT_EQ(cmp.integer_mode(), round % 2 != 0);
    EXPECT_TRUE(cmp.fast_mode());
    for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
      const MinerId miner(p);
      for (std::uint32_t a = 0; a < g.num_coins(); ++a) {
        for (std::uint32_t b = 0; b < g.num_coins(); ++b) {
          const Rational va = g.payoff_if_move(s, miner, CoinId(a));
          const Rational vb = g.payoff_if_move(s, miner, CoinId(b));
          EXPECT_EQ(cmp.compare(s, miner, CoinId(a), CoinId(b)), va <=> vb);
        }
      }
    }
  }
}

// --------------------------------------------------- reweight primitives

TEST(RewardFunctionAssign, ReplacesInPlaceWithConstructorValidation) {
  RewardFunction f = RewardFunction::constant(3, Rational(2));
  EXPECT_THROW(f.assign({Rational(1), Rational(2)}), std::invalid_argument);
  EXPECT_THROW(f.assign({Rational(1), Rational(0), Rational(2)}),
               std::invalid_argument);
  EXPECT_THROW(f.assign({Rational(1), Rational(-3), Rational(2)}),
               std::invalid_argument);
  // Failed assigns must leave the function untouched.
  EXPECT_EQ(f(CoinId(1)), Rational(2));
  f.assign({Rational(1, 2), Rational(5), Rational(9, 4)});
  EXPECT_EQ(f(CoinId(0)), Rational(1, 2));
  EXPECT_EQ(f.min_reward(), Rational(1, 2));
  EXPECT_EQ(f.max_reward(), Rational(5));
  EXPECT_EQ(f.total_reward(), Rational(1, 2) + Rational(5) + Rational(9, 4));
  EXPECT_FALSE(f.is_symmetric());
}

TEST(GameReweight, SwapsRewardsAndKeepsSystemAndAccess) {
  Rng rng(29);
  Game g = random_integer_game(rng);
  const auto system = g.system_ptr();
  const std::vector<Rational> weights(g.num_coins(), Rational(7, 3));
  g.reweight(weights);
  EXPECT_EQ(g.system_ptr(), system);
  EXPECT_EQ(g.rewards().values(), weights);
  EXPECT_THROW(g.reweight(std::vector<Rational>(g.num_coins() + 1,
                                                Rational(1))),
               std::invalid_argument);
}

// ------------------------------------------------------- index vs scan

TEST(BestResponseIndex, FreshBuildMatchesScan) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Game g = random_integer_game(rng);
    const Configuration s = random_configuration(g, rng);
    const BestResponseIndex index(g, s);
    expect_index_matches_scan(g, s, index);
  }
}

TEST(BestResponseIndex, IncrementalSyncMatchesScanAlongTrajectories) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const Game g = random_integer_game(rng);
    Configuration s = random_configuration(g, rng);
    BestResponseIndex index(g, s);
    auto scheduler = make_scheduler(SchedulerKind::kRandomMove, 99 + trial);
    for (int step = 0; step < 200; ++step) {
      const auto move = scheduler->pick(g, s);
      if (!move) break;
      s.move(move->miner, move->to);
      index.sync(s);
      expect_index_matches_scan(g, s, index);
    }
  }
}

TEST(BestResponseIndex, InvalidationStressUnderAdversarialMassTies) {
  // Assumption 2 off: every miner identical, every reward identical — the
  // payoff landscape is wall-to-wall exact ties, so stale-best and
  // tie-break bugs in the dirty-coin invalidation cannot hide.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Game g = tie_game(12, 4);
    Rng rng(seed);
    Configuration s = random_configuration(g, rng);
    BestResponseIndex index(g, s);
    auto scheduler = make_scheduler(SchedulerKind::kRandomMove, seed * 31);
    for (int step = 0; step < 300; ++step) {
      const auto move = scheduler->pick(g, s);
      if (!move) break;
      s.move(move->miner, move->to);
      index.sync(s);
      expect_index_matches_scan(g, s, index);
    }
    EXPECT_TRUE(is_equilibrium(g, s));
  }
}

TEST(BestResponseIndex, SyncRebuildsAfterBatchedForeignMoves) {
  const Game g = tie_game(8, 3);
  Rng rng(5);
  // Everyone piled onto one coin: far from equilibrium, so at least two
  // consecutive improving moves exist.
  Configuration s = Configuration::all_at(g.system_ptr(), CoinId(0));
  BestResponseIndex index(g, s);
  // Two moves without an intervening sync: the epoch jumps by 2, so sync
  // must fall back to a full rebuild rather than replaying one delta.
  const auto moves = all_better_response_moves(g, s);
  ASSERT_GE(moves.size(), 1u);
  s.move(moves.front().miner, moves.front().to);
  const auto more = all_better_response_moves(g, s);
  ASSERT_GE(more.size(), 1u);
  s.move(more.front().miner, more.front().to);
  EXPECT_FALSE(index.in_sync(s));
  index.sync(s);
  EXPECT_TRUE(index.in_sync(s));
  expect_index_matches_scan(g, s, index);
  // Syncing to a *different* configuration object also rebuilds.
  Configuration other = random_configuration(g, rng);
  index.sync(other);
  expect_index_matches_scan(g, other, index);
}

// ------------------------------------- scheduler path equivalence (all 8)

class IndexedSchedulerEquivalence
    : public ::testing::TestWithParam<
          std::tuple<SchedulerKind, std::uint64_t>> {};

TEST_P(IndexedSchedulerEquivalence, TrajectoriesMatchMoveForMove) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  const Game g = random_integer_game(rng);
  const Configuration start = random_configuration(g, rng);

  LearningOptions scan_opts;
  scan_opts.use_index = false;
  scan_opts.record_moves = true;
  LearningOptions index_opts;
  index_opts.use_index = true;
  index_opts.record_moves = true;

  auto scan_sched = make_scheduler(kind, seed ^ 0xF00D);
  auto index_sched = make_scheduler(kind, seed ^ 0xF00D);
  const LearningResult scan = run_learning(g, start, *scan_sched, scan_opts);
  const LearningResult indexed =
      run_learning(g, start, *index_sched, index_opts);

  EXPECT_TRUE(scan.converged);
  EXPECT_TRUE(indexed.converged);
  ASSERT_EQ(scan.steps, indexed.steps) << scheduler_kind_name(kind);
  EXPECT_EQ(scan.move_hash, indexed.move_hash);
  EXPECT_TRUE(scan.final_configuration == indexed.final_configuration);
  ASSERT_EQ(scan.trace.size(), indexed.trace.size());
  for (std::size_t i = 0; i < scan.trace.size(); ++i) {
    const Move& a = scan.trace.moves()[i];
    const Move& b = indexed.trace.moves()[i];
    EXPECT_EQ(a.miner, b.miner) << "step " << i;
    EXPECT_EQ(a.from, b.from) << "step " << i;
    EXPECT_EQ(a.to, b.to) << "step " << i;
    EXPECT_EQ(a.gain, b.gain) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexedSchedulerEquivalence,
    ::testing::Combine(::testing::ValuesIn(all_scheduler_kinds()),
                       ::testing::Values(21u, 22u, 23u, 24u)));

TEST(BestResponseIndex, ReweightMatchesFreshRebuildForEveryKind) {
  // The zero-rebuild market contract: after Game::reweight +
  // BestResponseIndex::reweight, the pair must be indistinguishable from a
  // freshly constructed Game/Index — same cached facts, and bit-identical
  // move sequences under every scheduler kind (same RNG draws included).
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    Rng rng(404);
    Game g = random_integer_game(rng);
    Configuration s = random_configuration(g, rng);
    BestResponseIndex index(g, s);
    // Warm the index with incremental history so reweight starts from a
    // synced-but-nontrivial internal state, then swap in market-style
    // fractional weights.
    auto warm = make_scheduler(SchedulerKind::kRandomMiner, 9);
    for (int step = 0; step < 25; ++step) {
      const auto move = warm->pick_indexed(g, s, index);
      if (!move) break;
      s.move(move->miner, move->to);
      index.sync(s);
    }
    std::vector<Rational> weights(g.num_coins());
    for (std::size_t c = 0; c < weights.size(); ++c) {
      weights[c] = Rational::from_double(
          0.4 + 0.83 * static_cast<double>(c), 1 << 20);
    }
    g.reweight(weights);
    index.reweight();
    expect_index_matches_scan(g, s, index);

    Game fresh(g.system_ptr(), RewardFunction(weights), g.access());
    Configuration fresh_s = s;
    BestResponseIndex fresh_index(fresh, fresh_s);
    auto sched = make_scheduler(kind, 555);
    auto fresh_sched = make_scheduler(kind, 555);
    for (int step = 0; step < 200; ++step) {
      const auto a = sched->pick_indexed(g, s, index);
      const auto b = fresh_sched->pick_indexed(fresh, fresh_s, fresh_index);
      ASSERT_EQ(a.has_value(), b.has_value()) << scheduler_kind_name(kind);
      if (!a) break;
      EXPECT_EQ(a->miner, b->miner) << scheduler_kind_name(kind);
      EXPECT_EQ(a->to, b->to) << scheduler_kind_name(kind);
      EXPECT_EQ(a->gain, b->gain) << scheduler_kind_name(kind);
      s.move(a->miner, a->to);
      index.sync(s);
      fresh_s.move(b->miner, b->to);
      fresh_index.sync(fresh_s);
    }
    EXPECT_TRUE(s == fresh_s) << scheduler_kind_name(kind);
  }
}

TEST(IndexedScheduler, TieGameTrajectoriesMatchForEveryKind) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const Game g = tie_game(10, 3);
    Rng rng(77);
    const Configuration start = random_configuration(g, rng);
    LearningOptions scan_opts;
    scan_opts.use_index = false;
    LearningOptions index_opts;
    index_opts.use_index = true;
    auto a = make_scheduler(kind, 5);
    auto b = make_scheduler(kind, 5);
    const auto scan = run_learning(g, start, *a, scan_opts);
    const auto indexed = run_learning(g, start, *b, index_opts);
    EXPECT_EQ(scan.steps, indexed.steps) << scheduler_kind_name(kind);
    EXPECT_EQ(scan.move_hash, indexed.move_hash) << scheduler_kind_name(kind);
    EXPECT_TRUE(scan.final_configuration == indexed.final_configuration);
  }
}

TEST(IndexedScheduler, RestrictedAccessTrajectoriesMatch) {
  for (const SchedulerKind kind :
       {SchedulerKind::kRandomMove, SchedulerKind::kMaxGain,
        SchedulerKind::kMinGain, SchedulerKind::kLexicographic}) {
    Rng rng(31);
    GameSpec spec;
    spec.num_miners = 12;
    spec.num_coins = 5;
    Game base = random_game(spec, rng);
    AccessPolicy policy = AccessPolicy::random(12, 5, 0.5, rng);
    const Game g(base.system_ptr(), base.rewards(), policy);
    // Start everyone on an allowed coin.
    std::vector<CoinId> assignment;
    for (std::uint32_t p = 0; p < 12; ++p) {
      assignment.push_back(g.allowed_coins(MinerId(p)).front());
    }
    const Configuration start(g.system_ptr(), assignment);
    LearningOptions scan_opts;
    scan_opts.use_index = false;
    LearningOptions index_opts;
    index_opts.use_index = true;
    index_opts.audit_potential = true;  // audits the index every step
    auto a = make_scheduler(kind, 9);
    auto b = make_scheduler(kind, 9);
    const auto scan = run_learning(g, start, *a, scan_opts);
    const auto indexed = run_learning(g, start, *b, index_opts);
    EXPECT_EQ(scan.steps, indexed.steps) << scheduler_kind_name(kind);
    EXPECT_EQ(scan.move_hash, indexed.move_hash) << scheduler_kind_name(kind);
  }
}

TEST(IndexedScheduler, NonIntegerGameTrajectoriesMatch) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const Game g = rational_game();
    Rng rng(41);
    const Configuration start = random_configuration(g, rng);
    LearningOptions scan_opts;
    scan_opts.use_index = false;
    LearningOptions index_opts;
    index_opts.use_index = true;
    index_opts.audit_potential = true;
    auto a = make_scheduler(kind, 3);
    auto b = make_scheduler(kind, 3);
    const auto scan = run_learning(g, start, *a, scan_opts);
    const auto indexed = run_learning(g, start, *b, index_opts);
    EXPECT_EQ(scan.steps, indexed.steps) << scheduler_kind_name(kind);
    EXPECT_EQ(scan.move_hash, indexed.move_hash) << scheduler_kind_name(kind);
    EXPECT_TRUE(scan.final_configuration == indexed.final_configuration);
  }
}

// --------------------------------------------------------- epsilon driver

TEST(IndexedEpsilon, ScanAndIndexPathsAgree) {
  Rng rng(53);
  for (int trial = 0; trial < 4; ++trial) {
    const Game g = random_integer_game(rng);
    const Configuration start = random_configuration(g, rng);
    for (const Rational& eps :
         {Rational(0), Rational(1, 100), Rational(1, 4)}) {
      LearningOptions scan_opts;
      scan_opts.use_index = false;
      LearningOptions index_opts;
      index_opts.use_index = true;
      const auto scan = run_learning_to_epsilon(g, start, eps, scan_opts);
      const auto indexed = run_learning_to_epsilon(g, start, eps, index_opts);
      EXPECT_EQ(scan.steps, indexed.steps);
      EXPECT_EQ(scan.move_hash, indexed.move_hash);
      EXPECT_TRUE(scan.final_configuration == indexed.final_configuration);
      EXPECT_TRUE(scan.converged && indexed.converged);
    }
  }
}

// ------------------------------------------------- scan-path helper parity

TEST(MoveScanHelpers, CountAndNthMatchMaterializedVector) {
  Rng rng(61);
  for (int trial = 0; trial < 8; ++trial) {
    const Game g = random_integer_game(rng);
    const Configuration s = random_configuration(g, rng);
    const auto moves = all_better_response_moves(g, s);
    EXPECT_EQ(count_all_better_response_moves(g, s), moves.size());
    for (std::size_t i = 0; i < moves.size(); ++i) {
      const auto nth = nth_better_response_move(g, s, i);
      ASSERT_TRUE(nth.has_value());
      EXPECT_EQ(nth->miner, moves[i].miner);
      EXPECT_EQ(nth->to, moves[i].to);
      EXPECT_EQ(nth->gain, moves[i].gain);
    }
    EXPECT_FALSE(nth_better_response_move(g, s, moves.size()).has_value());
    for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
      EXPECT_EQ(count_better_responses(g, s, MinerId(p)),
                better_responses(g, s, MinerId(p)).size());
    }
  }
}

}  // namespace
}  // namespace goc
