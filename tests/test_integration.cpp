#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "design/reward_design.hpp"
#include "dynamics/learning.hpp"
#include "equilibrium/construct.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/welfare.hpp"
#include "market/market_sim.hpp"
#include "market/price_process.hpp"
#include "market/scenario.hpp"

namespace goc {
namespace {

/// Market → core: take the weights the simulator derived for some epoch and
/// confirm the recorded state is exactly the game the paper analyzes.
TEST(Integration, MarketWeightsInduceConsistentGame) {
  market::MarketSimulator sim = market::random_market_scenario(16, 3, 2.0, 21);
  const auto records = sim.run();
  const Game& game = sim.current_game();
  const Configuration& config = sim.configuration();
  // Mass shares recomputed from the configuration must match the record.
  const auto& last = records.back();
  const double total = game.system().total_power().to_double();
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    EXPECT_NEAR(config.mass(CoinId(c)).to_double() / total,
                last.hashrate_share[c], 1e-12);
  }
  // And the equilibrium flag must agree with a direct check.
  EXPECT_EQ(last.at_equilibrium, is_equilibrium(game, config));
}

/// Market → dynamics: freezing an epoch's weights, better-response learning
/// from the simulator's configuration converges (Theorem 1 on market data).
TEST(Integration, LearningConvergesOnMarketGame) {
  market::MarketSimulator sim = market::random_market_scenario(20, 4, 1.0, 23);
  sim.run();
  const Game& game = sim.current_game();
  auto sched = make_scheduler(SchedulerKind::kRandomMove, 7);
  LearningOptions opts;
  opts.audit_potential = true;
  const auto result = run_learning(game, sim.configuration(), *sched, opts);
  EXPECT_TRUE(result.converged);
  // Observation 3 at the reached equilibrium: all coins occupied ⇒ total
  // payoff equals total weight (miners always outnumber coins here).
  if (result.final_configuration.occupied_coins() == game.num_coins()) {
    EXPECT_TRUE(globally_optimal(game, result.final_configuration));
  }
}

/// Market → design: a manipulator drives the market's miner population from
/// one equilibrium of the epoch game to another via Algorithm 2 — the
/// paper's end-to-end story on simulator-derived weights.
TEST(Integration, RewardDesignOnMarketDerivedWeights) {
  market::MarketSimulator sim = market::random_market_scenario(8, 3, 1.0, 29);
  sim.run();
  const Game& epoch_game = sim.current_game();

  // Rebuild the game on a strictly-ordered copy of the miner population
  // (Section 5's standing assumption), with coarsely re-quantized weights so
  // the exact-arithmetic intermediates of the designed rewards stay small.
  std::vector<MinerId> perm;
  System sorted = epoch_game.system().sorted_by_power_desc(&perm);
  std::vector<Rational> weights;
  for (const auto& w : epoch_game.rewards().values()) {
    weights.push_back(
        Rational::from_double(std::max(w.to_double(), 1.0), 1000));
  }
  const Game game(with_distinct_powers(sorted),
                  RewardFunction(std::move(weights)));

  Rng rng(31);
  const auto equilibria = sample_equilibria(game, rng, 32);
  ASSERT_GE(equilibria.size(), 1u);
  const Configuration& s0 = equilibria.front();
  const Configuration& sf = equilibria.back();

  auto sched = make_scheduler(SchedulerKind::kRandomMiner, 13);
  DesignOptions opts;
  opts.audit = true;
  const auto result = run_reward_design(game, s0, sf, *sched, opts);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(is_equilibrium(game, result.final_configuration));
}

/// Whale manipulation end-to-end: injecting fees raises a minor coin's
/// weight enough to attract hashrate; when the whale stops, the market
/// reverts — unless it had been driven to another equilibrium.
TEST(Integration, WhaleAttackMovesHashrate) {
  std::vector<market::CoinSpec> coins;
  coins.emplace_back("major", 10.0, 6.0,
                     std::make_unique<market::GbmProcess>(100.0, 0.0, 0.005),
                     market::FeeMarket(10.0, 0.01, 2.0));
  coins.emplace_back("minor", 10.0, 6.0,
                     std::make_unique<market::GbmProcess>(10.0, 0.0, 0.005),
                     market::FeeMarket(1.0, 0.01, 2.0));
  market::MarketOptions opts;
  opts.epochs = 6;
  opts.br_steps_per_epoch = 0;  // converge each epoch
  opts.seed = 37;
  market::MarketSimulator sim({8, 5, 3, 2, 1}, std::move(coins), opts);
  sim.inject_whale(1, 5e7);
  const auto records = sim.run();
  EXPECT_GT(records.front().hashrate_share[1], 0.9);
  EXPECT_LT(records.back().hashrate_share[1], 0.5);
}

/// Cross-substrate sanity: the market's epoch game and the greedy
/// equilibrium construction agree on who the heavy coin is.
TEST(Integration, GreedyEquilibriumFavorsHeavyMarketCoin) {
  market::MarketSimulator sim = market::random_market_scenario(12, 3, 1.0, 41);
  sim.run();
  const Game& game = sim.current_game();
  const Configuration eq = greedy_equilibrium(game);
  EXPECT_TRUE(is_equilibrium(game, eq));
  // The heaviest coin must carry the largest mass at the greedy equilibrium
  // when it strictly dominates (generic case).
  std::uint32_t heavy = 0;
  for (std::uint32_t c = 1; c < game.num_coins(); ++c) {
    if (game.rewards()(CoinId(c)) > game.rewards()(CoinId(heavy))) heavy = c;
  }
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    EXPECT_GE(eq.mass(CoinId(heavy)), eq.mass(CoinId(c)) * Rational(1, 2));
  }
}

}  // namespace
}  // namespace goc
