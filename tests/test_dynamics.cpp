#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "dynamics/learning.hpp"
#include "dynamics/noisy.hpp"
#include "dynamics/scheduler.hpp"

namespace goc {
namespace {

Game small_game() {
  return Game(System::from_integer_powers({8, 4, 2, 1}, 3),
              RewardFunction::from_integers({30, 20, 10}));
}

// --------------------------------------------------------------- schedulers

TEST(Scheduler, AllKindsHaveDistinctNames) {
  std::vector<std::string> names;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    names.push_back(scheduler_kind_name(kind));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_EQ(names.size(), 8u);
}

TEST(Scheduler, NulloptAtEquilibrium) {
  const Game g(System::from_integer_powers({2, 1}, 2),
               RewardFunction::from_integers({1, 1}));
  const Configuration eq(g.system_ptr(), {CoinId(0), CoinId(1)});
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    auto sched = make_scheduler(kind, 5);
    EXPECT_FALSE(sched->pick(g, eq).has_value()) << sched->name();
  }
}

TEST(Scheduler, PicksOnlyImprovingMoves) {
  const Game g = small_game();
  Rng rng(3);
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    auto sched = make_scheduler(kind, 7);
    for (int trial = 0; trial < 20; ++trial) {
      const Configuration s = random_configuration(g, rng);
      const auto move = sched->pick(g, s);
      if (!move) {
        EXPECT_TRUE(is_equilibrium(g, s)) << sched->name();
        continue;
      }
      EXPECT_TRUE(is_better_response(g, s, move->miner, move->to))
          << sched->name() << ": " << move->to_string();
      EXPECT_EQ(move->from, s.of(move->miner));
      EXPECT_EQ(move->gain,
                move_gain(g, s, move->miner, move->to));
    }
  }
}

TEST(Scheduler, MaxGainPicksGlobalMaximum) {
  const Game g = small_game();
  auto sched = make_scheduler(SchedulerKind::kMaxGain);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Configuration s = random_configuration(g, rng);
    const auto move = sched->pick(g, s);
    if (!move) continue;
    for (const Move& m : all_better_response_moves(g, s)) {
      EXPECT_GE(move->gain, m.gain);
    }
  }
}

TEST(Scheduler, MinGainPicksGlobalMinimum) {
  const Game g = small_game();
  auto sched = make_scheduler(SchedulerKind::kMinGain);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Configuration s = random_configuration(g, rng);
    const auto move = sched->pick(g, s);
    if (!move) continue;
    for (const Move& m : all_better_response_moves(g, s)) {
      EXPECT_LE(move->gain, m.gain);
    }
  }
}

TEST(Scheduler, LexicographicDeterministic) {
  const Game g = small_game();
  auto a = make_scheduler(SchedulerKind::kLexicographic);
  auto b = make_scheduler(SchedulerKind::kLexicographic);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Configuration s = random_configuration(g, rng);
    const auto ma = a->pick(g, s);
    const auto mb = b->pick(g, s);
    ASSERT_EQ(ma.has_value(), mb.has_value());
    if (ma) {
      EXPECT_EQ(ma->miner, mb->miner);
      EXPECT_EQ(ma->to, mb->to);
    }
  }
}

TEST(Scheduler, LargestFirstMovesHeaviestUnstable) {
  const Game g = small_game();
  auto sched = make_scheduler(SchedulerKind::kLargestFirst);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Configuration s = random_configuration(g, rng);
    const auto move = sched->pick(g, s);
    if (!move) continue;
    for (const MinerId p : unstable_miners(g, s)) {
      EXPECT_LE(g.system().power(p), g.system().power(move->miner));
    }
  }
}

TEST(Scheduler, PowerOrderedBreaksTiesOnLowestId) {
  // Two equal-power unstable miners: the scheduler must pick the lower id
  // (the scan keeps the first strict improvement).
  Game g(System::from_integer_powers({1, 1}, 2),
         RewardFunction::from_integers({10, 10}));
  const Configuration shared(g.system_ptr(), {CoinId(0), CoinId(0)});
  auto largest = make_scheduler(SchedulerKind::kLargestFirst);
  auto smallest = make_scheduler(SchedulerKind::kSmallestFirst);
  const auto ml = largest->pick(g, shared);
  const auto ms = smallest->pick(g, shared);
  ASSERT_TRUE(ml && ms);
  EXPECT_EQ(ml->miner, MinerId(0));
  EXPECT_EQ(ms->miner, MinerId(0));
}

// ----------------------------------------------------------------- learning

/// The headline convergence property: every scheduler converges on every
/// random game, with the full Theorem 1 audit enabled.
class ConvergenceProperty
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, std::uint64_t>> {};

TEST_P(ConvergenceProperty, AuditedConvergence) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = 2 + static_cast<std::size_t>(rng.next_below(15));
  spec.num_coins = 2 + static_cast<std::size_t>(rng.next_below(5));
  spec.power_lo = 1;
  spec.power_hi = 200;
  spec.reward_lo = 10;
  spec.reward_hi = 2000;
  const Game g = random_game(spec, rng);
  const Configuration start = random_configuration(g, rng);

  auto sched = make_scheduler(kind, seed ^ 0xABCD);
  LearningOptions opts;
  opts.audit_potential = true;
  opts.record_moves = true;
  const LearningResult result = run_learning(g, start, *sched, opts);

  EXPECT_TRUE(result.converged) << scheduler_kind_name(kind);
  EXPECT_TRUE(is_equilibrium(g, result.final_configuration));
  EXPECT_EQ(result.trace.size(), result.steps);
  // Every recorded move improved the mover's payoff.
  for (const Move& m : result.trace.moves()) {
    EXPECT_TRUE(m.gain.is_positive());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvergenceProperty,
    ::testing::Combine(::testing::ValuesIn(all_scheduler_kinds()),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(Learning, StartAtEquilibriumTakesNoSteps) {
  const Game g(System::from_integer_powers({2, 1}, 2),
               RewardFunction::from_integers({1, 1}));
  const Configuration eq(g.system_ptr(), {CoinId(0), CoinId(1)});
  auto sched = make_scheduler(SchedulerKind::kRandomMove, 1);
  const auto result = run_learning(g, eq, *sched);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_TRUE(result.final_configuration == eq);
}

TEST(Learning, StepCapHonored) {
  Rng rng(13);
  GameSpec spec;
  spec.num_miners = 20;
  spec.num_coins = 4;
  const Game g = random_game(spec, rng);
  const Configuration start = random_configuration(g, rng);
  auto sched = make_scheduler(SchedulerKind::kMinGain);
  LearningOptions opts;
  opts.max_steps = 1;
  const auto result = run_learning(g, start, *sched, opts);
  EXPECT_LE(result.steps, 1u);
}

TEST(Learning, ConfigurationSnapshotsConsistent) {
  const Game g = small_game();
  Rng rng(17);
  const Configuration start = random_configuration(g, rng);
  auto sched = make_scheduler(SchedulerKind::kLexicographic);
  LearningOptions opts;
  opts.record_configurations = true;
  const auto result = run_learning(g, start, *sched, opts);
  const auto& snaps = result.trace.configurations();
  ASSERT_EQ(snaps.size(), result.steps + 1);
  // Replaying the moves over the start reproduces each snapshot.
  Configuration replay = start;
  for (std::size_t i = 0; i < result.trace.moves().size(); ++i) {
    const Move& m = result.trace.moves()[i];
    replay.move(m.miner, m.to);
    EXPECT_TRUE(replay == snaps[i + 1]);
  }
}

TEST(Learning, TraceTableShape) {
  const Game g = small_game();
  const Configuration start =
      Configuration::all_at(g.system_ptr(), CoinId(2));
  auto sched = make_scheduler(SchedulerKind::kMaxGain);
  LearningOptions opts;
  opts.record_moves = true;
  const auto result = run_learning(g, start, *sched, opts);
  const Table table = result.trace.to_table();
  EXPECT_EQ(table.rows(), result.steps);
  EXPECT_EQ(table.columns(), 5u);
}

TEST(Learning, RejectsForeignConfiguration) {
  const Game g1 = small_game();
  const Game g2 = small_game();  // different System instance
  const Configuration s(g2.system_ptr(), {CoinId(0), CoinId(0), CoinId(0), CoinId(0)});
  auto sched = make_scheduler(SchedulerKind::kMaxGain);
  EXPECT_THROW(run_learning(g1, s, *sched), std::invalid_argument);
}

// ------------------------------------------------------------ ε-equilibrium

TEST(EpsilonLearning, ZeroEpsilonMatchesExactConvergence) {
  const Game g = small_game();
  Rng rng(41);
  const Configuration start = random_configuration(g, rng);
  const auto result = run_learning_to_epsilon(g, start, Rational(0));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_equilibrium(g, result.final_configuration));
}

TEST(EpsilonLearning, ResultIsEpsilonEquilibrium) {
  Rng rng(43);
  GameSpec spec;
  spec.num_miners = 15;
  spec.num_coins = 4;
  const Game g = random_game(spec, rng);
  for (const Rational& eps : {Rational(1, 100), Rational(1, 10), Rational(1)}) {
    const auto result =
        run_learning_to_epsilon(g, random_configuration(g, rng), eps);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(is_epsilon_equilibrium(g, result.final_configuration, eps));
  }
}

TEST(EpsilonLearning, LargerEpsilonStopsWeaklyEarlier) {
  Rng rng(47);
  GameSpec spec;
  spec.num_miners = 25;
  spec.num_coins = 5;
  const Game g = random_game(spec, rng);
  const Configuration start = random_configuration(g, rng);
  const auto exact = run_learning_to_epsilon(g, start, Rational(0));
  const auto loose = run_learning_to_epsilon(g, start, Rational(1, 4));
  EXPECT_LE(loose.steps, exact.steps);
}

TEST(EpsilonStability, DefinitionMatchesDirectCheck) {
  const Game g = small_game();
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    const Configuration s = random_configuration(g, rng);
    const Rational eps(1, 20);
    for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
      const MinerId miner(p);
      const Rational current = g.payoff(s, miner);
      bool has_big_improvement = false;
      for (std::uint32_t c = 0; c < g.num_coins(); ++c) {
        if (CoinId(c) == s.of(miner)) continue;
        if (g.payoff_if_move(s, miner, CoinId(c)) > current + current * eps) {
          has_big_improvement = true;
        }
      }
      EXPECT_EQ(is_epsilon_stable(g, s, miner, eps), !has_big_improvement);
    }
  }
}

TEST(EpsilonStability, RejectsNegativeEpsilon) {
  const Game g = small_game();
  const Configuration s = Configuration::all_at(g.system_ptr(), CoinId(0));
  EXPECT_THROW(is_epsilon_stable(g, s, MinerId(0), Rational(-1, 2)),
               std::invalid_argument);
}

// -------------------------------------------------------------------- noisy

TEST(Noisy, ZeroEpsilonReachesEquilibriumAndStays) {
  const Game g = small_game();
  Rng rng(19);
  NoisyOptions opts;
  opts.epsilon = 0.0;
  opts.max_steps = 5000;
  const auto result =
      run_epsilon_noisy(g, random_configuration(g, rng), rng, opts);
  EXPECT_TRUE(result.ended_at_equilibrium);
  EXPECT_GT(result.equilibrium_visit_rate, 0.5);
}

TEST(Noisy, HighNoiseKeepsChurning) {
  const Game g = small_game();
  Rng rng(23);
  NoisyOptions opts;
  opts.epsilon = 0.9;
  opts.max_steps = 5000;
  const auto result =
      run_epsilon_noisy(g, random_configuration(g, rng), rng, opts);
  EXPECT_LT(result.equilibrium_visit_rate, 0.9);
}

TEST(Noisy, LogitHighBetaNearEquilibrium) {
  const Game g = small_game();
  Rng rng(29);
  NoisyOptions opts;
  opts.beta = 400.0;
  opts.max_steps = 8000;
  const auto result = run_logit(g, random_configuration(g, rng), rng, opts);
  // Near-best-response dynamics spend most of the horizon at equilibrium.
  EXPECT_GT(result.equilibrium_visit_rate, 0.5);
}

TEST(Noisy, LogitZeroBetaIsRandomWalk) {
  const Game g = small_game();
  Rng rng(31);
  NoisyOptions opts;
  opts.beta = 0.0;
  opts.max_steps = 3000;
  const auto result = run_logit(g, random_configuration(g, rng), rng, opts);
  EXPECT_LT(result.equilibrium_visit_rate, 0.5);
}

TEST(Noisy, RejectsBadParameters) {
  const Game g = small_game();
  Rng rng(37);
  NoisyOptions opts;
  opts.epsilon = 1.5;
  EXPECT_THROW(run_epsilon_noisy(g, random_configuration(g, rng), rng, opts),
               std::invalid_argument);
  NoisyOptions opts2;
  opts2.beta = -1.0;
  EXPECT_THROW(run_logit(g, random_configuration(g, rng), rng, opts2),
               std::invalid_argument);
}

}  // namespace
}  // namespace goc
