#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/xrational.hpp"

namespace goc {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.to_string(), "0");
  EXPECT_EQ(r.denominator(), 1);
}

TEST(Rational, IntegerConstruction) {
  Rational r(7);
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.to_string(), "7");
  EXPECT_EQ(Rational(-3).to_string(), "-3");
}

TEST(Rational, NormalizesSignAndGcd) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(1, -2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(6, -3).to_string(), "-2");
  EXPECT_GT(Rational(1, 2).denominator(), 0);
  EXPECT_GT(Rational(1, -2).denominator(), 0);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
  EXPECT_THROW(Rational::from_parts(5, 0), std::invalid_argument);
}

TEST(Rational, ZeroNumeratorCanonical) {
  EXPECT_EQ(Rational(0, 17), Rational(0));
  EXPECT_EQ(Rational(0, -5).denominator(), 1);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
  EXPECT_EQ(Rational(2, 3) + Rational(1, 3), Rational(1));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(1, 3) - Rational(1, 2), Rational(-1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 3) * Rational(3, 2), Rational(-1));
  EXPECT_EQ(Rational(0) * Rational(7, 9), Rational(0));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, ReciprocalAndAbs) {
  EXPECT_EQ(Rational(2, 3).reciprocal(), Rational(3, 2));
  EXPECT_EQ(Rational(-2, 3).reciprocal(), Rational(-3, 2));
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
  EXPECT_EQ(Rational(-5, 7).abs(), Rational(5, 7));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LT(Rational(0), Rational(1, 1000000));
  EXPECT_EQ(Rational(3, 9) <=> Rational(1, 3), std::strong_ordering::equal);
}

TEST(Rational, ComparisonSurvivesHugeCrossProducts) {
  // Cross products of these exceed 128 bits; the continued-fraction path
  // must take over and still give the exact answer.
  const Rational a = Rational::from_parts(
      (static_cast<i128>(1) << 100) + 1, (static_cast<i128>(1) << 99) + 7);
  const Rational b = Rational::from_parts(
      (static_cast<i128>(1) << 100) + 3, (static_cast<i128>(1) << 99) + 5);
  EXPECT_NE(a, b);
  // a ≈ 2, b ≈ 2; exact order: a < b iff a_num·b_den < b_num·a_den.
  // Verify consistency: exactly one of <, > holds and it is antisymmetric.
  const bool lt = a < b;
  const bool gt = b < a;
  EXPECT_NE(lt, gt);
}

TEST(Rational, AdditionOverflowThrows) {
  const Rational big = Rational::from_parts((static_cast<i128>(1) << 126), 1);
  EXPECT_THROW(big + big, OverflowError);
}

TEST(Rational, MultiplicationOverflowThrows) {
  const Rational big = Rational::from_parts((static_cast<i128>(1) << 100), 1);
  EXPECT_THROW(big * big, OverflowError);
}

TEST(Rational, MultiplicationReducesBeforeOverflow) {
  // (2^100/3) * (3/2^100) = 1 must not overflow thanks to cross-reduction.
  const Rational a = Rational::from_parts(static_cast<i128>(1) << 100, 3);
  const Rational b = Rational::from_parts(3, static_cast<i128>(1) << 100);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).to_double(), -0.75);
  EXPECT_NEAR(Rational(1, 3).to_double(), 1.0 / 3.0, 1e-15);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(22, 7).to_string(), "22/7");
  EXPECT_EQ(Rational(-22, 7).to_string(), "-22/7");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
}

TEST(Rational, FromDoubleExactDyadics) {
  EXPECT_EQ(Rational::from_double(0.5, 1000), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(0.25, 1000), Rational(1, 4));
  EXPECT_EQ(Rational::from_double(-1.5, 1000), Rational(-3, 2));
  EXPECT_EQ(Rational::from_double(3.0, 10), Rational(3));
  EXPECT_EQ(Rational::from_double(0.0, 10), Rational(0));
}

TEST(Rational, FromDoubleBestApproximation) {
  // π with denominator ≤ 10 is 22/7; ≤ 150 is 355/113's predecessor 311/99?
  // The classic: 355/113 needs ≤ 113.
  EXPECT_EQ(Rational::from_double(3.14159265358979, 10), Rational(22, 7));
  EXPECT_EQ(Rational::from_double(3.14159265358979, 113), Rational(355, 113));
  EXPECT_EQ(Rational::from_double(1.0 / 3.0, 100), Rational(1, 3));
}

TEST(Rational, FromDoubleRespectsDenominatorBound) {
  for (const double v : {0.123456789, 2.718281828, 1e-4, 123.456}) {
    const Rational r = Rational::from_double(v, 1000);
    EXPECT_LE(r.denominator(), 1000);
    EXPECT_NEAR(r.to_double(), v, 1e-3);
  }
}

TEST(Rational, FromDoubleRejectsBadInput) {
  EXPECT_THROW(Rational::from_double(std::numeric_limits<double>::infinity(), 10),
               std::invalid_argument);
  EXPECT_THROW(Rational::from_double(std::nan(""), 10), std::invalid_argument);
  EXPECT_THROW(Rational::from_double(0.5, 0), std::invalid_argument);
}

TEST(Rational, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).hash(), Rational(1, 2).hash());
  std::unordered_set<Rational> set;
  set.insert(Rational(1, 2));
  set.insert(Rational(2, 4));
  set.insert(Rational(1, 3));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rational, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 3);
  r -= Rational(1, 6);
  r *= Rational(3);
  r /= Rational(2);
  EXPECT_EQ(r, Rational(1));
}

TEST(Rational, SmallOperandFastPathMatchesGeneralPath) {
  // Operands straddling the 2^31 fast-path boundary: the fast path (no GCD
  // pre-reduction) and the general path must agree exactly. Ground truth is
  // the textbook formula evaluated in i128 via from_parts.
  const std::int64_t boundary = std::int64_t{1} << 31;
  const std::int64_t probes[] = {1,           3,          boundary - 2,
                                 boundary - 1, boundary,  boundary + 1,
                                 2 * boundary, (std::int64_t{1} << 40) + 7};
  for (const std::int64_t an : probes) {
    for (const std::int64_t ad : probes) {
      const Rational a(an, ad);
      const Rational b(ad + 1, an);
      const Rational expected_sum = Rational::from_parts(
          static_cast<i128>(a.numerator()) * b.denominator() +
              static_cast<i128>(b.numerator()) * a.denominator(),
          static_cast<i128>(a.denominator()) * b.denominator());
      EXPECT_EQ(a + b, expected_sum) << an << "/" << ad;
      const Rational expected_prod = Rational::from_parts(
          static_cast<i128>(a.numerator()) * b.numerator(),
          static_cast<i128>(a.denominator()) * b.denominator());
      EXPECT_EQ(a * b, expected_prod) << an << "/" << ad;
    }
  }
}

TEST(Rational, SmallOperandFastPathNegativeAndZero) {
  const std::int64_t boundary = std::int64_t{1} << 31;
  // Largest-magnitude negative numerator that still takes the fast path.
  const Rational a(-(boundary - 1), boundary - 1);  // == -1
  EXPECT_EQ(a + a, Rational(-2));
  EXPECT_EQ(a * a, Rational(1));
  EXPECT_EQ(a + Rational(0), a);
  EXPECT_EQ(a * Rational(0), Rational(0));
  // Just past the boundary on one side only — mixed fast/general operands.
  const Rational big(boundary, 1);
  EXPECT_EQ(a + big, Rational(boundary - 1));
  EXPECT_EQ(a * big, Rational(-boundary));
}

TEST(Rational, SumOfManySmallFractionsStaysExact) {
  // Σ_{i=1..50} 1/i — the harmonic sum H_50 as an exact fraction.
  Rational sum(0);
  for (std::int64_t i = 1; i <= 50; ++i) sum += Rational(1, i);
  EXPECT_NEAR(sum.to_double(), 4.4992053383, 1e-9);
  // Exactness probe: (sum − 1/2) + 1/2 == sum.
  EXPECT_EQ((sum - Rational(1, 2)) + Rational(1, 2), sum);
}

TEST(XRational, InfinityOrdering) {
  const XRational inf = XRational::infinity();
  EXPECT_TRUE(inf.is_infinite());
  EXPECT_GT(inf, XRational(Rational(1000000)));
  EXPECT_EQ(inf <=> XRational::infinity(), std::strong_ordering::equal);
  EXPECT_LT(XRational(Rational(3)), inf);
}

TEST(XRational, FiniteBehavesLikeRational) {
  const XRational a{Rational(1, 2)};
  const XRational b{Rational(2, 3)};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.finite_value(), Rational(1, 2));
  EXPECT_EQ(a.to_string(), "1/2");
  EXPECT_EQ(XRational::infinity().to_string(), "inf");
}

TEST(XRational, FiniteValueOnInfinityThrows) {
  EXPECT_THROW(XRational::infinity().finite_value(), InvariantError);
}

TEST(XRational, ToDouble) {
  EXPECT_TRUE(std::isinf(XRational::infinity().to_double()));
  EXPECT_DOUBLE_EQ(XRational(Rational(3, 4)).to_double(), 0.75);
}

}  // namespace
}  // namespace goc
