#include <gtest/gtest.h>

#include "core/access.hpp"
#include "core/generators.hpp"
#include "core/moves.hpp"
#include "dynamics/improvement_graph.hpp"
#include "dynamics/learning.hpp"
#include "equilibrium/construct.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/security.hpp"
#include "potential/exact_potential.hpp"
#include "potential/list_potential.hpp"

namespace goc {
namespace {

// ------------------------------------------------------------ AccessPolicy

TEST(AccessPolicy, DefaultIsUnrestricted) {
  AccessPolicy policy;
  EXPECT_TRUE(policy.is_unrestricted());
  EXPECT_TRUE(policy.allowed(MinerId(5), CoinId(9)));
  EXPECT_DOUBLE_EQ(policy.density(4, 3), 1.0);
}

TEST(AccessPolicy, MatrixSemantics) {
  AccessPolicy policy({{true, false}, {false, true}});
  EXPECT_FALSE(policy.is_unrestricted());
  EXPECT_TRUE(policy.allowed(MinerId(0), CoinId(0)));
  EXPECT_FALSE(policy.allowed(MinerId(0), CoinId(1)));
  EXPECT_TRUE(policy.allowed(MinerId(1), CoinId(1)));
  EXPECT_DOUBLE_EQ(policy.density(2, 2), 0.5);
  const auto coins = policy.allowed_coins(MinerId(1), 2);
  ASSERT_EQ(coins.size(), 1u);
  EXPECT_EQ(coins[0], CoinId(1));
}

TEST(AccessPolicy, RejectsCoinlessMiner) {
  EXPECT_THROW(AccessPolicy({{false, false}}), std::invalid_argument);
  EXPECT_THROW(AccessPolicy({{true}, {true, true}}), std::invalid_argument);
}

TEST(AccessPolicy, RandomIsWellFormedAndDeterministic) {
  Rng r1(5), r2(5);
  const AccessPolicy a = AccessPolicy::random(10, 4, 0.3, r1);
  const AccessPolicy b = AccessPolicy::random(10, 4, 0.3, r2);
  for (std::uint32_t p = 0; p < 10; ++p) {
    EXPECT_FALSE(a.allowed_coins(MinerId(p), 4).empty());
    for (std::uint32_t c = 0; c < 4; ++c) {
      EXPECT_EQ(a.allowed(MinerId(p), CoinId(c)), b.allowed(MinerId(p), CoinId(c)));
    }
  }
}

TEST(AccessPolicy, HardwareClasses) {
  // Class 0 = SHA-256 ASICs (coins 0,1); class 1 = GPU (coins 1,2).
  const AccessPolicy policy = AccessPolicy::hardware_classes(
      {0, 0, 1}, {{true, true, false}, {false, true, true}});
  EXPECT_TRUE(policy.allowed(MinerId(0), CoinId(0)));
  EXPECT_FALSE(policy.allowed(MinerId(0), CoinId(2)));
  EXPECT_FALSE(policy.allowed(MinerId(2), CoinId(0)));
  EXPECT_TRUE(policy.allowed(MinerId(2), CoinId(2)));
  EXPECT_THROW(AccessPolicy::hardware_classes({0, 7}, {{true}}),
               std::invalid_argument);
}

TEST(AccessPolicy, GameValidatesShape) {
  EXPECT_THROW(Game(System::from_integer_powers({1, 2}, 2),
                    RewardFunction::from_integers({1, 1}),
                    AccessPolicy({{true, true}})),
               std::invalid_argument);
}

// ------------------------------------------------- restricted-game behavior

Game restricted_game() {
  // Two ASIC miners (coins 0,1) and two GPU miners (coins 1,2).
  return Game(System::from_integer_powers({8, 4, 2, 1}, 3),
              RewardFunction::from_integers({30, 20, 10}),
              AccessPolicy::hardware_classes(
                  {0, 0, 1, 1}, {{true, true, false}, {false, true, true}}));
}

TEST(RestrictedGame, MovesRespectAccess) {
  const Game g = restricted_game();
  const Configuration s(g.system_ptr(),
                        {CoinId(0), CoinId(0), CoinId(1), CoinId(1)});
  for (const Move& m : all_better_response_moves(g, s)) {
    EXPECT_TRUE(g.can_mine(m.miner, m.to));
  }
  // p0 (ASIC) can never be offered coin 2.
  for (const CoinId c : better_responses(g, s, MinerId(0))) {
    EXPECT_NE(c, CoinId(2));
  }
  EXPECT_THROW(g.payoff_if_move(s, MinerId(0), CoinId(2)),
               std::invalid_argument);
}

TEST(RestrictedGame, StabilityIsRelativeToAllowedCoins) {
  // One GPU miner alone on coin 2 may be "trapped": coin 0 would pay more
  // but is out of reach, so it is stable.
  Game g(System::from_integer_powers({10, 1}, 3),
         RewardFunction::from_integers({100, 1, 5}),
         AccessPolicy({{true, true, true}, {false, true, true}}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(2)});
  EXPECT_TRUE(is_stable(g, s, MinerId(1)));
  // The unrestricted twin is NOT stable there.
  Game open_game(System::from_integer_powers({10, 1}, 3),
                 RewardFunction::from_integers({100, 1, 5}));
  const Configuration s2(open_game.system_ptr(), {CoinId(0), CoinId(2)});
  EXPECT_FALSE(is_stable(open_game, s2, MinerId(1)));
}

/// §6 asymmetric case: Theorem 1's convergence survives arbitrary access
/// policies — the ordinal potential only inspects the moves actually taken.
class RestrictedConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RestrictedConvergence, AnySchedulerConverges) {
  Rng rng(GetParam());
  GameSpec spec;
  spec.num_miners = 3 + static_cast<std::size_t>(rng.next_below(10));
  spec.num_coins = 2 + static_cast<std::size_t>(rng.next_below(4));
  const Game base = random_game(spec, rng);
  const AccessPolicy policy = AccessPolicy::random(
      base.num_miners(), base.num_coins(), 0.4, rng);
  const Game g(base.system_ptr(), base.rewards(), policy);
  const Configuration start = random_configuration(g, rng);
  ASSERT_TRUE(g.respects_access(start));

  for (const SchedulerKind kind :
       {SchedulerKind::kRandomMove, SchedulerKind::kMinGain}) {
    auto sched = make_scheduler(kind, GetParam() ^ 0xACC);
    LearningOptions opts;
    opts.audit_potential = true;
    const auto result = run_learning(g, start, *sched, opts);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(g.respects_access(result.final_configuration));
    EXPECT_TRUE(is_equilibrium(g, result.final_configuration));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestrictedConvergence,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RestrictedGame, GreedyConstructionRefuses) {
  const Game g = restricted_game();
  EXPECT_THROW(greedy_equilibrium(g), std::invalid_argument);
}

TEST(RestrictedGame, EnumerationFiltersAccessViolations) {
  const Game g = restricted_game();
  const auto eqs = enumerate_equilibria(g);
  ASSERT_FALSE(eqs.empty());  // learning converges ⇒ equilibria exist
  for (const auto& eq : eqs) {
    EXPECT_TRUE(g.respects_access(eq));
    EXPECT_TRUE(is_equilibrium(g, eq));
  }
}

TEST(RestrictedGame, LearningRejectsIllegalStart) {
  const Game g = restricted_game();
  // p3 (GPU) on coin 0 violates the policy.
  const Configuration bad(g.system_ptr(),
                          {CoinId(0), CoinId(1), CoinId(1), CoinId(0)});
  auto sched = make_scheduler(SchedulerKind::kMaxGain);
  EXPECT_THROW(run_learning(g, bad, *sched), std::invalid_argument);
}

// ------------------------------------------------------------- security §6

TEST(Security, DominationShare) {
  Game g(System::from_integer_powers({6, 3, 1}, 2),
         RewardFunction::from_integers({10, 10}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0), CoinId(1)});
  EXPECT_EQ(domination_share(g, s, CoinId(0)), Rational(6, 9));
  EXPECT_EQ(domination_share(g, s, CoinId(1)), Rational(1));
  // Empty coin: share 0, no controller.
  const Configuration t(g.system_ptr(), {CoinId(0), CoinId(0), CoinId(0)});
  EXPECT_EQ(domination_share(g, t, CoinId(1)), Rational(0));
  EXPECT_FALSE(majority_controller(g, t, CoinId(1)).has_value());
}

TEST(Security, MajorityController) {
  Game g(System::from_integer_powers({6, 3, 1}, 2),
         RewardFunction::from_integers({10, 10}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0), CoinId(0)});
  const auto controller = majority_controller(g, s, CoinId(0));
  ASSERT_TRUE(controller.has_value());
  EXPECT_EQ(*controller, MinerId(0));  // 6 of 10 > 1/2
  // Exactly half is NOT a strict majority.
  Game g2(System::from_integer_powers({5, 5}, 2),
          RewardFunction::from_integers({10, 10}));
  const Configuration even(g2.system_ptr(), {CoinId(0), CoinId(0)});
  EXPECT_FALSE(majority_controller(g2, even, CoinId(0)).has_value());
}

TEST(Security, ReportAggregates) {
  Game g(System::from_integer_powers({6, 3, 1}, 3),
         RewardFunction::from_integers({10, 10, 10}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1), CoinId(1)});
  const SecurityReport report = security_report(g, s);
  EXPECT_EQ(report.occupied, 2u);
  EXPECT_EQ(report.majority_controlled, 2u);  // p0 solo; p1 holds 3 of 4
  EXPECT_EQ(report.max_share[2], Rational(0));
}

TEST(Security, BestDominationTargetPicksMaxShare) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const auto eqs = enumerate_equilibria(g);
  ASSERT_EQ(eqs.size(), 2u);
  const auto target = best_domination_target(g, MinerId(1), eqs);
  ASSERT_TRUE(target.has_value());
  // In both equilibria p1 is alone on a coin → share 1.
  EXPECT_EQ(target->attacker_share, Rational(1));
  EXPECT_FALSE(best_domination_target(g, MinerId(0), {}).has_value());
}

// ------------------------------------------------------- improvement graph

TEST(ImprovementGraph, Proposition1GameExactValues) {
  const Game g = proposition1_game();
  const ImprovementGraphStats stats = analyze_improvement_graph(g);
  EXPECT_EQ(stats.configurations, 4u);
  EXPECT_EQ(stats.equilibria, 2u);
  // From ⟨c0,c0⟩: both miners want out (2 edges); same from ⟨c1,c1⟩.
  EXPECT_EQ(stats.edges, 4u);
  // Any improving path is a single step: unstable → split.
  EXPECT_EQ(stats.longest_path, 1u);
}

TEST(ImprovementGraph, LongestPathFromEquilibriumIsZero) {
  Rng rng(3);
  GameSpec spec;
  spec.num_miners = 5;
  spec.num_coins = 3;
  const Game g = random_game(spec, rng);
  const auto eqs = enumerate_equilibria(g);
  ASSERT_FALSE(eqs.empty());
  EXPECT_EQ(longest_path_from(g, eqs.front()), 0u);
}

TEST(ImprovementGraph, DominatesObservedSchedulerSteps) {
  // The graph's longest path upper-bounds every scheduler trajectory.
  Rng rng(7);
  GameSpec spec;
  spec.num_miners = 6;
  spec.num_coins = 2;
  const Game g = random_game(spec, rng);
  const ImprovementGraphStats stats = analyze_improvement_graph(g);
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    auto sched = make_scheduler(kind, 11);
    const Configuration start = random_configuration(g, rng);
    const auto result = run_learning(g, start, *sched);
    EXPECT_LE(result.steps, stats.longest_path) << scheduler_kind_name(kind);
  }
}

TEST(ImprovementGraph, RespectsAccessFilter) {
  const Game g = restricted_game();
  const ImprovementGraphStats stats = analyze_improvement_graph(g);
  // ASIC miners have 2 choices each, GPU miners 2 each → 16 valid configs
  // out of 3^4 = 81.
  EXPECT_EQ(stats.configurations, 16u);
  EXPECT_GE(stats.equilibria, 1u);
}

TEST(ImprovementGraph, RefusesHugeSpaces) {
  Rng rng(9);
  GameSpec spec;
  spec.num_miners = 30;
  spec.num_coins = 4;
  const Game g = random_game(spec, rng);
  EXPECT_THROW(analyze_improvement_graph(g, 1u << 10), std::invalid_argument);
}

}  // namespace
}  // namespace goc
