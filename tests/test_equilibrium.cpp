#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "equilibrium/assumptions.hpp"
#include "equilibrium/better_equilibrium.hpp"
#include "equilibrium/construct.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/welfare.hpp"

namespace goc {
namespace {

// --------------------------------------------------------- greedy construct

TEST(GreedyEquilibrium, SingleMinerPicksHeaviestCoin) {
  Game g(System::from_integer_powers({3}, 3),
         RewardFunction::from_integers({5, 9, 2}));
  const Configuration s = greedy_equilibrium(g);
  EXPECT_EQ(s.of(MinerId(0)), CoinId(1));
  EXPECT_TRUE(is_equilibrium(g, s));
}

TEST(GreedyEquilibrium, TwoMinersSplitTwoCoins) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const Configuration s = greedy_equilibrium(g);
  EXPECT_NE(s.of(MinerId(0)), s.of(MinerId(1)));
  EXPECT_TRUE(is_equilibrium(g, s));
}

class GreedyEquilibriumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyEquilibriumProperty, AlwaysStable) {
  // Proposition 3: the greedy construction yields an equilibrium for any
  // Π, C, F — including unsorted miners, duplicate powers, skewed rewards.
  Rng rng(GetParam());
  GameSpec spec;
  spec.num_miners = 1 + static_cast<std::size_t>(rng.next_below(30));
  spec.num_coins = 1 + static_cast<std::size_t>(rng.next_below(6));
  spec.power_lo = 1;
  spec.power_hi = 100;
  spec.reward_lo = 1;
  spec.reward_hi = 1000;
  const Game g = random_game(spec, rng);
  const Configuration s = greedy_equilibrium(g);
  EXPECT_TRUE(is_equilibrium(g, s)) << g.to_string() << " " << s.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyEquilibriumProperty,
                         ::testing::Range<std::uint64_t>(1, 61));

TEST(BestInsertionCoin, MaximizesPostInsertionPayoff) {
  RewardFunction f = RewardFunction::from_integers({10, 6});
  // Masses 9 and 1: joining c0 yields 10/(9+2)·2, c1 yields 6/(1+2)·2 = 4.
  const CoinId c =
      best_insertion_coin(f, {Rational(9), Rational(1)}, Rational(2));
  EXPECT_EQ(c, CoinId(1));
}

TEST(BestInsertionCoin, TieBreaksLowId) {
  RewardFunction f = RewardFunction::from_integers({5, 5});
  const CoinId c =
      best_insertion_coin(f, {Rational(3), Rational(3)}, Rational(1));
  EXPECT_EQ(c, CoinId(0));
}

// ------------------------------------------------------------- enumeration

TEST(EnumerateEquilibria, Proposition1GameHasExactlyTwo) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const auto eqs = enumerate_equilibria(g);
  // ⟨c0,c1⟩ and ⟨c1,c0⟩ — the two split configurations.
  ASSERT_EQ(eqs.size(), 2u);
  for (const auto& s : eqs) {
    EXPECT_NE(s.of(MinerId(0)), s.of(MinerId(1)));
  }
}

TEST(EnumerateEquilibria, AgreesWithDirectCheck) {
  Rng rng(7);
  GameSpec spec;
  spec.num_miners = 4;
  spec.num_coins = 3;
  const Game g = random_game(spec, rng);
  const auto eqs = enumerate_equilibria(g);
  for (const auto& s : eqs) EXPECT_TRUE(is_equilibrium(g, s));
  EXPECT_FALSE(eqs.empty());  // Proposition 3 guarantees at least one
}

TEST(SampleEquilibria, SoundAndFindsGreedyOne) {
  Rng rng(11);
  GameSpec spec;
  spec.num_miners = 8;
  spec.num_coins = 3;
  const Game g = random_game(spec, rng);
  const auto sampled = sample_equilibria(g, rng, 32);
  ASSERT_FALSE(sampled.empty());
  for (const auto& s : sampled) EXPECT_TRUE(is_equilibrium(g, s));
}

TEST(SampleEquilibria, SubsetOfExhaustive) {
  Rng rng(13);
  GameSpec spec;
  spec.num_miners = 5;
  spec.num_coins = 2;
  const Game g = random_game(spec, rng);
  const auto all = enumerate_equilibria(g);
  const auto sampled = sample_equilibria(g, rng, 64);
  for (const auto& s : sampled) {
    const bool present =
        std::any_of(all.begin(), all.end(),
                    [&](const Configuration& e) { return e == s; });
    EXPECT_TRUE(present);
  }
}

// ------------------------------------------------------------------ welfare

TEST(Welfare, Observation3AtEquilibria) {
  // At any equilibrium with all coins occupied, total payoff == total F.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    GameSpec spec;
    spec.num_miners = 6;
    spec.num_coins = 2;
    const Game g = random_game(spec, rng);
    for (const auto& s : enumerate_equilibria(g)) {
      if (s.occupied_coins() == g.num_coins()) {
        EXPECT_EQ(total_payoff(g, s), g.rewards().total_reward());
        EXPECT_TRUE(globally_optimal(g, s));
      }
    }
  }
}

TEST(Welfare, TotalPayoffEqualsDistributedReward) {
  // Identity for *any* configuration: miners on a coin split exactly F(c).
  Rng rng(19);
  GameSpec spec;
  spec.num_miners = 9;
  spec.num_coins = 4;
  const Game g = random_game(spec, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const Configuration s = random_configuration(g, rng);
    EXPECT_EQ(total_payoff(g, s), distributed_reward(g, s));
  }
}

TEST(Welfare, FairnessIndexBounds) {
  Game g(System::from_integer_powers({4, 4}, 2),
         RewardFunction::from_integers({10, 10}));
  // Symmetric split: everyone earns the same RPU → Jain index 1.
  const Configuration even(g.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_NEAR(rpu_fairness_index(g, even), 1.0, 1e-12);
  EXPECT_NEAR(rpu_spread(g, even), 1.0, 1e-12);
  // Skewed: one coin with double reward.
  Game g2(System::from_integer_powers({4, 4}, 2),
          RewardFunction::from_integers({30, 10}));
  const Configuration skew(g2.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_LT(rpu_fairness_index(g2, skew), 1.0);
  EXPECT_NEAR(rpu_spread(g2, skew), 3.0, 1e-12);
}

TEST(Welfare, PayoffVectorMatchesGame) {
  const Game g(System::from_integer_powers({2, 1}, 2),
               RewardFunction::from_integers({1, 1}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  const auto v = payoff_vector(g, s);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], Rational(1));
  EXPECT_EQ(v[1], Rational(1));
}

// -------------------------------------------------------------- assumptions

TEST(Genericity, DetectsSymmetricViolation) {
  // F(c0)/m0 == F(c1)/m1 with F=(2,4), m=(1,2).
  Game g(System::from_integer_powers({1, 2}, 2),
         RewardFunction::from_integers({2, 4}));
  const auto violation = find_genericity_violation(g);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->c, violation->c_prime);
}

TEST(Genericity, AcceptsGenericGame) {
  // Prime powers and rewards chosen so no subset-sum ratio collides.
  Game g(System::from_integer_powers({100, 10, 1}, 2),
         RewardFunction::from_integers({7, 1000000}));
  EXPECT_TRUE(is_generic(g));
}

TEST(Genericity, EqualRewardsAlwaysViolate) {
  // c ≠ c' with F(c) == F(c') and P == P' violates Assumption 2 trivially.
  Game g(System::from_integer_powers({3, 5}, 2),
         RewardFunction::from_integers({9, 9}));
  EXPECT_FALSE(is_generic(g));
}

TEST(Genericity, RefusesHugeGames) {
  Game g(System::from_integer_powers(std::vector<std::int64_t>(25, 1), 2),
         RewardFunction::from_integers({1, 2}));
  EXPECT_THROW(find_genericity_violation(g), std::invalid_argument);
}

TEST(NeverAlone, ViolatedWithFewMiners) {
  // 2 miners, 2 coins, wildly uneven rewards: the configuration with both
  // on the heavy coin leaves the light coin unwanted when its reward is
  // too small to tempt anyone.
  Game g(System::from_integer_powers({10, 10}, 2),
         RewardFunction::from_integers({1000, 1}));
  const auto violation = find_never_alone_violation(g);
  ASSERT_TRUE(violation.has_value());
}

TEST(NeverAlone, HoldsWithManyMinersBalancedRewards) {
  Game g(System::from_integer_powers({3, 3, 3, 3, 3, 3}, 2),
         RewardFunction::from_integers({10, 10}));
  EXPECT_FALSE(find_never_alone_violation(g).has_value());
}

TEST(NeverAlone, PerConfigurationCheck) {
  Game g(System::from_integer_powers({3, 3, 3, 3}, 2),
         RewardFunction::from_integers({10, 10}));
  // Everyone on c0: c1 is empty and attractive → no violation at s.
  const Configuration all0 =
      Configuration::all_at(g.system_ptr(), CoinId(0));
  EXPECT_FALSE(never_alone_violation_at(g, all0).has_value());
}

// --------------------------------------------------------------- Section 4

TEST(Claim7, BiggerMinerInheritsStability) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    GameSpec spec;
    spec.num_miners = 6;
    spec.num_coins = 3;
    const Game g = random_game(spec, rng);
    const Configuration s = random_configuration(g, rng);
    for (std::uint32_t a = 0; a < 6; ++a) {
      for (std::uint32_t b = 0; b < 6; ++b) {
        if (a == b) continue;
        const MinerId p(a), q(b);
        if (s.of(p) != s.of(q)) continue;
        if (g.system().power(p) > g.system().power(q)) continue;
        EXPECT_TRUE(claim7_implies_stable(g, s, p, q));
      }
    }
  }
}

TEST(Lemma2, ProducesTwoDistinctConfigurations) {
  Rng rng(29);
  GameSpec spec;
  spec.num_miners = 8;
  spec.num_coins = 3;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  const Game g = random_game(spec, rng);
  const auto [a, b] = lemma2_two_configurations(g);
  EXPECT_FALSE(a == b);
}

TEST(Lemma2, BothStableUnderAssumptionFriendlyGames) {
  // Many equal-ish miners vs few coins ⇒ Assumption 1 regime; rewards
  // spread to be generic-ish. Both constructed configurations should be
  // equilibria (Lemma 2's conclusion).
  Rng rng(31);
  int both_stable = 0;
  int trials = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    GameSpec spec;
    spec.num_miners = 10;
    spec.num_coins = 2;
    spec.power_lo = 1;
    spec.power_hi = 40;
    spec.distinct_powers = true;
    spec.sort_desc = true;
    Rng local(seed * 7919 + 13);
    const Game g = random_game(spec, local);
    const auto [a, b] = lemma2_two_configurations(g);
    ++trials;
    if (is_equilibrium(g, a) && is_equilibrium(g, b)) ++both_stable;
  }
  // The construction is stable in the assumption regime; allow rare
  // boundary cases where random rewards break Assumption 1.
  EXPECT_GE(both_stable, trials - 2);
}

TEST(Proposition2, EveryEquilibriumHasBetterForSomeMiner) {
  // Exhaustive check on small generic games with ≥ 2 equilibria.
  Rng rng(37);
  int games_checked = 0;
  for (std::uint64_t seed = 0; seed < 40 && games_checked < 8; ++seed) {
    GameSpec spec;
    spec.num_miners = 6;
    spec.num_coins = 2;
    spec.power_lo = 1;
    spec.power_hi = 60;
    spec.distinct_powers = true;
    spec.sort_desc = true;
    Rng local(seed * 104729 + 7);
    const Game g = random_game(spec, local);
    if (find_never_alone_violation(g).has_value()) continue;
    if (!is_generic(g)) continue;
    const auto eqs = enumerate_equilibria(g);
    if (eqs.size() < 2) continue;
    ++games_checked;
    for (const auto& s : eqs) {
      const auto witness = find_better_equilibrium(g, s, eqs);
      ASSERT_TRUE(witness.has_value()) << "no better equilibrium from " << s.to_string();
      EXPECT_GT(witness->payoff_after, witness->payoff_before);
    }
  }
  EXPECT_GE(games_checked, 3) << "assumption-satisfying games too rare";
}

TEST(FindBetterEquilibrium, NoneWhenListEmpty) {
  const Game g(System::from_integer_powers({2, 1}, 2),
               RewardFunction::from_integers({1, 1}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_FALSE(find_better_equilibrium(g, s, {}).has_value());
  EXPECT_FALSE(find_better_equilibrium(g, s, {s}).has_value());
}

}  // namespace
}  // namespace goc
