#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "design/intermediate.hpp"
#include "design/naive.hpp"
#include "design/progress.hpp"
#include "design/reward_design.hpp"
#include "design/stage_rewards.hpp"
#include "equilibrium/enumerate.hpp"

namespace goc {
namespace {

/// A strictly-decreasing-powers game with at least two equilibria, plus two
/// of them, produced deterministically from `seed`. Returns nullopt when
/// the drawn game has fewer than two sampled equilibria.
struct DesignFixture {
  Game game;
  Configuration s0;
  Configuration sf;
};

std::optional<DesignFixture> make_fixture(std::uint64_t seed,
                                          std::size_t miners = 6,
                                          std::size_t coins = 3) {
  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.power_lo = 1;
  spec.power_hi = 100;
  spec.reward_lo = 50;
  spec.reward_hi = 900;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  Game game = random_game(spec, rng);
  auto equilibria = sample_equilibria(game, rng, 48);
  if (equilibria.size() < 2) return std::nullopt;
  return DesignFixture{std::move(game), std::move(equilibria[0]),
                       std::move(equilibria[1])};
}

// ----------------------------------------------------------- Eq 3 geometry

TEST(Intermediate, MatchesEquationThree) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({50, 40, 30, 20, 10}, 3));
  const Configuration sf(
      system, {CoinId(0), CoinId(1), CoinId(2), CoinId(0), CoinId(1)});
  // Stage 2: p1,p2 final; p3..p5 at sf.p2 = c1.
  const Configuration s2 = intermediate_configuration(sf, 2);
  EXPECT_EQ(s2.of(MinerId(0)), CoinId(0));
  EXPECT_EQ(s2.of(MinerId(1)), CoinId(1));
  EXPECT_EQ(s2.of(MinerId(2)), CoinId(1));
  EXPECT_EQ(s2.of(MinerId(3)), CoinId(1));
  EXPECT_EQ(s2.of(MinerId(4)), CoinId(1));
  // Stage n: s^n == sf.
  EXPECT_TRUE(intermediate_configuration(sf, 5) == sf);
  // Stage 1: everyone at sf.p1.
  const Configuration s1 = intermediate_configuration(sf, 1);
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(s1.of(MinerId(p)), CoinId(0));
  }
}

TEST(Intermediate, StageBoundsChecked) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({3, 2}, 2));
  const Configuration sf(system, {CoinId(0), CoinId(1)});
  EXPECT_THROW(intermediate_configuration(sf, 0), std::invalid_argument);
  EXPECT_THROW(intermediate_configuration(sf, 3), std::invalid_argument);
}

TEST(StageSet, MembershipRules) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({50, 40, 30, 20}, 3));
  const Configuration sf(system, {CoinId(0), CoinId(1), CoinId(2), CoinId(0)});
  // T_2: p1 at c0; p2..p4 each at sf.p2=c1 or sf.p1=c0.
  EXPECT_TRUE(in_stage_set(
      Configuration(system, {CoinId(0), CoinId(0), CoinId(1), CoinId(0)}), sf, 2));
  EXPECT_TRUE(in_stage_set(intermediate_configuration(sf, 1), sf, 2));
  EXPECT_TRUE(in_stage_set(intermediate_configuration(sf, 2), sf, 2));
  // p1 displaced → not in T_2.
  EXPECT_FALSE(in_stage_set(
      Configuration(system, {CoinId(1), CoinId(0), CoinId(1), CoinId(0)}), sf, 2));
  // p3 on a coin outside {c0, c1} → not in T_2.
  EXPECT_FALSE(in_stage_set(
      Configuration(system, {CoinId(0), CoinId(1), CoinId(2), CoinId(0)}), sf, 2));
}

TEST(Mover, PaperDefinition) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({50, 40, 30, 20, 10}, 2));
  const Configuration sf(
      system, {CoinId(0), CoinId(1), CoinId(1), CoinId(1), CoinId(1)});
  // Stage 2 start (s^1): everyone at c0; mover is p_n = p5.
  const Configuration start = intermediate_configuration(sf, 1);
  EXPECT_EQ(mover_index(start, sf, 2), 5u);
  EXPECT_EQ(anchor_index(start, sf, 2), 4u);
  // p5 placed: mover is p4.
  Configuration mid = start;
  mid.move(MinerId(4), CoinId(1));
  EXPECT_EQ(mover_index(mid, sf, 2), 4u);
  EXPECT_EQ(anchor_index(mid, sf, 2), 3u);
  // At s^2 the mover is undefined.
  EXPECT_FALSE(mover_index(intermediate_configuration(sf, 2), sf, 2).has_value());
}

TEST(Mover, SkipsHoles) {
  // p5 on target but p4 not: the mover is p4 (largest index not on target
  // with everyone after it on target — p4 qualifies, p3 does not).
  auto system = std::make_shared<const System>(
      System::from_integer_powers({50, 40, 30, 20, 10}, 2));
  const Configuration sf(
      system, {CoinId(0), CoinId(1), CoinId(1), CoinId(1), CoinId(1)});
  const Configuration s(
      system, {CoinId(0), CoinId(0), CoinId(0), CoinId(0), CoinId(1)});
  EXPECT_EQ(mover_index(s, sf, 2), 4u);
}

// ------------------------------------------------------------ progress Φ_i

TEST(Progress, VectorAndOrder) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({50, 40, 30, 20}, 2));
  const Configuration sf(system, {CoinId(0), CoinId(1), CoinId(1), CoinId(1)});
  const Configuration start = intermediate_configuration(sf, 1);
  Configuration mid = start;
  mid.move(MinerId(3), CoinId(1));
  const auto v0 = progress_vector(start, sf, 2);
  const auto v1 = progress_vector(mid, sf, 2);
  EXPECT_EQ(v0, (std::vector<bool>{false, false, false}));
  EXPECT_EQ(v1, (std::vector<bool>{false, false, true}));
  EXPECT_TRUE(progress_less(v0, v1));
  EXPECT_FALSE(progress_less(v1, v0));
  EXPECT_FALSE(progress_less(v0, v0));
  // Lexicographic: placing an earlier miner dominates later bits.
  Configuration mid2 = start;
  mid2.move(MinerId(1), CoinId(1));
  EXPECT_TRUE(progress_less(v1, progress_vector(mid2, sf, 2)));
}

// ----------------------------------------------------------- stage rewards

TEST(StageRewards, DominateBaseAndLevelFloor) {
  const auto fixture = make_fixture(1);
  ASSERT_TRUE(fixture.has_value());
  const Game& g = fixture->game;
  const Rational lambda =
      Rational(2) * g.rewards().max_reward() / g.system().min_power();
  EXPECT_GE(design_level(g, fixture->s0), lambda);
  const RewardFunction h1 = stage_reward_function(g, fixture->sf, 1, fixture->s0);
  EXPECT_TRUE(h1.dominates(g.rewards()));
}

TEST(StageRewards, StageOneAttractsEveryoneEverywhere) {
  const auto fixture = make_fixture(2);
  ASSERT_TRUE(fixture.has_value());
  const Game& g = fixture->game;
  const CoinId target = fixture->sf.of(MinerId(0));
  const Game designed =
      g.with_rewards(stage_reward_function(g, fixture->sf, 1, fixture->s0));
  // From any configuration, any miner not on the target strictly gains by
  // moving there — the stage-1 robustification property.
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Configuration s = random_configuration(designed, rng);
    for (std::uint32_t p = 0; p < designed.num_miners(); ++p) {
      const MinerId miner(p);
      if (s.of(miner) == target) continue;
      EXPECT_TRUE(is_better_response(designed, s, miner, target));
    }
  }
}

TEST(StageRewards, UniqueBetterResponseAtStageStart) {
  // At the start of stage i ≥ 2, the designed game admits exactly one
  // better-response move: the mover to the stage target (Lemma 1).
  const auto fixture = make_fixture(3);
  ASSERT_TRUE(fixture.has_value());
  const Game& g = fixture->game;
  const Configuration& sf = fixture->sf;
  for (std::size_t stage = 2; stage <= g.num_miners(); ++stage) {
    const Configuration start = intermediate_configuration(sf, stage - 1);
    if (start == intermediate_configuration(sf, stage)) continue;
    ASSERT_TRUE(in_stage_set(start, sf, stage));
    const Game designed =
        g.with_rewards(stage_reward_function(g, sf, stage, start));
    const auto moves = all_better_response_moves(designed, start);
    ASSERT_EQ(moves.size(), 1u) << "stage " << stage;
    const auto mover = mover_index(start, sf, stage);
    ASSERT_TRUE(mover.has_value());
    EXPECT_EQ(moves.front().miner,
              MinerId(static_cast<std::uint32_t>(*mover - 1)));
    EXPECT_EQ(moves.front().to, sf.of(MinerId(static_cast<std::uint32_t>(stage - 1))));
  }
}

TEST(StageRewards, RequiresStrictPowerOrder) {
  Game g(System::from_integer_powers({5, 5}, 2),
         RewardFunction::from_integers({10, 10}));
  const Configuration sf(g.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_THROW(stage_reward_function(g, sf, 1, sf), std::invalid_argument);
}

// -------------------------------------------------------------- Algorithm 2

/// End-to-end Theorem 2: the mechanism reaches sf for every scheduler, with
/// all invariants audited.
class RewardDesignProperty
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, std::uint64_t>> {};

TEST_P(RewardDesignProperty, ReachesTargetUnderAudit) {
  const auto [kind, seed] = GetParam();
  const auto fixture = make_fixture(seed);
  if (!fixture) GTEST_SKIP() << "game with <2 sampled equilibria";
  auto sched = make_scheduler(kind, seed * 31 + 7);
  DesignOptions opts;
  opts.audit = true;
  const DesignResult result = run_reward_design(
      fixture->game, fixture->s0, fixture->sf, *sched, opts);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.final_configuration == fixture->sf);
  EXPECT_EQ(result.stages.size(), fixture->game.num_miners());
  EXPECT_TRUE(result.total_cost.is_positive());
  EXPECT_GE(result.total_iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RewardDesignProperty,
    ::testing::Combine(::testing::ValuesIn(all_scheduler_kinds()),
                       ::testing::Values(11u, 22u, 33u)));

TEST(RewardDesign, IdentityTargetStillTraversesStages) {
  // s0 == sf: stage 1 still herds everyone to sf.p1 and the remaining
  // stages fan them back out — the mechanism is not a no-op, by design.
  const auto fixture = make_fixture(4);
  ASSERT_TRUE(fixture.has_value());
  auto sched = make_scheduler(SchedulerKind::kLexicographic);
  DesignOptions opts;
  opts.audit = true;
  const auto result = run_reward_design(fixture->game, fixture->s0,
                                        fixture->s0, *sched, opts);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.final_configuration == fixture->s0);
}

TEST(RewardDesign, TwoMinerMinimal) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const Configuration s0(g.system_ptr(), {CoinId(0), CoinId(1)});
  const Configuration sf(g.system_ptr(), {CoinId(1), CoinId(0)});
  ASSERT_TRUE(is_equilibrium(g, s0));
  ASSERT_TRUE(is_equilibrium(g, sf));
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    auto sched = make_scheduler(kind, 99);
    DesignOptions opts;
    opts.audit = true;
    const auto result = run_reward_design(g, s0, sf, *sched, opts);
    EXPECT_TRUE(result.success) << scheduler_kind_name(kind);
  }
}

TEST(RewardDesign, SingleMinerTrivial) {
  Game g(System::from_integer_powers({5}, 2),
         RewardFunction::from_integers({10, 4}));
  const Configuration s0(g.system_ptr(), {CoinId(0)});
  ASSERT_TRUE(is_equilibrium(g, s0));
  auto sched = make_scheduler(SchedulerKind::kMaxGain);
  const auto result = run_reward_design(g, s0, s0, *sched);
  EXPECT_TRUE(result.success);
}

TEST(RewardDesign, SharedFinalCoins) {
  // sf stacks several miners on one coin; consecutive-equal-target stages
  // must collapse to no-ops.
  Rng rng(55);
  GameSpec spec;
  spec.num_miners = 5;
  spec.num_coins = 2;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  const Game g = random_game(spec, rng);
  const auto eqs = enumerate_equilibria(g);
  ASSERT_GE(eqs.size(), 1u);
  auto sched = make_scheduler(SchedulerKind::kRandomMove, 3);
  DesignOptions opts;
  opts.audit = true;
  const auto result = run_reward_design(g, eqs.front(), eqs.back(), *sched, opts);
  EXPECT_TRUE(result.success);
}

TEST(RewardDesign, PreconditionsEnforced) {
  Game equal_powers(System::from_integer_powers({3, 3}, 2),
                    RewardFunction::from_integers({5, 5}));
  const Configuration eq(equal_powers.system_ptr(), {CoinId(0), CoinId(1)});
  auto sched = make_scheduler(SchedulerKind::kMaxGain);
  EXPECT_THROW(run_reward_design(equal_powers, eq, eq, *sched),
               std::invalid_argument);

  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const Configuration unstable_cfg(g.system_ptr(), {CoinId(0), CoinId(0)});
  const Configuration stable_cfg(g.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_THROW(run_reward_design(g, unstable_cfg, stable_cfg, *sched),
               std::invalid_argument);
  EXPECT_THROW(run_reward_design(g, stable_cfg, unstable_cfg, *sched),
               std::invalid_argument);
}

TEST(RewardDesign, CostAccountingConsistent) {
  const auto fixture = make_fixture(6);
  ASSERT_TRUE(fixture.has_value());
  auto sched = make_scheduler(SchedulerKind::kRoundRobin);
  const auto result =
      run_reward_design(fixture->game, fixture->s0, fixture->sf, *sched);
  Rational stage_sum(0);
  std::uint64_t iter_sum = 0;
  for (const StageRecord& rec : result.stages) {
    stage_sum += rec.stage_cost;
    iter_sum += rec.iterations;
    EXPECT_LE(rec.peak_overpayment, result.peak_overpayment);
  }
  EXPECT_EQ(stage_sum, result.total_cost);
  EXPECT_EQ(iter_sum, result.total_iterations);
  EXPECT_GE(result.peak_overpayment, Rational(0));
}

// -------------------------------------------------------------------- naive

TEST(Naive, MethodsRunAndReport) {
  const auto fixture = make_fixture(7);
  ASSERT_TRUE(fixture.has_value());
  auto sched = make_scheduler(SchedulerKind::kRandomMiner, 17);
  const auto prop = naive_proportional_pump(fixture->game, fixture->s0,
                                            fixture->sf, *sched);
  EXPECT_EQ(prop.method, "proportional-pump");
  EXPECT_GE(prop.iterations, 2u);
  EXPECT_TRUE(is_equilibrium(fixture->game, prop.final_configuration));

  const auto deficit =
      naive_deficit_pump(fixture->game, fixture->s0, fixture->sf, *sched);
  EXPECT_EQ(deficit.method, "deficit-pump");
  EXPECT_TRUE(is_equilibrium(fixture->game, deficit.final_configuration));
}

TEST(Naive, SuccessFlagMatchesOutcome) {
  const auto fixture = make_fixture(8);
  ASSERT_TRUE(fixture.has_value());
  auto sched = make_scheduler(SchedulerKind::kLexicographic);
  const auto r = naive_proportional_pump(fixture->game, fixture->s0,
                                         fixture->sf, *sched);
  EXPECT_EQ(r.success, r.final_configuration == fixture->sf);
}

TEST(Naive, FailsSomewhereAlgorithm2Succeeds) {
  // Find a seed where the naive pump misses the target; Algorithm 2 must
  // still succeed there. (Existence of such cases is the point of E8.)
  bool found_naive_failure = false;
  for (std::uint64_t seed = 1; seed <= 60 && !found_naive_failure; ++seed) {
    const auto fixture = make_fixture(seed);
    if (!fixture) continue;
    auto sched = make_scheduler(SchedulerKind::kRandomMiner, seed);
    const auto naive = naive_proportional_pump(fixture->game, fixture->s0,
                                               fixture->sf, *sched);
    if (naive.success) continue;
    found_naive_failure = true;
    auto sched2 = make_scheduler(SchedulerKind::kRandomMiner, seed);
    const auto principled = run_reward_design(fixture->game, fixture->s0,
                                              fixture->sf, *sched2);
    EXPECT_TRUE(principled.success);
  }
  EXPECT_TRUE(found_naive_failure)
      << "naive pump never failed across 60 seeds — baseline too strong?";
}

}  // namespace
}  // namespace goc
