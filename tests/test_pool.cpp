#include <gtest/gtest.h>

#include <cmath>

#include "pool/pool_sim.hpp"
#include "pool/reward_scheme.hpp"

namespace goc::pool {
namespace {

// -------------------------------------------------------------- schemes

TEST(Proportional, SplitsRoundByShares) {
  ProportionalScheme scheme;
  scheme.begin(2);
  scheme.on_share(0);
  scheme.on_share(0);
  scheme.on_share(1);
  scheme.on_block(30.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 20.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[1], 10.0);
  // New round starts empty.
  scheme.on_share(1);
  scheme.on_block(30.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 20.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[1], 40.0);
}

TEST(Proportional, BlockWithoutSharesPaysNobody) {
  ProportionalScheme scheme;
  scheme.begin(2);
  scheme.on_block(50.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 0.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[1], 0.0);
}

TEST(Pps, PaysPerShareAndOperatorAbsorbsVariance) {
  PpsScheme scheme(100.0, 50.0, 0.05);  // per-share = 100·0.95/50 = 1.9
  scheme.begin(2);
  scheme.on_share(0);
  scheme.on_share(1);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 1.9);
  EXPECT_DOUBLE_EQ(scheme.payouts()[1], 1.9);
  EXPECT_DOUBLE_EQ(scheme.operator_balance(), -3.8);
  scheme.on_block(100.0);
  EXPECT_DOUBLE_EQ(scheme.operator_balance(), 96.2);
  // Member payouts unaffected by block luck.
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 1.9);
}

TEST(Pps, ParameterValidation) {
  EXPECT_THROW(PpsScheme(0.0, 50.0, 0.05), std::invalid_argument);
  EXPECT_THROW(PpsScheme(100.0, 0.0, 0.05), std::invalid_argument);
  EXPECT_THROW(PpsScheme(100.0, 50.0, 1.0), std::invalid_argument);
}

TEST(Pplns, PaysLastNAcrossRounds) {
  PplnsScheme scheme(3);
  scheme.begin(2);
  scheme.on_share(0);  // falls out of the window later
  scheme.on_share(0);
  scheme.on_share(1);
  scheme.on_share(1);  // window now: {0, 1, 1}
  scheme.on_block(30.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 10.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[1], 20.0);
  // Shares persist across the block: another block pays the same window.
  scheme.on_block(30.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 20.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[1], 40.0);
}

TEST(Pplns, ShortWindowAtStart) {
  PplnsScheme scheme(10);
  scheme.begin(1);
  scheme.on_share(0);
  scheme.on_block(10.0);
  EXPECT_DOUBLE_EQ(scheme.payouts()[0], 10.0);  // whole reward to 1 share
}

TEST(Schemes, FactoryProducesAllKinds) {
  for (const SchemeKind kind :
       {SchemeKind::kProportional, SchemeKind::kPps, SchemeKind::kPplns}) {
    auto scheme = make_scheme(kind, 100.0, 500.0);
    ASSERT_NE(scheme, nullptr);
    scheme->begin(3);
    scheme->on_share(1);
    scheme->on_block(100.0);
  }
}

// ------------------------------------------------------------- simulation

TEST(PoolSim, ProportionalPayoutsTrackHashrates) {
  PoolSimOptions opts;
  opts.duration_hours = 24.0 * 120;
  opts.shares_per_block = 100.0;
  opts.seed = 5;
  const std::vector<double> rates{50.0, 30.0, 20.0};
  for (const SchemeKind kind :
       {SchemeKind::kProportional, SchemeKind::kPps, SchemeKind::kPplns}) {
    auto scheme = make_scheme(kind, opts.reward_per_block, opts.shares_per_block);
    const PoolSimResult result = simulate_pool(rates, *scheme, opts);
    EXPECT_LT(result.proportionality_error, 0.02) << scheme->name();
    EXPECT_GT(result.blocks_found, 100u);
  }
}

TEST(PoolSim, PoolingReducesIncomeVariance) {
  // A 5%-hashrate member in a pool vs mining solo: daily income CV drops
  // by an order of magnitude — the smoothing that justifies the paper's
  // expected-value payoff model.
  PoolSimOptions opts;
  opts.duration_hours = 24.0 * 240;
  opts.shares_per_block = 200.0;
  opts.seed = 7;

  PplnsScheme pooled(200);
  const PoolSimResult pool =
      simulate_pool({5.0, 95.0}, pooled, opts);

  ProportionalScheme solo_scheme;  // a pool of one IS solo mining
  const PoolSimResult solo = simulate_pool({5.0}, solo_scheme, opts);

  EXPECT_LT(pool.members[0].window_income_cv,
            0.5 * solo.members[0].window_income_cv);
  // Same expected income either way (within tolerance).
  EXPECT_NEAR(pool.members[0].mean_window_income,
              solo.members[0].mean_window_income,
              0.35 * solo.members[0].mean_window_income);
}

TEST(PoolSim, PpsOperatorBreaksEvenOnAverage) {
  PoolSimOptions opts;
  opts.duration_hours = 24.0 * 360;
  opts.shares_per_block = 100.0;
  opts.seed = 9;
  PpsScheme scheme(opts.reward_per_block, opts.shares_per_block, 0.05);
  const PoolSimResult result = simulate_pool({40.0, 60.0}, scheme, opts);
  // Operator collects ~5% of total block income (the fee), subject to luck.
  const double block_income =
      static_cast<double>(result.blocks_found) * opts.reward_per_block;
  EXPECT_NEAR(result.operator_balance / block_income, 0.05, 0.03);
}

TEST(PoolSim, InputValidation) {
  PoolSimOptions opts;
  ProportionalScheme scheme;
  EXPECT_THROW(simulate_pool({}, scheme, opts), std::invalid_argument);
  EXPECT_THROW(simulate_pool({-1.0}, scheme, opts), std::invalid_argument);
  opts.duration_hours = 0.0;
  EXPECT_THROW(simulate_pool({1.0}, scheme, opts), std::invalid_argument);
}

// ---------------------------------------------------------------- hopping

TEST(Hopping, ProportionalDecaysWithRoundAge) {
  PoolSimOptions opts;
  opts.shares_per_block = 200.0;
  Rng rng(11);
  const auto profile =
      hopping_profile(SchemeKind::kProportional, opts, 6, rng, 8000);
  ASSERT_EQ(profile.size(), 6u);
  // Early shares are strictly more valuable than late ones (Rosenfeld's
  // classic hopping incentive).
  EXPECT_GT(profile.front(), 1.2 * profile.back());
  // Monotone decreasing up to sampling noise in the tail buckets.
  EXPECT_GT(profile[0], profile[2]);
  EXPECT_GT(profile[1], profile[3]);
}

TEST(Hopping, PplnsAndPpsAreFlat) {
  PoolSimOptions opts;
  opts.shares_per_block = 200.0;
  for (const SchemeKind kind : {SchemeKind::kPplns, SchemeKind::kPps}) {
    Rng rng(13);
    const auto profile = hopping_profile(kind, opts, 6, rng, 8000);
    double lo = profile[0], hi = profile[0];
    for (const double v : profile) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_LT(hi / lo, 1.15) << static_cast<int>(kind);
  }
}

TEST(Hopping, ExpectedValuePerShareMatchesTheory) {
  // PPS pays exactly reward·(1−fee)/spb per share by construction.
  PoolSimOptions opts;
  opts.shares_per_block = 100.0;
  opts.reward_per_block = 100.0;
  Rng rng(17);
  const auto profile = hopping_profile(SchemeKind::kPps, opts, 4, rng, 2000);
  for (const double v : profile) {
    EXPECT_NEAR(v, 100.0 * 0.95 / 100.0, 1e-9);
  }
}

}  // namespace
}  // namespace goc::pool
