#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "design/intermediate.hpp"
#include "design/stage_rewards.hpp"
#include "dynamics/learning.hpp"
#include "market/market_sim.hpp"
#include "market/price_process.hpp"
#include "util/log.hpp"

namespace goc {
namespace {

// -------------------------------------------------- malicious schedulers

/// Returns a syntactically valid move that is NOT a better response.
class NonImprovingScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    // Claim a zero-gain "improvement" of miner 0 to the next coin.
    const MinerId p(0);
    const CoinId from = s.of(p);
    const CoinId to((from.value + 1) % static_cast<std::uint32_t>(game.num_coins()));
    return Move{p, from, to, Rational(0)};
  }
  std::string name() const override { return "malicious-nonimproving"; }
};

/// Returns a move whose `from` does not match the configuration.
class MisappliedScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const MinerId p(0);
    const CoinId wrong_from(
        (s.of(p).value + 1) % static_cast<std::uint32_t>(game.num_coins()));
    return Move{p, wrong_from, s.of(p), Rational(1)};
  }
  std::string name() const override { return "malicious-misapplied"; }
};

TEST(FailureInjection, LearningRejectsNonImprovingMove) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  NonImprovingScheduler sched;
  EXPECT_THROW(run_learning(g, s, sched), InvariantError);
}

TEST(FailureInjection, LearningRejectsMisappliedMove) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  MisappliedScheduler sched;
  EXPECT_THROW(run_learning(g, s, sched), InvariantError);
}

// ------------------------------------------ exact arithmetic vs double ref

TEST(ExactArithmetic, AgreesWithDoubleReferenceOnRandomExpressions) {
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    const Rational a(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
    const Rational b(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
    const Rational c(rng.uniform_int(1, 1000), rng.uniform_int(1, 1000));
    const Rational exact = (a + b) * c - a / c;
    const double ref =
        (a.to_double() + b.to_double()) * c.to_double() - a.to_double() / c.to_double();
    EXPECT_NEAR(exact.to_double(), ref, 1e-9 * (1.0 + std::fabs(ref)));
  }
}

TEST(ExactArithmetic, FieldAxiomsHoldExactly) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    const Rational a(rng.uniform_int(-500, 500), rng.uniform_int(1, 500));
    const Rational b(rng.uniform_int(-500, 500), rng.uniform_int(1, 500));
    const Rational c(rng.uniform_int(-500, 500), rng.uniform_int(1, 500));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!c.is_zero()) {
      EXPECT_EQ((a / c) * c, a);
    }
  }
}

TEST(ExactArithmetic, PayoffConservationOnRandomConfigurations) {
  // Σ_p u_p(s) over a coin's members is exactly F(c) — no float drift.
  Rng rng(77);
  GameSpec spec;
  spec.num_miners = 12;
  spec.num_coins = 4;
  const Game g = random_game(spec, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const Configuration s = random_configuration(g, rng);
    for (std::uint32_t c = 0; c < 4; ++c) {
      const CoinId coin(c);
      if (s.empty_coin(coin)) continue;
      Rational sum(0);
      for (const MinerId p : s.members(coin)) sum += g.payoff(s, p);
      EXPECT_EQ(sum, g.rewards()(coin));
    }
  }
}

// ------------------------------------------------ designed-reward edges

TEST(StageRewardEdge, EmptyTargetCoinHandled) {
  // Build sf whose stage-4 target coin (sf.p4 = c2) is empty at the stage
  // start: in s^3, miners sit only on sf.p1..sf.p3 ∪ {sf.p3}. The
  // robustified H must still dominate F and admit exactly one better
  // response.
  auto system = std::make_shared<const System>(
      System::from_integer_powers({50, 40, 30, 20}, 3));
  const Game g(system, RewardFunction::from_integers({100, 90, 80}));
  const Configuration sf(system, {CoinId(0), CoinId(1), CoinId(0), CoinId(2)});
  const Configuration start = intermediate_configuration(sf, 3);
  ASSERT_TRUE(start.empty_coin(CoinId(2)));  // c2 = stage-4 target, empty
  const RewardFunction h = stage_reward_function(g, sf, 4, start);
  EXPECT_TRUE(h.dominates(g.rewards()));
  const Game designed = g.with_rewards(h);
  const auto moves = all_better_response_moves(designed, start);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves.front().miner, MinerId(3));
  EXPECT_EQ(moves.front().to, CoinId(2));
}

TEST(StageRewardEdge, SubUnitPowersStillAttract) {
  // Powers below 1 break the paper's literal Eq. 5 (see DESIGN.md §2.2);
  // the robustified stage-1 function must still pull everyone in.
  auto system = std::make_shared<const System>(System(
      {Rational(3, 10), Rational(2, 10), Rational(1, 10)}, 2));
  const Game g(system, RewardFunction::from_integers({7, 5}));
  const Configuration sf(system, {CoinId(1), CoinId(0), CoinId(1)});
  const Configuration anywhere(system, {CoinId(0), CoinId(1), CoinId(0)});
  const Game designed = g.with_rewards(stage_reward_function(g, sf, 1, anywhere));
  for (std::uint32_t p = 0; p < 3; ++p) {
    const MinerId miner(p);
    if (anywhere.of(miner) == CoinId(1)) continue;
    EXPECT_TRUE(is_better_response(designed, anywhere, miner, CoinId(1)));
  }
}

// --------------------------------------------------------- market validation

TEST(MarketValidation, RejectsBadConstruction) {
  using namespace goc::market;
  MarketOptions opts;
  EXPECT_THROW(MarketSimulator({1, 2}, {}, opts), std::invalid_argument);

  std::vector<CoinSpec> coins;
  coins.emplace_back("c", 10.0, 6.0,
                     std::make_unique<GbmProcess>(10.0, 0.0, 0.01),
                     FeeMarket(1.0, 0.01, 2.0));
  MarketOptions bad;
  bad.epoch_hours = 0.0;
  EXPECT_THROW(MarketSimulator({1, 2}, std::move(coins), bad),
               std::invalid_argument);
}

TEST(MarketValidation, WhaleIndexChecked) {
  using namespace goc::market;
  std::vector<CoinSpec> coins;
  coins.emplace_back("c", 10.0, 6.0,
                     std::make_unique<GbmProcess>(10.0, 0.0, 0.01),
                     FeeMarket(1.0, 0.01, 2.0));
  MarketOptions opts;
  MarketSimulator sim({1, 2}, std::move(coins), opts);
  EXPECT_THROW(sim.inject_whale(3, 100.0), std::invalid_argument);
  EXPECT_THROW(sim.current_game(), std::invalid_argument);  // no epoch yet
}

// ----------------------------------------------------------------- logging

TEST(Logging, ThresholdSuppression) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Suppressed and emitted paths both exercised (no crash, no assertion).
  GOC_LOG(Debug) << "invisible " << 42;
  GOC_LOG(Error) << "visible " << 42;
  set_log_level(LogLevel::Off);
  GOC_LOG(Error) << "also invisible";
  set_log_level(before);
}

// ------------------------------------------------------------ access + reward

TEST(AccessCarriesThroughWithRewards, DesignedGamesKeepThePolicy) {
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({3, 4}),
         AccessPolicy({{true, false}, {true, true}}));
  const Game designed = g.with_rewards(RewardFunction::from_integers({9, 9}));
  EXPECT_FALSE(designed.can_mine(MinerId(0), CoinId(1)));
  EXPECT_TRUE(designed.can_mine(MinerId(1), CoinId(1)));
}

}  // namespace
}  // namespace goc
