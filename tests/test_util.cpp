#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/int128.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace goc {
namespace {

// ---------------------------------------------------------------- int128

TEST(Int128, ToString) {
  EXPECT_EQ(to_string(static_cast<i128>(0)), "0");
  EXPECT_EQ(to_string(static_cast<i128>(-42)), "-42");
  i128 big = 1;
  for (int i = 0; i < 30; ++i) big *= 10;
  EXPECT_EQ(to_string(big), "1000000000000000000000000000000");
  EXPECT_EQ(to_string(kI128Min),
            "-170141183460469231731687303715884105728");
}

TEST(Int128, Gcd) {
  EXPECT_EQ(gcd128(0, 5), 5u);
  EXPECT_EQ(gcd128(5, 0), 5u);
  EXPECT_EQ(gcd128(12, 18), 6u);
  EXPECT_EQ(gcd128(17, 13), 1u);
  const u128 big = static_cast<u128>(1) << 100;
  EXPECT_EQ(gcd128(big, big >> 3), big >> 3);
}

TEST(Int128, CheckedOpsThrowOnOverflow) {
  EXPECT_THROW(checked_add(kI128Max, 1), OverflowError);
  EXPECT_THROW(checked_mul(kI128Max, 2), OverflowError);
  EXPECT_EQ(checked_add(1, 2), 3);
  EXPECT_EQ(checked_mul(static_cast<i128>(1) << 60, 4),
            static_cast<i128>(1) << 62);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRangeAndCoversSupport) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_below(5);
    ASSERT_LT(v, 5u);
    ++seen[v];
  }
  for (const int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.08);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.08);
}

TEST(Rng, ParetoTailAndSupport) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.pareto(1.0, 2.0);
    ASSERT_GE(v, 1.0);
    stats.add(v);
  }
  // Pareto(1, 2) mean = 2.
  EXPECT_NEAR(stats.mean(), 2.0, 0.15);
}

TEST(Rng, ZipfRanksSkewed) {
  Rng rng(23);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t r = rng.zipf(10, 1.0);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    ++counts[r];
  }
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[1], 4 * counts[10]);
}

TEST(Rng, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, SplitIndependence) {
  Rng parent(37);
  Rng child = parent.split();
  // The child stream should not replicate the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Sample, Percentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
}

TEST(Sample, PercentileErrors) {
  Sample s;
  EXPECT_THROW(s.percentile(50), std::invalid_argument);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);
}

TEST(Sample, SummaryMentionsAllFields) {
  Sample s;
  s.add(1.0);
  s.add(2.0);
  const std::string text = s.summary();
  for (const char* field : {"mean=", "sd=", "p50=", "p95=", "min=", "max=", "n=2"}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
}

// ---------------------------------------------------------------- table

TEST(Table, AsciiAlignment) {
  Table t({"name", "value"});
  t.row() << "alpha" << 1;
  t.row() << "b" << 22;
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW((t.row() << "x"), std::invalid_argument);  // commits short row
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_group(1234567), "1_234_567");
  EXPECT_EQ(fmt_group(123), "123");
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesAllForms) {
  // Note: a bare `--flag value` form would bind the value; boolean flags
  // must be followed by another option or the end of the command line.
  const char* argv[] = {"prog",         "--alpha=3", "--beta", "7",
                        "--gamma=x,y",  "positional", "--flag"};
  Cli cli(7, argv);
  EXPECT_EQ(cli.get_i64("alpha", 0), 3);
  EXPECT_EQ(cli.get_i64("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_string("gamma", ""), "x,y");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_i64("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, TypeErrors) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_i64("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("b", false), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--t1", "--t2=true", "--t3=1",
                        "--f1=false", "--f2=0", "--f3=no"};
  Cli cli(7, argv);
  EXPECT_TRUE(cli.get_bool("t1", false));
  EXPECT_TRUE(cli.get_bool("t2", false));
  EXPECT_TRUE(cli.get_bool("t3", false));
  EXPECT_FALSE(cli.get_bool("f1", true));
  EXPECT_FALSE(cli.get_bool("f2", true));
  EXPECT_FALSE(cli.get_bool("f3", true));
}

}  // namespace
}  // namespace goc
