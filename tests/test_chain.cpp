#include <gtest/gtest.h>

#include <cmath>

#include "chain/chain_sim.hpp"
#include "chain/des.hpp"
#include "chain/difficulty.hpp"

namespace goc::chain {
namespace {

// ---------------------------------------------------------------------- DES

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int chain_length = 0;
  std::function<void()> reschedule = [&] {
    if (++chain_length < 5) q.schedule(q.now() + 1.0, reschedule);
  };
  q.schedule(0.5, reschedule);
  q.run_until(100.0);
  EXPECT_EQ(chain_length, 5);
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_until(2.0);
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(3.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.clear();
  q.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

// --------------------------------------------------------------- difficulty

TEST(FixedWindowRetarget, ScalesByObservedSpan) {
  // Window of 4 blocks, target 1h. Blocks arriving every 0.5h → difficulty
  // doubles at the window boundary.
  FixedWindowRetarget daa(4, 1.0);
  double difficulty = 100.0;
  double t = 0.0;
  difficulty = daa.on_block(t, difficulty);  // primes the window start
  for (int b = 0; b < 4; ++b) {
    t += 0.5;
    difficulty = daa.on_block(t, difficulty);
  }
  EXPECT_NEAR(difficulty, 200.0, 1e-9);
}

TEST(FixedWindowRetarget, ClampsAtMaxFactor) {
  FixedWindowRetarget daa(4, 1.0, 4.0);
  double difficulty = 100.0;
  double t = 0.0;
  difficulty = daa.on_block(t, difficulty);
  for (int b = 0; b < 4; ++b) {
    t += 0.01;  // 100× too fast: clamp to ×4
    difficulty = daa.on_block(t, difficulty);
  }
  EXPECT_NEAR(difficulty, 400.0, 1e-9);
}

TEST(FixedWindowRetarget, SlowBlocksLowerDifficulty) {
  FixedWindowRetarget daa(4, 1.0);
  double difficulty = 100.0;
  double t = 0.0;
  difficulty = daa.on_block(t, difficulty);
  for (int b = 0; b < 4; ++b) {
    t += 2.0;
    difficulty = daa.on_block(t, difficulty);
  }
  EXPECT_NEAR(difficulty, 50.0, 1e-9);
}

TEST(SmaRetarget, TracksTargetInterval) {
  SmaRetarget daa(4, 1.0, 1.2);
  double difficulty = 100.0;
  double t = 0.0;
  // Fast blocks: difficulty creeps up, clamped to ×1.2 per block.
  for (int b = 0; b < 10; ++b) {
    t += 0.5;
    const double next = daa.on_block(t, difficulty);
    EXPECT_LE(next, difficulty * 1.2 + 1e-9);
    difficulty = next;
  }
  EXPECT_GT(difficulty, 100.0);
}

TEST(EmergencyAdjuster, DropsAfterStall) {
  EmergencyAdjuster daa(1000, 1.0, /*emergency_gap_hours=*/12.0, 0.20);
  double difficulty = 100.0;
  difficulty = daa.on_block(0.0, difficulty);
  EXPECT_NEAR(difficulty, 100.0, 1e-9);
  // 13-hour stall triggers the 20% cut.
  difficulty = daa.on_block(13.0, difficulty);
  EXPECT_NEAR(difficulty, 80.0, 1e-9);
  // Regular cadence afterwards: no further cuts.
  difficulty = daa.on_block(14.0, difficulty);
  EXPECT_NEAR(difficulty, 80.0, 1e-9);
}

TEST(EmergencyAdjuster, ProspectiveCompoundsWithoutConsumingState) {
  EmergencyAdjuster daa(1000, 1.0, /*emergency_gap_hours=*/2.0, 0.20);
  // Genesis at t=0; a 7-hour stall has seen 3 full gaps → 0.8³.
  EXPECT_NEAR(daa.prospective(7.0, 1000.0), 1000.0 * 0.8 * 0.8 * 0.8, 1e-9);
  // Repeated calls are pure.
  EXPECT_NEAR(daa.prospective(7.0, 1000.0), 512.0, 1e-9);
  // A deep stall is bounded below (never reaches zero).
  EXPECT_GT(daa.prospective(1e6, 1000.0), 1e-3);
  // on_block applies the same discount and re-anchors the stall clock.
  const double after = daa.on_block(7.0, 1000.0);
  EXPECT_NEAR(after, 512.0, 1e-9);
  EXPECT_NEAR(daa.prospective(8.0, after), after, 1e-9);
}

TEST(Difficulty, ParameterValidation) {
  EXPECT_THROW(FixedWindowRetarget(0, 1.0), std::invalid_argument);
  EXPECT_THROW(FixedWindowRetarget(4, -1.0), std::invalid_argument);
  EXPECT_THROW(SmaRetarget(1, 1.0), std::invalid_argument);
  EXPECT_THROW(EmergencyAdjuster(4, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(EmergencyAdjuster(4, 1.0, 1.0, 1.5), std::invalid_argument);
}

// ----------------------------------------------------------------- chain sim

ChainSpec make_chain(const std::string& name, double difficulty, double reward) {
  return ChainSpec{name, difficulty, 1.0 / 6.0, reward,
                   std::make_unique<FixedWindowRetarget>(144, 1.0 / 6.0)};
}

TEST(ChainSim, StaticPolicyMatchesProportionalSplit) {
  // E9's core validation: with no switching, each miner's realized reward
  // share converges to its power share within the chain.
  std::vector<ChainSpec> chains;
  chains.push_back(make_chain("solo", 600.0, 10.0));
  ChainSimOptions opts;
  opts.duration_hours = 24.0 * 60;  // ≈ 8640 expected blocks
  opts.policy = MinerPolicy::kStatic;
  opts.seed = 1;
  MultiChainSimulator sim({100.0, 50.0, 30.0, 20.0}, std::move(chains), opts);
  const auto result = sim.run();
  EXPECT_GT(result.blocks_per_chain[0], 5000u);
  EXPECT_LT(result.share_prediction_mae, 0.01);
  // Realized share of the largest miner ≈ 0.5.
  double total = 0.0;
  for (const double r : result.miner_rewards_fiat) total += r;
  EXPECT_NEAR(result.miner_rewards_fiat[0] / total, 0.5, 0.05);
  EXPECT_EQ(result.migrations, 0u);
}

TEST(ChainSim, BlockCadenceTracksTarget) {
  std::vector<ChainSpec> chains;
  chains.push_back(make_chain("c", 600.0, 10.0));
  ChainSimOptions opts;
  opts.duration_hours = 24.0 * 30;
  opts.policy = MinerPolicy::kStatic;
  opts.seed = 2;
  // Hashrate 100 vs difficulty 600 → raw cadence 1 block/6h; a 10-block
  // retarget window must retune toward 6 blocks/hour within a few windows.
  chains[0].adjuster = std::make_unique<FixedWindowRetarget>(10, 1.0 / 6.0);
  MultiChainSimulator sim({60.0, 40.0}, std::move(chains), opts);
  const auto result = sim.run();
  const double expected_blocks = 6.0 * opts.duration_hours;
  EXPECT_GT(static_cast<double>(result.blocks_per_chain[0]),
            0.7 * expected_blocks);
}

TEST(ChainSim, BetterResponseSplitsByWeight) {
  // Two chains with 3:1 fiat weight and equal target cadence: the game
  // equilibrium puts ≈ 3/4 of the hashrate on the heavy chain.
  std::vector<ChainSpec> chains;
  chains.push_back(make_chain("heavy", 600.0, 30.0));
  chains.push_back(make_chain("light", 600.0, 10.0));
  ChainSimOptions opts;
  opts.duration_hours = 24.0 * 20;
  opts.policy = MinerPolicy::kBetterResponse;
  opts.reevaluation_fraction = 0.5;
  opts.seed = 3;
  std::vector<double> powers(16, 10.0);
  MultiChainSimulator sim(std::move(powers), std::move(chains), opts);
  const auto result = sim.run();
  ASSERT_FALSE(result.timeline.empty());
  const TimelinePoint& last = result.timeline.back();
  const double total = last.hashrate[0] + last.hashrate[1];
  EXPECT_NEAR(last.hashrate[0] / total, 0.75, 0.07);
  EXPECT_GT(result.migrations, 0u);
}

TEST(ChainSim, EdaOscillatesUnderMyopicMiners) {
  // The 2017 BCH phenomenon: an EDA chain under myopic profit-chasers
  // attracts hashrate when its difficulty collapses, overshoots when the
  // inflow makes blocks too fast (difficulty retargets up), sheds hashrate,
  // stalls, cuts again — a sustained sawtooth. Initial difficulties are
  // calibrated to the starting 50/50 split (D = M·T) so the lag dynamics,
  // not an arbitrary cold start, drive the churn.
  // The major chain pays 6× more, so at retargeted difficulties it wins and
  // holds the hashrate; only the EDA chain's stall discounts periodically
  // tempt miners across — they strip the cheap blocks, the retarget snaps
  // difficulty back up, they leave, the chain stalls, and the cycle repeats.
  std::vector<ChainSpec> chains;
  chains.push_back(ChainSpec{"btc", 20.0, 1.0 / 6.0, 60.0,
                             std::make_unique<SmaRetarget>(20, 1.0 / 6.0, 1.2)});
  chains.push_back(ChainSpec{"bch", 20.0, 1.0 / 6.0, 10.0,
                             std::make_unique<EmergencyAdjuster>(
                                 20, 1.0 / 6.0, /*gap=*/0.5, 0.20)});
  ChainSimOptions opts;
  opts.duration_hours = 24.0 * 20;
  opts.policy = MinerPolicy::kMyopicDifficulty;
  opts.reevaluation_fraction = 0.5;
  opts.seed = 4;
  std::vector<double> powers(12, 10.0);
  MultiChainSimulator sim(std::move(powers), std::move(chains), opts);
  const auto result = sim.run();
  // Sustained churn (not a one-off settlement): migrations happen in the
  // second half of the run too.
  std::uint64_t late_moves = 0;
  for (std::size_t i = result.timeline.size() / 2; i + 1 < result.timeline.size(); ++i) {
    const auto& a = result.timeline[i];
    const auto& b = result.timeline[i + 1];
    if (std::fabs(a.hashrate[1] - b.hashrate[1]) > 1e-9) ++late_moves;
  }
  EXPECT_GT(late_moves, 5u);
  EXPECT_GT(result.migrations, 50u);
}

TEST(ChainSim, StablePolicyQuietAfterConvergence) {
  // Contrast with the EDA test: equilibrium-seeking miners settle.
  std::vector<ChainSpec> chains;
  chains.push_back(make_chain("a", 600.0, 20.0));
  chains.push_back(make_chain("b", 600.0, 20.0));
  ChainSimOptions opts;
  opts.duration_hours = 24.0 * 10;
  opts.policy = MinerPolicy::kBetterResponse;
  opts.seed = 5;
  std::vector<double> powers(10, 10.0);
  MultiChainSimulator sim(std::move(powers), std::move(chains), opts);
  const auto result = sim.run();
  // Hashrate split settles to ~50/50 and stops moving.
  std::uint64_t late_moves = 0;
  for (std::size_t i = result.timeline.size() / 2; i + 1 < result.timeline.size(); ++i) {
    if (std::fabs(result.timeline[i].hashrate[0] -
                  result.timeline[i + 1].hashrate[0]) > 1e-9) {
      ++late_moves;
    }
  }
  EXPECT_EQ(late_moves, 0u);
}

TEST(ChainSim, ValidatesInput) {
  std::vector<ChainSpec> chains;
  chains.push_back(make_chain("c", 600.0, 10.0));
  ChainSimOptions opts;
  EXPECT_THROW(MultiChainSimulator({}, std::move(chains), opts),
               std::invalid_argument);
  std::vector<ChainSpec> chains2;
  chains2.push_back(make_chain("c", 600.0, 10.0));
  EXPECT_THROW(
      MultiChainSimulator({-1.0}, std::move(chains2), opts),
      std::invalid_argument);
  std::vector<ChainSpec> chains3;
  chains3.push_back(make_chain("c", 600.0, 10.0));
  EXPECT_THROW(MultiChainSimulator({1.0}, std::move(chains3), opts, {5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace goc::chain
