#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/enumerate.hpp"
#include "core/generators.hpp"
#include "core/move_compare.hpp"
#include "core/moves.hpp"
#include "equilibrium/assumptions.hpp"
#include "equilibrium/enumerate.hpp"
#include "potential/exact_potential.hpp"

namespace goc {
namespace {

EnumerationOptions opts_with(std::size_t threads, bool symmetry) {
  EnumerationOptions opts;
  opts.threads = threads;
  opts.symmetry = symmetry;
  if (threads > 1) {
    // Force the sharded parallel path even for the tiny test spaces the
    // scheduling heuristics would otherwise run serially — these tests
    // exist to prove shard concatenation is order-exact.
    opts.serial_cutoff = 0;
    opts.min_shard_configs = 1;
  }
  return opts;
}

/// Options bound to a real worker pool: an explicit pool bypasses the
/// hardware-lane cap, so the multi-lane machinery runs even on 1-core CI
/// boxes. Keep the instance alive for as long as the options are used.
struct ParallelOpts {
  engine::ThreadPool pool;
  EnumerationOptions opts;

  ParallelOpts(std::size_t lanes, bool symmetry)
      : pool(engine::ThreadPool::workers_for(lanes)),
        opts(opts_with(lanes, symmetry)) {
    opts.pool = &pool;
  }
};

/// A spread of game shapes covering the orbit structure the engine
/// exploits: all-distinct powers (trivial classes), all-equal (one big
/// class), duplicated powers (mixed classes), skewed rewards, and
/// restricted access (classes must split on access rows).
std::vector<Game> golden_games() {
  std::vector<Game> games;
  games.push_back(Game(System::from_integer_powers({7, 4, 2, 1}, 3),
                       RewardFunction::from_integers({9, 5, 3})));
  games.push_back(Game(System::from_integer_powers({3, 3, 3, 3, 3}, 2),
                       RewardFunction::from_integers({10, 7})));
  games.push_back(Game(System::from_integer_powers({5, 2, 2, 2, 1}, 3),
                       RewardFunction::from_integers({100, 40, 1})));
  games.push_back(Game(System::from_integer_powers({6, 6, 1, 1}, 2),
                       RewardFunction::from_integers({1000, 3})));
  {
    // Equal powers but split access rows: {p0, p1} may mine everything,
    // {p2, p3} only coin 0 — interchangeability must respect access.
    AccessPolicy access({{true, true}, {true, true}, {true, false}, {true, false}});
    games.push_back(Game(System::from_integer_powers({2, 2, 2, 2}, 2),
                         RewardFunction::from_integers({8, 5}), access));
  }
  {
    // Non-integer powers exercise the comparator's Rational fallback.
    games.push_back(Game(System({Rational(1, 2), Rational(1, 2), Rational(3, 4)}, 2),
                         RewardFunction::from_integers({4, 3})));
  }
  Rng rng(417);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    GameSpec spec;
    spec.num_miners = 5;
    spec.num_coins = 3;
    spec.power_lo = 1;
    spec.power_hi = 4;  // small range forces duplicate powers
    spec.reward_lo = 10;
    spec.reward_hi = 60;
    games.push_back(random_game(spec, rng));
  }
  return games;
}

// ------------------------------------------------------------ classes

TEST(SymmetryClasses, DistinctPowersAreTrivial) {
  Game g(System::from_integer_powers({5, 3, 1}, 2),
         RewardFunction::from_integers({2, 2}));
  const SymmetryClasses classes = symmetry_classes(g);
  EXPECT_TRUE(classes.trivial);
  EXPECT_EQ(classes.classes.size(), 3u);
  for (const std::int32_t next : classes.next_classmate) EXPECT_EQ(next, -1);
}

TEST(SymmetryClasses, EqualPowersGroupAcrossGaps) {
  Game g(System::from_integer_powers({3, 1, 3, 3}, 2),
         RewardFunction::from_integers({2, 2}));
  const SymmetryClasses classes = symmetry_classes(g);
  EXPECT_FALSE(classes.trivial);
  ASSERT_EQ(classes.classes.size(), 2u);
  EXPECT_EQ(classes.class_of[0], classes.class_of[2]);
  EXPECT_EQ(classes.class_of[0], classes.class_of[3]);
  EXPECT_NE(classes.class_of[0], classes.class_of[1]);
  // Chain 0 -> 2 -> 3 within the equal-power class.
  EXPECT_EQ(classes.next_classmate[0], 2);
  EXPECT_EQ(classes.next_classmate[2], 3);
  EXPECT_EQ(classes.next_classmate[3], -1);
  EXPECT_EQ(classes.next_classmate[1], -1);
}

TEST(SymmetryClasses, AccessRowsSplitEqualPowers) {
  AccessPolicy access({{true, true}, {true, false}});
  Game g(System::from_integer_powers({4, 4}, 2),
         RewardFunction::from_integers({2, 2}), access);
  const SymmetryClasses classes = symmetry_classes(g);
  EXPECT_TRUE(classes.trivial);
  EXPECT_EQ(classes.classes.size(), 2u);
}

TEST(SymmetryClasses, CanonicalCountMatchesWalk) {
  // 3 equal miners + 1 distinct over 2 coins: C(3+1,3)·C(1+1,1) = 4·2 = 8.
  Game g(System::from_integer_powers({3, 3, 3, 7}, 2),
         RewardFunction::from_integers({2, 5}));
  const SymmetryClasses classes = symmetry_classes(g);
  const auto count = canonical_count(g.system(), classes);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 8u);
  std::size_t visited = 0;
  walk_canonical_shard(g.system_ptr(), classes, g.num_miners(), {},
                       [&](const Configuration&) {
                         ++visited;
                         return true;
                       });
  EXPECT_EQ(visited, 8u);
}

// ------------------------------------------------------------ the walk

TEST(CanonicalWalk, MatchesLegacyOrderWithoutSymmetry) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({2, 2, 1}, 3));
  std::vector<std::vector<CoinId>> legacy;
  for_each_configuration(system, 100, [&](const Configuration& s) {
    legacy.push_back(s.assignment());
    return true;
  });
  std::vector<std::vector<CoinId>> engine;
  walk_canonical_shard(system, singleton_classes(3), 3, {},
                       [&](const Configuration& s) {
                         engine.push_back(s.assignment());
                         return true;
                       });
  EXPECT_EQ(engine, legacy);
}

TEST(CanonicalWalk, VisitsExactlyTheCanonicalRepresentatives) {
  Game g(System::from_integer_powers({2, 2, 2, 9}, 3),
         RewardFunction::from_integers({4, 5, 6}));
  const SymmetryClasses classes = symmetry_classes(g);
  std::vector<std::vector<CoinId>> seen;
  walk_canonical_shard(g.system_ptr(), classes, 4, {},
                       [&](const Configuration& s) {
                         seen.push_back(s.assignment());
                         return true;
                       });
  const auto count = canonical_count(g.system(), classes);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(seen.size(), *count);
  // Distinct, and non-decreasing digits within the equal-power class.
  for (const auto& assignment : seen) {
    EXPECT_LE(assignment[0].value, assignment[1].value);
    EXPECT_LE(assignment[1].value, assignment[2].value);
  }
  std::sort(seen.begin(), seen.end(),
            [](const auto& a, const auto& b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                  b.end());
            });
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

/// Replays `plan` through the rank-range walker and checks the shards
/// partition the canonical space exactly: start ranks are the running
/// prefix sum, each shard visits exactly `sizes[i]` configurations, and
/// the index-order concatenation reproduces the serial walk bit-for-bit.
void expect_plan_partitions(const Game& g, const SymmetryClasses& classes,
                            const ShardPlan& plan) {
  std::vector<std::vector<CoinId>> serial;
  walk_canonical_shard(g.system_ptr(), classes, g.num_miners(), {},
                       [&](const Configuration& s) {
                         serial.push_back(s.assignment());
                         return true;
                       });
  std::vector<std::vector<CoinId>> sharded;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < plan.sizes.size(); ++i) {
    EXPECT_EQ(plan.start_ranks[i], total) << "shard " << i;
    std::uint64_t in_shard = 0;
    walk_canonical_range(g.system_ptr(), classes, plan.starts[i],
                         plan.sizes[i], [&](const Configuration& s) {
                           sharded.push_back(s.assignment());
                           ++in_shard;
                           return true;
                         });
    EXPECT_EQ(in_shard, plan.sizes[i]) << "shard " << i;
    total += in_shard;
  }
  EXPECT_EQ(sharded, serial);
}

TEST(ShardPlan, ShardsPartitionTheCanonicalSpace) {
  Game g(System::from_integer_powers({2, 2, 2, 9, 5}, 3),
         RewardFunction::from_integers({4, 5, 6}));
  const SymmetryClasses classes = symmetry_classes(g);
  const ShardPlan plan = plan_shards(g.system(), classes, 8);
  ASSERT_GE(plan.sizes.size(), 8u);
  expect_plan_partitions(g, classes, plan);
}

TEST(ShardPlan, SplitsOversizedPrefixesOnUnbalancedLayouts) {
  // One giant symmetry class: 12 equal miners over 3 coins (canonical
  // space C(14,12) = 91). A pinned top digit caps the whole class's
  // non-decreasing run, so the all-2s prefix alone holds 55/91 ≈ 60% of
  // the space — exactly the layout that used to serialize one lane. Rank
  // splitting must bound every shard near the ideal even load.
  Game g(System::from_integer_powers({5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}, 3),
         RewardFunction::from_integers({4, 5, 6}));
  const SymmetryClasses classes = symmetry_classes(g);
  ASSERT_EQ(classes.classes.size(), 1u);
  const auto canonical = canonical_count(g.system(), classes);
  ASSERT_TRUE(canonical.has_value());
  ASSERT_EQ(*canonical, 91u);  // C(12+2,12)

  const std::size_t target = 8;
  const ShardPlan plan = plan_shards(g.system(), classes, target);
  ASSERT_GE(plan.sizes.size(), target);
  const std::uint64_t ideal = (*canonical + target - 1) / target;
  for (std::size_t i = 0; i < plan.sizes.size(); ++i) {
    EXPECT_LE(plan.sizes[i], ideal) << "shard " << i;
  }
  expect_plan_partitions(g, classes, plan);
}

TEST(ShardPlan, CanonicalUnrankingMatchesWalkOrder) {
  Game g(System::from_integer_powers({2, 2, 7, 7, 3}, 3),
         RewardFunction::from_integers({4, 5, 6}));
  const SymmetryClasses classes = symmetry_classes(g);
  std::uint64_t rank = 0;
  walk_canonical_shard(g.system_ptr(), classes, g.num_miners(), {},
                       [&](const Configuration& s) {
                         const auto digits =
                             canonical_digits_at_rank(g.system(), classes, rank);
                         for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
                           EXPECT_EQ(digits[p], s.of(MinerId(p)).value)
                               << "rank " << rank << " miner " << p;
                         }
                         ++rank;
                         return true;
                       });
}

TEST(Orbits, SizesPartitionTheFullSpace) {
  Game g(System::from_integer_powers({2, 2, 2, 9}, 3),
         RewardFunction::from_integers({4, 5, 6}));
  const SymmetryClasses classes = symmetry_classes(g);
  std::uint64_t covered = 0;
  walk_canonical_shard(g.system_ptr(), classes, 4, {},
                       [&](const Configuration& s) {
                         const auto orbit = expand_orbit(s, classes);
                         EXPECT_EQ(orbit.size(), orbit_size(s.assignment(), classes));
                         // Orbit members are distinct and share the canonical
                         // representative's per-class digit multiset.
                         for (const auto& member : orbit) {
                           for (std::uint32_t p = 0; p < 4; ++p) {
                             EXPECT_EQ(member.of(MinerId(p)) == s.of(MinerId(p)) ||
                                           classes.classes[classes.class_of[p]].size() > 1,
                                       true);
                           }
                         }
                         covered += orbit.size();
                         return true;
                       });
  EXPECT_EQ(covered, configuration_count(g.system()).value());
}

// ------------------------------------------------------------ equilibria

TEST(EnumerationEngine, GoldenEquilibriumSetsAcrossShapes) {
  for (const Game& g : golden_games()) {
    const auto reference = enumerate_equilibria_scan(g);
    ASSERT_FALSE(reference.empty());
    // Default path (serial, symmetry on), parallel, and symmetry-off must
    // all reproduce the reference exactly — order included.
    EXPECT_EQ(enumerate_equilibria(g), reference) << g.to_string();
    ParallelOpts sym(4, true);
    EXPECT_EQ(enumerate_equilibria(g, sym.opts), reference) << g.to_string();
    ParallelOpts nosym(4, false);
    EXPECT_EQ(enumerate_equilibria(g, nosym.opts), reference) << g.to_string();
  }
}

TEST(EnumerationEngine, ThreadCountInvariance) {
  for (const Game& g : golden_games()) {
    const auto serial = enumerate_equilibria(g, opts_with(1, true));
    for (const std::size_t threads : {2, 3, 8}) {
      ParallelOpts parallel(threads, true);
      EXPECT_EQ(enumerate_equilibria(g, parallel.opts), serial);
    }
  }
}

TEST(EnumerationEngine, CanonicalRepresentativesExpandToFullCount) {
  Game g(System::from_integer_powers({3, 3, 3, 3, 3}, 2),
         RewardFunction::from_integers({10, 7}));
  const auto canonical = enumerate_canonical_equilibria(g, opts_with(1, true));
  const auto full = enumerate_equilibria_scan(g);
  EXPECT_EQ(canonical.total(), full.size());
  // With 5 interchangeable miners the reduction is real: far fewer
  // representatives than equilibria.
  EXPECT_LT(canonical.representatives.size(), full.size());
  for (const auto& rep : canonical.representatives) {
    EXPECT_TRUE(is_equilibrium(g, rep));
  }
}

TEST(EnumerationEngine, RefusesHugeSpaces) {
  Game g(System::from_integer_powers(std::vector<std::int64_t>(40, 1), 10),
         RewardFunction::from_integers(std::vector<std::int64_t>(10, 1)));
  EXPECT_THROW(enumerate_equilibria(g), std::invalid_argument);
  EXPECT_THROW(has_exact_potential(g), std::invalid_argument);
}

// ------------------------------------------------------------ comparator

TEST(MoveComparatorChecks, EquilibriumAgreesWithScan) {
  for (const Game& g : golden_games()) {
    const MoveComparator cmp(g);
    std::size_t checked = 0;
    for_each_configuration(g.system_ptr(), 1u << 12, [&](const Configuration& s) {
      EXPECT_EQ(cmp.equilibrium(s), is_equilibrium(g, s)) << s.to_string();
      for (std::uint32_t p = 0; p < g.num_miners(); ++p) {
        EXPECT_EQ(cmp.stable(s, MinerId(p)), is_stable(g, s, MinerId(p)));
      }
      return ++checked < 200;  // spot-check a prefix of the space
    });
  }
}

TEST(AccessTrackerTest, MatchesFromScratchScan) {
  AccessPolicy access({{true, false, true},
                       {true, true, false},
                       {false, true, true},
                       {true, true, true}});
  Game g(System::from_integer_powers({4, 3, 2, 1}, 3),
         RewardFunction::from_integers({5, 6, 7}), access);
  AccessTracker tracker(g);
  for_each_configuration(g.system_ptr(), 100, [&](const Configuration& s) {
    EXPECT_EQ(tracker.respects(s), g.respects_access(s)) << s.to_string();
    return true;
  });
}

// ------------------------------------------------------------ assumptions

TEST(NeverAloneEngine, AgreesWithScanAcrossShapes) {
  for (const Game& g : golden_games()) {
    const bool reference = find_never_alone_violation_scan(g).has_value();
    const auto engine = find_never_alone_violation(g);
    EXPECT_EQ(engine.has_value(), reference) << g.to_string();
    ParallelOpts sym(4, true);
    EXPECT_EQ(find_never_alone_violation(g, sym.opts).has_value(), reference);
    ParallelOpts nosym(2, false);
    EXPECT_EQ(find_never_alone_violation(g, nosym.opts).has_value(), reference);
    if (engine.has_value()) {
      // The witness is genuine: the per-configuration checker confirms it.
      EXPECT_EQ(never_alone_violation_at(g, engine->s), engine->coin);
    }
  }
}

TEST(NeverAloneEngine, WitnessIsThreadCountInvariant) {
  Game g(System::from_integer_powers({10, 10}, 2),
         RewardFunction::from_integers({1000, 1}));
  const auto serial = find_never_alone_violation(g, opts_with(1, true));
  ASSERT_TRUE(serial.has_value());
  for (const std::size_t threads : {2, 4, 8}) {
    ParallelOpts po(threads, true);
    const auto parallel = find_never_alone_violation(g, po.opts);
    ASSERT_TRUE(parallel.has_value());
    EXPECT_EQ(parallel->s, serial->s);
    EXPECT_EQ(parallel->coin, serial->coin);
  }
}

// ------------------------------------------------------------ potential

TEST(ExactPotentialEngine, AgreesWithScanAcrossShapes) {
  for (const Game& g : golden_games()) {
    const bool reference = has_exact_potential_scan(g);
    EXPECT_EQ(has_exact_potential(g), reference) << g.to_string();
    ParallelOpts sym(4, true);
    EXPECT_EQ(has_exact_potential(g, sym.opts), reference);
    ParallelOpts nosym(2, false);
    EXPECT_EQ(has_exact_potential(g, nosym.opts), reference);
    EXPECT_EQ(find_nonzero_four_cycle(g).has_value(),
              find_nonzero_four_cycle_scan(g).has_value());
  }
}

TEST(ExactPotentialEngine, WitnessVerifiesAndIsThreadCountInvariant) {
  const Game g = proposition1_game();
  const auto serial = find_nonzero_four_cycle(g, 4096, opts_with(1, true));
  ASSERT_TRUE(serial.has_value());
  // The witness closes: recomputing its cycle sum from the base matches.
  const CoinId ap = serial->s2.of(serial->p);
  const CoinId bp = serial->s3.of(serial->q);
  EXPECT_EQ(four_cycle_sum(g, serial->s1, serial->p, ap, serial->q, bp),
            serial->cycle_sum);
  for (const std::size_t threads : {2, 4, 8}) {
    ParallelOpts po(threads, true);
    const auto parallel = find_nonzero_four_cycle(g, 4096, po.opts);
    ASSERT_TRUE(parallel.has_value());
    EXPECT_EQ(parallel->s1, serial->s1);
    EXPECT_EQ(parallel->p, serial->p);
    EXPECT_EQ(parallel->q, serial->q);
    EXPECT_EQ(parallel->cycle_sum, serial->cycle_sum);
  }
}

TEST(ExactPotentialEngine, BaseBudgetIsDeterministic) {
  Rng rng(57);
  GameSpec spec;
  spec.num_miners = 4;
  spec.num_coins = 2;
  spec.power_lo = 1;
  spec.power_hi = 9;
  spec.distinct_powers = true;
  const Game g = random_game(spec, rng);
  for (const std::uint64_t budget : {1ULL, 3ULL, 7ULL, 4096ULL}) {
    const auto serial = find_nonzero_four_cycle(g, budget, opts_with(1, true));
    for (const std::size_t threads : {2, 8}) {
      ParallelOpts po(threads, true);
      const auto parallel = find_nonzero_four_cycle(g, budget, po.opts);
      ASSERT_EQ(parallel.has_value(), serial.has_value()) << budget;
      if (serial.has_value()) {
        EXPECT_EQ(parallel->s1, serial->s1);
        EXPECT_EQ(parallel->cycle_sum, serial->cycle_sum);
      }
    }
  }
}

// ------------------------------------------------------------ sampling

TEST(SampleEquilibriaDedup, ManyAttemptsStayDistinct) {
  // A game with very few equilibria: heavy duplicate pressure on the
  // bucket index.
  Game g(System::from_integer_powers({2, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  Rng rng(91);
  const auto sampled = sample_equilibria(g, rng, 64);
  ASSERT_FALSE(sampled.empty());
  EXPECT_LE(sampled.size(), 2u);
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    EXPECT_TRUE(is_equilibrium(g, sampled[i]));
    for (std::size_t j = i + 1; j < sampled.size(); ++j) {
      EXPECT_FALSE(sampled[i] == sampled[j]);
    }
  }
}

}  // namespace
}  // namespace goc
