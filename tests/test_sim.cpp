#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <vector>

#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "dynamics/scheduler.hpp"
#include "engine/thread_pool.hpp"
#include "market/fig1_replay.hpp"
#include "market/market_sim.hpp"
#include "market/scenario.hpp"
#include "sim/event_core.hpp"
#include "sim/trajectory.hpp"

// ------------------------------------------- allocation-counting operator new
// Counts every heap allocation in the binary so the zero-allocation claim of
// the flat market epoch loop is a *tested* invariant, not a comment (see
// MarketFlat.SteadyStateEpochsDoNotAllocate). Frees are not counted — the
// claim is about acquisitions.

namespace {
std::atomic<std::size_t> g_new_calls{0};

void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace goc::sim {
namespace {

// ---------------------------------------------------------------- EventCore

TEST(EventCore, PopsInTimeOrder) {
  EventCore core;
  core.declare_streams(EventType::kBlockFound, 4);
  core.schedule(3.0, EventType::kBlockFound, 3);
  core.schedule(1.0, EventType::kBlockFound, 1);
  core.schedule(2.0, EventType::kBlockFound, 2);
  Event event;
  std::vector<std::uint32_t> order;
  while (core.pop(event)) order.push_back(event.subject);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(core.now(), 3.0);
}

TEST(EventCore, FifoTieBreakAcrossTypes) {
  EventCore core;
  core.declare_streams(EventType::kPriceTick, 2);
  core.declare_streams(EventType::kFeeUpdate, 2);
  core.declare_streams(EventType::kDecisionEpoch, 1);
  // All at the same time: pop order must be schedule order.
  core.schedule(1.0, EventType::kPriceTick, 0);
  core.schedule(1.0, EventType::kFeeUpdate, 0);
  core.schedule(1.0, EventType::kPriceTick, 1);
  core.schedule(1.0, EventType::kFeeUpdate, 1);
  core.schedule(1.0, EventType::kDecisionEpoch, 0);
  Event event;
  std::vector<EventType> types;
  while (core.pop(event)) types.push_back(event.type);
  EXPECT_EQ(types, (std::vector<EventType>{
                       EventType::kPriceTick, EventType::kFeeUpdate,
                       EventType::kPriceTick, EventType::kFeeUpdate,
                       EventType::kDecisionEpoch}));
}

TEST(EventCore, PopUntilStopsAndAdvancesClock) {
  EventCore core;
  core.declare_streams(EventType::kBlockFound, 1);
  core.schedule(1.0, EventType::kBlockFound, 0);
  core.schedule(5.0, EventType::kBlockFound, 0);
  Event event;
  EXPECT_TRUE(core.pop_until(event, 2.0));
  EXPECT_DOUBLE_EQ(event.time, 1.0);
  EXPECT_FALSE(core.pop_until(event, 2.0));
  EXPECT_DOUBLE_EQ(core.now(), 2.0);
  EXPECT_EQ(core.pending(), 1u);
}

TEST(EventCore, InvalidationDropsStaleEvents) {
  EventCore core;
  core.declare_streams(EventType::kBlockFound, 2);
  core.schedule(1.0, EventType::kBlockFound, 0);
  core.schedule(2.0, EventType::kBlockFound, 1);
  core.invalidate(EventType::kBlockFound, 0);
  core.schedule(3.0, EventType::kBlockFound, 0);  // new generation: live
  Event event;
  std::vector<double> times;
  while (core.pop(event)) times.push_back(event.time);
  EXPECT_EQ(times, (std::vector<double>{2.0, 3.0}));
}

TEST(EventCore, InvalidationIsPerStream) {
  EventCore core;
  core.declare_streams(EventType::kBlockFound, 2);
  core.declare_streams(EventType::kDecisionEpoch, 1);
  core.schedule(1.0, EventType::kBlockFound, 0);
  core.schedule(1.5, EventType::kDecisionEpoch, 0);
  core.invalidate(EventType::kBlockFound, 1);  // unrelated stream
  Event event;
  ASSERT_TRUE(core.pop(event));
  EXPECT_EQ(event.type, EventType::kBlockFound);
  ASSERT_TRUE(core.pop(event));
  EXPECT_EQ(event.type, EventType::kDecisionEpoch);
}

TEST(EventCore, ResetReusesCapacity) {
  EventCore core;
  core.declare_streams(EventType::kBlockFound, 1);
  for (int i = 0; i < 100; ++i) {
    core.schedule(static_cast<double>(i + 1), EventType::kBlockFound, 0);
  }
  core.reset();
  EXPECT_TRUE(core.empty());
  EXPECT_DOUBLE_EQ(core.now(), 0.0);
  core.schedule(1.0, EventType::kBlockFound, 0);
  Event event;
  ASSERT_TRUE(core.pop(event));
  EXPECT_EQ(event.seq, 0u);  // sequence counter rewound too
}

TEST(EventCore, RejectsPastAndUndeclaredStreams) {
  EventCore core;
  core.declare_streams(EventType::kBlockFound, 1);
  core.schedule(2.0, EventType::kBlockFound, 0);
  Event event;
  ASSERT_TRUE(core.pop(event));
  EXPECT_THROW(core.schedule(1.0, EventType::kBlockFound, 0),
               std::invalid_argument);
  EXPECT_THROW(core.schedule(3.0, EventType::kBlockFound, 7),
               std::invalid_argument);
  EXPECT_THROW(core.schedule(3.0, EventType::kPriceTick, 0),
               std::invalid_argument);
  EXPECT_THROW(core.invalidate(EventType::kFeeUpdate, 0),
               std::invalid_argument);
}

// --------------------------------------------------- chain legacy-vs-flat

chain::ChainSpec make_chain(const std::string& name, double difficulty,
                            double reward) {
  return chain::ChainSpec{
      name, difficulty, 1.0 / 6.0, reward,
      std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)};
}

chain::MultiChainSimulator build_chain_sim(chain::ChainSimOptions options,
                                           bool eda = false) {
  std::vector<chain::ChainSpec> chains;
  if (eda) {
    chains.push_back(chain::ChainSpec{
        "btc", 20.0, 1.0 / 6.0, 60.0,
        std::make_unique<chain::SmaRetarget>(20, 1.0 / 6.0, 1.2)});
    chains.push_back(chain::ChainSpec{
        "bch", 20.0, 1.0 / 6.0, 10.0,
        std::make_unique<chain::EmergencyAdjuster>(20, 1.0 / 6.0, 0.5, 0.20)});
  } else {
    chains.push_back(make_chain("heavy", 600.0, 30.0));
    chains.push_back(make_chain("light", 600.0, 10.0));
  }
  std::vector<double> powers;
  for (std::size_t i = 0; i < 12; ++i) {
    powers.push_back(5.0 + static_cast<double>(i % 4) * 7.0);
  }
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options);
}

void expect_chain_results_equal(const chain::ChainSimResult& a,
                                const chain::ChainSimResult& b) {
  EXPECT_EQ(chain_result_hash(a), chain_result_hash(b));
  ASSERT_EQ(a.blocks_per_chain, b.blocks_per_chain);
  ASSERT_EQ(a.miner_blocks, b.miner_blocks);
  ASSERT_EQ(a.miner_rewards_fiat.size(), b.miner_rewards_fiat.size());
  for (std::size_t i = 0; i < a.miner_rewards_fiat.size(); ++i) {
    EXPECT_EQ(a.miner_rewards_fiat[i], b.miner_rewards_fiat[i]);
  }
  // The one non-bitwise field: the flat engine accrues the prediction via
  // the stint integral (O(1) per block), the legacy engine per member per
  // block — mathematically equal sums, different FP association.
  EXPECT_NEAR(a.share_prediction_mae, b.share_prediction_mae, 1e-9);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].t_hours, b.timeline[i].t_hours);
    EXPECT_EQ(a.timeline[i].difficulty, b.timeline[i].difficulty);
    EXPECT_EQ(a.timeline[i].hashrate, b.timeline[i].hashrate);
    EXPECT_EQ(a.timeline[i].blocks, b.timeline[i].blocks);
    EXPECT_EQ(a.timeline[i].reward_fiat, b.timeline[i].reward_fiat);
  }
}

chain::ChainSimResult run_chain(chain::ChainSimOptions options,
                                EngineKind engine, bool eda = false) {
  options.engine = engine;
  chain::MultiChainSimulator sim = build_chain_sim(options, eda);
  return sim.run();
}

TEST(ChainParity, StaticPolicyBitIdentical) {
  chain::ChainSimOptions options;
  options.duration_hours = 24.0 * 10;
  options.policy = chain::MinerPolicy::kStatic;
  options.seed = 11;
  expect_chain_results_equal(run_chain(options, EngineKind::kLegacy),
                             run_chain(options, EngineKind::kFlat));
}

TEST(ChainParity, BetterResponseWithMidRaceInvalidation) {
  // Migrations invalidate in-flight block races on both engines; the flat
  // core must drop exactly the races the legacy generation counters drop.
  chain::ChainSimOptions options;
  options.duration_hours = 24.0 * 15;
  options.policy = chain::MinerPolicy::kBetterResponse;
  options.reevaluation_fraction = 0.5;
  options.seed = 12;
  const auto legacy = run_chain(options, EngineKind::kLegacy);
  const auto flat = run_chain(options, EngineKind::kFlat);
  EXPECT_GT(flat.migrations, 0u);
  expect_chain_results_equal(legacy, flat);
}

TEST(ChainParity, MyopicEdaSawtoothBitIdentical) {
  chain::ChainSimOptions options;
  options.duration_hours = 24.0 * 10;
  options.policy = chain::MinerPolicy::kMyopicDifficulty;
  options.reevaluation_fraction = 0.5;
  options.myopic_hysteresis = 0.05;
  options.seed = 13;
  const auto legacy = run_chain(options, EngineKind::kLegacy, /*eda=*/true);
  const auto flat = run_chain(options, EngineKind::kFlat, /*eda=*/true);
  EXPECT_GT(flat.migrations, 10u);
  expect_chain_results_equal(legacy, flat);
}

TEST(ChainParity, RewardHookAndInitialAssignment) {
  const auto build = [](EngineKind engine) {
    std::vector<chain::ChainSpec> chains;
    chains.push_back(make_chain("a", 300.0, 20.0));
    chains.push_back(make_chain("b", 300.0, 20.0));
    chain::ChainSimOptions options;
    options.duration_hours = 24.0 * 8;
    options.policy = chain::MinerPolicy::kBetterResponse;
    options.seed = 14;
    options.engine = engine;
    chain::MultiChainSimulator sim({10.0, 20.0, 30.0, 40.0, 50.0},
                                   std::move(chains), options, {0, 1, 0, 1, 0});
    sim.set_reward_hook([](std::size_t c, double t) {
      return 20.0 + (c == 0 ? 1.0 : -1.0) * 5.0 * std::sin(t / 24.0);
    });
    return sim.run();
  };
  expect_chain_results_equal(build(EngineKind::kLegacy),
                             build(EngineKind::kFlat));
}

TEST(ChainParity, Fig1ReplayBitIdentical) {
  market::Fig1ReplayParams params;
  params.miners = 24;
  params.days = 8.0;
  params.shock_day = 3.0;
  params.revert_day = 5.0;
  params.seed = 99;
  params.engine = EngineKind::kLegacy;
  const market::Fig1ReplayResult legacy = market::run_fig1_replay(params);
  params.engine = EngineKind::kFlat;
  const market::Fig1ReplayResult flat = market::run_fig1_replay(params);
  EXPECT_EQ(legacy.migrations, flat.migrations);
  EXPECT_EQ(legacy.peak_minor_share, flat.peak_minor_share);
  EXPECT_EQ(legacy.flip_window_share, flat.flip_window_share);
  ASSERT_EQ(legacy.series.size(), flat.series.size());
  for (std::size_t i = 0; i < legacy.series.size(); ++i) {
    EXPECT_EQ(legacy.series[i].minor_hash, flat.series[i].minor_hash);
    EXPECT_EQ(legacy.series[i].minor_difficulty,
              flat.series[i].minor_difficulty);
  }
}

// --------------------------------------------------- market legacy-vs-flat

market::MarketSimulator build_market(market::MarketOptions options,
                                     bool whale = false) {
  std::vector<market::CoinSpec> coins;
  coins.emplace_back("major", 12.5, 6.0,
                     std::make_unique<market::GbmProcess>(7400.0, 0.0, 0.03),
                     market::FeeMarket(400.0, 0.05, 1.5));
  coins.emplace_back("minor", 12.5, 6.0,
                     std::make_unique<market::GbmProcess>(620.0, 0.0, 0.06),
                     market::FeeMarket(60.0, 0.02, 1.5));
  coins.emplace_back("tail", 25.0, 12.0,
                     std::make_unique<market::GbmProcess>(40.0, 0.0, 0.10),
                     market::FeeMarket(10.0, 0.01, 1.5));
  market::MarketSimulator sim({900, 500, 300, 200, 100, 60, 30, 10},
                              std::move(coins), options);
  if (whale) sim.inject_whale(2, 5000.0);
  return sim;
}

void expect_market_records_equal(const std::vector<market::EpochRecord>& a,
                                 const std::vector<market::EpochRecord>& b) {
  EXPECT_EQ(market_records_hash(a), market_records_hash(b));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_hours, b[i].t_hours);
    EXPECT_EQ(a[i].prices, b[i].prices);
    EXPECT_EQ(a[i].weights, b[i].weights);
    EXPECT_EQ(a[i].hashrate_share, b[i].hashrate_share);
    EXPECT_EQ(a[i].br_steps, b[i].br_steps);
    EXPECT_EQ(a[i].at_equilibrium, b[i].at_equilibrium);
  }
}

TEST(MarketParity, EpochRecordsBitIdentical) {
  market::MarketOptions options;
  options.epochs = 24 * 6;
  options.seed = 77;
  options.engine = EngineKind::kLegacy;
  auto legacy = build_market(options).run();
  options.engine = EngineKind::kFlat;
  auto flat = build_market(options).run();
  expect_market_records_equal(legacy, flat);
}

TEST(MarketParity, WhaleInjectionBitIdentical) {
  market::MarketOptions options;
  options.epochs = 24 * 3;
  options.seed = 78;
  options.br_steps_per_epoch = 0;  // run to convergence each epoch
  options.engine = EngineKind::kLegacy;
  auto legacy = build_market(options, /*whale=*/true).run();
  options.engine = EngineKind::kFlat;
  auto flat = build_market(options, /*whale=*/true).run();
  expect_market_records_equal(legacy, flat);
}

TEST(MarketParity, AllSchedulerKindsBitIdentical) {
  // The zero-rebuild engine must replay the legacy rebuild-per-epoch path
  // move-for-move under every scheduler kind (same RNG draws included).
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    market::MarketOptions options;
    options.epochs = 24 * 2;
    options.seed = 80 + static_cast<std::uint64_t>(kind);
    options.scheduler = kind;
    options.engine = EngineKind::kLegacy;
    auto legacy = build_market(options).run();
    options.engine = EngineKind::kFlat;
    auto flat = build_market(options).run();
    ASSERT_EQ(legacy.size(), flat.size()) << scheduler_kind_name(kind);
    expect_market_records_equal(legacy, flat);
  }
}

std::size_t flat_run_allocations(std::size_t epochs) {
  market::MarketOptions options;
  options.epochs = epochs;
  options.seed = 91;
  options.engine = EngineKind::kFlat;
  market::MarketSimulator sim = build_market(options);
  const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
  const std::vector<market::EpochRecord> records = sim.run();
  const std::size_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(records.size(), epochs);
  return after - before;
}

TEST(MarketFlat, SteadyStateEpochsDoNotAllocate) {
  // run() preallocates its whole output and the workspace before the event
  // loop starts, so the only cost of extra epochs is the up-front
  // preallocation of their records — exactly three inner vectors each
  // (prices, weights, hashrate_share). If anything inside the loop touched
  // the heap (a Game rebuild, an index rebuild, a scheduler scratch
  // vector…) the delta would exceed 3 per epoch and this fails.
  const std::size_t base = flat_run_allocations(60);
  const std::size_t wide = flat_run_allocations(180);
  EXPECT_EQ(wide - base, 3u * 120u);
}

TEST(MarketFlat, CurrentGameIsWorkspaceStable) {
  market::MarketOptions options;
  options.epochs = 12;
  options.seed = 55;
  market::MarketSimulator sim = build_market(options);
  EXPECT_THROW(sim.current_game(), std::invalid_argument);
  sim.run();
  const Game* game = &sim.current_game();
  EXPECT_EQ(game->num_coins(), 3u);
  // The reference stays valid (same workspace-owned object) across
  // further runs — the documented lifetime contract of current_game().
  sim.run();
  EXPECT_EQ(&sim.current_game(), game);
}

// ------------------------------------------------------- trajectory engine

TEST(Trajectory, SummariesAreExact) {
  // 3 replicas × 2 metrics with hand-checkable aggregates.
  const std::vector<double> values = {1.0, 10.0, 2.0, 10.0, 3.0, 10.0};
  const TrajectoryBatchResult result({"x", "const"}, 3, values, 0);
  const MetricSummary& x = result.summary("x");
  EXPECT_DOUBLE_EQ(x.mean, 2.0);
  EXPECT_DOUBLE_EQ(x.variance, 1.0);
  EXPECT_DOUBLE_EQ(x.min, 1.0);
  EXPECT_DOUBLE_EQ(x.max, 3.0);
  const MetricSummary& c = result.summary("const");
  EXPECT_DOUBLE_EQ(c.mean, 10.0);
  EXPECT_DOUBLE_EQ(c.variance, 0.0);
  EXPECT_DOUBLE_EQ(c.ci95_halfwidth, 0.0);
  EXPECT_THROW(result.summary("nope"), std::invalid_argument);
}

TEST(Trajectory, ReplicaSeedsAreDeterministic) {
  TrajectoryBatchOptions options;
  options.replicas = 8;
  options.threads = 1;
  options.root_seed = 42;
  std::vector<std::uint64_t> seeds(options.replicas, 0);
  run_trajectory_batch({"seed_lo"}, options,
                       [&](std::size_t r, std::uint64_t seed) {
                         seeds[r] = seed;
                         return std::vector<double>{
                             static_cast<double>(seed & 0xffff)};
                       });
  // Re-running yields the same seeds; all distinct.
  run_trajectory_batch({"seed_lo"}, options,
                       [&](std::size_t r, std::uint64_t seed) {
                         EXPECT_EQ(seeds[r], seed);
                         return std::vector<double>{0.0};
                       });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
}

TEST(Trajectory, ThreadInvarianceViaExplicitPools) {
  const auto run_with = [](engine::ThreadPool& pool) {
    TrajectoryBatchOptions options;
    options.replicas = 16;
    options.root_seed = 7;
    options.pool = &pool;
    return run_chain_batch(
        [](std::uint64_t seed) {
          std::vector<chain::ChainSpec> chains;
          chains.push_back(make_chain("heavy", 600.0, 30.0));
          chains.push_back(make_chain("light", 600.0, 10.0));
          chain::ChainSimOptions options;
          options.duration_hours = 24.0 * 4;
          options.reevaluation_fraction = 0.5;
          options.seed = seed;
          options.record_timeline = false;
          return chain::MultiChainSimulator({30.0, 20.0, 10.0, 5.0},
                                            std::move(chains), options);
        },
        options);
  };
  engine::ThreadPool serial(0);
  engine::ThreadPool wide(3);
  const TrajectoryBatchResult a = run_with(serial);
  const TrajectoryBatchResult b = run_with(wide);
  EXPECT_TRUE(a.deterministic_equals(b));
  EXPECT_EQ(a.values_hash(), b.values_hash());
  ASSERT_EQ(a.summaries().size(), b.summaries().size());
  for (std::size_t m = 0; m < a.summaries().size(); ++m) {
    EXPECT_EQ(a.summaries()[m].mean, b.summaries()[m].mean);
    EXPECT_EQ(a.summaries()[m].variance, b.summaries()[m].variance);
  }
}

TEST(Trajectory, RejectsArityMismatch) {
  TrajectoryBatchOptions options;
  options.replicas = 1;
  options.threads = 1;
  EXPECT_THROW(
      run_trajectory_batch({"a", "b"}, options,
                           [](std::size_t, std::uint64_t) {
                             return std::vector<double>{1.0};
                           }),
      std::invalid_argument);
}

TEST(Trajectory, MarketBatchSmoke) {
  TrajectoryBatchOptions options;
  options.replicas = 4;
  options.threads = 2;
  options.root_seed = 21;
  const TrajectoryBatchResult result = run_market_batch(
      [](std::uint64_t seed) {
        market::MarketOptions options;
        options.epochs = 24;
        options.seed = seed;
        return build_market(options);
      },
      options);
  EXPECT_EQ(result.replicas(), 4u);
  const MetricSummary& share = result.summary("mean_share_coin0");
  EXPECT_GT(share.mean, 0.0);
  EXPECT_LE(share.max, 1.0);
}

TEST(Trajectory, ScenarioBatchMatchesHandWrittenFactory) {
  const market::Scenario proto =
      market::random_market_prototype(12, 3, 2.0, 33);
  TrajectoryBatchOptions options;
  options.replicas = 4;
  options.threads = 2;
  options.root_seed = 5;
  const TrajectoryBatchResult via_scenario = run_market_batch(proto, options);
  const TrajectoryBatchResult via_factory = run_market_batch(
      [&proto](std::uint64_t seed) { return proto.make_simulator(seed); },
      options);
  EXPECT_TRUE(via_scenario.deterministic_equals(via_factory));
  // The prototype is reusable: stamping the same seed twice yields
  // bit-identical trajectories, because CoinSpec::clone deep-copies the
  // price processes (full runtime state included) rather than sharing them.
  const auto first = proto.make_simulator(99).run();
  const auto second = proto.make_simulator(99).run();
  expect_market_records_equal(first, second);
}

// ------------------------------------------------- sequential stopping

TEST(Trajectory, StoppingStopsAtAWaveBoundary) {
  // Replica value r%2: the prefix CI shrinks like 1/sqrt(n). At the first
  // check (n = 4) the 95% half-width is 1.96·0.577/2 ≈ 0.566 > 0.5; one
  // wave later (n = 8) it is ≈ 0.370 <= 0.5 — so the rule must stop at
  // exactly 8, never in between.
  TrajectoryBatchOptions options;
  options.threads = 1;
  StoppingRule rule;
  rule.metric = "x";
  rule.tolerance = 0.5;
  rule.min_replicas = 4;
  rule.max_replicas = 64;
  rule.wave = 4;
  options.stopping = rule;
  const TrajectoryBatchResult result = run_trajectory_batch(
      {"x"}, options, [](std::size_t r, std::uint64_t) {
        return std::vector<double>{static_cast<double>(r % 2)};
      });
  EXPECT_EQ(result.replicas(), 8u);
  EXPECT_EQ(result.replicas_requested(), 64u);
  EXPECT_EQ(result.stop_reason(), StopReason::kToleranceMet);
  EXPECT_STREQ(stop_reason_name(result.stop_reason()), "tolerance");
}

TEST(Trajectory, StoppingDegenerateTolerances) {
  TrajectoryBatchOptions options;
  options.threads = 1;
  StoppingRule rule;
  rule.metric = "x";
  rule.tolerance = 0.0;
  rule.min_replicas = 3;
  rule.max_replicas = 12;
  rule.wave = 3;
  options.stopping = rule;
  // Tolerance 0 on a zero-variance metric: met at the very first check.
  const TrajectoryBatchResult constant = run_trajectory_batch(
      {"x"}, options,
      [](std::size_t, std::uint64_t) { return std::vector<double>{7.0}; });
  EXPECT_EQ(constant.replicas(), 3u);
  EXPECT_EQ(constant.stop_reason(), StopReason::kToleranceMet);
  // Tolerance 0 on a noisy metric: escalates to the ceiling.
  const TrajectoryBatchResult noisy = run_trajectory_batch(
      {"x"}, options, [](std::size_t r, std::uint64_t) {
        return std::vector<double>{static_cast<double>(r % 2)};
      });
  EXPECT_EQ(noisy.replicas(), 12u);
  EXPECT_EQ(noisy.replicas_requested(), 12u);
  EXPECT_EQ(noisy.stop_reason(), StopReason::kMaxReplicas);
  EXPECT_STREQ(stop_reason_name(noisy.stop_reason()), "max-replicas");
}

TEST(Trajectory, StoppingThreadInvarianceViaExplicitPools) {
  // The chosen R and every emitted value must be a pure function of the
  // replica-ordered prefix — identical whether the waves ran on 1, 4, or
  // 16 lanes.
  const auto run_with = [](engine::ThreadPool& pool) {
    TrajectoryBatchOptions options;
    options.root_seed = 7;
    options.pool = &pool;
    StoppingRule rule;
    rule.metric = "blocks_total";
    rule.tolerance = 0.05;
    rule.relative = true;
    rule.min_replicas = 6;
    rule.max_replicas = 36;
    rule.wave = 6;
    options.stopping = rule;
    return run_chain_batch(
        [](std::uint64_t seed) {
          std::vector<chain::ChainSpec> chains;
          chains.push_back(make_chain("heavy", 600.0, 30.0));
          chains.push_back(make_chain("light", 600.0, 10.0));
          chain::ChainSimOptions options;
          options.duration_hours = 24.0 * 2;
          options.reevaluation_fraction = 0.5;
          options.seed = seed;
          options.record_timeline = false;
          return chain::MultiChainSimulator({30.0, 20.0, 10.0, 5.0},
                                            std::move(chains), options);
        },
        options);
  };
  engine::ThreadPool serial(0);
  engine::ThreadPool mid(3);
  engine::ThreadPool wide(15);
  const TrajectoryBatchResult a = run_with(serial);
  const TrajectoryBatchResult b = run_with(mid);
  const TrajectoryBatchResult c = run_with(wide);
  EXPECT_EQ(a.replicas(), b.replicas());
  EXPECT_EQ(a.replicas(), c.replicas());
  EXPECT_EQ(a.stop_reason(), b.stop_reason());
  EXPECT_EQ(a.stop_reason(), c.stop_reason());
  EXPECT_TRUE(a.deterministic_equals(b));
  EXPECT_TRUE(a.deterministic_equals(c));
  EXPECT_EQ(a.values_hash(), b.values_hash());
  EXPECT_EQ(a.values_hash(), c.values_hash());
  EXPECT_GE(a.replicas(), 6u);
  EXPECT_LE(a.replicas(), 36u);
}

TEST(Trajectory, StoppingRespectsMinReplicas) {
  // Even a zero-variance metric never stops before min_replicas.
  TrajectoryBatchOptions options;
  options.threads = 1;
  StoppingRule rule;
  rule.metric = "x";
  rule.tolerance = 1e9;
  rule.min_replicas = 10;
  rule.max_replicas = 40;
  options.stopping = rule;
  const TrajectoryBatchResult result = run_trajectory_batch(
      {"x"}, options,
      [](std::size_t, std::uint64_t) { return std::vector<double>{1.0}; });
  EXPECT_EQ(result.replicas(), 10u);
}

TEST(Trajectory, StoppingMatchesFixedRunPrefix) {
  // Replica seeds do not depend on the stopping rule, so an adaptive batch
  // is a bit-identical prefix of the fixed-R batch over the same root seed.
  const auto value_at = [](std::size_t r, std::uint64_t seed) {
    return std::vector<double>{static_cast<double>(seed >> 40) +
                               (r % 3 == 0 ? 0.5 : 0.0)};
  };
  TrajectoryBatchOptions fixed;
  fixed.threads = 1;
  fixed.root_seed = 17;
  fixed.replicas = 32;
  const TrajectoryBatchResult full =
      run_trajectory_batch({"x"}, fixed, value_at);
  TrajectoryBatchOptions adaptive = fixed;
  StoppingRule rule;
  rule.metric = "x";
  rule.relative = true;
  rule.tolerance = 0.001;
  rule.min_replicas = 8;
  rule.max_replicas = 32;
  rule.wave = 8;
  adaptive.stopping = rule;
  const TrajectoryBatchResult stopped =
      run_trajectory_batch({"x"}, adaptive, value_at);
  ASSERT_LE(stopped.replicas(), full.replicas());
  for (std::size_t r = 0; r < stopped.replicas(); ++r) {
    EXPECT_EQ(stopped.value(r, 0), full.value(r, 0)) << "replica " << r;
  }
}

TEST(Trajectory, ValidationRejectsBadOptions) {
  const auto run_one = [](const TrajectoryBatchOptions& options) {
    return run_trajectory_batch(
        {"x"}, options,
        [](std::size_t, std::uint64_t) { return std::vector<double>{1.0}; });
  };
  TrajectoryBatchOptions options;
  options.threads = 1;
  options.replicas = 0;
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.replicas = 2;

  StoppingRule rule;
  rule.metric = "x";
  rule.tolerance = 0.1;
  options.stopping = rule;
  EXPECT_NO_THROW(run_one(options));
  options.stopping->tolerance = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.stopping->tolerance = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.stopping->tolerance = -0.5;
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.stopping->tolerance = 0.1;
  options.stopping->metric = "nope";
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.stopping->metric = "x";
  options.stopping->min_replicas = 1;
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.stopping->min_replicas = 8;
  options.stopping->max_replicas = 4;
  EXPECT_THROW(run_one(options), std::invalid_argument);
  options.stopping->max_replicas = 1024;
  options.stopping->wave = 0;
  EXPECT_THROW(run_one(options), std::invalid_argument);

  // The result type itself rejects an empty batch.
  EXPECT_THROW(TrajectoryBatchResult({"x"}, 0, {}, 0), std::invalid_argument);
}

TEST(Trajectory, ProvenanceDefaultsForFixedBatches) {
  const TrajectoryBatchResult result({"x"}, 3, {1.0, 2.0, 3.0}, 0);
  EXPECT_EQ(result.replicas_requested(), 3u);
  EXPECT_EQ(result.stop_reason(), StopReason::kFixedReplicas);
  EXPECT_STREQ(stop_reason_name(result.stop_reason()), "fixed");
}

TEST(Trajectory, PlanNestedLanesGivesThePoolToExactlyOneLevel) {
  // Serial: nobody gets lanes.
  NestedLanePlan plan = plan_nested_lanes(8, 1, 200000, 8192);
  EXPECT_EQ(plan.replica_lanes, 1u);
  EXPECT_EQ(plan.epoch_lanes, 1u);
  // Small population: sharding can't pay off, replicas take the pool.
  plan = plan_nested_lanes(2, 8, 1000, 8192);
  EXPECT_EQ(plan.replica_lanes, 8u);
  EXPECT_EQ(plan.epoch_lanes, 1u);
  // Wide batch over a big population: replica fan-out still wins.
  plan = plan_nested_lanes(32, 8, 200000, 8192);
  EXPECT_EQ(plan.replica_lanes, 8u);
  EXPECT_EQ(plan.epoch_lanes, 1u);
  // Narrow batch over a big population: the epoch shards get the pool.
  plan = plan_nested_lanes(1, 8, 200000, 8192);
  EXPECT_EQ(plan.replica_lanes, 1u);
  EXPECT_EQ(plan.epoch_lanes, 8u);
  // Never both >1 — nested parallel_for on one shared pool can deadlock.
  for (std::size_t replicas : {1u, 3u, 8u, 64u}) {
    for (std::size_t miners : {100u, 10000u, 1000000u}) {
      const NestedLanePlan p = plan_nested_lanes(replicas, 8, miners, 8192);
      EXPECT_TRUE(p.replica_lanes == 1 || p.epoch_lanes == 1);
      EXPECT_GE(p.replica_lanes * p.epoch_lanes, 1u);
    }
  }
}

// ------------------------------------------------- sharded decision epochs

chain::ChainSimOptions sharded_options(std::size_t lanes,
                                       chain::MinerPolicy policy,
                                       std::uint64_t seed) {
  chain::ChainSimOptions options;
  options.duration_hours = 24.0 * 10;
  options.policy = policy;
  options.reevaluation_fraction = 0.5;
  options.seed = seed;
  options.epoch_lanes = lanes;
  options.epoch_shard_cutoff = 0;  // shard even the 12-miner test population
  return options;
}

TEST(ShardedEpoch, BetterResponseBitIdenticalAcrossLaneCounts) {
  const auto one = run_chain(
      sharded_options(1, chain::MinerPolicy::kBetterResponse, 21),
      EngineKind::kFlat);
  const auto four = run_chain(
      sharded_options(4, chain::MinerPolicy::kBetterResponse, 21),
      EngineKind::kFlat);
  EXPECT_GT(one.migrations, 0u);
  expect_chain_results_equal(one, four);
}

TEST(ShardedEpoch, MyopicEdaChurnBitIdenticalAcrossLaneCounts) {
  auto options =
      sharded_options(1, chain::MinerPolicy::kMyopicDifficulty, 22);
  options.myopic_hysteresis = 0.05;
  const auto one = run_chain(options, EngineKind::kFlat, /*eda=*/true);
  options.epoch_lanes = 4;
  const auto four = run_chain(options, EngineKind::kFlat, /*eda=*/true);
  EXPECT_GT(one.migrations, 10u);
  expect_chain_results_equal(one, four);
}

TEST(ShardedEpoch, FlatAndLegacyEnginesAgreeInShardedMode) {
  // The sharded epoch is engine-agnostic: the same frozen-state decisions
  // and apply-order replays on the legacy EventQueue path.
  const auto options =
      sharded_options(4, chain::MinerPolicy::kBetterResponse, 23);
  expect_chain_results_equal(run_chain(options, EngineKind::kLegacy),
                             run_chain(options, EngineKind::kFlat));
}

TEST(ShardedEpoch, RewardHookAndExternalPoolBitIdentical) {
  // Reward hooks, a non-trivial initial assignment, and a caller-owned
  // pool (the nested-arbitration path) — against the 1-lane reference.
  const auto build = [](std::size_t lanes, engine::ThreadPool* pool) {
    std::vector<chain::ChainSpec> chains;
    chains.push_back(make_chain("a", 300.0, 20.0));
    chains.push_back(make_chain("b", 300.0, 20.0));
    chain::ChainSimOptions options;
    options.duration_hours = 24.0 * 8;
    options.policy = chain::MinerPolicy::kBetterResponse;
    options.seed = 24;
    options.epoch_lanes = lanes;
    options.epoch_shard_cutoff = 0;
    options.epoch_pool = pool;
    chain::MultiChainSimulator sim({10.0, 20.0, 30.0, 40.0, 50.0},
                                   std::move(chains), options,
                                   {0, 1, 0, 1, 0});
    sim.set_reward_hook([](std::size_t c, double t) {
      return 20.0 + (c == 0 ? 1.0 : -1.0) * 5.0 * std::sin(t / 24.0);
    });
    return sim.run();
  };
  engine::ThreadPool pool(3);
  expect_chain_results_equal(build(1, nullptr), build(4, &pool));
}

// ------------------------------------------------ Monte Carlo stress (slow)
// These run in the `test_sim_slow` CTest entry (label `slow`): Debug/ASan
// lanes skip them, the Release lanes run everything.

TEST(SimSlow, EdaParityAcrossManySeeds) {
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    chain::ChainSimOptions options;
    options.duration_hours = 24.0 * 12;
    options.policy = chain::MinerPolicy::kMyopicDifficulty;
    options.reevaluation_fraction = 0.5;
    options.seed = seed;
    expect_chain_results_equal(
        run_chain(options, EngineKind::kLegacy, /*eda=*/true),
        run_chain(options, EngineKind::kFlat, /*eda=*/true));
  }
}

TEST(SimSlow, Fig1BatchThreadInvariance) {
  market::Fig1ReplayParams params;
  params.miners = 16;
  params.days = 6.0;
  params.shock_day = 2.0;
  params.revert_day = 4.0;
  TrajectoryBatchOptions options;
  options.replicas = 6;
  options.root_seed = 1711;
  options.threads = 1;
  const TrajectoryBatchResult serial =
      market::run_fig1_replay_batch(params, options);
  options.threads = 4;
  const TrajectoryBatchResult wide =
      market::run_fig1_replay_batch(params, options);
  EXPECT_TRUE(serial.deterministic_equals(wide));
  // The shock pulls hashrate toward the minor chain in every replica.
  EXPECT_GT(serial.summary("flip_window_share").min,
            serial.summary("pre_shock_share").mean);
}

TEST(SimSlow, ChainBatchAggregatesValidateModel) {
  TrajectoryBatchOptions options;
  options.replicas = 12;
  options.threads = 0;  // all cores
  options.root_seed = 9;
  const TrajectoryBatchResult result = run_chain_batch(
      [](std::uint64_t seed) {
        std::vector<chain::ChainSpec> chains;
        chains.push_back(make_chain("solo", 600.0, 10.0));
        chain::ChainSimOptions options;
        options.duration_hours = 24.0 * 30;
        options.policy = chain::MinerPolicy::kStatic;
        options.seed = seed;
        options.record_timeline = false;
        return chain::MultiChainSimulator({100.0, 50.0, 30.0, 20.0},
                                          std::move(chains), options);
      },
      options);
  // Law of large numbers: the proportional-split MAE is small in mean and
  // its CI is tight across replicas (the E9 claim, now variance-quantified).
  const MetricSummary& mae = result.summary("share_mae");
  EXPECT_LT(mae.mean, 0.02);
  EXPECT_LT(mae.ci95_halfwidth, 0.02);
  EXPECT_EQ(result.summary("migrations").max, 0.0);
}

}  // namespace
}  // namespace goc::sim
