#include <gtest/gtest.h>

#include <cstdio>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "io/serialize.hpp"

namespace goc::io {
namespace {

TEST(Serialize, GameRoundTripSimple) {
  Game g(System::from_integer_powers({5, 3, 1}, 2),
         RewardFunction::from_integers({10, 7}));
  const Game back = game_from_text(to_text(g));
  EXPECT_EQ(back.system().powers(), g.system().powers());
  EXPECT_EQ(back.rewards().values(), g.rewards().values());
  EXPECT_TRUE(back.access().is_unrestricted());
}

TEST(Serialize, GameRoundTripRationalPowers) {
  Game g(System({Rational(5, 3), Rational(1, 2)}, 2),
         RewardFunction({Rational(22, 7), Rational(3)}));
  const Game back = game_from_text(to_text(g));
  EXPECT_EQ(back.system().powers(), g.system().powers());
  EXPECT_EQ(back.rewards().values(), g.rewards().values());
}

TEST(Serialize, GameRoundTripWithAccess) {
  Game g(System::from_integer_powers({4, 2}, 3),
         RewardFunction::from_integers({6, 5, 4}),
         AccessPolicy({{true, true, false}, {false, true, true}}));
  const Game back = game_from_text(to_text(g));
  EXPECT_FALSE(back.access().is_unrestricted());
  for (std::uint32_t p = 0; p < 2; ++p) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_EQ(back.can_mine(MinerId(p), CoinId(c)),
                g.can_mine(MinerId(p), CoinId(c)));
    }
  }
}

TEST(Serialize, RoundTripPropertyOnRandomGames) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    GameSpec spec;
    spec.num_miners = 1 + static_cast<std::size_t>(rng.next_below(12));
    spec.num_coins = 1 + static_cast<std::size_t>(rng.next_below(5));
    spec.distinct_powers = rng.bernoulli(0.5);
    Game g = random_game(spec, rng);
    if (rng.bernoulli(0.5)) {
      Rng arng = rng.split();
      g = Game(g.system_ptr(), g.rewards(),
               AccessPolicy::random(g.num_miners(), g.num_coins(), 0.6, arng));
    }
    const Game back = game_from_text(to_text(g));
    ASSERT_EQ(back.system().powers(), g.system().powers());
    ASSERT_EQ(back.rewards().values(), g.rewards().values());
    // Behavioral equivalence probe: same equilibrium predicate on a random
    // configuration.
    const Configuration s = random_configuration(g, rng);
    const Configuration s2(back.system_ptr(), s.assignment());
    EXPECT_EQ(is_equilibrium(g, s), is_equilibrium(back, s2));
  }
}

TEST(Serialize, ConfigurationRoundTrip) {
  Game g(System::from_integer_powers({5, 3, 1}, 3),
         RewardFunction::from_integers({10, 7, 2}));
  const Configuration s(g.system_ptr(), {CoinId(2), CoinId(0), CoinId(1)});
  const Configuration back =
      configuration_from_text(to_text(s), g.system_ptr());
  EXPECT_TRUE(back == s);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a scenario\n\ngoc-game v1\nminers 2\n"
      "powers 2 1  # big and small\ncoins 2\nrewards 1 1\n";
  const Game g = game_from_text(text);
  EXPECT_EQ(g.num_miners(), 2u);
  EXPECT_EQ(g.system().power(MinerId(0)), Rational(2));
}

TEST(Serialize, MalformedInputsRejected) {
  EXPECT_THROW(game_from_text(""), std::invalid_argument);
  EXPECT_THROW(game_from_text("goc-game v2\n"), std::invalid_argument);
  EXPECT_THROW(game_from_text("goc-game v1\nminers x\n"), std::invalid_argument);
  EXPECT_THROW(
      game_from_text("goc-game v1\nminers 2\npowers 1\ncoins 1\nrewards 1\n"),
      std::invalid_argument);  // wrong arity
  EXPECT_THROW(
      game_from_text(
          "goc-game v1\nminers 1\npowers 1/0\ncoins 1\nrewards 1\n"),
      std::invalid_argument);  // zero denominator
  EXPECT_THROW(
      game_from_text(
          "goc-game v1\nminers 1\npowers -1\ncoins 1\nrewards 1\n"),
      std::invalid_argument);  // nonpositive power
  EXPECT_THROW(
      game_from_text("goc-game v1\nminers 1\npowers 1\ncoins 1\nrewards 1\n"
                     "access 2\n"),
      std::invalid_argument);  // bad access flag
}

TEST(Serialize, ConfigurationErrors) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({1, 1}, 2));
  EXPECT_THROW(configuration_from_text("goc-config v1\nassignment 0\n", system),
               std::invalid_argument);  // arity
  EXPECT_THROW(
      configuration_from_text("goc-config v1\nassignment 0 5\n", system),
      std::invalid_argument);  // coin range
  EXPECT_THROW(configuration_from_text("nonsense\n", system),
               std::invalid_argument);
}

TEST(Serialize, RationalHelpers) {
  EXPECT_EQ(rational_from_text("22/7"), Rational(22, 7));
  EXPECT_EQ(rational_from_text("-3"), Rational(-3));
  EXPECT_EQ(rational_from_text(rational_to_text(Rational(355, 113))),
            Rational(355, 113));
  EXPECT_THROW(rational_from_text("abc"), std::invalid_argument);
  EXPECT_THROW(rational_from_text("1/0"), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip) {
  Game g(System::from_integer_powers({9, 4}, 2),
         RewardFunction::from_integers({3, 8}));
  const std::string game_path = "/tmp/goc_io_test_game.txt";
  const std::string config_path = "/tmp/goc_io_test_config.txt";
  save_game(g, game_path);
  const Game back = load_game(game_path);
  EXPECT_EQ(back.system().powers(), g.system().powers());

  const Configuration s(g.system_ptr(), {CoinId(1), CoinId(0)});
  save_configuration(s, config_path);
  const Configuration sback = load_configuration(config_path, g.system_ptr());
  EXPECT_TRUE(sback == s);
  std::remove(game_path.c_str());
  std::remove(config_path.c_str());

  EXPECT_THROW(load_game("/nonexistent/dir/game.txt"), std::runtime_error);
  EXPECT_THROW(save_game(g, "/nonexistent/dir/game.txt"), std::runtime_error);
}

}  // namespace
}  // namespace goc::io
