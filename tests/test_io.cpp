#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "io/serialize.hpp"
#include "util/rng.hpp"

namespace goc::io {
namespace {

/// Asserts that `fn()` throws std::invalid_argument whose message contains
/// `needle` — every parser throw site must say *what* was wrong, not just
/// that something was.
template <typename Fn>
void expect_parse_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(Serialize, GameRoundTripSimple) {
  Game g(System::from_integer_powers({5, 3, 1}, 2),
         RewardFunction::from_integers({10, 7}));
  const Game back = game_from_text(to_text(g));
  EXPECT_EQ(back.system().powers(), g.system().powers());
  EXPECT_EQ(back.rewards().values(), g.rewards().values());
  EXPECT_TRUE(back.access().is_unrestricted());
}

TEST(Serialize, GameRoundTripRationalPowers) {
  Game g(System({Rational(5, 3), Rational(1, 2)}, 2),
         RewardFunction({Rational(22, 7), Rational(3)}));
  const Game back = game_from_text(to_text(g));
  EXPECT_EQ(back.system().powers(), g.system().powers());
  EXPECT_EQ(back.rewards().values(), g.rewards().values());
}

TEST(Serialize, GameRoundTripWithAccess) {
  Game g(System::from_integer_powers({4, 2}, 3),
         RewardFunction::from_integers({6, 5, 4}),
         AccessPolicy({{true, true, false}, {false, true, true}}));
  const Game back = game_from_text(to_text(g));
  EXPECT_FALSE(back.access().is_unrestricted());
  for (std::uint32_t p = 0; p < 2; ++p) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_EQ(back.can_mine(MinerId(p), CoinId(c)),
                g.can_mine(MinerId(p), CoinId(c)));
    }
  }
}

TEST(Serialize, RoundTripPropertyOnRandomGames) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    GameSpec spec;
    spec.num_miners = 1 + static_cast<std::size_t>(rng.next_below(12));
    spec.num_coins = 1 + static_cast<std::size_t>(rng.next_below(5));
    spec.distinct_powers = rng.bernoulli(0.5);
    Game g = random_game(spec, rng);
    if (rng.bernoulli(0.5)) {
      Rng arng = rng.split();
      g = Game(g.system_ptr(), g.rewards(),
               AccessPolicy::random(g.num_miners(), g.num_coins(), 0.6, arng));
    }
    const Game back = game_from_text(to_text(g));
    ASSERT_EQ(back.system().powers(), g.system().powers());
    ASSERT_EQ(back.rewards().values(), g.rewards().values());
    // Behavioral equivalence probe: same equilibrium predicate on a random
    // configuration.
    const Configuration s = random_configuration(g, rng);
    const Configuration s2(back.system_ptr(), s.assignment());
    EXPECT_EQ(is_equilibrium(g, s), is_equilibrium(back, s2));
  }
}

TEST(Serialize, ConfigurationRoundTrip) {
  Game g(System::from_integer_powers({5, 3, 1}, 3),
         RewardFunction::from_integers({10, 7, 2}));
  const Configuration s(g.system_ptr(), {CoinId(2), CoinId(0), CoinId(1)});
  const Configuration back =
      configuration_from_text(to_text(s), g.system_ptr());
  EXPECT_TRUE(back == s);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a scenario\n\ngoc-game v1\nminers 2\n"
      "powers 2 1  # big and small\ncoins 2\nrewards 1 1\n";
  const Game g = game_from_text(text);
  EXPECT_EQ(g.num_miners(), 2u);
  EXPECT_EQ(g.system().power(MinerId(0)), Rational(2));
}

TEST(Serialize, MalformedInputsRejected) {
  EXPECT_THROW(game_from_text(""), std::invalid_argument);
  EXPECT_THROW(game_from_text("goc-game v2\n"), std::invalid_argument);
  EXPECT_THROW(game_from_text("goc-game v1\nminers x\n"), std::invalid_argument);
  EXPECT_THROW(
      game_from_text("goc-game v1\nminers 2\npowers 1\ncoins 1\nrewards 1\n"),
      std::invalid_argument);  // wrong arity
  EXPECT_THROW(
      game_from_text(
          "goc-game v1\nminers 1\npowers 1/0\ncoins 1\nrewards 1\n"),
      std::invalid_argument);  // zero denominator
  EXPECT_THROW(
      game_from_text(
          "goc-game v1\nminers 1\npowers -1\ncoins 1\nrewards 1\n"),
      std::invalid_argument);  // nonpositive power
  EXPECT_THROW(
      game_from_text("goc-game v1\nminers 1\npowers 1\ncoins 1\nrewards 1\n"
                     "access 2\n"),
      std::invalid_argument);  // bad access flag
}

TEST(Serialize, ConfigurationErrors) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({1, 1}, 2));
  EXPECT_THROW(configuration_from_text("goc-config v1\nassignment 0\n", system),
               std::invalid_argument);  // arity
  EXPECT_THROW(
      configuration_from_text("goc-config v1\nassignment 0 5\n", system),
      std::invalid_argument);  // coin range
  EXPECT_THROW(configuration_from_text("nonsense\n", system),
               std::invalid_argument);
}

TEST(Serialize, RationalHelpers) {
  EXPECT_EQ(rational_from_text("22/7"), Rational(22, 7));
  EXPECT_EQ(rational_from_text("-3"), Rational(-3));
  EXPECT_EQ(rational_from_text(rational_to_text(Rational(355, 113))),
            Rational(355, 113));
  EXPECT_THROW(rational_from_text("abc"), std::invalid_argument);
  EXPECT_THROW(rational_from_text("1/0"), std::invalid_argument);
}

// One test per parser throw site, message content included: integers.
TEST(SerializeErrors, IntegerParsing) {
  expect_parse_error([] { rational_from_text(""); }, "empty integer");
  expect_parse_error([] { rational_from_text("1/"); }, "empty integer");
  expect_parse_error([] { rational_from_text("-"); }, "sign without digits");
  expect_parse_error([] { rational_from_text("+"); }, "sign without digits");
  expect_parse_error([] { rational_from_text("12a"); }, "invalid digit");
  expect_parse_error([] { rational_from_text("0x10"); }, "invalid digit");
  // 40 digits overflow i128 (max ~1.7e38).
  expect_parse_error([] { rational_from_text(std::string(40, '9')); },
                     "integer out of range");
  expect_parse_error([] { rational_from_text("4/0"); }, "zero denominator");
}

TEST(SerializeErrors, GameHeaderAndStructure) {
  expect_parse_error([] { game_from_text(""); }, "end of input");
  expect_parse_error([] { game_from_text("goc-game\n"); },
                     "unsupported game format version");
  expect_parse_error([] { game_from_text("goc-game v2\n"); },
                     "unsupported game format version");
  expect_parse_error([] { game_from_text("goc-game v1\nrewards 1\n"); },
                     "expected 'miners'");
  expect_parse_error([] { game_from_text("goc-game v1\nminers 2 3\n"); },
                     "miners expects one count");
  expect_parse_error([] { game_from_text("goc-game v1\nminers two\n"); },
                     "invalid count");
  expect_parse_error(
      [] { game_from_text("goc-game v1\nminers 2\npowers 1\n"); },
      "powers expects exactly 2 values");
  expect_parse_error(
      [] {
        game_from_text("goc-game v1\nminers 1\npowers 1\ncoins 1 2\n");
      },
      "coins expects one count");
  expect_parse_error(
      [] {
        game_from_text(
            "goc-game v1\nminers 1\npowers 1\ncoins 2\nrewards 5\n");
      },
      "rewards expects exactly 2 values");
}

TEST(SerializeErrors, GameAccessRows) {
  const std::string base =
      "goc-game v1\nminers 2\npowers 1 1\ncoins 2\nrewards 3 2\n";
  expect_parse_error([&] { game_from_text(base + "trailer 10 01\n"); },
                     "expected optional 'access'");
  expect_parse_error([&] { game_from_text(base + "access 10\n"); },
                     "one row per miner");
  expect_parse_error([&] { game_from_text(base + "access 10 0\n"); },
                     "one flag per coin");
  expect_parse_error([&] { game_from_text(base + "access 10 0x\n"); },
                     "access flags must be 0/1");
}

TEST(SerializeErrors, InvalidGameWrapped) {
  // Structurally well-formed text whose values the Game constructor
  // rejects must surface as the wrapped goc::io error, not a raw one.
  expect_parse_error(
      [] {
        game_from_text("goc-game v1\nminers 1\npowers 0\ncoins 1\nrewards 1\n");
      },
      "goc::io: invalid game");
}

TEST(SerializeErrors, ConfigurationSites) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({1, 1}, 2));
  expect_parse_error(
      [&] { configuration_from_text("goc-config v3\nassignment 0 1\n", system); },
      "unsupported configuration format version");
  expect_parse_error(
      [&] { configuration_from_text("goc-config v1\nassignment 0\n", system); },
      "one coin per miner");
  expect_parse_error(
      [&] { configuration_from_text("goc-config v1\nassignment 0 9\n", system); },
      "coin id out of range");
  expect_parse_error(
      [&] { configuration_from_text("goc-config v1\nassignment 0 -1\n", system); },
      "invalid count");
  EXPECT_THROW(configuration_from_text("goc-config v1\nassignment 0 1\n",
                                       nullptr),
               std::invalid_argument);
}

TEST(SerializeErrors, MessagesCarryLineNumbers) {
  try {
    game_from_text("goc-game v1\nminers 2\npowers 1\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

/// Test-local inverse of json_escape, strict: rejects anything the escaper
/// would not produce.
std::string json_unescape(const std::string& text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (static_cast<unsigned char>(ch) < 0x20) {
      throw std::invalid_argument("raw control character survived escaping");
    }
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (++i >= text.size()) throw std::invalid_argument("dangling backslash");
    switch (text[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= text.size()) {
          throw std::invalid_argument("truncated \\u escape");
        }
        unsigned value = 0;
        for (int d = 0; d < 4; ++d) {
          const char hex = text[++i];
          value <<= 4;
          if (hex >= '0' && hex <= '9') {
            value |= static_cast<unsigned>(hex - '0');
          } else if (hex >= 'a' && hex <= 'f') {
            value |= static_cast<unsigned>(hex - 'a' + 10);
          } else {
            throw std::invalid_argument("non-hex digit in \\u escape");
          }
        }
        if (value >= 0x20) {
          throw std::invalid_argument("\\u escape outside control range");
        }
        out += static_cast<char>(value);
        break;
      }
      default:
        throw std::invalid_argument("unknown escape");
    }
  }
  return out;
}

TEST(SerializeErrors, JsonEscapeKnownSequences) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 passthrough
}

TEST(SerializeErrors, JsonEscapeRoundTripFuzz) {
  Rng rng(0x15CA9E);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const std::size_t len = rng.next_below(64);
    for (std::size_t i = 0; i < len; ++i) {
      // Bias toward the interesting bytes: controls, quote, backslash.
      const std::uint64_t pick = rng.next_below(4);
      char ch;
      if (pick == 0) {
        ch = static_cast<char>(rng.next_below(0x20));  // control range
      } else if (pick == 1) {
        ch = rng.bernoulli(0.5) ? '"' : '\\';
      } else {
        ch = static_cast<char>(rng.next_below(256));
      }
      input += ch;
    }
    const std::string escaped = json_escape(input);
    ASSERT_EQ(json_unescape(escaped), input)
        << "trial " << trial << " escaped form: " << escaped;
  }
}

TEST(SerializeErrors, AtomicWriteReplacesAndCleansUp) {
  const std::string path = "/tmp/goc_io_test_atomic.json";
  atomic_write_file("first", path);
  atomic_write_file("second", path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  std::remove(path.c_str());
  // Failure leaves neither the target nor a stray .tmp behind.
  EXPECT_THROW(atomic_write_file("x", "/nonexistent/dir/file.json"),
               std::runtime_error);
}

/// Open descriptors of this process (via /proc/self/fd). The count
/// includes the directory fd used for the scan itself, identically on
/// every call — so equality across calls means no descriptor leaked.
std::size_t count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  EXPECT_NE(dir, nullptr);
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// Regression: `atomic_write_file` once short-circuited
/// `fsync(fd) != 0 || close(fd) != 0`, leaking the descriptor whenever
/// fsync failed — fatal for a long-lived daemon checkpointing per wave.
/// Descriptors must be conserved across *every* failure path. The forced
/// failures here are ones that work for any uid (root ignores read-only
/// directory permissions): open() on a path whose .tmp is a directory
/// (EISDIR), and rename() onto a non-empty directory (ENOTEMPTY) — the
/// latter exercising the full open/write/fsync/close sequence first.
TEST(SerializeErrors, AtomicWriteConservesFdsOnFailurePaths) {
  const std::string base = "/tmp/goc_io_test_fdleak";
  const std::string tmp_dir = base + ".tmp";
  ASSERT_EQ(::mkdir(tmp_dir.c_str(), 0755), 0);
  const std::size_t before = count_open_fds();
  for (int i = 0; i < 8; ++i) {
    EXPECT_THROW(atomic_write_file("x", base), std::runtime_error);
  }
  EXPECT_EQ(count_open_fds(), before);
  ASSERT_EQ(::rmdir(tmp_dir.c_str()), 0);

  // rename failure: the target is a non-empty directory, so the write,
  // fsync and close all succeed and only the final rename throws.
  const std::string dir_target = "/tmp/goc_io_test_fdleak_dir";
  ASSERT_EQ(::mkdir(dir_target.c_str(), 0755), 0);
  const std::string inner = dir_target + "/occupied";
  atomic_write_file("occupied", inner);
  const std::size_t before_rename = count_open_fds();
  for (int i = 0; i < 8; ++i) {
    EXPECT_THROW(atomic_write_file("x", dir_target), std::runtime_error);
  }
  EXPECT_EQ(count_open_fds(), before_rename);
  // The failure also removed its tmp file.
  std::ifstream tmp_left(dir_target + ".tmp");
  EXPECT_FALSE(tmp_left.good());
  std::remove(inner.c_str());
  ASSERT_EQ(::rmdir(dir_target.c_str()), 0);
}

TEST(Serialize, FileRoundTrip) {
  Game g(System::from_integer_powers({9, 4}, 2),
         RewardFunction::from_integers({3, 8}));
  const std::string game_path = "/tmp/goc_io_test_game.txt";
  const std::string config_path = "/tmp/goc_io_test_config.txt";
  save_game(g, game_path);
  const Game back = load_game(game_path);
  EXPECT_EQ(back.system().powers(), g.system().powers());

  const Configuration s(g.system_ptr(), {CoinId(1), CoinId(0)});
  save_configuration(s, config_path);
  const Configuration sback = load_configuration(config_path, g.system_ptr());
  EXPECT_TRUE(sback == s);
  std::remove(game_path.c_str());
  std::remove(config_path.c_str());

  EXPECT_THROW(load_game("/nonexistent/dir/game.txt"), std::runtime_error);
  EXPECT_THROW(save_game(g, "/nonexistent/dir/game.txt"), std::runtime_error);
}

}  // namespace
}  // namespace goc::io
