#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "replay/checkpoint.hpp"
#include "replay/golden.hpp"
#include "replay/replay.hpp"
#include "sim/trajectory.hpp"
#include "util/crc32.hpp"

namespace goc {
namespace {

using replay::BatchCheckpoint;
using replay::ByteReader;
using replay::ByteWriter;
using replay::Frame;
using replay::Reader;
using replay::RecordType;
using replay::ReplayError;
using replay::ReplayException;
using replay::Writer;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "goc_replay_" + name;
}

// ----------------------------------------------------------------- CRC32

TEST(Crc32, MatchesIeeeCheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32::compute("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32::compute("", 0), 0u);
}

TEST(Crc32, UpdateIsStreamable) {
  const std::string text = "the quick brown fox";
  const std::uint32_t whole = crc32::compute(text.data(), text.size());
  std::uint32_t streamed = 0;
  for (const char ch : text) streamed = crc32::update(streamed, &ch, 1);
  EXPECT_EQ(streamed, whole);
}

// ------------------------------------------------------------- byte codec

TEST(ByteCodec, RoundTripsEveryType) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u32(0xDEADBEEFu);
  writer.u64(0x0123456789ABCDEFull);
  writer.f64(-0.0);
  writer.f64(std::numeric_limits<double>::quiet_NaN());
  writer.str("hello\0world");  // embedded NUL survives via length prefix
  writer.str("");

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(std::isnan(reader.f64()));
  EXPECT_EQ(reader.str(), std::string("hello"));  // "\0world" after the NUL is
                                                  // not in the literal length
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.done());
}

TEST(ByteCodec, OverrunThrowsMalformed) {
  ByteWriter writer;
  writer.u32(7);
  ByteReader reader(writer.bytes());
  reader.u32();
  try {
    reader.u8();
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kMalformed);
  }
}

// ----------------------------------------------------------- file framing

std::string three_frame_image() {
  Writer writer;
  ByteWriter a;
  a.str("header");
  writer.append(RecordType::kBatchHeader, a);
  ByteWriter b;
  b.u64(1);
  b.f64(2.5);
  writer.append(RecordType::kReplicaRow, b);
  ByteWriter c;
  c.u64(1);
  writer.append(RecordType::kFooter, c);
  return writer.bytes();
}

TEST(Framing, RoundTrip) {
  const std::string image = three_frame_image();
  const Reader reader = Reader::from_bytes(image, /*salvage=*/false);
  ASSERT_EQ(reader.frames().size(), 3u);
  EXPECT_EQ(reader.frames()[0].type, RecordType::kBatchHeader);
  EXPECT_EQ(reader.frames()[1].type, RecordType::kReplicaRow);
  EXPECT_EQ(reader.frames()[2].type, RecordType::kFooter);
  EXPECT_FALSE(reader.salvaged());
}

TEST(Framing, BadMagicThrowsInBothModes) {
  std::string image = three_frame_image();
  image[0] = 'X';
  for (const bool salvage : {false, true}) {
    try {
      Reader::from_bytes(image, salvage);
      FAIL() << "expected ReplayException";
    } catch (const ReplayException& e) {
      EXPECT_EQ(e.error(), ReplayError::kBadMagic);
    }
  }
}

TEST(Framing, VersionMismatchThrowsInBothModes) {
  std::string image = three_frame_image();
  image[8] = static_cast<char>(99);  // version u32 LSB
  for (const bool salvage : {false, true}) {
    try {
      Reader::from_bytes(image, salvage);
      FAIL() << "expected ReplayException";
    } catch (const ReplayException& e) {
      EXPECT_EQ(e.error(), ReplayError::kVersionMismatch);
    }
  }
}

TEST(Framing, CrcMismatchStrictThrowsSalvageKeepsPrefix) {
  std::string image = three_frame_image();
  // Flip a byte inside the LAST frame's payload (frames 1 and 2 stay valid).
  image[image.size() - 5] ^= 0x40;
  try {
    Reader::from_bytes(image, /*salvage=*/false);
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kCrcMismatch);
  }
  const Reader reader = Reader::from_bytes(image, /*salvage=*/true);
  EXPECT_EQ(reader.frames().size(), 2u);
  EXPECT_TRUE(reader.salvaged());
  EXPECT_EQ(reader.salvage_reason(), ReplayError::kCrcMismatch);
  EXPECT_GT(reader.salvaged_bytes(), 0u);
}

TEST(Framing, TruncationStrictThrowsSalvageKeepsPrefix) {
  const std::string image = three_frame_image();
  const std::string cut = image.substr(0, image.size() - 3);
  try {
    Reader::from_bytes(cut, /*salvage=*/false);
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kTruncated);
  }
  const Reader reader = Reader::from_bytes(cut, /*salvage=*/true);
  EXPECT_EQ(reader.frames().size(), 2u);
  EXPECT_EQ(reader.salvage_reason(), ReplayError::kTruncated);
}

TEST(Framing, EveryTruncationPointSalvagesOrThrowsTyped) {
  // Sweep every prefix length. Salvage must always return a bit-exact
  // frame prefix, never garbage. Strict must either throw kTruncated (cut
  // mid-frame) or parse a clean frame prefix (cut at an exact frame
  // boundary — indistinguishable from a shorter valid file at this layer;
  // completeness is the footer frame's job one level up).
  const std::string image = three_frame_image();
  const Reader whole = Reader::from_bytes(image, false);
  // len 12 = magic + version with zero frames, a valid empty artifact.
  for (std::size_t len = 12; len < image.size(); ++len) {
    const std::string cut = image.substr(0, len);
    const Reader reader = Reader::from_bytes(cut, /*salvage=*/true);
    EXPECT_LE(reader.frames().size(), whole.frames().size());
    for (std::size_t i = 0; i < reader.frames().size(); ++i) {
      EXPECT_EQ(reader.frames()[i].payload, whole.frames()[i].payload);
    }
    try {
      const Reader strict = Reader::from_bytes(cut, /*salvage=*/false);
      // No throw: must be a frame-boundary cut, agreeing with salvage.
      EXPECT_EQ(strict.frames().size(), reader.frames().size())
          << "strict parse without a throw must be a clean prefix (len "
          << len << ")";
      EXPECT_FALSE(reader.salvaged());
    } catch (const ReplayException& e) {
      EXPECT_EQ(e.error(), ReplayError::kTruncated);
      EXPECT_TRUE(reader.salvaged());
    }
  }
}

TEST(Framing, WriteAtomicRoundTripsThroughDisk) {
  const std::string path = temp_path("framing.gocr");
  Writer writer;
  ByteWriter payload;
  payload.str("persisted");
  writer.append(RecordType::kBatchHeader, payload);
  writer.write_atomic(path);
  const Reader reader = Reader::open(path, /*salvage=*/false);
  ASSERT_EQ(reader.frames().size(), 1u);
  ByteReader back(reader.frames()[0].payload);
  EXPECT_EQ(back.str(), "persisted");
  EXPECT_FALSE(replay::file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Framing, MissingFileThrowsIo) {
  try {
    Reader::open(temp_path("does_not_exist.gocr"), true);
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kIo);
  }
}

// ------------------------------------------------------- atomic_write_file

TEST(AtomicWrite, WritesAndReplaces) {
  const std::string path = temp_path("atomic.txt");
  io::atomic_write_file("first", path);
  EXPECT_EQ(replay::read_file_bytes(path), "first");
  io::atomic_write_file("second, longer content", path);
  EXPECT_EQ(replay::read_file_bytes(path), "second, longer content");
  EXPECT_FALSE(replay::file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicWrite, FailureThrowsRuntimeError) {
  EXPECT_THROW(io::atomic_write_file("x", "/nonexistent-dir/file.txt"),
               std::runtime_error);
}

// ------------------------------------------------------------- checkpoints

BatchCheckpoint sample_checkpoint() {
  BatchCheckpoint cp;
  cp.root_seed = 42;
  cp.config_hash = 0xC0FFEE;
  cp.metric_names = {"alpha", "beta"};
  cp.replicas_requested = 8;
  cp.adaptive = false;
  cp.completed = 3;
  cp.values = {1.0, 2.0, 3.5, -4.0, 0.0, 6.25};
  return cp;
}

TEST(Checkpoint, RoundTripsStrict) {
  const BatchCheckpoint cp = sample_checkpoint();
  const BatchCheckpoint back =
      BatchCheckpoint::from_bytes(cp.to_bytes(), /*salvage=*/false);
  EXPECT_EQ(back.root_seed, cp.root_seed);
  EXPECT_EQ(back.config_hash, cp.config_hash);
  EXPECT_EQ(back.metric_names, cp.metric_names);
  EXPECT_EQ(back.replicas_requested, cp.replicas_requested);
  EXPECT_EQ(back.adaptive, cp.adaptive);
  EXPECT_EQ(back.completed, cp.completed);
  EXPECT_EQ(back.values, cp.values);
  EXPECT_EQ(back.values_hash(), cp.values_hash());
}

TEST(Checkpoint, SaveLoadThroughDisk) {
  const std::string path = temp_path("checkpoint.gocr");
  const BatchCheckpoint cp = sample_checkpoint();
  cp.save(path);
  const BatchCheckpoint back = BatchCheckpoint::load(path, /*salvage=*/false);
  EXPECT_EQ(back.values, cp.values);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptedRowSalvagesShorterPrefix) {
  const BatchCheckpoint cp = sample_checkpoint();
  std::string image = cp.to_bytes();
  // The welford frame sits after the 3 row frames; find its byte offset by
  // re-framing and corrupt the LAST row frame instead: flip one byte a
  // frame-length back from the welford frame.
  // Simpler and robust: flip a byte near the middle of the image, inside
  // the row region (header is ~60 bytes, rows follow).
  image[image.size() / 2] ^= 0x01;
  EXPECT_THROW(BatchCheckpoint::from_bytes(image, false), ReplayException);
  const BatchCheckpoint salvaged = BatchCheckpoint::from_bytes(image, true);
  EXPECT_LT(salvaged.completed, cp.completed);
  EXPECT_EQ(salvaged.values.size(),
            salvaged.completed * cp.metric_names.size());
  // The surviving rows are bit-identical to the originals.
  for (std::size_t i = 0; i < salvaged.values.size(); ++i) {
    EXPECT_EQ(salvaged.values[i], cp.values[i]);
  }
}

TEST(Checkpoint, TruncationSalvagesRowPrefix) {
  const BatchCheckpoint cp = sample_checkpoint();
  const std::string image = cp.to_bytes();
  const BatchCheckpoint salvaged =
      BatchCheckpoint::from_bytes(image.substr(0, image.size() - 40), true);
  EXPECT_LE(salvaged.completed, cp.completed);
  for (std::size_t i = 0; i < salvaged.values.size(); ++i) {
    EXPECT_EQ(salvaged.values[i], cp.values[i]);
  }
}

TEST(Checkpoint, StrictRejectsStaleSummaries) {
  // Re-frame the image with the footer's completed count tampered but its
  // CRC recomputed — CRC-clean, semantically inconsistent.
  const BatchCheckpoint cp = sample_checkpoint();
  const Reader reader = Reader::from_bytes(cp.to_bytes(), false);
  Writer writer;
  for (const Frame& frame : reader.frames()) {
    if (frame.type == RecordType::kFooter) {
      ByteWriter tampered;
      tampered.u64(cp.completed + 1);  // lies about the row count
      tampered.u64(cp.values_hash());
      writer.append(frame.type, tampered);
    } else {
      writer.append(frame.type, frame.payload);
    }
  }
  try {
    BatchCheckpoint::from_bytes(writer.bytes(), /*salvage=*/false);
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kMalformed);
  }
  // Salvage treats rows as ground truth and shrugs off the bad footer.
  const BatchCheckpoint salvaged =
      BatchCheckpoint::from_bytes(writer.bytes(), /*salvage=*/true);
  EXPECT_EQ(salvaged.completed, cp.completed);
  EXPECT_EQ(salvaged.values, cp.values);
}

TEST(Checkpoint, WrongKindThrowsHeaderMismatch) {
  const std::string golden = replay::record_golden(
      {.scenario = "chain", .seed = 1, .replicas = 1, .snapshot_stride = 64});
  try {
    BatchCheckpoint::from_bytes(golden, /*salvage=*/true);
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kHeaderMismatch);
  }
}

// --------------------------------------------------- checkpointed batches

sim::TrajectoryBatchOptions batch_options(const std::string& path,
                                          std::size_t threads,
                                          bool adaptive) {
  sim::TrajectoryBatchOptions options;
  options.replicas = 20;
  options.root_seed = 99;
  options.threads = threads;
  options.config_hash = 0xABCD;
  if (adaptive) {
    sim::StoppingRule rule;
    rule.metric = "blocks_total";
    rule.tolerance = 1e-12;  // never met: runs to the ceiling
    rule.min_replicas = 6;
    rule.max_replicas = 20;
    rule.wave = 5;
    options.stopping = rule;
  }
  if (!path.empty()) {
    replay::CheckpointOptions ckpt;
    ckpt.path = path;
    ckpt.interval = 6;
    options.checkpoint = ckpt;
  }
  return options;
}

sim::TrajectoryBatchResult run_demo(const sim::TrajectoryBatchOptions& options) {
  return sim::run_trajectory_batch(
      {"blocks_total", "noise"}, options,
      [](std::size_t r, std::uint64_t seed) {
        return std::vector<double>{
            static_cast<double>(seed % 1000) + static_cast<double>(r),
            static_cast<double>(seed >> 32)};
      });
}

struct CrashAfter {
  std::size_t writes_left;
};

TEST(CheckpointedBatch, UninterruptedMatchesUncheckpointed) {
  for (const bool adaptive : {false, true}) {
    const std::string path = temp_path("batch_plain.gocr");
    std::remove(path.c_str());
    const sim::TrajectoryBatchResult bare =
        run_demo(batch_options("", 1, adaptive));
    const sim::TrajectoryBatchResult checked =
        run_demo(batch_options(path, 1, adaptive));
    EXPECT_TRUE(bare.deterministic_equals(checked));
    EXPECT_EQ(bare.values_hash(), checked.values_hash());
    // The final artifact equals the finished batch.
    const BatchCheckpoint cp = BatchCheckpoint::load(path, false);
    EXPECT_EQ(cp.completed, checked.replicas());
    std::remove(path.c_str());
  }
}

TEST(CheckpointedBatch, CrashAtEveryWriteResumesBitIdentical) {
  for (const bool adaptive : {false, true}) {
    const sim::TrajectoryBatchResult reference =
        run_demo(batch_options("", 1, adaptive));
    for (std::size_t crash_at = 1; crash_at <= 4; ++crash_at) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const std::string path = temp_path("batch_crash.gocr");
        std::remove(path.c_str());
        sim::TrajectoryBatchOptions options =
            batch_options(path, threads, adaptive);
        std::size_t writes = 0;
        options.checkpoint->on_write = [&writes, crash_at](std::size_t) {
          if (++writes == crash_at) throw CrashAfter{crash_at};
        };
        bool crashed = false;
        try {
          run_demo(options);
        } catch (const CrashAfter&) {
          crashed = true;
        }
        // (A late crash_at may never fire if the batch finishes first.)
        options.checkpoint->on_write = nullptr;
        const sim::TrajectoryBatchResult resumed = run_demo(options);
        EXPECT_TRUE(resumed.deterministic_equals(reference))
            << "adaptive=" << adaptive << " crash_at=" << crash_at
            << " threads=" << threads << " crashed=" << crashed;
        EXPECT_EQ(resumed.values_hash(), reference.values_hash());
        EXPECT_EQ(resumed.replicas(), reference.replicas());
        EXPECT_EQ(resumed.stop_reason(), reference.stop_reason());
        std::remove(path.c_str());
      }
    }
  }
}

TEST(CheckpointedBatch, AdaptiveResumeKeepsChosenR) {
  // A rule that stops before the ceiling: the resumed run must re-derive
  // the same chosen R even when the checkpoint holds more rows than the
  // first stop check needs.
  const std::string path = temp_path("batch_adaptive.gocr");
  std::remove(path.c_str());
  sim::TrajectoryBatchOptions options = batch_options(path, 2, true);
  options.stopping->tolerance = 0.5;
  options.stopping->relative = true;  // loose: stops at min_replicas
  const sim::TrajectoryBatchResult first = run_demo(options);
  const sim::TrajectoryBatchResult resumed = run_demo(options);
  EXPECT_TRUE(first.deterministic_equals(resumed));
  EXPECT_EQ(first.replicas(), resumed.replicas());
  EXPECT_EQ(first.stop_reason(), sim::StopReason::kToleranceMet);
  EXPECT_EQ(resumed.stop_reason(), sim::StopReason::kToleranceMet);
  std::remove(path.c_str());
}

TEST(CheckpointedBatch, HeaderMismatchRefusesResume) {
  const std::string path = temp_path("batch_mismatch.gocr");
  std::remove(path.c_str());
  run_demo(batch_options(path, 1, false));

  // Different root seed.
  sim::TrajectoryBatchOptions other = batch_options(path, 1, false);
  other.root_seed = 100;
  try {
    run_demo(other);
    FAIL() << "expected ReplayException";
  } catch (const ReplayException& e) {
    EXPECT_EQ(e.error(), ReplayError::kHeaderMismatch);
  }

  // Different config hash.
  other = batch_options(path, 1, false);
  other.config_hash = 0x1234;
  EXPECT_THROW(run_demo(other), ReplayException);

  // Fixed checkpoint vs adaptive batch.
  other = batch_options(path, 1, true);
  other.config_hash = 0xABCD;
  EXPECT_THROW(run_demo(other), ReplayException);

  // resume=false ignores the stale artifact entirely.
  other = batch_options(path, 1, false);
  other.root_seed = 100;
  other.checkpoint->resume = false;
  const sim::TrajectoryBatchResult fresh = run_demo(other);
  EXPECT_EQ(fresh.replicas(), 20u);
  std::remove(path.c_str());
}

TEST(CheckpointedBatch, CorruptedCheckpointSalvageLosesAtMostOneWave) {
  const std::string path = temp_path("batch_corrupt.gocr");
  std::remove(path.c_str());
  const sim::TrajectoryBatchResult reference =
      run_demo(batch_options("", 1, false));
  sim::TrajectoryBatchOptions options = batch_options(path, 1, false);
  run_demo(options);
  // Flip a byte inside the row region; salvage keeps a shorter prefix and
  // the resumed batch still reproduces the reference bit for bit.
  std::string image = replay::read_file_bytes(path);
  image[image.size() / 2] ^= 0x10;
  io::atomic_write_file(image, path);
  const sim::TrajectoryBatchResult resumed = run_demo(options);
  EXPECT_TRUE(resumed.deterministic_equals(reference));
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- goldens

TEST(Golden, RecordIsDeterministic) {
  const replay::GoldenOptions options{
      .scenario = "chain", .seed = 5, .replicas = 2, .snapshot_stride = 32};
  EXPECT_EQ(replay::record_golden(options), replay::record_golden(options));
}

TEST(Golden, VerifyAcceptsPristineRejectsTampered) {
  for (const std::string scenario : {"chain", "fig1"}) {
    const std::string path = temp_path("golden_" + scenario + ".gocr");
    replay::GoldenOptions options;
    options.scenario = scenario;
    options.seed = 11;
    options.replicas = 2;
    options.snapshot_stride = 32;
    replay::record_golden_file(options, path);
    const replay::VerifyReport ok = replay::verify_golden_file(path);
    EXPECT_TRUE(ok.ok) << ok.detail;
    EXPECT_EQ(ok.scenario, scenario);

    // Flip one payload byte (CRC-clean re-frame): verify must localize it.
    const Reader reader =
        Reader::from_bytes(replay::read_file_bytes(path), false);
    Writer writer;
    bool tampered = false;
    for (const Frame& frame : reader.frames()) {
      if (!tampered && frame.type == RecordType::kReplicaRow) {
        std::string payload = frame.payload;
        payload[payload.size() - 1] ^= 0x01;
        writer.append(frame.type, payload);
        tampered = true;
      } else {
        writer.append(frame.type, frame.payload);
      }
    }
    ASSERT_TRUE(tampered);
    io::atomic_write_file(writer.bytes(), path);
    const replay::VerifyReport bad = replay::verify_golden_file(path);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.detail.find("replica-row"), std::string::npos) << bad.detail;
    std::remove(path.c_str());
  }
}

TEST(Golden, VerifyReportsTypedDefects) {
  const std::string path = temp_path("golden_broken.gocr");
  replay::record_golden_file(
      {.scenario = "chain", .seed = 3, .replicas = 1, .snapshot_stride = 64},
      path);
  std::string image = replay::read_file_bytes(path);
  image[3] = 'X';  // magic
  io::atomic_write_file(image, path);
  const replay::VerifyReport report = replay::verify_golden_file(path);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.detail.find("bad-magic"), std::string::npos)
      << report.detail;
  std::remove(path.c_str());
}

TEST(Golden, GoldenRowsMatchBatchEngineRows) {
  // The contract that makes goldens meaningful: row r of a golden equals
  // row r of a Monte Carlo batch over the same scenario.
  const replay::GoldenOptions options{
      .scenario = "chain", .seed = 77, .replicas = 3, .snapshot_stride = 64};
  const Reader reader =
      Reader::from_bytes(replay::record_golden(options), false);
  std::vector<std::vector<double>> rows;
  for (const Frame& frame : reader.frames()) {
    if (frame.type != RecordType::kReplicaRow) continue;
    ByteReader payload(frame.payload);
    payload.u64();
    std::vector<double> row;
    while (!payload.done()) row.push_back(payload.f64());
    rows.push_back(std::move(row));
  }
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(rows[0].size(), sim::chain_batch_metrics().size());
}

TEST(Golden, InspectSummarizesDamagedFiles) {
  const std::string path = temp_path("golden_info.gocr");
  replay::record_golden_file(
      {.scenario = "chain", .seed = 3, .replicas = 2, .snapshot_stride = 64},
      path);
  std::string image = replay::read_file_bytes(path);
  const replay::ArtifactInfo intact = replay::inspect_file(path);
  EXPECT_EQ(intact.kind, "golden-recording");
  EXPECT_EQ(intact.scenario, "chain");
  EXPECT_FALSE(intact.salvaged);
  EXPECT_FALSE(replay::render_info(intact).empty());

  io::atomic_write_file(image.substr(0, image.size() - 7), path);
  const replay::ArtifactInfo damaged = replay::inspect_file(path);
  EXPECT_TRUE(damaged.salvaged);
  EXPECT_EQ(damaged.salvage_reason, "truncated");
  EXPECT_LT(damaged.frames, intact.frames);
  std::remove(path.c_str());
}

TEST(Golden, UnknownScenarioThrows) {
  EXPECT_THROW(replay::record_golden({.scenario = "nope"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace goc
