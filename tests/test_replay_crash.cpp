#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "replay/golden.hpp"
#include "replay/replay.hpp"
#include "util/rng.hpp"

/// \file test_replay_crash.cpp
/// Fault-injection verification of the checkpoint/resume machinery.
///
/// Each iteration forks the real `goc-replay batch` binary with a suicide
/// switch (SIGKILL raised inside a random checkpoint write), then further
/// abuses the artifact the child left behind — a random byte flip or a
/// random truncation — and resumes the batch in-process. The recovery
/// protocol under test: salvage what the file still proves, restart from
/// scratch on a typed header error, and in every case end up bit-identical
/// to an uninterrupted run at an unrelated thread count.
///
/// The fast `ReplayCrash` suite runs a handful of iterations; the
/// slow-labeled `ReplayCrashSlow` soak runs 100 (the acceptance bar).
/// Failed iterations keep their corrupted artifact under
/// `replay_crash_artifacts/` next to the test binary so CI can upload it.

namespace goc {
namespace {

std::string self_dir() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::string path(buf);
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::string replay_binary() { return self_dir() + "/goc-replay"; }

std::string artifacts_dir() {
  const std::string dir = self_dir() + "/replay_crash_artifacts";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Forks and execs `goc-replay batch` with the given options; returns the
/// raw waitpid status.
int run_child_batch(const replay::CrashBatchOptions& options) {
  std::vector<std::string> args = {
      replay_binary(),
      "batch",
      "--checkpoint=" + options.checkpoint_path,
      "--seed=" + std::to_string(options.seed),
      "--replicas=" + std::to_string(options.replicas),
      "--interval=" + std::to_string(options.interval),
      "--threads=" + std::to_string(options.threads)};
  if (options.adaptive) args.push_back("--adaptive");
  if (options.kill_after > 0) {
    args.push_back("--kill-after=" + std::to_string(options.kill_after));
  }
  const ::pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    if (std::freopen("/dev/null", "w", stdout) == nullptr) _exit(126);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// One kill + corrupt + resume round; returns an empty string on success,
/// a failure description otherwise (the caller keeps the artifact).
std::string fault_iteration(const sim::TrajectoryBatchResult& reference,
                            const std::string& path, bool adaptive, Rng& rng) {
  std::remove(path.c_str());
  replay::CrashBatchOptions child;
  child.adaptive = adaptive;
  child.checkpoint_path = path;
  child.threads = 1 + static_cast<std::size_t>(rng.next_below(4));
  child.kill_after = 1 + static_cast<std::size_t>(rng.next_below(6));
  const int status = run_child_batch(child);
  const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  const bool finished = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!killed && !finished) {
    return "child neither finished nor died of SIGKILL (status " +
           std::to_string(status) + ")";
  }
  if (!replay::file_exists(path)) {
    return "child left no checkpoint artifact";
  }

  // Random post-crash damage: 0 = leave the file as the kill left it,
  // 1 = flip one random bit, 2 = truncate at a random offset.
  const std::uint64_t mode = rng.next_below(3);
  if (mode != 0) {
    std::string image = replay::read_file_bytes(path);
    if (image.empty()) return "artifact is empty";
    if (mode == 1) {
      image[static_cast<std::size_t>(rng.next_below(image.size()))] ^=
          static_cast<char>(1u << rng.next_below(8));
    } else {
      image.resize(static_cast<std::size_t>(rng.next_below(image.size())));
    }
    io::atomic_write_file(image, path);
  }

  // Resume at an unrelated thread count. Recovery protocol: a typed error
  // (corrupted magic/version/header) means the artifact proves nothing —
  // delete it and restart clean. Anything salvageable resumes in place.
  replay::CrashBatchOptions resume;
  resume.adaptive = adaptive;
  resume.checkpoint_path = path;
  resume.threads = 1 + static_cast<std::size_t>(rng.next_below(4));
  std::optional<sim::TrajectoryBatchResult> result;
  try {
    result.emplace(replay::run_crash_demo_batch(resume));
  } catch (const replay::ReplayException&) {
    std::remove(path.c_str());
    result.emplace(replay::run_crash_demo_batch(resume));
  }

  if (!result->deterministic_equals(reference)) {
    return "resumed values diverge from the uninterrupted reference";
  }
  if (result->values_hash() != reference.values_hash()) {
    return "values hash diverges";
  }
  if (result->replicas() != reference.replicas() ||
      result->stop_reason() != reference.stop_reason()) {
    return "replica count / stop reason diverges";
  }
  return "";
}

void run_fault_iterations(std::size_t iterations, std::uint64_t seed,
                          bool adaptive, const std::string& tag) {
  ASSERT_TRUE(replay::file_exists(replay_binary()))
      << replay_binary()
      << " not found — build the goc-replay target next to the tests";

  // The uninterrupted reference, computed in-process once.
  const std::string ref_path = artifacts_dir() + "/" + tag + "_reference.gocr";
  std::remove(ref_path.c_str());
  replay::CrashBatchOptions ref;
  ref.adaptive = adaptive;
  ref.checkpoint_path = ref_path;
  const sim::TrajectoryBatchResult reference =
      replay::run_crash_demo_batch(ref);
  std::remove(ref_path.c_str());

  Rng rng(seed);
  for (std::size_t it = 0; it < iterations; ++it) {
    const std::string path =
        artifacts_dir() + "/" + tag + "_" + std::to_string(it) + ".gocr";
    const std::string failure = fault_iteration(reference, path, adaptive, rng);
    if (failure.empty()) {
      std::remove(path.c_str());
    } else {
      ADD_FAILURE() << tag << " iteration " << it << ": " << failure
                    << " (artifact kept at " << path << ")";
    }
  }
}

// Fast suite: a handful of rounds on every CI lane.
TEST(ReplayCrash, KillCorruptResumeFixed) {
  run_fault_iterations(4, 0xC0AC1DEA, false, "fast_fixed");
}

TEST(ReplayCrash, KillCorruptResumeAdaptive) {
  run_fault_iterations(3, 0xADA9717E, true, "fast_adaptive");
}

// Slow-labeled soak: the 100-iteration acceptance bar.
TEST(ReplayCrashSlow, HundredIterationSoak) {
  run_fault_iterations(60, 0x50AC50AC, false, "soak_fixed");
  run_fault_iterations(40, 0x50AC50AD, true, "soak_adaptive");
}

}  // namespace
}  // namespace goc
