#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/moves.hpp"
#include "potential/exact_potential.hpp"
#include "potential/list_potential.hpp"
#include "potential/observations.hpp"
#include "potential/symmetric_potential.hpp"

namespace goc {
namespace {

// ------------------------------------------------------------- PotentialKey

TEST(PotentialKey, SortsByRpuThenCoin) {
  Game g(System::from_integer_powers({4, 2, 1}, 3),
         RewardFunction::from_integers({8, 8, 5}));
  // c0 gets {p0} → RPU 2; c1 gets {p1} → RPU 4; c2 gets {p2} → RPU 5.
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1), CoinId(2)});
  const PotentialKey key = potential_key(g, s);
  ASSERT_EQ(key.entries().size(), 3u);
  EXPECT_EQ(key.coin_at(0), CoinId(0));
  EXPECT_EQ(key.coin_at(1), CoinId(1));
  EXPECT_EQ(key.coin_at(2), CoinId(2));
}

TEST(PotentialKey, EmptyCoinSortsLast) {
  Game g(System::from_integer_powers({4, 2}, 3),
         RewardFunction::from_integers({8, 8, 1000}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  const PotentialKey key = potential_key(g, s);
  EXPECT_EQ(key.coin_at(2), CoinId(2));
  EXPECT_TRUE(key.entries()[2].first.is_infinite());
}

TEST(PotentialKey, TieBreaksOnCoinId) {
  Game g(System::from_integer_powers({2, 2}, 2),
         RewardFunction::from_integers({4, 4}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  const PotentialKey key = potential_key(g, s);
  EXPECT_EQ(key.coin_at(0), CoinId(0));  // equal RPUs: lower id first
  EXPECT_EQ(key.coin_at(1), CoinId(1));
}

TEST(PotentialKey, ComparesLexicographically) {
  const Game g = proposition1_game();
  const Configuration shared(g.system_ptr(), {CoinId(0), CoinId(0)});
  const Configuration split(g.system_ptr(), {CoinId(0), CoinId(1)});
  // Moving p1 out of the shared coin is a better response, so the key
  // strictly increases (Theorem 1).
  EXPECT_LT(potential_key(g, shared), potential_key(g, split));
  EXPECT_EQ(compare_potential(g, shared, split), std::strong_ordering::less);
}

// --------------------------------------------------------------- Theorem 1

/// Property sweep: along any better-response trajectory, the potential key
/// strictly ascends and Observations 1–2 hold at every step.
class Theorem1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Property, AscentOnRandomTrajectories) {
  Rng rng(GetParam());
  GameSpec spec;
  spec.num_miners = 2 + static_cast<std::size_t>(rng.next_below(10));
  spec.num_coins = 2 + static_cast<std::size_t>(rng.next_below(4));
  spec.power_lo = 1;
  spec.power_hi = 50;
  spec.reward_lo = 10;
  spec.reward_hi = 500;
  const Game g = random_game(spec, rng);
  Configuration s = random_configuration(g, rng);

  PotentialKey prev = potential_key(g, s);
  std::vector<Configuration> trajectory{s};
  for (int step = 0; step < 500; ++step) {
    const auto moves = all_better_response_moves(g, s);
    if (moves.empty()) break;
    const Move& m = moves[rng.pick_index(moves)];
    ASSERT_TRUE(observation1_holds(g, s, m)) << m.to_string();
    ASSERT_TRUE(observation2_holds(g, s, m)) << m.to_string();
    s.move(m.miner, m.to);
    trajectory.push_back(s);
    PotentialKey cur = potential_key(g, s);
    ASSERT_LT(prev, cur) << "potential failed to ascend at step " << step;
    prev = std::move(cur);
  }
  EXPECT_TRUE(is_equilibrium(g, s)) << "did not converge within 500 steps";
  EXPECT_EQ(first_non_ascending_step(g, trajectory), trajectory.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Theorem1, FirstNonAscendingDetectsViolations) {
  const Game g = proposition1_game();
  const Configuration shared(g.system_ptr(), {CoinId(0), CoinId(0)});
  const Configuration split(g.system_ptr(), {CoinId(0), CoinId(1)});
  // split → shared is a payoff *decrease*: flagged at index 1.
  EXPECT_EQ(first_non_ascending_step(g, {split, shared}), 1u);
  EXPECT_EQ(first_non_ascending_step(g, {shared, split}), 2u);
  EXPECT_EQ(first_non_ascending_step(g, {shared}), 1u);
  EXPECT_EQ(first_non_ascending_step(g, {}), 0u);
}

// ----------------------------------------------------------- Proposition 1

TEST(Proposition1, PaperCycleSumIsTwoThirds) {
  const Game g = proposition1_game();
  const Configuration s1(g.system_ptr(), {CoinId(0), CoinId(0)});
  // p moves c0→c1, q moves c0→c1, p back, q back: the paper's 4-cycle.
  const Rational sum =
      four_cycle_sum(g, s1, MinerId(0), CoinId(1), MinerId(1), CoinId(1));
  EXPECT_EQ(sum.abs(), Rational(2, 3));
}

TEST(Proposition1, WitnessFound) {
  const auto witness = find_nonzero_four_cycle(proposition1_game());
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->cycle_sum.is_zero());
  EXPECT_NE(witness->p, witness->q);
}

TEST(Proposition1, NoExactPotentialForUnequalPowers) {
  EXPECT_FALSE(has_exact_potential(proposition1_game()));
}

TEST(Proposition1, EqualPowersYieldExactPotential) {
  // With identical miners the game is a congestion game, which *does* have
  // an exact potential — the obstruction is specifically unequal powers.
  Game g(System::from_integer_powers({1, 1}, 2),
         RewardFunction::from_integers({1, 1}));
  EXPECT_TRUE(has_exact_potential(g));
  EXPECT_FALSE(find_nonzero_four_cycle(g).has_value());
}

TEST(Proposition1, RandomUnequalGamesLackExactPotential) {
  Rng rng(99);
  int found = 0;
  for (int trial = 0; trial < 10; ++trial) {
    GameSpec spec;
    spec.num_miners = 3;
    spec.num_coins = 2;
    spec.power_lo = 1;
    spec.power_hi = 20;
    spec.distinct_powers = true;
    const Game g = random_game(spec, rng);
    if (find_nonzero_four_cycle(g).has_value()) ++found;
  }
  // Distinct powers make the obstruction generic.
  EXPECT_EQ(found, 10);
}

TEST(Proposition1, FourCycleRequiresDistinctMiners) {
  const Game g = proposition1_game();
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  EXPECT_THROW(
      four_cycle_sum(g, s, MinerId(0), CoinId(1), MinerId(0), CoinId(1)),
      std::invalid_argument);
}

// ------------------------------------------------------------- Appendix B

class SymmetricPotentialProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymmetricPotentialProperty, StrictDecreaseOnBetterResponses) {
  Rng rng(GetParam());
  GameSpec spec;
  spec.num_miners = 2 + static_cast<std::size_t>(rng.next_below(8));
  spec.num_coins = 2 + static_cast<std::size_t>(rng.next_below(4));
  spec.reward_shape = RewardShape::kEqual;
  spec.power_lo = 1;
  spec.power_hi = 30;
  const Game g = random_game(spec, rng);
  ASSERT_TRUE(g.rewards().is_symmetric());
  Configuration s = random_configuration(g, rng);
  SymmetricPotential prev = symmetric_potential(g, s);
  for (int step = 0; step < 300; ++step) {
    const auto moves = all_better_response_moves(g, s);
    if (moves.empty()) break;
    const Move& m = moves[rng.pick_index(moves)];
    s.move(m.miner, m.to);
    const SymmetricPotential cur = symmetric_potential(g, s);
    ASSERT_LT(cur, prev) << "symmetric potential failed to decrease";
    prev = cur;
  }
  EXPECT_TRUE(is_equilibrium(g, s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetricPotentialProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

TEST(SymmetricPotential, RequiresSymmetricGame) {
  Game g(System::from_integer_powers({1, 2}, 2),
         RewardFunction::from_integers({1, 2}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_THROW(symmetric_potential(g, s), std::invalid_argument);
}

TEST(SymmetricPotential, MatchesPaperFormulaWhenAllOccupied) {
  Game g(System::from_integer_powers({4, 2, 2}, 2),
         RewardFunction::from_integers({6, 6}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1), CoinId(1)});
  const SymmetricPotential p = symmetric_potential(g, s);
  EXPECT_EQ(p.empty_coins, 0u);
  EXPECT_EQ(p.occupied_inverse_mass_sum, Rational(1, 4) + Rational(1, 4));
}

TEST(SymmetricPotential, SoloMinerNeverMovesInSymmetricGame) {
  // A miner alone on a coin cannot improve in the symmetric case — the
  // fact the empty-coin refinement relies on (DESIGN.md §2).
  Game g(System::from_integer_powers({3, 1}, 3),
         RewardFunction::from_integers({5, 5, 5}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  EXPECT_TRUE(is_stable(g, s, MinerId(0)));
  EXPECT_TRUE(is_stable(g, s, MinerId(1)));
}

}  // namespace
}  // namespace goc
