#include <gtest/gtest.h>

#include "core/configuration.hpp"
#include "core/enumerate.hpp"
#include "core/game.hpp"
#include "core/generators.hpp"
#include "core/moves.hpp"
#include "core/reward.hpp"
#include "core/system.hpp"

namespace goc {
namespace {

Game prop1_game() {
  // The worked example from Proposition 1: m = (2, 1), F ≡ 1, two coins.
  return Game(System::from_integer_powers({2, 1}, 2),
              RewardFunction::from_integers({1, 1}));
}

// ---------------------------------------------------------------- System

TEST(System, BasicAccessors) {
  System s = System::from_integer_powers({5, 3, 1}, 2);
  EXPECT_EQ(s.num_miners(), 3u);
  EXPECT_EQ(s.num_coins(), 2u);
  EXPECT_EQ(s.power(MinerId(0)), Rational(5));
  EXPECT_EQ(s.total_power(), Rational(9));
  EXPECT_EQ(s.min_power(), Rational(1));
  EXPECT_EQ(s.max_power(), Rational(5));
}

TEST(System, RejectsBadInput) {
  EXPECT_THROW(System({}, 2), std::invalid_argument);
  EXPECT_THROW(System::from_integer_powers({1}, 0), std::invalid_argument);
  EXPECT_THROW(System::from_integer_powers({0}, 1), std::invalid_argument);
  EXPECT_THROW(System::from_integer_powers({-2}, 1), std::invalid_argument);
  System s = System::from_integer_powers({1}, 1);
  EXPECT_THROW(s.power(MinerId(5)), std::invalid_argument);
}

TEST(System, PowerOrderPredicates) {
  EXPECT_TRUE(System::from_integer_powers({5, 3, 1}, 2).strictly_decreasing_powers());
  EXPECT_FALSE(System::from_integer_powers({5, 5, 1}, 2).strictly_decreasing_powers());
  EXPECT_TRUE(System::from_integer_powers({5, 5, 1}, 2).non_increasing_powers());
  EXPECT_FALSE(System::from_integer_powers({1, 5}, 2).non_increasing_powers());
}

TEST(System, SortedByPowerDesc) {
  System s = System::from_integer_powers({1, 5, 3}, 2);
  std::vector<MinerId> perm;
  System sorted = s.sorted_by_power_desc(&perm);
  EXPECT_TRUE(sorted.non_increasing_powers());
  ASSERT_EQ(perm.size(), 3u);
  EXPECT_EQ(perm[0], MinerId(1));  // power 5
  EXPECT_EQ(perm[1], MinerId(2));  // power 3
  EXPECT_EQ(perm[2], MinerId(0));  // power 1
  EXPECT_EQ(sorted.power(MinerId(0)), Rational(5));
}

// ---------------------------------------------------------------- RewardFunction

TEST(RewardFunction, BasicAccessors) {
  RewardFunction f = RewardFunction::from_integers({10, 20, 5});
  EXPECT_EQ(f.num_coins(), 3u);
  EXPECT_EQ(f(CoinId(1)), Rational(20));
  EXPECT_EQ(f.max_reward(), Rational(20));
  EXPECT_EQ(f.min_reward(), Rational(5));
  EXPECT_EQ(f.total_reward(), Rational(35));
  EXPECT_FALSE(f.is_symmetric());
  EXPECT_TRUE(RewardFunction::constant(3, Rational(7)).is_symmetric());
}

TEST(RewardFunction, RejectsNonPositive) {
  EXPECT_THROW(RewardFunction::from_integers({1, 0}), std::invalid_argument);
  EXPECT_THROW(RewardFunction::from_integers({-1}), std::invalid_argument);
  EXPECT_THROW(RewardFunction({}), std::invalid_argument);
}

TEST(RewardFunction, WithReplacesOneCoin) {
  RewardFunction f = RewardFunction::from_integers({10, 20});
  RewardFunction g = f.with(CoinId(0), Rational(50));
  EXPECT_EQ(g(CoinId(0)), Rational(50));
  EXPECT_EQ(g(CoinId(1)), Rational(20));
  EXPECT_EQ(f(CoinId(0)), Rational(10));  // original untouched
}

TEST(RewardFunction, DominanceAndOverpayment) {
  RewardFunction base = RewardFunction::from_integers({10, 20});
  RewardFunction high = RewardFunction::from_integers({15, 20});
  RewardFunction low = RewardFunction::from_integers({9, 25});
  EXPECT_TRUE(high.dominates(base));
  EXPECT_FALSE(low.dominates(base));
  EXPECT_EQ(high.overpayment(base), Rational(5));
  EXPECT_THROW(low.overpayment(base), std::invalid_argument);
}

// ---------------------------------------------------------------- Configuration

TEST(Configuration, MassAndPopulationTracking) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3, 1}, 3));
  Configuration s(system, {CoinId(0), CoinId(0), CoinId(2)});
  EXPECT_EQ(s.mass(CoinId(0)), Rational(8));
  EXPECT_EQ(s.mass(CoinId(1)), Rational(0));
  EXPECT_EQ(s.mass(CoinId(2)), Rational(1));
  EXPECT_EQ(s.population(CoinId(0)), 2u);
  EXPECT_TRUE(s.empty_coin(CoinId(1)));
  EXPECT_EQ(s.occupied_coins(), 2u);
}

TEST(Configuration, MoveUpdatesIncrementally) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3, 1}, 3));
  Configuration s(system, {CoinId(0), CoinId(0), CoinId(2)});
  s.move(MinerId(0), CoinId(1));
  EXPECT_EQ(s.of(MinerId(0)), CoinId(1));
  EXPECT_EQ(s.mass(CoinId(0)), Rational(3));
  EXPECT_EQ(s.mass(CoinId(1)), Rational(5));
  EXPECT_EQ(s.occupied_coins(), 3u);
  // Move back and verify full restoration.
  s.move(MinerId(0), CoinId(0));
  EXPECT_EQ(s.mass(CoinId(0)), Rational(8));
  EXPECT_TRUE(s.empty_coin(CoinId(1)));
}

TEST(Configuration, MoveToSameCoinIsNoop) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3}, 2));
  Configuration s(system, {CoinId(0), CoinId(1)});
  s.move(MinerId(0), CoinId(0));
  EXPECT_EQ(s.mass(CoinId(0)), Rational(5));
  EXPECT_EQ(s.population(CoinId(0)), 1u);
}

TEST(Configuration, MembersInIdOrder) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3, 1, 2}, 2));
  Configuration s(system, {CoinId(1), CoinId(0), CoinId(1), CoinId(1)});
  const auto members = s.members(CoinId(1));
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], MinerId(0));
  EXPECT_EQ(members[1], MinerId(2));
  EXPECT_EQ(members[2], MinerId(3));
}

TEST(Configuration, WithMoveLeavesOriginal) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3}, 2));
  Configuration s(system, {CoinId(0), CoinId(0)});
  Configuration t = s.with_move(MinerId(1), CoinId(1));
  EXPECT_EQ(s.of(MinerId(1)), CoinId(0));
  EXPECT_EQ(t.of(MinerId(1)), CoinId(1));
}

TEST(Configuration, EqualityAndHash) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3}, 2));
  Configuration a(system, {CoinId(0), CoinId(1)});
  Configuration b(system, {CoinId(0), CoinId(1)});
  Configuration c(system, {CoinId(1), CoinId(0)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Configuration, RejectsBadInput) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({5, 3}, 2));
  EXPECT_THROW(Configuration(system, {CoinId(0)}), std::invalid_argument);
  EXPECT_THROW(Configuration(system, {CoinId(0), CoinId(7)}),
               std::invalid_argument);
  EXPECT_THROW(Configuration(nullptr, {}), std::invalid_argument);
}

// ---------------------------------------------------------------- Game payoffs

TEST(Game, Proposition1WorkedExample) {
  // The four configurations and payoffs from the proof of Proposition 1.
  const Game g = prop1_game();
  const auto sys = g.system_ptr();
  const Configuration s1(sys, {CoinId(0), CoinId(0)});
  const Configuration s2(sys, {CoinId(0), CoinId(1)});
  const Configuration s3(sys, {CoinId(1), CoinId(1)});
  const Configuration s4(sys, {CoinId(1), CoinId(0)});

  EXPECT_EQ(g.payoff(s1, MinerId(0)), Rational(2, 3));
  EXPECT_EQ(g.payoff(s1, MinerId(1)), Rational(1, 3));
  EXPECT_EQ(g.payoff(s2, MinerId(0)), Rational(1));
  EXPECT_EQ(g.payoff(s2, MinerId(1)), Rational(1));
  EXPECT_EQ(g.payoff(s3, MinerId(0)), Rational(2, 3));
  EXPECT_EQ(g.payoff(s3, MinerId(1)), Rational(1, 3));
  EXPECT_EQ(g.payoff(s4, MinerId(0)), Rational(1));
  EXPECT_EQ(g.payoff(s4, MinerId(1)), Rational(1));
}

TEST(Game, RpuIncludingEmptyCoin) {
  const Game g = prop1_game();
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  EXPECT_EQ(g.rpu(s, CoinId(0)).finite_value(), Rational(1, 3));
  EXPECT_TRUE(g.rpu(s, CoinId(1)).is_infinite());
}

TEST(Game, PayoffIfMove) {
  const Game g = prop1_game();
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  // p1 moving alone to c1 earns the whole reward.
  EXPECT_EQ(g.payoff_if_move(s, MinerId(1), CoinId(1)), Rational(1));
  // Staying is the current payoff.
  EXPECT_EQ(g.payoff_if_move(s, MinerId(1), CoinId(0)), Rational(1, 3));
}

TEST(Game, RejectsArityMismatch) {
  EXPECT_THROW(Game(System::from_integer_powers({1}, 2),
                    RewardFunction::from_integers({1})),
               std::invalid_argument);
}

TEST(Game, WithRewardsSharesSystem) {
  const Game g = prop1_game();
  const Game g2 = g.with_rewards(RewardFunction::from_integers({5, 1}));
  EXPECT_EQ(g.system_ptr().get(), g2.system_ptr().get());
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  EXPECT_EQ(g2.payoff(s, MinerId(0)), Rational(10, 3));
}

// ---------------------------------------------------------------- moves

TEST(Moves, BetterResponseDetection) {
  const Game g = prop1_game();
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  // Both miners gain by fleeing the shared coin.
  EXPECT_TRUE(is_better_response(g, s, MinerId(0), CoinId(1)));
  EXPECT_TRUE(is_better_response(g, s, MinerId(1), CoinId(1)));
  EXPECT_FALSE(is_better_response(g, s, MinerId(0), CoinId(0)));
}

TEST(Moves, GainValues) {
  const Game g = prop1_game();
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  EXPECT_EQ(move_gain(g, s, MinerId(0), CoinId(1)), Rational(1, 3));
  EXPECT_EQ(move_gain(g, s, MinerId(1), CoinId(1)), Rational(2, 3));
}

TEST(Moves, EquilibriumDetection) {
  const Game g = prop1_game();
  const Configuration split(g.system_ptr(), {CoinId(0), CoinId(1)});
  const Configuration shared(g.system_ptr(), {CoinId(0), CoinId(0)});
  EXPECT_TRUE(is_equilibrium(g, split));
  EXPECT_FALSE(is_equilibrium(g, shared));
  EXPECT_TRUE(unstable_miners(g, split).empty());
  EXPECT_EQ(unstable_miners(g, shared).size(), 2u);
}

TEST(Moves, BestResponsePicksMaxGain) {
  // Three coins: the lone miner at a poor coin should pick the heaviest.
  Game g(System::from_integer_powers({1, 4}, 3),
         RewardFunction::from_integers({1, 9, 5}));
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(1)});
  // For miner 0: stay=1; c1 → 9·1/5; c2 → 5. Best is c2 (5 > 9/5 > 1).
  const auto br = best_response(g, s, MinerId(0));
  ASSERT_TRUE(br.has_value());
  EXPECT_EQ(*br, CoinId(2));
}

TEST(Moves, AllBetterResponseMovesComplete) {
  const Game g = prop1_game();
  const Configuration s(g.system_ptr(), {CoinId(0), CoinId(0)});
  const auto moves = all_better_response_moves(g, s);
  ASSERT_EQ(moves.size(), 2u);
  for (const Move& m : moves) {
    EXPECT_EQ(m.from, CoinId(0));
    EXPECT_EQ(m.to, CoinId(1));
    EXPECT_TRUE(m.gain.is_positive());
  }
}

// ---------------------------------------------------------------- enumerate

TEST(Enumerate, CountsAndVisitsAll) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({2, 1}, 3));
  EXPECT_EQ(configuration_count(*system), 9u);
  std::size_t visited = 0;
  for_each_configuration(system, 100, [&](const Configuration&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 9u);
}

TEST(Enumerate, EarlyStop) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({2, 1}, 3));
  std::size_t visited = 0;
  for_each_configuration(system, 100, [&](const Configuration&) {
    ++visited;
    return visited < 4;
  });
  EXPECT_EQ(visited, 4u);
}

TEST(Enumerate, VisitsDistinctConfigurations) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers({2, 1, 1}, 2));
  std::vector<std::vector<CoinId>> seen;
  for_each_configuration(system, 100, [&](const Configuration& s) {
    seen.push_back(s.assignment());
    return true;
  });
  EXPECT_EQ(seen.size(), 8u);
  std::sort(seen.begin(), seen.end(),
            [](const auto& a, const auto& b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                  b.end());
            });
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Enumerate, RefusesHugeSpaces) {
  auto system = std::make_shared<const System>(
      System::from_integer_powers(std::vector<std::int64_t>(40, 1), 10));
  EXPECT_FALSE(configuration_count(*system).has_value());
  EXPECT_THROW(
      for_each_configuration(system, 1000, [](const Configuration&) { return true; }),
      std::invalid_argument);
}

// ---------------------------------------------------------------- generators

TEST(Generators, RespectsSpecShape) {
  GameSpec spec;
  spec.num_miners = 20;
  spec.num_coins = 4;
  spec.power_lo = 10;
  spec.power_hi = 99;
  spec.reward_lo = 5;
  spec.reward_hi = 50;
  Rng rng(1);
  const Game g = random_game(spec, rng);
  EXPECT_EQ(g.num_miners(), 20u);
  EXPECT_EQ(g.num_coins(), 4u);
  for (const auto& m : g.system().powers()) {
    EXPECT_GE(m, Rational(10));
    EXPECT_LE(m, Rational(99));
  }
  for (const auto& r : g.rewards().values()) {
    EXPECT_GE(r, Rational(5));
    EXPECT_LE(r, Rational(50));
  }
}

TEST(Generators, DistinctSortedPowers) {
  GameSpec spec;
  spec.num_miners = 30;
  spec.num_coins = 3;
  spec.power_lo = 1;
  spec.power_hi = 5;  // heavy collisions guaranteed
  spec.distinct_powers = true;
  spec.sort_desc = true;
  Rng rng(2);
  const Game g = random_game(spec, rng);
  EXPECT_TRUE(g.system().strictly_decreasing_powers());
}

TEST(Generators, DeterministicForSeed) {
  GameSpec spec;
  spec.num_miners = 10;
  Rng rng1(3), rng2(3);
  const Game a = random_game(spec, rng1);
  const Game b = random_game(spec, rng2);
  EXPECT_EQ(a.system().powers(), b.system().powers());
  EXPECT_EQ(a.rewards().values(), b.rewards().values());
}

TEST(Generators, ZipfSkew) {
  GameSpec spec;
  spec.num_miners = 10;
  spec.power_shape = PowerShape::kZipf;
  spec.power_hi = 1000;
  spec.zipf_s = 1.0;
  Rng rng(4);
  const Game g = random_game(spec, rng);
  EXPECT_EQ(g.system().powers()[0], Rational(1000));
  EXPECT_GT(g.system().powers()[0], g.system().powers()[9]);
}

TEST(Generators, WithDistinctPowersPreservesOrder) {
  System base = System::from_integer_powers({5, 5, 3, 3, 3, 1}, 2);
  System distinct = with_distinct_powers(base);
  EXPECT_TRUE(distinct.strictly_decreasing_powers());
  // m_i ↦ m_i·(n+1) + (n−i) with n = 6: integers in, integers out, and the
  // power *ratios* move by at most O(n/scale).
  const std::int64_t n = 6;
  for (std::size_t i = 0; i < base.num_miners(); ++i) {
    EXPECT_EQ(distinct.powers()[i],
              base.powers()[i] * Rational(n + 1) +
                  Rational(n - static_cast<std::int64_t>(i)));
    EXPECT_TRUE(distinct.powers()[i].is_integer());
  }
}

TEST(Generators, WithDistinctPowersRejectsFineGaps) {
  // A nonzero gap of 1/1000 is finer than n/scale for the default scale.
  System base({Rational(1), Rational(1) + Rational(1, 1000)}, 2);
  EXPECT_THROW(with_distinct_powers(base), std::invalid_argument);
  // A big enough scale accepts it.
  System ok = with_distinct_powers(base, 1 << 20);
  EXPECT_EQ(ok.num_miners(), 2u);
}

TEST(Generators, RandomConfigurationValid) {
  GameSpec spec;
  spec.num_miners = 12;
  spec.num_coins = 5;
  Rng rng(5);
  const Game g = random_game(spec, rng);
  const Configuration s = random_configuration(g, rng);
  EXPECT_EQ(s.num_miners(), 12u);
  Rational total(0);
  for (std::uint32_t c = 0; c < 5; ++c) total += s.mass(CoinId(c));
  EXPECT_EQ(total, g.system().total_power());
}

}  // namespace
}  // namespace goc
