#include "engine/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace goc::engine {

namespace {

/// Handles interned once per process; every hot-path record below is a
/// single relaxed atomic add through these references.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Gauge& queue_depth;
  obs::Histogram& task_wait_ns;
  obs::Histogram& task_run_ns;
  obs::Counter& parallel_for_calls;
  obs::Counter& parallel_for_items;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::instance().counter("engine.pool.tasks"),
        obs::Registry::instance().gauge("engine.pool.queue_depth"),
        obs::Registry::instance().histogram("engine.pool.task_wait_ns"),
        obs::Registry::instance().histogram("engine.pool.task_run_ns"),
        obs::Registry::instance().counter("engine.pool.parallel_for_calls"),
        obs::Registry::instance().counter("engine.pool.parallel_for_items"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.tasks.add();
  metrics.queue_depth.add(1);
  Task task;
  task.fn = std::move(fn);
  task.enqueued_ns = obs::enabled() ? obs::now_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::run_inline_task(const std::function<void()>& fn) {
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.tasks.add();
  obs::Span run(metrics.task_run_ns);
  fn();
}

void ThreadPool::worker_loop() {
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    metrics.queue_depth.sub(1);
    if (task.enqueued_ns != 0) {
      metrics.task_wait_ns.record(obs::now_ns() - task.enqueued_ns);
    }
    obs::Span run(metrics.task_run_ns);
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.parallel_for_calls.add();
  metrics.parallel_for_items.add(count);
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared cursor: every lane (workers + the calling thread) pulls the next
  // unclaimed index until the range is exhausted.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  const auto drain = [cursor, count, &fn, first_error, error, error_mutex] {
    for (;;) {
      const std::size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (first_error->load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> lanes;
  lanes.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    lanes.push_back(submit(drain));
  }
  drain();  // the calling thread is a lane too
  for (auto& lane : lanes) lane.get();

  if (first_error->load()) std::rethrow_exception(*error);
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks <= 1) {
    fn(0, count);
    return;
  }
  const auto run_chunk = [&](std::size_t c) {
    fn(c * grain, std::min(count, (c + 1) * grain));
  };
  if (workers_.empty()) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  parallel_for(chunks, run_chunk);
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace goc::engine
