#include "engine/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace goc::engine {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared cursor: every lane (workers + the calling thread) pulls the next
  // unclaimed index until the range is exhausted.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  const auto drain = [cursor, count, &fn, first_error, error, error_mutex] {
    for (;;) {
      const std::size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (first_error->load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> lanes;
  lanes.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    lanes.push_back(submit(drain));
  }
  drain();  // the calling thread is a lane too
  for (auto& lane : lanes) lane.get();

  if (first_error->load()) std::rethrow_exception(*error);
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks <= 1) {
    fn(0, count);
    return;
  }
  const auto run_chunk = [&](std::size_t c) {
    fn(c * grain, std::min(count, (c + 1) * grain));
  };
  if (workers_.empty()) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  parallel_for(chunks, run_chunk);
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace goc::engine
