#include "engine/sweep.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "engine/thread_pool.hpp"
#include "equilibrium/security.hpp"
#include "equilibrium/welfare.hpp"
#include "io/serialize.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace goc::engine {

namespace {

using clock_type = std::chrono::steady_clock;

double elapsed_ms(clock_type::time_point since) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - since)
      .count();
}

/// Grid-point identity of a task (everything but the trial axis).
bool same_point(const SweepTask& a, const SweepTask& b) {
  return a.game_spec.num_miners == b.game_spec.num_miners &&
         a.game_spec.num_coins == b.game_spec.num_coins &&
         a.game_spec.power_shape == b.game_spec.power_shape &&
         a.game_spec.reward_shape == b.game_spec.reward_shape &&
         a.scheduler == b.scheduler;
}

}  // namespace

std::uint64_t task_seed(std::uint64_t root_seed, std::size_t grid_index,
                        std::uint64_t stream) {
  // splitmix64 over a state that separates root, index and stream: distinct
  // (index, stream) pairs land in distinct, well-mixed states.
  std::uint64_t state = root_seed;
  state ^= splitmix64(state) + 0x9E3779B97F4A7C15ULL * (grid_index + 1);
  state += 0xBF58476D1CE4E5B9ULL * (stream + 1);
  return splitmix64(state);
}

std::size_t SweepSpec::grid_size() const {
  const auto axis = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  return axis(miner_counts.size()) * axis(coin_counts.size()) *
         axis(power_shapes.size()) * axis(reward_shapes.size()) *
         axis(scheduler_kinds.size()) * trials;
}

std::vector<SweepTask> SweepSpec::expand() const {
  GOC_CHECK_ARG(trials >= 1, "SweepSpec.trials must be at least 1");
  const std::vector<std::size_t> miners =
      miner_counts.empty() ? std::vector<std::size_t>{base.num_miners}
                           : miner_counts;
  const std::vector<std::size_t> coins =
      coin_counts.empty() ? std::vector<std::size_t>{base.num_coins}
                          : coin_counts;
  const std::vector<PowerShape> powers =
      power_shapes.empty() ? std::vector<PowerShape>{base.power_shape}
                           : power_shapes;
  const std::vector<RewardShape> rewards =
      reward_shapes.empty() ? std::vector<RewardShape>{base.reward_shape}
                            : reward_shapes;
  const std::vector<SchedulerKind> kinds =
      scheduler_kinds.empty()
          ? std::vector<SchedulerKind>{SchedulerKind::kRandomMove}
          : scheduler_kinds;

  std::vector<SweepTask> tasks;
  tasks.reserve(grid_size());
  std::size_t grid_index = 0;
  for (const std::size_t n : miners) {
    for (const std::size_t c : coins) {
      for (const PowerShape power : powers) {
        for (const RewardShape reward : rewards) {
          for (const SchedulerKind kind : kinds) {
            for (std::size_t t = 0; t < trials; ++t, ++grid_index) {
              SweepTask task;
              task.grid_index = grid_index;
              task.game_spec = base;
              task.game_spec.num_miners = n;
              task.game_spec.num_coins = c;
              task.game_spec.power_shape = power;
              task.game_spec.reward_shape = reward;
              task.scheduler = kind;
              task.trial = t;
              task.game_seed = task_seed(root_seed, grid_index, 0);
              task.scheduler_seed = task_seed(root_seed, grid_index, 1);
              if (filter && !filter(task)) continue;
              tasks.push_back(std::move(task));
            }
          }
        }
      }
    }
  }
  return tasks;
}

bool SweepRecord::deterministic_equals(const SweepRecord& other) const {
  return task.grid_index == other.task.grid_index &&
         task.game_seed == other.task.game_seed &&
         task.scheduler_seed == other.task.scheduler_seed &&
         steps == other.steps && converged == other.converged &&
         move_hash == other.move_hash &&
         welfare_efficiency == other.welfare_efficiency &&
         rpu_fairness == other.rpu_fairness &&
         max_domination_share == other.max_domination_share &&
         majority_controlled == other.majority_controlled &&
         occupied_coins == other.occupied_coins;
}

SweepResult::SweepResult(std::uint64_t root_seed, std::size_t threads,
                         std::vector<SweepRecord> records)
    : root_seed_(root_seed), threads_(threads), records_(std::move(records)) {
  // Records arrive in grid order with trial innermost, so each grid point's
  // surviving trials are consecutive.
  const SweepRecord* group_head = nullptr;
  for (const SweepRecord& record : records_) {
    if (group_head == nullptr || !same_point(record.task, group_head->task)) {
      group_head = &record;
      SweepPointStats point;
      point.miners = record.task.game_spec.num_miners;
      point.coins = record.task.game_spec.num_coins;
      point.power_shape = record.task.game_spec.power_shape;
      point.reward_shape = record.task.game_spec.reward_shape;
      point.scheduler = record.task.scheduler;
      points_.push_back(point);
    }
    SweepPointStats& point = points_.back();
    ++point.trials;
    if (record.converged) ++point.converged;
    point.steps.add(static_cast<double>(record.steps));
    point.welfare_efficiency.add(record.welfare_efficiency);
    point.rpu_fairness.add(record.rpu_fairness);
    point.max_domination_share.add(record.max_domination_share);
    point.wall_ms.add(record.wall_ms);
  }
}

bool SweepResult::all_converged() const noexcept {
  for (const SweepRecord& record : records_) {
    if (!record.converged) return false;
  }
  return true;
}

Table SweepResult::to_table() const {
  Table table({"miners", "coins", "powers", "rewards", "scheduler", "trials",
               "converged%", "steps_mean", "steps_p95", "steps_max", "steps/n",
               "welfare_mean", "fairness_mean", "dom_share_mean", "ms_mean"});
  for (const SweepPointStats& point : points_) {
    table.row() << std::uint64_t(point.miners) << std::uint64_t(point.coins)
                << power_shape_name(point.power_shape)
                << reward_shape_name(point.reward_shape)
                << scheduler_kind_name(point.scheduler)
                << std::uint64_t(point.trials)
                << fmt_double(100.0 * static_cast<double>(point.converged) /
                                  static_cast<double>(point.trials),
                              1)
                << fmt_double(point.steps.mean(), 1)
                << fmt_double(point.steps.percentile(95), 1)
                << fmt_double(point.steps.max(), 0)
                << fmt_double(point.steps.mean() /
                                  static_cast<double>(point.miners),
                              2)
                << fmt_double(point.welfare_efficiency.mean(), 4)
                << fmt_double(point.rpu_fairness.mean(), 4)
                << fmt_double(point.max_domination_share.mean(), 4)
                << fmt_double(point.wall_ms.mean(), 3);
  }
  return table;
}

std::string SweepResult::to_csv(bool include_timing) const {
  // Streamed straight into the output buffer: no intermediate Table (a
  // vector-of-string-vectors materializing ~17 cells per record), and the
  // label columns come from the interned shape/scheduler names. Cells are
  // numbers and interned identifiers, so no RFC-4180 quoting can trigger.
  std::string out;
  out.reserve(192 * (records_.size() + 1));
  out +=
      "grid_index,trial,miners,coins,powers,rewards,scheduler,game_seed,"
      "scheduler_seed,steps,converged,move_hash,welfare_efficiency,"
      "rpu_fairness,dom_share,majority_controlled,occupied_coins";
  if (include_timing) out += ",wall_ms";
  out += "\n";
  const auto add = [&out](const std::string& cell) {
    out += cell;
    out += ',';
  };
  for (const SweepRecord& r : records_) {
    add(std::to_string(r.task.grid_index));
    add(std::to_string(r.task.trial));
    add(std::to_string(r.task.game_spec.num_miners));
    add(std::to_string(r.task.game_spec.num_coins));
    add(power_shape_name(r.task.game_spec.power_shape));
    add(reward_shape_name(r.task.game_spec.reward_shape));
    add(scheduler_kind_name(r.task.scheduler));
    add(std::to_string(r.task.game_seed));
    add(std::to_string(r.task.scheduler_seed));
    add(std::to_string(r.steps));
    add(r.converged ? "1" : "0");
    add(std::to_string(r.move_hash));
    add(fmt_double(r.welfare_efficiency, 6));
    add(fmt_double(r.rpu_fairness, 6));
    add(fmt_double(r.max_domination_share, 6));
    add(std::to_string(r.majority_controlled));
    out += std::to_string(r.occupied_coins);
    if (include_timing) {
      out += ',';
      out += fmt_double(r.wall_ms, 3);
    }
    out += "\n";
  }
  return out;
}

std::string SweepResult::to_json(bool include_timing) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"root_seed\": " << root_seed_ << ",\n";
  os << "  \"tasks\": " << records_.size() << ",\n";
  if (include_timing) {
    // Run-environment metadata: excluded alongside timing so that two runs
    // of the same spec at different thread counts emit identical bytes.
    os << "  \"threads\": " << threads_ << ",\n";
    os << "  \"total_wall_ms\": " << fmt_double(total_wall_ms_, 3) << ",\n";
  }
  os << "  \"records\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const SweepRecord& r = records_[i];
    os << "    {"
       << "\"grid_index\": " << r.task.grid_index
       << ", \"trial\": " << r.task.trial
       << ", \"miners\": " << r.task.game_spec.num_miners
       << ", \"coins\": " << r.task.game_spec.num_coins << ", \"powers\": \""
       << io::json_escape(power_shape_name(r.task.game_spec.power_shape))
       << "\", \"rewards\": \""
       << io::json_escape(reward_shape_name(r.task.game_spec.reward_shape))
       << "\", \"scheduler\": \""
       << io::json_escape(scheduler_kind_name(r.task.scheduler))
       << "\", \"game_seed\": " << r.task.game_seed
       << ", \"scheduler_seed\": " << r.task.scheduler_seed
       << ", \"steps\": " << r.steps
       << ", \"converged\": " << (r.converged ? "true" : "false")
       << ", \"move_hash\": " << r.move_hash
       << ", \"welfare_efficiency\": " << fmt_double(r.welfare_efficiency, 6)
       << ", \"rpu_fairness\": " << fmt_double(r.rpu_fairness, 6)
       << ", \"dom_share\": " << fmt_double(r.max_domination_share, 6)
       << ", \"majority_controlled\": " << r.majority_controlled
       << ", \"occupied_coins\": " << r.occupied_coins;
    if (include_timing) os << ", \"wall_ms\": " << fmt_double(r.wall_ms, 3);
    os << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool SweepResult::deterministic_equals(const SweepResult& other) const {
  if (root_seed_ != other.root_seed_ ||
      records_.size() != other.records_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].deterministic_equals(other.records_[i])) return false;
  }
  return true;
}

SweepRunner::SweepRunner(Options options) : options_(options) {}

SweepRecord SweepRunner::run_task(const SweepTask& task,
                                  const LearningOptions& options) {
  const auto started = clock_type::now();

  Rng rng(task.game_seed);
  const Game game = random_game(task.game_spec, rng);
  const Configuration start = random_configuration(game, rng);
  auto scheduler = make_scheduler(task.scheduler, task.scheduler_seed);
  const LearningResult learned = run_learning(game, start, *scheduler, options);

  SweepRecord record;
  record.task = task;
  record.steps = learned.steps;
  record.converged = learned.converged;
  record.move_hash = learned.move_hash;

  const Configuration& final_s = learned.final_configuration;
  record.welfare_efficiency =
      (distributed_reward(game, final_s) / game.rewards().total_reward())
          .to_double();
  record.rpu_fairness = rpu_fairness_index(game, final_s);
  const SecurityReport security = security_report(game, final_s);
  double max_share = 0.0;
  for (const Rational& share : security.max_share) {
    max_share = std::max(max_share, share.to_double());
  }
  record.max_domination_share = max_share;
  record.majority_controlled = security.majority_controlled;
  record.occupied_coins = security.occupied;

  record.wall_ms = elapsed_ms(started);
  return record;
}

SweepResult SweepRunner::run(const SweepSpec& spec) const {
  static obs::Counter& kSweeps =
      obs::Registry::instance().counter("engine.sweep.sweeps");
  static obs::Counter& kTasks =
      obs::Registry::instance().counter("engine.sweep.tasks");
  static obs::Histogram& kWallNs =
      obs::Registry::instance().histogram("engine.sweep.wall_ns");
  const std::vector<SweepTask> tasks = spec.expand();
  kSweeps.add();
  kTasks.add(tasks.size());
  obs::Span wall(kWallNs);
  std::optional<ThreadPool> owned;
  ThreadPool* pool = options_.pool;
  std::size_t lanes;
  if (pool != nullptr) {
    lanes = pool->num_threads() + 1;
  } else {
    lanes = ThreadPool::resolve_lanes(options_.threads);
    owned.emplace(ThreadPool::workers_for(lanes));
    pool = &*owned;
  }

  std::vector<SweepRecord> records(tasks.size());
  const auto started = clock_type::now();
  pool->parallel_for(tasks.size(), [&](std::size_t i) {
    options_.cancel.throw_if_stale("sweep cancelled");
    LearningOptions options = spec.learning;
    if (spec.audit_max_miners > 0 &&
        tasks[i].game_spec.num_miners <= spec.audit_max_miners) {
      options.audit_potential = true;
    }
    records[i] = run_task(tasks[i], options);
  });

  SweepResult result(spec.root_seed, lanes, std::move(records));
  result.set_total_wall_ms(elapsed_ms(started));
  return result;
}

}  // namespace goc::engine
