#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

/// \file cancel.hpp
/// Cooperative cancellation for long-running engine work.
///
/// This is the `sim::EventCore` generation-invalidation idea lifted from
/// events to jobs: a `CancelToken` carries a monotone generation counter,
/// work snapshots the generation when it starts (`CancelView`), and a
/// cancel *bumps* the counter instead of flipping a boolean — so one token
/// can arm many successive runs, a stale view can never "un-cancel"
/// itself, and the check is a single relaxed atomic load on the hot path.
/// Engine loops (`run_trajectory_batch`, `SweepRunner::run`, the
/// enumeration shard fan-out) poll their view at natural boundaries
/// (replica / task / shard) and throw `Cancelled`, which the pool's
/// `parallel_for` propagates after draining — cancellation latency is one
/// unit of work, never a torn result.

namespace goc::engine {

/// Thrown by engine loops when their `CancelView` went stale mid-run.
/// Derives from std::runtime_error so unaware callers treat an abandoned
/// run as an ordinary failure; aware callers (the serve job table) catch
/// it specifically to mark the job cancelled rather than failed.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

/// The cancellation source. One token per cancellable job; bumping the
/// generation invalidates every view snapshotted before the bump.
class CancelToken {
 public:
  std::uint32_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Cancels all outstanding views (same contract as
  /// `EventCore::invalidate`: pending work scheduled under an older
  /// generation becomes stale and dies at its next poll).
  void invalidate() noexcept {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::uint32_t> generation_{0};
};

/// A job's snapshot of its token: stale once the token's generation moved.
/// Default-constructed views (no token) never report stale, so options
/// structs can embed one and non-daemon callers pay nothing.
struct CancelView {
  const CancelToken* token = nullptr;
  std::uint32_t generation = 0;

  /// Snapshot the token's current generation.
  static CancelView of(const CancelToken& token) noexcept {
    return CancelView{&token, token.generation()};
  }

  bool stale() const noexcept {
    return token != nullptr && token->generation() != generation;
  }

  /// Throws `Cancelled` when stale — the one-liner engine loops call at
  /// work boundaries.
  void throw_if_stale(const char* what) const {
    if (stale()) throw Cancelled(what);
  }
};

}  // namespace goc::engine
