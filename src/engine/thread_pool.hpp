#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.hpp
/// A fixed-size worker pool for fan-out workloads.
///
/// Two usage modes:
///  * `submit(fn)` — enqueue an arbitrary callable, get a `std::future` back.
///  * `parallel_for(n, fn)` — run `fn(0..n-1)` across the pool and block
///    until done. Indices are handed out through a shared atomic cursor, so
///    idle workers "steal" whatever index comes next — a work-stealing-
///    friendly schedule that keeps all cores busy even when per-index cost
///    is wildly uneven (e.g. min-gain scheduler tasks next to max-gain ones).
///
/// A pool constructed with zero threads degenerates to inline execution on
/// the calling thread; `parallel_for` then visits indices in order. This is
/// the reference serial path used by determinism tests, so any divergence
/// between 0-thread and N-thread results is a bug in the *tasks* (shared
/// mutable state), never in the schedule.

namespace goc::engine {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means inline (serial) execution.
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues `fn`; the future resolves once it has run. In inline mode the
  /// call runs immediately on the calling thread.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      run_inline_task([task] { (*task)(); });
    } else {
      enqueue([task] { (*task)(); });
    }
    return future;
  }

  /// Runs `fn(i)` for every i in [0, count), blocking until all complete.
  /// The calling thread participates, so a 1-thread pool uses two lanes.
  /// Exceptions from `fn` propagate (the first one thrown is rethrown).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: runs `fn(begin, end)` over contiguous subranges of
  /// [0, count) of at most `grain` indices each, so per-element work that
  /// is too cheap for one-task-per-index dispatch (a sharded decision-epoch
  /// scan, a big memo fill) pays one dispatch per chunk instead. Chunks are
  /// handed out through the same shared cursor as `parallel_for`; the
  /// inline (0-worker) pool visits them in ascending order. Callers must
  /// not depend on the partition: correctness requires `fn` to be a pure
  /// per-index computation with disjoint writes, exactly the contract that
  /// makes results bit-identical at any thread count.
  void parallel_for_chunks(std::size_t count, std::size_t grain,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// `max(1, hardware_concurrency)` — the default worker count for sweeps.
  static std::size_t default_threads();

  /// Resolves a user-facing `--threads` value to a total lane count:
  /// 0 means one lane per hardware thread.
  static std::size_t resolve_lanes(std::size_t threads) {
    return threads == 0 ? default_threads() : threads;
  }

  /// Workers to spawn for `lanes` total concurrent lanes. The calling
  /// thread is itself a lane, so 1 lane means zero workers (the serial
  /// reference path). Every `--threads` consumer shares this convention:
  /// `ThreadPool pool(ThreadPool::workers_for(lanes));`.
  static std::size_t workers_for(std::size_t lanes) {
    return lanes > 1 ? lanes - 1 : 0;
  }

 private:
  /// One queued unit of work plus its enqueue stamp (0 when obs is off),
  /// so the worker that dequeues it can record queue-wait latency.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueued_ns = 0;
  };

  void worker_loop();
  /// Out-of-line halves of `submit` — the template above stays free of
  /// metrics includes while these record task counts and latencies.
  void enqueue(std::function<void()> fn);
  void run_inline_task(const std::function<void()>& fn);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace goc::engine
