#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dynamics/learning.hpp"
#include "dynamics/scheduler.hpp"
#include "engine/cancel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

/// \file sweep.hpp
/// The parallel scenario-sweep engine.
///
/// Every experiment in this repo has the same shape: expand a parameter
/// grid (miners × coins × power shape × reward shape × scheduler × seed)
/// into independent scenarios, run better-response learning on each, and
/// aggregate steps / wall time / equilibrium welfare and security into a
/// table. The engine factors that shape out once, and fans the scenarios
/// across all cores.
///
/// Determinism is the load-bearing property: each task's RNG seed derives
/// from the sweep's root seed and the task's *grid index* alone
/// (splitmix64 mixing), and results are written into a pre-sized slot
/// vector by task position — so a sweep's records are bit-identical
/// whether it ran on one thread or sixty-four, and whether or not a filter
/// pruned neighboring grid points. Benchmark tables cite one root seed and
/// are regenerable anywhere.

namespace goc::engine {

class ThreadPool;  // engine/thread_pool.hpp

/// One fully-resolved scenario: a point of the parameter grid plus a trial
/// replicate, with its derived seeds.
struct SweepTask {
  std::size_t grid_index = 0;  ///< position in the unfiltered grid
  GameSpec game_spec;          ///< axes applied onto the spec template
  SchedulerKind scheduler = SchedulerKind::kRandomMove;
  std::size_t trial = 0;       ///< replicate number within the grid point
  std::uint64_t game_seed = 0;       ///< seeds random_game + random start
  std::uint64_t scheduler_seed = 0;  ///< seeds the scheduler's RNG
};

/// Derives the two per-task seeds from the sweep root seed and the task's
/// grid index (splitmix64; independent of thread count and filtering).
std::uint64_t task_seed(std::uint64_t root_seed, std::size_t grid_index,
                        std::uint64_t stream);

/// A parameter grid. Empty axis vectors fall back to the corresponding
/// value of `base`, so a spec with all axes empty is a single scenario
/// (times `trials`).
struct SweepSpec {
  /// Template for every generated game; per-axis fields are overridden.
  GameSpec base;

  std::vector<std::size_t> miner_counts;
  std::vector<std::size_t> coin_counts;
  std::vector<PowerShape> power_shapes;
  std::vector<RewardShape> reward_shapes;
  std::vector<SchedulerKind> scheduler_kinds;

  /// Replicates per grid point (distinct seeds).
  std::size_t trials = 1;

  /// Root of the per-task seed derivation.
  std::uint64_t root_seed = 2021;

  /// Base learning options for every task (audit may be widened below).
  LearningOptions learning;

  /// Audit the ordinal potential for tasks with at most this many miners
  /// (the audit is O(|C| log |C|) per step); 0 leaves `learning` untouched.
  std::size_t audit_max_miners = 0;

  /// Optional predicate: tasks for which it returns false are dropped from
  /// the expansion. Pruning never changes surviving tasks' seeds.
  std::function<bool(const SweepTask&)> filter;

  /// Grid cardinality *before* filtering: product of axis sizes × trials.
  std::size_t grid_size() const;

  /// All surviving tasks in grid order (trial is the innermost axis).
  std::vector<SweepTask> expand() const;
};

/// Per-task outcome. Every field except `wall_ms` is a pure function of the
/// task's seeds, so two runs of the same spec agree on all of them exactly.
struct SweepRecord {
  SweepTask task;

  std::uint64_t steps = 0;
  bool converged = false;

  /// FNV-1a hash of the full move sequence (from LearningResult). Part of
  /// the determinism contract: bit-equality here means the trajectories —
  /// not just the endpoints — coincided, which is how `--compare-scan`
  /// proves the index path picks the exact moves the scan path picks.
  std::uint64_t move_hash = 0;

  /// distributed_reward / total_reward at the final configuration (1.0 at
  /// any equilibrium under Assumption 1 — Observation 3).
  double welfare_efficiency = 0.0;
  /// Jain's fairness index over per-unit revenue.
  double rpu_fairness = 0.0;
  /// Largest single-miner share of any coin's mass (§6 security metric).
  double max_domination_share = 0.0;
  /// Coins with a strict-majority controller.
  std::size_t majority_controlled = 0;
  std::size_t occupied_coins = 0;

  double wall_ms = 0.0;  ///< per-task wall time (nondeterministic)

  /// Field-wise equality over the deterministic fields (ignores wall_ms).
  bool deterministic_equals(const SweepRecord& other) const;
};

/// Aggregate over one grid point's trials, in grid order.
struct SweepPointStats {
  std::size_t miners = 0;
  std::size_t coins = 0;
  PowerShape power_shape = PowerShape::kUniform;
  RewardShape reward_shape = RewardShape::kUniform;
  SchedulerKind scheduler = SchedulerKind::kRandomMove;

  std::size_t trials = 0;
  std::size_t converged = 0;
  /// Keeps all observations: the convergence-tail percentiles are part of
  /// the E3 story, and RunningStats cannot report them.
  Sample steps;
  RunningStats welfare_efficiency;
  RunningStats rpu_fairness;
  RunningStats max_domination_share;
  RunningStats wall_ms;
};

/// The outcome of a sweep: per-task records (task order) plus per-point
/// aggregates, with table/CSV/JSON emission.
class SweepResult {
 public:
  SweepResult(std::uint64_t root_seed, std::size_t threads,
              std::vector<SweepRecord> records);

  const std::vector<SweepRecord>& records() const noexcept { return records_; }
  const std::vector<SweepPointStats>& points() const noexcept {
    return points_;
  }
  std::uint64_t root_seed() const noexcept { return root_seed_; }
  std::size_t threads() const noexcept { return threads_; }
  double total_wall_ms() const noexcept { return total_wall_ms_; }
  void set_total_wall_ms(double ms) noexcept { total_wall_ms_ = ms; }

  /// True iff every record converged.
  bool all_converged() const noexcept;

  /// Per-point summary table (the paper-style rows).
  Table to_table() const;

  /// Per-record CSV, streamed into a single buffer (interned label
  /// columns; strings materialize only here, never in the sweep hot
  /// path). Pass `include_timing = false` to drop the nondeterministic
  /// wall-time column, making the output bit-identical across thread
  /// counts.
  std::string to_csv(bool include_timing = true) const;

  /// Per-record JSON array with a sweep-level header object; pass
  /// `include_timing = false` to drop wall times and run-environment
  /// metadata (thread count) as in `to_csv`.
  std::string to_json(bool include_timing = true) const;

  /// Records-level deterministic equality (same tasks, same outcomes).
  bool deterministic_equals(const SweepResult& other) const;

 private:
  std::uint64_t root_seed_;
  std::size_t threads_;
  double total_wall_ms_ = 0.0;
  std::vector<SweepRecord> records_;
  std::vector<SweepPointStats> points_;
};

/// Runs sweeps over a thread pool.
class SweepRunner {
 public:
  struct Options {
    /// Total concurrent lanes. 0 = one lane per hardware thread; 1 = the
    /// serial reference path (no worker threads at all). Ignored when
    /// `pool` is set.
    std::size_t threads = 0;
    /// Reuse an existing pool (the serve daemon's warm pool, a batch
    /// engine's) instead of spawning one per sweep. Non-owning; lanes =
    /// pool->num_threads() + 1. nullptr = spawn from `threads`.
    ThreadPool* pool = nullptr;
    /// Cooperative cancellation: polled before every task; a stale view
    /// makes `run` throw `engine::Cancelled`. Default never cancels.
    CancelView cancel;
  };

  SweepRunner() : SweepRunner(Options{}) {}
  explicit SweepRunner(Options options);

  /// Expands `spec` and runs every task; blocks until the sweep completes.
  SweepResult run(const SweepSpec& spec) const;

  /// Runs one already-expanded task (the engine's inner loop, exposed so
  /// tests can replay a single scenario serially and compare).
  static SweepRecord run_task(const SweepTask& task,
                              const LearningOptions& options);

 private:
  Options options_;
};

}  // namespace goc::engine
