#pragma once

#include <cstdint>

#include "obs/registry.hpp"

/// \file span.hpp
/// RAII scoped timers feeding latency histograms.
///
/// ```cpp
/// static obs::Histogram& kWaveNs =
///     obs::Registry::instance().histogram("sim.batch.wave_ns");
/// {
///   obs::Span span(kWaveNs);   // starts the clock
///   ...wave work...
/// }                            // records elapsed ns into the histogram
/// ```
///
/// Spans nest freely (each owns its own start stamp), cost two
/// `steady_clock` reads plus one histogram record when obs is enabled,
/// and degrade to nothing when it is not: with recording disabled the
/// constructor skips the clock read entirely, and with `GOC_OBS_OFF`
/// defined at compile time the whole body is dead code the optimizer
/// removes. Timing never feeds back into simulation state, so spans are
/// deterministic-safe by construction.

namespace goc::obs {

class Span {
 public:
  explicit Span(Histogram& histogram) noexcept
      : histogram_(&histogram), start_ns_(enabled() ? now_ns() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Records the elapsed time now instead of at scope exit; idempotent
  /// (the destructor becomes a no-op).
  void finish() noexcept {
    if (histogram_ == nullptr) return;
    // A span opened while obs was disabled has no start stamp — recording
    // a bogus latency would be worse than dropping the sample.
    if (start_ns_ != 0) histogram_->record(now_ns() - start_ns_);
    histogram_ = nullptr;
  }

  /// Elapsed nanoseconds so far (0 when obs was disabled at entry).
  std::uint64_t elapsed_ns() const noexcept {
    return start_ns_ == 0 ? 0 : now_ns() - start_ns_;
  }

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace goc::obs
