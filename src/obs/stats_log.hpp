#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

/// \file stats_log.hpp
/// Periodic JSONL emission of registry snapshots.
///
/// `goc-serve --stats-log=PATH` runs one `StatsLogger`: a background
/// thread that appends a compact one-line JSON snapshot of the process
/// registry to PATH every `interval_ms`, plus one final line at shutdown.
/// Lines follow the `io::atomic_write_file` spirit scaled to a log: each
/// record is written with a single `write` and flushed before the thread
/// sleeps again, so a crash can tear at most the line in flight — every
/// prior line is complete and parseable. (Rewriting the whole file
/// atomically per tick would be quadratic in uptime; an append-only log
/// with line-granular integrity is the right trade.)
///
/// Each line carries the snapshot plus `t_ms` (milliseconds since the
/// logger started — monotonic, so deltas between lines are meaningful
/// even across clock adjustments) and a monotone `seq`.

namespace goc::obs {

class StatsLogger {
 public:
  struct Options {
    std::string path;
    std::uint64_t interval_ms = 1000;
  };

  /// Opens `path` for append and starts the emitter thread. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit StatsLogger(Options options);

  /// Stops the thread after a final snapshot line. Idempotent.
  ~StatsLogger();

  StatsLogger(const StatsLogger&) = delete;
  StatsLogger& operator=(const StatsLogger&) = delete;

  /// Stops the emitter (final line included) without destroying the
  /// object; later calls are no-ops.
  void stop();

  /// Lines written so far (including the shutdown line once stopped).
  std::uint64_t lines_written() const noexcept;

 private:
  void loop();
  void write_line();

  Options options_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t lines_ = 0;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace goc::obs
