#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file registry.hpp
/// Low-overhead, deterministic-safe process metrics.
///
/// The engine's determinism discipline (bit-identical `values_hash` at any
/// thread count, byte-identical replay) means instrumentation must be
/// strictly out-of-band: no RNG draws, no FP accumulation-order changes, no
/// locks on hot paths. The design:
///
///  * **Handles are process-wide and immortal.** `Registry::instance()`
///    interns one `Counter` / `Gauge` / `Histogram` per name; call sites
///    cache the reference in a function-local static and never look it up
///    again.
///  * **Writes are one relaxed atomic add.** Each metric owns a small
///    array of cache-line-padded slots; a thread picks its slot once (a
///    thread-local lane index, round-robin modulo the slot count) and adds
///    relaxed. Two threads share a slot only past `kLaneSlots` concurrent
///    lanes — still correct, just contended. No hot-path locks anywhere.
///  * **Reads aggregate on snapshot.** `Registry::snapshot()` sums the
///    slots into a point-in-time `Snapshot` that renders to JSON and
///    Prometheus-style text. Snapshots under concurrent writers are
///    *consistent enough for monitoring* (each metric is a sum of relaxed
///    loads), never torn per-slot.
///  * **Off means off.** Defining `GOC_OBS_OFF` at compile time turns
///    every record into a constant-false branch the optimizer deletes;
///    setting the `GOC_OBS_OFF` environment variable (or calling
///    `set_enabled(false)`) disables recording at runtime. Either way the
///    simulated trajectories are unchanged — the parity tests in
///    tests/test_obs.cpp assert equal `values_hash` with obs on and off.

namespace goc::obs {

namespace detail {

/// Runtime master switch; initialized from the `GOC_OBS_OFF` environment
/// variable at static-init time (zero-initialized false before that, so
/// nothing records during early static construction).
extern std::atomic<bool> g_enabled;

/// Assigns the calling thread's lane slot (round-robin, wraps modulo
/// kLaneSlots). Out-of-line: called once per thread.
std::size_t assign_lane_slot() noexcept;

}  // namespace detail

/// True when metric recording is active. With `GOC_OBS_OFF` defined at
/// compile time this is a constant false and recording code folds away.
inline bool enabled() noexcept {
#ifdef GOC_OBS_OFF
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Runtime toggle (parity tests flip this; `GOC_OBS_OFF` env presets it).
void set_enabled(bool on) noexcept;

/// Monotonic nanoseconds (steady clock) — the time base of every span,
/// stopwatch and latency histogram in the repo.
std::uint64_t now_ns() noexcept;

/// Slots per metric. Concurrency beyond this count shares slots (correct,
/// merely contended); 16 covers every pool size the benches use while
/// keeping a counter at 1 KiB.
inline constexpr std::size_t kLaneSlots = 16;

namespace detail {

/// The calling thread's slot index, assigned on first use.
inline std::size_t lane_slot() noexcept {
  thread_local const std::size_t slot = assign_lane_slot();
  return slot;
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotone event count. `add` is wait-free: one relaxed fetch_add into
/// the calling thread's padded slot.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    slots_[detail::lane_slot()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& slot : slots_) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Zeroes every slot (test isolation; racy against concurrent writers).
  void reset() noexcept {
    for (auto& slot : slots_) {
      slot.value.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<detail::PaddedU64, kLaneSlots> slots_;
};

/// Signed level (queue depth, jobs in a state): sharded deltas whose sum
/// is the current value. There is deliberately no `set` — a settable
/// gauge cannot be sharded without locks, and every level this repo
/// tracks is naturally an increment/decrement pair.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    slots_[detail::lane_slot()].value.fetch_add(
        static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }

  std::int64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& slot : slots_) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return static_cast<std::int64_t>(sum);
  }

  void reset() noexcept {
    for (auto& slot : slots_) {
      slot.value.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<detail::PaddedU64, kLaneSlots> slots_;
};

/// Fixed-bucket log2 histogram: bucket 0 counts the value 0, bucket b
/// (b >= 1) counts values in [2^(b-1), 2^b). 65 buckets cover the full
/// u64 range, so there is no configuration, no rescaling, and recording
/// is branch-light: `bit_width` plus two relaxed adds (count bucket and
/// running sum) into the thread's shard.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;
  /// Shards are 66 adjacent atomics (~528 B): threads collide on a shard
  /// only past `kHistShards` lanes, and a shard's interior false sharing
  /// is paid by at most those colliding threads — padding every bucket
  /// would cost 4 KiB per shard for no hot-path win.
  static constexpr std::size_t kHistShards = 8;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of `bucket` (the Prometheus-style `le` label).
  static constexpr std::uint64_t bucket_bound(std::size_t bucket) noexcept {
    return bucket >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bucket) - 1;
  }

  void record(std::uint64_t value) noexcept {
    if (!enabled()) return;
    Shard& shard = shards_[detail::lane_slot() % kHistShards];
    shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  void reset() noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  std::array<Shard, kHistShards> shards_;
};

// ------------------------------------------------------------- snapshots

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Per-bucket counts (Histogram::kBuckets entries, log2 layout).
  std::vector<std::uint64_t> buckets;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// A point-in-time aggregation of every registered metric, name-sorted.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// nullptr when the name is unregistered.
  const CounterSnapshot* find_counter(const std::string& name) const noexcept;
  const GaugeSnapshot* find_gauge(const std::string& name) const noexcept;
  const HistogramSnapshot* find_histogram(
      const std::string& name) const noexcept;

  /// One JSON object: `{"counters": {name: value, ...}, "gauges": {...},
  /// "histograms": {name: {"count": n, "sum": s, "buckets": [...]}}}`.
  /// Empty trailing buckets are trimmed. Compact (single line) when
  /// `compact` — the `--stats-log` JSONL form.
  std::string to_json(bool compact = false) const;

  /// Prometheus-style exposition text: `goc_<name>` lines with dots and
  /// dashes mapped to underscores, histograms as `_count` / `_sum` plus
  /// cumulative `_bucket{le="..."}` series.
  std::string to_prometheus() const;
};

/// The process-wide metric registry. Registration takes a mutex (cold:
/// once per name per process); recording through the returned references
/// never does.
class Registry {
 public:
  static Registry& instance() noexcept;

  /// Interns `name`; same name → same object for the process lifetime.
  /// Throws std::invalid_argument when the name is already registered as
  /// a different metric kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;

  /// Zeroes every registered metric (test isolation between cases; the
  /// registrations themselves are permanent).
  void reset_all() noexcept;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const noexcept;
};

}  // namespace goc::obs
