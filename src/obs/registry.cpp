#include "obs/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "io/serialize.hpp"

namespace goc::obs {

namespace detail {

namespace {
bool env_enables() noexcept {
  const char* off = std::getenv("GOC_OBS_OFF");
  if (off == nullptr) return true;
  return off[0] == '\0' || std::string_view(off) == "0";
}
}  // namespace

std::atomic<bool> g_enabled{env_enables()};

std::size_t assign_lane_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kLaneSlots;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ------------------------------------------------------------- histogram

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& bucket : shard.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------- snapshots

const CounterSnapshot* Snapshot::find_counter(
    const std::string& name) const noexcept {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* Snapshot::find_gauge(
    const std::string& name) const noexcept {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::find_histogram(
    const std::string& name) const noexcept {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json(bool compact) const {
  const char* nl = compact ? "" : "\n";
  const char* pad = compact ? "" : "  ";
  std::ostringstream os;
  os << "{" << nl << pad << "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ", " : "") << '"' << io::json_escape(counters[i].name)
       << "\": " << counters[i].value;
  }
  os << "}," << nl << pad << "\"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ", " : "") << '"' << io::json_escape(gauges[i].name)
       << "\": " << gauges[i].value;
  }
  os << "}," << nl << pad << "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    os << (i ? ", " : "") << '"' << io::json_escape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    // Trailing zero buckets carry no information; trim them so a latency
    // histogram is ~30 entries, not 65.
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      os << (b ? ", " : "") << h.buckets[b];
    }
    os << "]}";
  }
  os << "}" << nl << "}" << (compact ? "" : "\n");
  return os.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map the
/// separators to underscores under a `goc_` namespace prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "goc_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::ostringstream os;
  for (const CounterSnapshot& c : counters) {
    const std::string name = prometheus_name(c.name);
    os << "# TYPE " << name << " counter\n"
       << name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    const std::string name = prometheus_name(g.name);
    os << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string name = prometheus_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      cumulative += h.buckets[b];
      os << name << "_bucket{le=\"" << Histogram::bucket_bound(b) << "\"} "
         << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << name << "_sum " << h.sum << "\n"
       << name << "_count " << h.count << "\n";
  }
  return os.str();
}

// -------------------------------------------------------------- registry

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::instance() noexcept {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const noexcept {
  // Leaked on purpose: metric handles are cached by reference in
  // function-local statics all over the engine, so the registry must
  // outlive every other static destructor.
  static Impl* impl = new Impl();
  return *impl;
}

namespace {

template <typename Map>
void check_unregistered(const Map& map, const std::string& name,
                        const char* kind) {
  if (map.find(name) != map.end()) {
    throw std::invalid_argument("metric '" + name +
                                "' is already registered as a " + kind);
  }
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.counters.find(name);
  if (it != i.counters.end()) return *it->second;
  check_unregistered(i.gauges, name, "gauge");
  check_unregistered(i.histograms, name, "histogram");
  return *i.counters.emplace(name, std::make_unique<Counter>(name))
              .first->second;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.gauges.find(name);
  if (it != i.gauges.end()) return *it->second;
  check_unregistered(i.counters, name, "counter");
  check_unregistered(i.histograms, name, "histogram");
  return *i.gauges.emplace(name, std::make_unique<Gauge>(name)).first->second;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.histograms.find(name);
  if (it != i.histograms.end()) return *it->second;
  check_unregistered(i.counters, name, "counter");
  check_unregistered(i.gauges, name, "gauge");
  return *i.histograms.emplace(name, std::make_unique<Histogram>(name))
              .first->second;
}

Snapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  Snapshot snap;
  snap.counters.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    snap.counters.push_back(CounterSnapshot{name, counter->total()});
  }
  snap.gauges.reserve(i.gauges.size());
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  snap.histograms.reserve(i.histograms.size());
  for (const auto& [name, histogram] : i.histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.buckets.assign(Histogram::kBuckets, 0);
    for (const Histogram::Shard& shard : histogram->shards_) {
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
      h.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t b : h.buckets) h.count += b;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::reset_all() noexcept {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (const auto& [_, counter] : i.counters) counter->reset();
  for (const auto& [_, gauge] : i.gauges) gauge->reset();
  for (const auto& [_, histogram] : i.histograms) histogram->reset();
}

}  // namespace goc::obs
