#include "obs/stats_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/registry.hpp"

namespace goc::obs {

StatsLogger::StatsLogger(Options options) : options_(std::move(options)) {
  if (options_.path.empty()) {
    throw std::runtime_error("StatsLogger needs a path");
  }
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("StatsLogger: cannot open '" + options_.path +
                             "': " + std::strerror(errno));
  }
  start_ns_ = now_ns();
  thread_ = std::thread([this] { loop(); });
}

StatsLogger::~StatsLogger() { stop(); }

void StatsLogger::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stopped_ = true;
}

std::uint64_t StatsLogger::lines_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void StatsLogger::write_line() {
  // Snapshot outside the logger mutex is fine (the registry locks
  // itself); serialize the full line first so it reaches the file in one
  // write — the line-granular integrity contract from the header.
  const Snapshot snap = Registry::instance().snapshot();
  std::ostringstream os;
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = lines_;
  }
  os << "{\"seq\": " << seq << ", \"t_ms\": " << (now_ns() - start_ns_) / 1000000
     << ", \"stats\": " << snap.to_json(/*compact=*/true) << "}\n";
  const std::string line = os.str();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  std::size_t off = 0;
  while (off < line.size()) {
    const ::ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // a full log disk must not take the daemon down
    }
    off += static_cast<std::size_t>(n);
  }
  ++lines_;
}

void StatsLogger::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                         [this] { return stopping_; })) {
        break;
      }
    }
    write_line();
  }
  write_line();  // final snapshot at shutdown
}

}  // namespace goc::obs
