#pragma once

#include <cstdint>
#include <string>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "dynamics/scheduler.hpp"

/// \file naive.hpp
/// Baseline manipulators, for the E8 comparison bench.
///
/// Section 5's algorithm looks heavyweight — n stages, one reward
/// re-publication per mover. The obvious cheaper ideas fail precisely
/// because better-response learning is *arbitrary*: after a one-shot pump,
/// the learning process may settle into an equilibrium of the pumped game
/// whose revert-time dynamics land somewhere other than sf. These baselines
/// make that failure measurable.

namespace goc {

struct ManipulationResult {
  bool success = false;  ///< system ended exactly at sf after reverting to F
  Configuration final_configuration;
  std::uint64_t iterations = 0;      ///< reward publications (incl. revert)
  std::uint64_t learning_steps = 0;
  Rational total_cost;               ///< Σ per-iteration overpayment
  std::string method;
};

/// One-shot proportional pump: publish H with H(c) = max(F(c), K·M_c(sf))
/// on coins occupied in sf (K = 2·maxF/min m, the same level the principled
/// design uses), let learning converge, revert to F, let learning converge
/// again. Succeeds only if both phases happen to land on sf.
ManipulationResult naive_proportional_pump(const Game& game,
                                           const Configuration& s0,
                                           const Configuration& sf,
                                           Scheduler& scheduler,
                                           std::uint64_t max_steps = 1u << 20);

/// Iterative deficit pump: up to `max_rounds` rounds, multiply by `factor`
/// the reward of the coin with the largest mass deficit vs sf, learn,
/// repeat; then revert and learn. A greedy heuristic with no guarantee.
ManipulationResult naive_deficit_pump(const Game& game, const Configuration& s0,
                                      const Configuration& sf,
                                      Scheduler& scheduler,
                                      std::int64_t factor = 2,
                                      std::size_t max_rounds = 32,
                                      std::uint64_t max_steps = 1u << 20);

}  // namespace goc
