#pragma once

#include <cstddef>
#include <vector>

#include "core/configuration.hpp"

/// \file progress.hpp
/// The termination measure of Theorem 2: for s ∈ T_i, vec(s) is the binary
/// vector whose j-th entry (1-based, j ≤ n−i+1) records whether miner
/// p_{j+i−1} already sits on sf.p_i. Each loop iteration of stage i
/// strictly increases vec(s) in lexicographic order (the mover gets placed
/// while everything before it is frozen), so stages finish in finitely many
/// iterations. Exposed for the design driver's audit mode and for benches
/// reporting per-stage progress.

namespace goc {

/// vec(s) for stage i (defined for stage ≥ 2; requires s ∈ T_i).
std::vector<bool> progress_vector(const Configuration& s, const Configuration& sf,
                                  std::size_t stage);

/// Lexicographic strict comparison: a < b.
bool progress_less(const std::vector<bool>& a, const std::vector<bool>& b);

}  // namespace goc
