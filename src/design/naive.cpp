#include "design/naive.hpp"

#include "core/moves.hpp"
#include "dynamics/learning.hpp"
#include "util/assert.hpp"

namespace goc {
namespace {

/// Runs one learning phase and accumulates bookkeeping.
Configuration learn_phase(const Game& game, Configuration start,
                          Scheduler& scheduler, std::uint64_t max_steps,
                          ManipulationResult& result) {
  LearningOptions opts;
  opts.max_steps = max_steps;
  scheduler.reset();
  LearningResult learned = run_learning(game, std::move(start), scheduler, opts);
  GOC_ASSERT(learned.converged, "learning failed to converge under step cap");
  result.learning_steps += learned.steps;
  ++result.iterations;
  return std::move(learned.final_configuration);
}

}  // namespace

ManipulationResult naive_proportional_pump(const Game& game,
                                           const Configuration& s0,
                                           const Configuration& sf,
                                           Scheduler& scheduler,
                                           std::uint64_t max_steps) {
  GOC_CHECK_ARG(is_equilibrium(game, s0), "s0 must be an equilibrium of F");
  GOC_CHECK_ARG(is_equilibrium(game, sf), "sf must be an equilibrium of F");
  ManipulationResult result{/*success=*/false, /*final_configuration=*/s0,
                            /*iterations=*/0, /*learning_steps=*/0,
                            /*total_cost=*/Rational(0),
                            /*method=*/"proportional-pump"};

  const Rational level =
      Rational(2) * game.rewards().max_reward() / game.system().min_power();
  std::vector<Rational> pumped = game.rewards().values();
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (sf.empty_coin(coin)) continue;
    const Rational target_weight = level * sf.mass(coin);
    if (target_weight > pumped[c]) pumped[c] = target_weight;
  }
  const Game pumped_game = game.with_rewards(RewardFunction(pumped));
  result.total_cost += pumped_game.rewards().overpayment(game.rewards());

  Configuration s = learn_phase(pumped_game, s0, scheduler, max_steps, result);
  s = learn_phase(game, std::move(s), scheduler, max_steps, result);

  result.success = (s == sf);
  result.final_configuration = std::move(s);
  return result;
}

ManipulationResult naive_deficit_pump(const Game& game, const Configuration& s0,
                                      const Configuration& sf,
                                      Scheduler& scheduler, std::int64_t factor,
                                      std::size_t max_rounds,
                                      std::uint64_t max_steps) {
  GOC_CHECK_ARG(factor >= 2, "pump factor must be at least 2");
  GOC_CHECK_ARG(is_equilibrium(game, s0), "s0 must be an equilibrium of F");
  GOC_CHECK_ARG(is_equilibrium(game, sf), "sf must be an equilibrium of F");
  ManipulationResult result{/*success=*/false, /*final_configuration=*/s0,
                            /*iterations=*/0, /*learning_steps=*/0,
                            /*total_cost=*/Rational(0),
                            /*method=*/"deficit-pump"};

  Configuration s = s0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (s == sf) break;
    // Largest mass deficit vs the target equilibrium.
    std::optional<CoinId> worst;
    Rational worst_deficit(0);
    for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
      const CoinId coin(c);
      const Rational deficit = sf.mass(coin) - s.mass(coin);
      if (deficit > worst_deficit) {
        worst_deficit = deficit;
        worst = coin;
      }
    }
    if (!worst) break;  // no coin is under target; greedy signal exhausted
    const RewardFunction pumped =
        game.rewards().with(*worst, game.rewards()(*worst) * Rational(factor));
    const Game pumped_game = game.with_rewards(pumped);
    result.total_cost += pumped.overpayment(game.rewards());
    s = learn_phase(pumped_game, std::move(s), scheduler, max_steps, result);
  }
  s = learn_phase(game, std::move(s), scheduler, max_steps, result);

  result.success = (s == sf);
  result.final_configuration = std::move(s);
  return result;
}

}  // namespace goc
