#include "design/progress.hpp"

#include "design/intermediate.hpp"
#include "util/assert.hpp"

namespace goc {

std::vector<bool> progress_vector(const Configuration& s, const Configuration& sf,
                                  std::size_t stage) {
  GOC_CHECK_ARG(in_stage_set(s, sf, stage), "progress_vector requires s ∈ T_i");
  const std::size_t n = s.num_miners();
  const CoinId coin_i = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  std::vector<bool> vec;
  vec.reserve(n - stage + 2);
  // Paper: vec(s)[j] = 1 iff p_{j+i−1} ∈ P_{sf.p_i}(s), j = 1..n−i+1.
  for (std::size_t k = stage; k <= n; ++k) {
    const MinerId p(static_cast<std::uint32_t>(k - 1));
    vec.push_back(s.of(p) == coin_i);
  }
  return vec;
}

bool progress_less(const std::vector<bool>& a, const std::vector<bool>& b) {
  GOC_CHECK_ARG(a.size() == b.size(), "progress vectors of different stages");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return b[i];  // first difference: a < b iff b has the 1
  }
  return false;
}

}  // namespace goc
