#pragma once

#include <cstddef>
#include <optional>

#include "core/configuration.hpp"

/// \file intermediate.hpp
/// Stage geometry for the dynamic reward-design algorithm (Section 5.1).
///
/// Throughout this module miners are assumed indexed in *strictly
/// decreasing* power order (p_0 is the paper's p_1, the largest), the
/// standing assumption of Section 5. Stage numbers are 1-based to match the
/// paper: stage i ∈ {1..n}. The paper's miner subscripts are 1-based; the
/// code uses 0-based `MinerId`s, so the paper's p_k is `MinerId(k−1)`.
///
/// * Eq. (3):  s^i has miners p_1..p_i at their final coins and the rest
///   stacked on sf.p_i.
/// * T_i (i ≥ 2): p_1..p_{i−1} final; each of p_i..p_n on either sf.p_i or
///   sf.p_{i−1}.
/// * m_i(s): the *mover* — the largest-indexed miner not yet on sf.p_i such
///   that everyone after it already is; a_i(s) = m_i(s) − 1 is the
///   *anchor*, whose power calibrates the designed reward of sf.p_i.

namespace goc {

/// s^i of Eq. (3). `stage` ∈ [1, n]; `sf` is the target equilibrium.
Configuration intermediate_configuration(const Configuration& sf, std::size_t stage);

/// s ∈ T_i membership (defined for stage ≥ 2).
bool in_stage_set(const Configuration& s, const Configuration& sf,
                  std::size_t stage);

/// m_i(s) as a 1-based miner index (the paper's subscript), or nullopt when
/// s == s^i (no mover needed). Requires s ∈ T_i.
std::optional<std::size_t> mover_index(const Configuration& s,
                                       const Configuration& sf, std::size_t stage);

/// a_i(s) = m_i(s) − 1, 1-based. Requires a mover to exist.
std::size_t anchor_index(const Configuration& s, const Configuration& sf,
                         std::size_t stage);

}  // namespace goc
