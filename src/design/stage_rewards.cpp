#include "design/stage_rewards.hpp"

#include "design/intermediate.hpp"
#include "util/assert.hpp"

namespace goc {

Rational design_level(const Game& base, const Configuration& s) {
  const Rational lambda =
      Rational(2) * base.rewards().max_reward() / base.system().min_power();
  Rational level = lambda;
  for (std::uint32_t c = 0; c < base.num_coins(); ++c) {
    const CoinId coin(c);
    if (s.empty_coin(coin)) continue;
    const Rational rpu = base.rewards()(coin) / s.mass(coin);
    if (rpu > level) level = rpu;
  }
  return level;
}

RewardFunction stage_reward_function(const Game& base, const Configuration& sf,
                                     std::size_t stage, const Configuration& s) {
  const System& system = base.system();
  GOC_CHECK_ARG(system.strictly_decreasing_powers(),
                "Section 5 requires strictly decreasing miner powers");
  GOC_CHECK_ARG(stage >= 1 && stage <= system.num_miners(),
                "stage out of range [1, n]");

  const RewardFunction& F = base.rewards();

  if (stage == 1) {
    // Eq. (5), robustified: joining the target yields at least
    // m_p·K/Σm = 2·maxF·(m_p/min m) ≥ 2·maxF, strictly above any payoff
    // attainable elsewhere (u_p ≤ F(s.p) ≤ maxF).
    const CoinId target = sf.of(MinerId(0));
    const Rational boosted = Rational(2) * F.max_reward() *
                             system.total_power() / system.min_power();
    RewardFunction designed = F.with(target, boosted);
    GOC_ASSERT(designed.dominates(F), "H_1 must dominate F");
    return designed;
  }

  // Eq. (4), robustified.
  const auto mover = mover_index(s, sf, stage);
  GOC_CHECK_ARG(mover.has_value(),
                "stage reward function undefined at s == s^i");
  const std::size_t anchor = anchor_index(s, sf, stage);
  const Rational& anchor_power =
      system.power(MinerId(static_cast<std::uint32_t>(anchor - 1)));
  const CoinId target = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  const Rational level = design_level(base, s);

  std::vector<Rational> rewards(base.num_coins());
  for (std::uint32_t c = 0; c < base.num_coins(); ++c) {
    const CoinId coin(c);
    if (coin == target) {
      rewards[c] = level * (s.mass(coin) + anchor_power);
    } else if (!s.empty_coin(coin)) {
      rewards[c] = level * s.mass(coin);
    } else {
      rewards[c] = F(coin);
    }
  }
  RewardFunction designed(std::move(rewards));
  GOC_ASSERT(designed.dominates(F), "H_i must dominate F");
  return designed;
}

}  // namespace goc
