#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "dynamics/scheduler.hpp"

/// \file reward_design.hpp
/// Algorithm 2 — the dynamic reward-design mechanism (Section 5).
///
/// Given a base game G_{Π,C,F} and two of its equilibria s0 and sf, the
/// mechanism walks the system from s0 to sf in n stages. Each stage i
/// repeats: publish the designed rewards H_i(s) (which dominate F), let the
/// miners run *arbitrary* better-response learning to convergence
/// (Theorem 1), and re-evaluate — until the stage's intermediate target s^i
/// is reached (guaranteed by Lemma 1 + Theorem 2). After stage n the system
/// sits at sf, which is stable under the original F, so the manipulator
/// reverts the rewards and pays nothing further.
///
/// Cost model: each loop iteration sustains H for one "epoch"; its cost is
/// the overpayment Σ_c (H(c) − F(c)). Results report the total and the
/// peak per-epoch overpayment — the paper's "bounded cost" made concrete.

namespace goc {

struct DesignOptions {
  /// Cap on better-response steps inside one learning phase.
  std::uint64_t max_steps_per_learning = 1u << 20;
  /// Defensive cap on loop iterations within one stage (Theorem 2 bounds
  /// iterations by 2^(n−i+1); in practice it is ≤ n — see EXPERIMENTS.md).
  std::uint64_t max_iterations_per_stage = 1u << 20;
  /// Verify Lemma 1 / Theorem 2 invariants at every boundary: the designed
  /// game offers exactly one better-response move (the mover to the stage
  /// target), learning lands in T_i with the pre-mover prefix frozen and
  /// the mover placed, and the Φ_i progress vector strictly increases.
  /// Throws goc::InvariantError on violation.
  bool audit = false;
};

struct StageRecord {
  std::size_t stage = 0;           ///< 1-based, as in the paper
  std::uint64_t iterations = 0;    ///< loop iterations (reward re-publications)
  std::uint64_t learning_steps = 0;
  Rational stage_cost;             ///< Σ per-iteration overpayment
  Rational peak_overpayment;

  std::string to_string() const;
};

struct DesignResult {
  bool success = false;            ///< reached sf (and sf is F-stable)
  Configuration final_configuration;
  std::vector<StageRecord> stages;
  std::uint64_t total_iterations = 0;
  std::uint64_t total_learning_steps = 0;
  Rational total_cost;
  Rational peak_overpayment;
};

/// Runs Algorithm 2. Preconditions (throw std::invalid_argument):
///  * miners indexed in strictly decreasing power order (use
///    `with_distinct_powers` / sorting to establish it);
///  * s0 and sf are equilibria of `game` over the same system.
/// The scheduler models the miners' arbitrary better-response learning; the
/// mechanism must succeed for every scheduler.
DesignResult run_reward_design(const Game& game, const Configuration& s0,
                               const Configuration& sf, Scheduler& scheduler,
                               const DesignOptions& options = {});

}  // namespace goc
