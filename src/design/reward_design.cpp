#include "design/reward_design.hpp"

#include <sstream>

#include "core/moves.hpp"
#include "design/intermediate.hpp"
#include "design/progress.hpp"
#include "design/stage_rewards.hpp"
#include "dynamics/learning.hpp"
#include "util/assert.hpp"

namespace goc {

std::string StageRecord::to_string() const {
  std::ostringstream os;
  os << "stage " << stage << ": iterations=" << iterations
     << " steps=" << learning_steps << " cost=" << stage_cost.to_string()
     << " peak=" << peak_overpayment.to_string();
  return os.str();
}

namespace {

/// Audit: in GΠ,C,H_i(s) at s, the unique better response is the mover
/// moving to the stage target (first claim in the proof of Lemma 1).
void audit_unique_first_step(const Game& designed, const Configuration& s,
                             const Configuration& sf, std::size_t stage) {
  const auto mover = mover_index(s, sf, stage);
  GOC_ASSERT(mover.has_value(), "audit at s == s^i");
  const MinerId expected_miner(static_cast<std::uint32_t>(*mover - 1));
  const CoinId target = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  const auto moves = all_better_response_moves(designed, s);
  GOC_ASSERT(moves.size() == 1,
             "designed game must admit exactly one better-response move");
  GOC_ASSERT(moves.front().miner == expected_miner && moves.front().to == target,
             "the unique better response must be the mover to the stage target");
}

/// Audit: Lemma 1 items 1–2 plus T_i membership and Φ_i ascent.
void audit_learning_outcome(const Configuration& before,
                            const Configuration& after, const Configuration& sf,
                            std::size_t stage) {
  GOC_ASSERT(in_stage_set(after, sf, stage),
             "learning escaped T_i during a design stage");
  const auto mover = mover_index(before, sf, stage);
  GOC_ASSERT(mover.has_value(), "audit at s == s^i");
  for (std::size_t k = 1; k < *mover; ++k) {
    const MinerId p(static_cast<std::uint32_t>(k - 1));
    GOC_ASSERT(after.of(p) == before.of(p),
               "Lemma 1(1) violated: a pre-mover miner moved");
  }
  const MinerId mover_id(static_cast<std::uint32_t>(*mover - 1));
  const CoinId target = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  GOC_ASSERT(after.of(mover_id) == target,
             "Lemma 1(2) violated: the mover is not at the stage target");
  GOC_ASSERT(progress_less(progress_vector(before, sf, stage),
                           progress_vector(after, sf, stage)),
             "Theorem 2 violated: progress vector did not increase");
}

}  // namespace

DesignResult run_reward_design(const Game& game, const Configuration& s0,
                               const Configuration& sf, Scheduler& scheduler,
                               const DesignOptions& options) {
  const System& system = game.system();
  GOC_CHECK_ARG(game.access().is_unrestricted(),
                "reward design assumes every miner can reach every coin "
                "(the asymmetric case is open — paper §6)");
  GOC_CHECK_ARG(system.strictly_decreasing_powers(),
                "Section 5 requires strictly decreasing miner powers");
  GOC_CHECK_ARG(&s0.system() == &system && &sf.system() == &system,
                "configurations must live on the game's system");
  GOC_CHECK_ARG(is_equilibrium(game, s0), "s0 must be an equilibrium of F");
  GOC_CHECK_ARG(is_equilibrium(game, sf), "sf must be an equilibrium of F");

  DesignResult result{/*success=*/false, /*final_configuration=*/s0,
                      /*stages=*/{},     /*total_iterations=*/0,
                      /*total_learning_steps=*/0, /*total_cost=*/Rational(0),
                      /*peak_overpayment=*/Rational(0)};
  Configuration& current = result.final_configuration;

  LearningOptions learn_opts;
  learn_opts.max_steps = options.max_steps_per_learning;

  const std::size_t n = system.num_miners();
  for (std::size_t stage = 1; stage <= n; ++stage) {
    const Configuration target = intermediate_configuration(sf, stage);
    StageRecord record;
    record.stage = stage;
    record.stage_cost = Rational(0);
    record.peak_overpayment = Rational(0);

    while (!(current == target)) {
      GOC_ASSERT(record.iterations < options.max_iterations_per_stage,
                 "stage iteration cap exceeded");
      ++record.iterations;

      const RewardFunction designed_rewards =
          stage_reward_function(game, sf, stage, current);
      const Game designed = game.with_rewards(designed_rewards);
      if (options.audit && stage >= 2) {
        audit_unique_first_step(designed, current, sf, stage);
      }

      const Rational overpay = designed_rewards.overpayment(game.rewards());
      record.stage_cost += overpay;
      if (overpay > record.peak_overpayment) record.peak_overpayment = overpay;

      const Configuration before = current;
      scheduler.reset();
      LearningResult learned = run_learning(designed, current, scheduler, learn_opts);
      GOC_ASSERT(learned.converged,
                 "better-response learning failed to converge (cap too low?)");
      current = std::move(learned.final_configuration);
      record.learning_steps += learned.steps;

      if (options.audit && stage >= 2) {
        audit_learning_outcome(before, current, sf, stage);
      }
    }

    result.total_iterations += record.iterations;
    result.total_learning_steps += record.learning_steps;
    result.total_cost += record.stage_cost;
    if (record.peak_overpayment > result.peak_overpayment) {
      result.peak_overpayment = record.peak_overpayment;
    }
    result.stages.push_back(std::move(record));
  }

  result.success = (current == sf) && is_equilibrium(game, current);
  GOC_ASSERT(result.success, "Algorithm 2 terminated away from sf");
  return result;
}

}  // namespace goc
