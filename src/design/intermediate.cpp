#include "design/intermediate.hpp"

#include "util/assert.hpp"

namespace goc {

Configuration intermediate_configuration(const Configuration& sf,
                                         std::size_t stage) {
  const std::size_t n = sf.num_miners();
  GOC_CHECK_ARG(stage >= 1 && stage <= n, "stage out of range [1, n]");
  std::vector<CoinId> assignment(n);
  const CoinId stage_coin = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  for (std::size_t k = 0; k < n; ++k) {
    // Paper (1-based): s^i.p_k = sf.p_k for k ≤ i, sf.p_i for k > i.
    assignment[k] = (k + 1 <= stage)
                        ? sf.of(MinerId(static_cast<std::uint32_t>(k)))
                        : stage_coin;
  }
  return Configuration(sf.system_ptr(), std::move(assignment));
}

bool in_stage_set(const Configuration& s, const Configuration& sf,
                  std::size_t stage) {
  const std::size_t n = sf.num_miners();
  GOC_CHECK_ARG(stage >= 2 && stage <= n, "T_i is defined for stages 2..n");
  GOC_CHECK_ARG(s.num_miners() == n, "configurations over different systems");
  const CoinId coin_i = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  const CoinId coin_prev = sf.of(MinerId(static_cast<std::uint32_t>(stage - 2)));
  for (std::size_t k = 0; k < n; ++k) {
    const MinerId p(static_cast<std::uint32_t>(k));
    if (k + 1 <= stage - 1) {
      if (s.of(p) != sf.of(p)) return false;
    } else {
      if (s.of(p) != coin_i && s.of(p) != coin_prev) return false;
    }
  }
  return true;
}

std::optional<std::size_t> mover_index(const Configuration& s,
                                       const Configuration& sf,
                                       std::size_t stage) {
  GOC_CHECK_ARG(in_stage_set(s, sf, stage), "mover_index requires s ∈ T_i");
  const std::size_t n = sf.num_miners();
  const CoinId coin_i = sf.of(MinerId(static_cast<std::uint32_t>(stage - 1)));
  // m_i(s) = min{j | ∀l > j: s.p_l = sf.p_i} — i.e. the largest (1-based)
  // index whose miner is NOT yet on sf.p_i, clamped below by the T_i prefix.
  for (std::size_t k = n; k >= stage; --k) {
    const MinerId p(static_cast<std::uint32_t>(k - 1));
    if (s.of(p) != coin_i) return k;
  }
  // All of p_i..p_n already on sf.p_i and the prefix is final ⇒ s == s^i.
  return std::nullopt;
}

std::size_t anchor_index(const Configuration& s, const Configuration& sf,
                         std::size_t stage) {
  const auto mover = mover_index(s, sf, stage);
  GOC_CHECK_ARG(mover.has_value(), "anchor undefined at s == s^i");
  GOC_ASSERT(*mover >= 2, "mover index must be at least stage ≥ 2");
  return *mover - 1;
}

}  // namespace goc
