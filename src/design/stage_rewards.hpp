#pragma once

#include <cstddef>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file stage_rewards.hpp
/// The reward design functions H_i of Section 5.1 (Eqs. 4–5), robustified
/// for empty coins and sub-unit powers as described in DESIGN.md §2.2:
///
///  * `design_level` R̂(s) = max(max_{occupied c} RPU_c(s), λ) with
///    λ = 2·max_c F(c) / min_p m_p. Any uniform level ≥ the occupied
///    maximum preserves the Lemma 1 proof; the λ floor guarantees
///    m_p·R̂ > F(c'') for every miner and coin, so nobody ever defects to a
///    coin outside the stage's pair.
///  * Stage i ≥ 2 (Eq. 4): H(c) = R̂·M_c(s) for occupied c ≠ target;
///    H(target) = R̂·(M_target(s) + m_anchor); empty coins keep F.
///  * Stage 1 (Eq. 5): the target coin sf.p_1 gets 2·max F·Σm / min m —
///    enough that joining it strictly improves any miner from anywhere —
///    and every other coin keeps F.
///
/// Every H_i produced here pointwise dominates F (the admissibility
/// condition of Algorithm 1, asserted in code).

namespace goc {

/// R̂(s) for the base game; see above. `s` must have ≥ 1 occupied coin
/// (always true — miners always mine something).
Rational design_level(const Game& base, const Configuration& s);

/// H_i(s). `stage` ∈ [1, n]; for stage ≥ 2, `s` must lie in T_i \ {s^i}.
/// Miners must be indexed in strictly decreasing power order.
RewardFunction stage_reward_function(const Game& base, const Configuration& sf,
                                     std::size_t stage, const Configuration& s);

}  // namespace goc
