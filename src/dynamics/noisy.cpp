#include "dynamics/noisy.hpp"

#include <cmath>
#include <vector>

#include "core/moves.hpp"
#include "util/assert.hpp"

namespace goc {
namespace {

NoisyResult finish(const Game& game, Configuration s,
                   std::uint64_t steps, std::uint64_t checks,
                   std::uint64_t equilibrium_visits) {
  NoisyResult result{std::move(s), steps, false, 0.0};
  result.ended_at_equilibrium = is_equilibrium(game, result.final_configuration);
  if (checks > 0) {
    result.equilibrium_visit_rate =
        static_cast<double>(equilibrium_visits) / static_cast<double>(checks);
  }
  return result;
}

}  // namespace

NoisyResult run_epsilon_noisy(const Game& game, Configuration start, Rng& rng,
                              const NoisyOptions& options) {
  GOC_CHECK_ARG(options.epsilon >= 0.0 && options.epsilon <= 1.0,
                "epsilon must lie in [0,1]");
  GOC_CHECK_ARG(options.equilibrium_check_stride >= 1, "stride must be >= 1");
  Configuration s = std::move(start);
  std::uint64_t equilibrium_visits = 0;
  std::uint64_t checks = 0;
  std::uint64_t steps = 0;
  for (; steps < options.max_steps; ++steps) {
    const MinerId p(static_cast<std::uint32_t>(rng.next_below(game.num_miners())));
    if (rng.bernoulli(options.epsilon)) {
      const auto coins = game.allowed_coins(p);
      s.move(p, coins[rng.pick_index(coins)]);
    } else if (const auto target = best_response(game, s, p)) {
      s.move(p, *target);
    }
    if (steps % options.equilibrium_check_stride == 0) {
      ++checks;
      if (is_equilibrium(game, s)) ++equilibrium_visits;
    }
  }
  return finish(game, std::move(s), steps, checks, equilibrium_visits);
}

NoisyResult run_logit(const Game& game, Configuration start, Rng& rng,
                      const NoisyOptions& options) {
  GOC_CHECK_ARG(options.beta >= 0.0, "beta must be nonnegative");
  GOC_CHECK_ARG(options.equilibrium_check_stride >= 1, "stride must be >= 1");
  Configuration s = std::move(start);
  std::uint64_t equilibrium_visits = 0;
  std::uint64_t checks = 0;
  std::uint64_t steps = 0;
  std::vector<double> weights(game.num_coins());
  for (; steps < options.max_steps; ++steps) {
    const MinerId p(static_cast<std::uint32_t>(rng.next_below(game.num_miners())));
    // Softmax over post-move payoffs of *allowed* coins, stabilized by the
    // max exponent; forbidden coins get weight 0 regardless of β.
    double max_u = -1e300;
    std::vector<bool> allowed(game.num_coins());
    for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
      allowed[c] = game.can_mine(p, CoinId(c));
      if (!allowed[c]) {
        weights[c] = 0.0;
        continue;
      }
      const double u = game.payoff_if_move(s, p, CoinId(c)).to_double();
      weights[c] = u;
      max_u = std::max(max_u, u);
    }
    double total = 0.0;
    for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
      if (!allowed[c]) continue;
      weights[c] = std::exp(options.beta * (weights[c] - max_u));
      total += weights[c];
    }
    double pick = rng.uniform01() * total;
    // Numeric-edge fallback: stay put (always an allowed coin).
    std::uint32_t chosen = s.of(p).value;
    for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
      pick -= weights[c];
      if (pick <= 0.0) {
        chosen = c;
        break;
      }
    }
    s.move(p, CoinId(chosen));
    if (steps % options.equilibrium_check_stride == 0) {
      ++checks;
      if (is_equilibrium(game, s)) ++equilibrium_visits;
    }
  }
  return finish(game, std::move(s), steps, checks, equilibrium_visits);
}

}  // namespace goc
