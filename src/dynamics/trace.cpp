#include "dynamics/trace.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

void Trace::add_step(const Move& move, const Configuration* after) {
  moves_.push_back(move);
  if (after != nullptr) {
    GOC_CHECK_ARG(!configurations_.empty(),
                  "set_start must precede snapshot recording");
    configurations_.push_back(*after);
  }
}

Table Trace::to_table() const {
  Table table({"step", "miner", "from", "to", "gain"});
  for (std::size_t i = 0; i < moves_.size(); ++i) {
    const Move& m = moves_[i];
    table.row() << i << m.miner.to_string() << m.from.to_string()
                << m.to.to_string() << m.gain.to_string();
  }
  return table;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < moves_.size(); ++i) {
    if (i != 0) os << "; ";
    os << moves_[i].to_string();
  }
  return os.str();
}

}  // namespace goc
