#pragma once

#include <cstdint>
#include <optional>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file improvement_graph.hpp
/// Exhaustive analysis of the better-response graph on small games.
///
/// Theorem 1 makes the improvement graph a DAG (the ordinal potential
/// strictly increases along every edge), so the *longest improving path*
/// is well defined — it is the worst-case convergence time over all
/// schedulers and all starting configurations, the quantity the paper's
/// Discussion (§6) asks about. Exponential in n·log|C|; intended for the
/// small instances of experiments E3/E7.

namespace goc {

struct ImprovementGraphStats {
  std::uint64_t configurations = 0;   ///< |C|^n (access-respecting only)
  std::uint64_t equilibria = 0;       ///< DAG sinks
  std::uint64_t edges = 0;            ///< better-response moves
  std::uint64_t longest_path = 0;     ///< worst-case steps to equilibrium
};

/// Walks the full improvement graph; throws std::invalid_argument when
/// |C|^n exceeds `max_configs`.
ImprovementGraphStats analyze_improvement_graph(const Game& game,
                                                std::uint64_t max_configs = 1u << 20);

/// Longest improving path starting from `s` specifically.
std::uint64_t longest_path_from(const Game& game, const Configuration& s,
                                std::uint64_t max_configs = 1u << 20);

}  // namespace goc
