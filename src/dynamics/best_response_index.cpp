#include "dynamics/best_response_index.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace goc::dynamics {

BestResponseIndex::BestResponseIndex(const Game& game, const Configuration& s)
    : game_(&game),
      tracked_(&s),
      cmp_(game),
      unrestricted_(game.access().is_unrestricted()) {
  GOC_CHECK_ARG(&s.system() == &game.system(),
                "configuration belongs to a different system");
  const std::size_t n = game.num_miners();
  stride_ = (game.num_coins() + 63) / 64;
  best_.assign(n, -1);
  gain_.assign(n, Rational(0));
  gain_valid_.assign(n, 0);
  count_.assign(n, 0);
  improving_.assign(n * stride_, 0);
  unstable_flag_.assign(n, 0);
  // Full capacity up front: set_stability's sorted inserts, and rebuilds
  // after reweights, never allocate afterwards.
  unstable_.reserve(n);
  rebuild();
}

void BestResponseIndex::reweight() {
  // Every reward changed, so every cached ordering is stale — but the
  // storage layout is not. Refresh the comparator in place (its mode and
  // rescaled reward numerators depend on the rewards) and rescan every
  // miner into the existing strips; neither step allocates.
  cmp_.refresh();
  rebuild();
}

void BestResponseIndex::sync(const Configuration& s) {
  if (tracked_ == &s) {
    if (epoch_ == s.move_epoch()) return;
    if (epoch_ + 1 == s.move_epoch()) {
      apply_delta(s.last_delta());
      epoch_ = s.move_epoch();
      return;
    }
  }
  tracked_ = &s;
  GOC_CHECK_ARG(&s.system() == &game_->system(),
                "configuration belongs to a different system");
  rebuild();
}

void BestResponseIndex::rebuild() {
  const std::size_t n = game_->num_miners();
  std::fill(improving_.begin(), improving_.end(), 0);
  unstable_.clear();
  total_improving_ = 0;
  for (std::uint32_t q = 0; q < n; ++q) {
    // rescan() only adjusts the sorted unstable set on status *changes*, so
    // start every miner from the stable state.
    best_[q] = -1;
    count_[q] = 0;
    unstable_flag_[q] = 0;
    rescan(MinerId(q));
  }
  epoch_ = tracked_->move_epoch();
}

void BestResponseIndex::apply_delta(const MoveDelta& delta) {
  const Configuration& s = *tracked_;
  const CoinId lighter = delta.from;  // lost m_p: strictly more attractive
  const CoinId heavier = delta.to;    // gained m_p: strictly less attractive
  const std::int32_t heavier_id = static_cast<std::int32_t>(heavier.value);
  const std::size_t n = game_->num_miners();
  for (std::uint32_t q = 0; q < n; ++q) {
    const CoinId here = s.of(MinerId(q));
    // Dirty miners: own payoff changed (on a touched coin — this covers the
    // mover itself, now sitting on `to`), or the cached best response
    // worsened (== to) so the runner-up is unknown.
    if (here == lighter || here == heavier || best_[q] == heavier_id) {
      rescan(MinerId(q));
    } else {
      update_spectator(MinerId(q), lighter, heavier);
    }
  }
}

void BestResponseIndex::rescan(MinerId q) {
  const Configuration& s = *tracked_;
  const CoinId here = s.of(q);
  const std::size_t coins = game_->num_coins();
  std::uint32_t count = 0;
  // Mirrors the reference `best_response` scan: the running best starts at
  // the current coin and only a strictly larger post-move payoff replaces
  // it, so ties resolve toward the lowest coin id.
  CoinId best = here;
  bool best_is_here = true;
  std::uint64_t* row = &improving_[q.value * stride_];
  std::fill(row, row + stride_, 0);
  for (std::uint32_t c = 0; c < coins; ++c) {
    const CoinId coin(c);
    if (coin == here) continue;
    if (!unrestricted_ && !game_->can_mine(q, coin)) continue;
    const std::strong_ordering vs_best = cmp_.compare(s, q, coin, best);
    if (vs_best > 0) {
      // Beats the running best, which (weakly) beats the current payoff —
      // so `coin` is improving by transitivity.
      row[c >> 6] |= std::uint64_t{1} << (c & 63);
      ++count;
      best = coin;
      best_is_here = false;
    } else if (!best_is_here && cmp_.compare(s, q, coin, here) > 0) {
      row[c >> 6] |= std::uint64_t{1} << (c & 63);
      ++count;
    }
  }
  total_improving_ += count;
  total_improving_ -= count_[q.value];
  count_[q.value] = count;
  best_[q.value] =
      best_is_here ? -1 : static_cast<std::int32_t>(best.value);
  gain_valid_[q.value] = 0;
  set_stability(q, !best_is_here);
}

void BestResponseIndex::update_spectator(MinerId q, CoinId lighter,
                                         CoinId heavier) {
  const Configuration& s = *tracked_;
  // The heavier coin strictly worsened: it can drop out of q's improving
  // set but can never newly enter it, and it is not q's cached best (that
  // case was rescanned), so only the bit and count can change.
  if (unrestricted_ || game_->can_mine(q, heavier)) {
    const bool was = improving_bit(q, heavier);
    if (was && !cmp_.improves(s, q, heavier)) {
      write_improving_bit(q, heavier, false);
      --count_[q.value];
      --total_improving_;
    }
  }
  // The lighter coin strictly improved: it can newly enter the improving
  // set and can newly become the best response (exact ties break toward
  // the lower coin id, as the reference scan does).
  if (!unrestricted_ && !game_->can_mine(q, lighter)) return;
  const bool improves_now = cmp_.improves(s, q, lighter);
  const bool was = improving_bit(q, lighter);
  if (was != improves_now) {
    write_improving_bit(q, lighter, improves_now);
    if (improves_now) {
      ++count_[q.value];
      ++total_improving_;
    } else {
      --count_[q.value];
      --total_improving_;
    }
  }
  const std::int32_t t = best_[q.value];
  if (t < 0) {
    if (improves_now) {
      // Previously stable: the lighter coin is the only improving coin, so
      // it is the unique best response.
      best_[q.value] = static_cast<std::int32_t>(lighter.value);
      gain_valid_[q.value] = 0;
      set_stability(q, true);
    }
    return;
  }
  if (static_cast<std::uint32_t>(t) == lighter.value) {
    // The cached best got strictly better: still the best, stale gain.
    gain_valid_[q.value] = 0;
    return;
  }
  if (!improves_now) return;  // cannot beat a target that beats the payoff
  const std::strong_ordering vs_best =
      cmp_.compare(s, q, lighter, CoinId(static_cast<std::uint32_t>(t)));
  if (vs_best > 0 ||
      (vs_best == 0 && lighter.value < static_cast<std::uint32_t>(t))) {
    best_[q.value] = static_cast<std::int32_t>(lighter.value);
    gain_valid_[q.value] = 0;
  }
}

void BestResponseIndex::set_stability(MinerId q, bool unstable_now) {
  if (static_cast<bool>(unstable_flag_[q.value]) == unstable_now) return;
  unstable_flag_[q.value] = unstable_now ? 1 : 0;
  const auto pos = std::lower_bound(unstable_.begin(), unstable_.end(), q,
                                    [](MinerId a, MinerId b) {
                                      return a.value < b.value;
                                    });
  if (unstable_now) {
    unstable_.insert(pos, q);
  } else {
    GOC_DASSERT(pos != unstable_.end() && *pos == q,
                "unstable set out of sync");
    unstable_.erase(pos);
  }
}

bool BestResponseIndex::improving_bit(MinerId q, CoinId c) const {
  return (improving_[q.value * stride_ + (c.value >> 6)] >>
          (c.value & 63)) & 1;
}

void BestResponseIndex::write_improving_bit(MinerId q, CoinId c, bool value) {
  std::uint64_t& word = improving_[q.value * stride_ + (c.value >> 6)];
  const std::uint64_t mask = std::uint64_t{1} << (c.value & 63);
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

const Rational& BestResponseIndex::best_gain(MinerId p) const {
  GOC_ASSERT(best_[p.value] >= 0, "best_gain queried for a stable miner");
  if (!gain_valid_[p.value]) {
    gain_[p.value] =
        gain_of(p, CoinId(static_cast<std::uint32_t>(best_[p.value])));
    gain_valid_[p.value] = 1;
  }
  return gain_[p.value];
}

std::optional<Move> BestResponseIndex::best_move(MinerId p) const {
  const auto target = best_of(p);
  if (!target) return std::nullopt;
  return Move{p, tracked_->of(p), *target, best_gain(p)};
}

CoinId BestResponseIndex::nth_improving(MinerId p, std::size_t n) const {
  const std::uint64_t* row = &improving_[p.value * stride_];
  for (std::size_t w = 0; w < stride_; ++w) {
    std::uint64_t word = row[w];
    const std::size_t bits = static_cast<std::size_t>(std::popcount(word));
    if (n >= bits) {
      n -= bits;
      continue;
    }
    while (n-- > 0) word &= word - 1;  // clear the n lowest set bits
    return CoinId(static_cast<std::uint32_t>(
        w * 64 + static_cast<std::size_t>(std::countr_zero(word))));
  }
  GOC_ASSERT(false, "nth_improving past the improving count");
  return CoinId(0);
}

CoinId BestResponseIndex::min_improving(MinerId p) const {
  GOC_ASSERT(count_[p.value] > 0, "min_improving for a stable miner");
  const Configuration& s = *tracked_;
  std::optional<CoinId> min;
  const std::uint64_t* row = &improving_[p.value * stride_];
  for (std::size_t w = 0; w < stride_; ++w) {
    for (std::uint64_t word = row[w]; word != 0; word &= word - 1) {
      const CoinId coin(static_cast<std::uint32_t>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(word))));
      // Strictly-smaller keeps the first minimum — lowest coin id on ties,
      // matching the reference min-gain ordering over (gain, miner, to).
      if (!min || cmp_.compare(s, p, coin, *min) < 0) min = coin;
    }
  }
  return *min;
}

Rational BestResponseIndex::gain_of(MinerId p, CoinId c) const {
  return move_gain(*game_, *tracked_, p, c);
}

Move BestResponseIndex::move_to(MinerId p, CoinId c) const {
  return Move{p, tracked_->of(p), c, gain_of(p, c)};
}

void BestResponseIndex::audit() const {
  const Configuration& s = *tracked_;
  GOC_ASSERT(epoch_ == s.move_epoch(), "index out of sync with configuration");
  std::size_t total = 0;
  for (std::uint32_t q = 0; q < game_->num_miners(); ++q) {
    const MinerId miner(q);
    const auto reference = best_response(*game_, s, miner);
    const auto cached = best_of(miner);
    GOC_ASSERT(reference == cached, "index best response diverged from scan");
    if (reference) {
      GOC_ASSERT(best_gain(miner) == move_gain(*game_, s, miner, *reference),
                 "index gain diverged from scan");
    }
    const auto options = better_responses(*game_, s, miner);
    GOC_ASSERT(options.size() == count_[q],
               "index improving count diverged from scan");
    for (std::size_t i = 0; i < options.size(); ++i) {
      GOC_ASSERT(nth_improving(miner, i) == options[i],
                 "index improving set diverged from scan");
    }
    GOC_ASSERT(static_cast<bool>(unstable_flag_[q]) == !options.empty(),
               "index stability flag diverged from scan");
    total += options.size();
  }
  GOC_ASSERT(total == total_improving_,
             "index total improving count diverged from scan");
  GOC_ASSERT(unstable_.size() ==
                 static_cast<std::size_t>(std::count(unstable_flag_.begin(),
                                                     unstable_flag_.end(), 1)),
             "index unstable set diverged from flags");
}

}  // namespace goc::dynamics
