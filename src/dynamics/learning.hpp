#pragma once

#include <cstdint>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "dynamics/scheduler.hpp"
#include "dynamics/trace.hpp"

/// \file learning.hpp
/// The better-response learning loop of Section 2/3: repeatedly let the
/// scheduler pick an improving step until no miner has one. Theorem 1
/// guarantees termination for every scheduler; the driver still takes a
/// step cap as a defensive bound (an exceeded cap in a correct build is a
/// bug, and `converged=false` makes it loud).
///
/// The driver owns a `BestResponseIndex` lifecycle: by default every step
/// goes through the index fast path (`Scheduler::pick_indexed`, O(Δ) per
/// step); `use_index = false` selects the from-scratch scan path. The two
/// paths pick identical move sequences — `move_hash` in the result lets
/// callers assert that cheaply, and `audit_potential` cross-checks the
/// index against the reference scans every step.

namespace goc {

struct LearningOptions {
  /// Defensive bound on steps; 2^20 by default (far beyond any observed
  /// trajectory — see EXPERIMENTS.md E3 for measured step counts).
  std::uint64_t max_steps = 1u << 20;

  /// Record the move sequence in the result's trace.
  bool record_moves = false;

  /// Also snapshot every intermediate configuration (implies record_moves).
  bool record_configurations = false;

  /// Verify after every step that the Theorem 1 ordinal potential strictly
  /// increased, that the move satisfied Observations 1–2, and (on the
  /// index path) that the BestResponseIndex agrees fact-for-fact with the
  /// from-scratch scans; throws goc::InvariantError on violation.
  /// O(n·|C|) extra per step.
  bool audit_potential = false;

  /// Drive scheduling through the incremental BestResponseIndex (the hot
  /// path). `false` selects the scan-based reference implementation; both
  /// produce the same move sequence.
  bool use_index = true;
};

struct LearningResult {
  Configuration final_configuration;
  std::uint64_t steps = 0;
  bool converged = false;  ///< final configuration is an equilibrium
  Trace trace;             ///< populated per LearningOptions

  /// FNV-1a hash of the move sequence (miner, from, to per step) — always
  /// populated, so scan/index (and serial/parallel) trajectory equality
  /// can be checked without recording moves.
  std::uint64_t move_hash = 0xcbf29ce484222325ULL;
};

/// Runs better-response learning in `game` from `start` under `scheduler`.
LearningResult run_learning(const Game& game, Configuration start,
                            Scheduler& scheduler,
                            const LearningOptions& options = {});

/// Greedy learning to a *relative ε-equilibrium*: repeatedly takes the
/// better response with the globally maximal RELATIVE gain
/// (u_after/u_now − 1) and stops as soon as that maximum is ≤ epsilon — at
/// which point every miner is ε-stable by construction. With epsilon = 0
/// this is exact convergence (the strict-improvement condition coincides).
/// Used to quantify how much of the convergence tail consists of
/// negligible-gain moves (§6 speed question; experiment E7).
LearningResult run_learning_to_epsilon(const Game& game, Configuration start,
                                       const Rational& epsilon,
                                       const LearningOptions& options = {});

}  // namespace goc
