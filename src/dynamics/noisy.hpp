#pragma once

#include <cstdint>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "util/rng.hpp"

/// \file noisy.hpp
/// Noisy response dynamics — the Discussion (§6) extension.
///
/// The paper's guarantees assume *strict* better responses. Real miners act
/// on noisy profitability estimates (whattomine-style dashboards), which we
/// model two ways:
///  * ε-noisy better response: with probability ε the chosen miner moves to
///    a uniformly random coin regardless of payoff; otherwise it takes a
///    best response.
///  * logit (quantal) response: the chosen miner moves to coin c with
///    probability ∝ exp(β · u_p(s_{-p}, c)) over all coins.
/// Neither is guaranteed to converge; the driver reports whether the
/// trajectory was at an equilibrium when it stopped and how often it
/// visited one (used by the scheduler-ablation bench).

namespace goc {

struct NoisyOptions {
  std::uint64_t max_steps = 100000;
  double epsilon = 0.05;  ///< ε-noisy mode: exploration probability
  double beta = 50.0;     ///< logit mode: rationality (→∞ = best response)
  /// Check equilibrium membership every k-th step for the dwell metric
  /// (the check is O(n·|C|), the dominant cost on long horizons). 1 = exact.
  std::uint64_t equilibrium_check_stride = 1;
};

struct NoisyResult {
  Configuration final_configuration;
  std::uint64_t steps = 0;
  bool ended_at_equilibrium = false;
  /// Fraction of *sampled* post-step states that were equilibria (sampled
  /// every `equilibrium_check_stride` steps).
  double equilibrium_visit_rate = 0.0;
};

/// ε-noisy better-response dynamics: each step picks a uniform miner; with
/// probability ε it jumps to a uniform coin, otherwise it takes its best
/// response (skipping its turn when stable). Stops early only if
/// `stop_at_equilibrium` and ε == 0 semantics apply — with ε > 0 noise can
/// always re-perturb, so the driver runs the full horizon.
NoisyResult run_epsilon_noisy(const Game& game, Configuration start, Rng& rng,
                              const NoisyOptions& options = {});

/// Logit response dynamics with rationality β.
NoisyResult run_logit(const Game& game, Configuration start, Rng& rng,
                      const NoisyOptions& options = {});

}  // namespace goc
