#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "core/moves.hpp"
#include "util/rng.hpp"

/// \file scheduler.hpp
/// Better-response schedulers.
///
/// The paper's convergence theorem (Theorem 1) and its reward-design
/// mechanism (Section 5) hold for *arbitrary* better-response learning: any
/// rule that, whenever some miner can improve, lets some miner take some
/// improving step. A `Scheduler` is exactly such a rule. The suite below
/// spans the adversarial space used by tests and benches: random,
/// round-robin fairness, greedy (max-gain), anti-greedy (min-gain — the
/// slowest improving path), power-ordered, and fully deterministic
/// lexicographic selection.
///
/// Every scheduler has two equivalent implementations: the scan path
/// (`pick`) recomputes the improvement neighborhood from scratch, and the
/// index path (`pick_indexed`) reads it off a `BestResponseIndex`. The two
/// paths pick the *same move* from the *same state* and consume the RNG
/// identically, so entire trajectories coincide move-for-move — the
/// contract tests/test_best_response_index.cpp enforces for every kind.

namespace goc {

namespace dynamics {
class BestResponseIndex;  // dynamics/best_response_index.hpp
}

/// Picks one better-response move per call, or nullopt at an equilibrium.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Scan path: from-scratch reference implementation.
  virtual std::optional<Move> pick(const Game& game, const Configuration& s) = 0;

  /// Index path: reads the improvement neighborhood from `index` (which
  /// must be in sync with `s`). Must pick the exact move `pick` would and
  /// draw the same random variates. Overridden by every built-in kind; the
  /// default falls back to the scan so external Scheduler subclasses keep
  /// working unchanged.
  virtual std::optional<Move> pick_indexed(
      const Game& game, const Configuration& s,
      const dynamics::BestResponseIndex& index) {
    (void)index;
    return pick(game, s);
  }

  /// True when `pick_indexed` actually uses the index. `run_learning`
  /// skips building (and per-step syncing) an index for schedulers that
  /// would fall back to the scan anyway, so external subclasses pay
  /// nothing for the fast path they don't implement.
  virtual bool supports_index() const { return false; }

  /// Stable identifier for tables/CSV ("random", "max-gain", …).
  virtual std::string name() const = 0;

  /// Re-arms any internal state (round-robin cursor, RNG is *not* reseeded).
  virtual void reset() {}
};

enum class SchedulerKind {
  kRandomMove,      ///< uniform over all improving (miner, coin) moves
  kRandomMiner,     ///< uniform unstable miner, then uniform improving coin
  kRoundRobin,      ///< cyclic miner scan; each takes its best response
  kMaxGain,         ///< globally largest payoff gain (greedy best response)
  kMinGain,         ///< globally smallest positive gain (slowest path)
  kLargestFirst,    ///< heaviest unstable miner moves first (best response)
  kSmallestFirst,   ///< lightest unstable miner moves first (best response)
  kLexicographic,   ///< lowest unstable miner id, lowest improving coin id
};

/// All kinds, for sweep loops.
const std::vector<SchedulerKind>& all_scheduler_kinds();

/// Display name of a kind (matches Scheduler::name()). Returns an interned
/// static — the old implementation constructed a whole scheduler object
/// per call, which emission layers paid once per record row.
const std::string& scheduler_kind_name(SchedulerKind kind);

/// Factory. `seed` feeds the randomized kinds and is ignored by
/// deterministic ones.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed = 0);

}  // namespace goc
