#include "dynamics/improvement_graph.hpp"

#include <vector>

#include "core/moves.hpp"
#include "util/assert.hpp"

namespace goc {
namespace {

/// Mixed-radix codec between configurations and dense indices.
class Codec {
 public:
  Codec(const Game& game, std::uint64_t max_configs)
      : game_(game),
        n_(game.num_miners()),
        coins_(static_cast<std::uint32_t>(game.num_coins())) {
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < n_; ++i) {
      GOC_CHECK_ARG(total <= max_configs / coins_,
                    "configuration space too large to analyze");
      total *= coins_;
    }
    total_ = total;
  }

  std::uint64_t total() const noexcept { return total_; }

  std::uint64_t encode(const Configuration& s) const {
    std::uint64_t index = 0;
    std::uint64_t mul = 1;
    for (std::size_t i = 0; i < n_; ++i) {
      index += mul * s.assignment()[i].value;
      mul *= coins_;
    }
    return index;
  }

  Configuration decode(std::uint64_t index) const {
    std::vector<CoinId> assignment(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      assignment[i] = CoinId(static_cast<std::uint32_t>(index % coins_));
      index /= coins_;
    }
    return Configuration(game_.system_ptr(), std::move(assignment));
  }

 private:
  const Game& game_;
  std::size_t n_;
  std::uint32_t coins_;
  std::uint64_t total_ = 0;
};

/// Memoized longest-path evaluator over the improvement DAG (iterative
/// DFS; revisits recompute neighbor lists, trading CPU for stack safety).
class LongestPath {
 public:
  LongestPath(const Game& game, const Codec& codec)
      : game_(game), codec_(codec), memo_(codec.total(), -1) {}

  std::uint64_t eval(std::uint64_t root) {
    std::vector<std::uint64_t> stack{root};
    while (!stack.empty()) {
      const std::uint64_t v = stack.back();
      if (memo_[v] >= 0) {
        stack.pop_back();
        continue;
      }
      const Configuration s = codec_.decode(v);
      bool ready = true;
      std::int64_t best = 0;
      for (const Move& move : all_better_response_moves(game_, s)) {
        const std::uint64_t nb = codec_.encode(s.with_move(move.miner, move.to));
        if (memo_[nb] < 0) {
          stack.push_back(nb);
          ready = false;
        } else if (memo_[nb] + 1 > best) {
          best = memo_[nb] + 1;
        }
      }
      if (ready) {
        memo_[v] = best;
        stack.pop_back();
      }
    }
    return static_cast<std::uint64_t>(memo_[root]);
  }

 private:
  const Game& game_;
  const Codec& codec_;
  std::vector<std::int64_t> memo_;
};

}  // namespace

ImprovementGraphStats analyze_improvement_graph(const Game& game,
                                                std::uint64_t max_configs) {
  const Codec codec(game, max_configs);
  LongestPath solver(game, codec);
  ImprovementGraphStats stats;
  for (std::uint64_t index = 0; index < codec.total(); ++index) {
    const Configuration s = codec.decode(index);
    if (!game.respects_access(s)) continue;
    ++stats.configurations;
    const auto moves = all_better_response_moves(game, s);
    stats.edges += moves.size();
    if (moves.empty()) ++stats.equilibria;
    const std::uint64_t path = solver.eval(index);
    if (path > stats.longest_path) stats.longest_path = path;
  }
  return stats;
}

std::uint64_t longest_path_from(const Game& game, const Configuration& s,
                                std::uint64_t max_configs) {
  GOC_CHECK_ARG(game.respects_access(s),
                "configuration violates the game's access policy");
  const Codec codec(game, max_configs);
  LongestPath solver(game, codec);
  return solver.eval(codec.encode(s));
}

}  // namespace goc
