#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "core/move_compare.hpp"
#include "core/moves.hpp"
#include "util/rational.hpp"

/// \file best_response_index.hpp
/// The incremental best-response index — the learning hot loop's engine.
///
/// A from-scratch scheduler `pick()` walks all miners × coins with exact
/// `Rational` payoffs: O(n·|C|) normalized rational operations per step.
/// But a move only changes the masses of its two coins, so after p moves
/// a → b:
///
///  * a miner on a or b (including p) saw its *own* payoff change — full
///    O(|C|) rescan with the `MoveComparator` fast path;
///  * a miner whose cached best response is b saw that target worsen —
///    full rescan (the runner-up is unknown);
///  * every other miner's payoff landscape changed only at coins a and b:
///    b got heavier (strictly worse — it can never newly win), a got
///    lighter (it can newly beat the cached best, and the tie-break toward
///    lower coin ids decides exact ties) — O(1) comparisons.
///
/// The index maintains, under that dirty-coin invalidation rule, each
/// miner's best response and the set of unstable miners, plus each miner's
/// improving-coin bitmask and count (so samplers can pick uniform moves
/// without materializing them). A learning step costs O(n) cheap `i128`
/// comparisons plus O(|C|) per *dirty* miner instead of O(n·|C|) exact
/// `Rational` payoffs — and every ordering decision is exact, so schedulers
/// built on the index pick bit-identical move sequences to the reference
/// scans (tests/test_best_response_index.cpp proves it move-for-move;
/// `LearningOptions::audit_potential` cross-checks it at runtime).
///
/// Gains are cached lazily: a rescan invalidates the stored `Rational`
/// gain and it is recomputed only when actually read (Move construction,
/// max-gain scheduling), keeping rescans free of rational arithmetic.

namespace goc::dynamics {

class BestResponseIndex {
 public:
  /// Builds the index for `s` in O(n·|C|) fast comparisons. The index
  /// keeps references to both `game` and `s`; `sync()` must be called
  /// after every batch of `Configuration::move`s before querying again.
  BestResponseIndex(const Game& game, const Configuration& s);

  /// Brings the index up to date with `s`. One new move (epoch + 1) is
  /// applied incrementally from `s.last_delta()`; anything else — a
  /// different configuration object, or several epochs at once — falls
  /// back to a full rebuild.
  void sync(const Configuration& s);

  /// True when the index reflects `s`'s current epoch (queries are only
  /// valid in this state).
  bool in_sync(const Configuration& s) const noexcept {
    return tracked_ == &s && epoch_ == s.move_epoch();
  }

  /// Reweight-invalidation hook: call after `Game::reweight` changed the
  /// game's reward function under this index. Every coin's attractiveness
  /// changed at once, so all cached best responses and improving sets are
  /// recomputed (O(n·|C|) fast comparisons, like construction) — but the
  /// structural state survives: the tracked configuration binding, every
  /// preallocated strip (bitmask rows, gains, the unstable set's capacity)
  /// and the comparator are reused, so a reweight allocates nothing. The
  /// comparator's integer-mode flag is re-derived (new rewards may enter
  /// or leave the raw-i128 fast path).
  void reweight();

  const Game& game() const noexcept { return *game_; }

  // ---------------------------------------------------------------- queries

  /// True iff p has no better response (mirrors `is_stable`).
  bool stable(MinerId p) const { return best_[p.value] < 0; }

  /// p's best response (lowest coin id among the payoff argmax, exactly as
  /// `best_response`), or nullopt when p is stable.
  std::optional<CoinId> best_of(MinerId p) const {
    if (best_[p.value] < 0) return std::nullopt;
    return CoinId(static_cast<std::uint32_t>(best_[p.value]));
  }

  /// The gain of p's best response; p must be unstable. Lazily computed
  /// and cached; exact (same `Rational` as `move_gain`).
  const Rational& best_gain(MinerId p) const;

  /// p's best-response move, or nullopt when stable.
  std::optional<Move> best_move(MinerId p) const;

  /// |better_responses(game, s, p)|.
  std::size_t improving_count(MinerId p) const { return count_[p.value]; }

  /// |all_better_response_moves(game, s)|.
  std::size_t total_improving() const noexcept { return total_improving_; }

  /// Unstable miners in miner-id order (mirrors `unstable_miners`).
  const std::vector<MinerId>& unstable() const noexcept { return unstable_; }

  /// True iff the configuration is a pure equilibrium.
  bool at_equilibrium() const noexcept { return unstable_.empty(); }

  /// The n-th improving coin of p in coin-id order (the ordering of
  /// `better_responses`); p must have more than n improving coins.
  CoinId nth_improving(MinerId p, std::size_t n) const;

  /// p's improving coin with the *smallest* post-move payoff, lowest coin
  /// id on ties — the per-miner candidate for min-gain scheduling. p must
  /// be unstable.
  CoinId min_improving(MinerId p) const;

  /// Exact gain of moving p to improving coin `c` (fresh `Rational`).
  Rational gain_of(MinerId p, CoinId c) const;

  /// The full Move record for p moving to improving coin `c`.
  Move move_to(MinerId p, CoinId c) const;

  /// Cross-checks every cached fact against the scan-based reference in
  /// core/moves.*; throws goc::InvariantError on any mismatch. O(n·|C|)
  /// exact arithmetic — the audit path, wired to
  /// `LearningOptions::audit_potential`.
  void audit() const;

 private:
  void rebuild();
  void apply_delta(const MoveDelta& delta);
  void rescan(MinerId q);
  void update_spectator(MinerId q, CoinId lighter, CoinId heavier);
  void set_stability(MinerId q, bool unstable_now);
  bool improving_bit(MinerId q, CoinId c) const;
  void write_improving_bit(MinerId q, CoinId c, bool value);

  const Game* game_;
  const Configuration* tracked_;
  MoveComparator cmp_;
  std::uint64_t epoch_ = 0;
  bool unrestricted_;

  std::vector<std::int32_t> best_;          // -1 = stable, else coin id
  mutable std::vector<Rational> gain_;      // lazily cached best-move gain
  mutable std::vector<std::uint8_t> gain_valid_;
  std::vector<std::uint32_t> count_;        // improving coins per miner
  std::vector<std::uint64_t> improving_;    // bitmask rows, stride_ words
  std::size_t stride_ = 1;
  std::vector<MinerId> unstable_;           // sorted by miner id
  std::vector<std::uint8_t> unstable_flag_;
  std::size_t total_improving_ = 0;
};

}  // namespace goc::dynamics
