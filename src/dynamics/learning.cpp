#include "dynamics/learning.hpp"

#include <optional>

#include "core/moves.hpp"
#include "dynamics/best_response_index.hpp"
#include "potential/list_potential.hpp"
#include "potential/observations.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc {

namespace {

/// FNV-1a over the identifying fields of a move (gain is derived).
void hash_move(std::uint64_t& h, const Move& move) {
  fnv::mix_word(h, move.miner.value);
  fnv::mix_word(h, move.from.value);
  fnv::mix_word(h, move.to.value);
}

}  // namespace

LearningResult run_learning(const Game& game, Configuration start,
                            Scheduler& scheduler, const LearningOptions& options) {
  GOC_CHECK_ARG(&start.system() == &game.system(),
                "configuration belongs to a different system");
  GOC_CHECK_ARG(game.respects_access(start),
                "start configuration violates the game's access policy");
  LearningResult result{std::move(start), 0, false, Trace{}};
  Configuration& s = result.final_configuration;

  const bool keep_moves = options.record_moves || options.record_configurations;
  if (options.record_configurations) result.trace.set_start(s);

  PotentialKey prev_key;
  if (options.audit_potential) prev_key = potential_key(game, s);

  // No index for schedulers that would fall back to the scan anyway:
  // external Scheduler subclasses pay nothing for the fast path.
  std::optional<dynamics::BestResponseIndex> index;
  if (options.use_index && scheduler.supports_index()) index.emplace(game, s);

  while (result.steps < options.max_steps) {
    const auto move = index ? scheduler.pick_indexed(game, s, *index)
                            : scheduler.pick(game, s);
    if (!move) {
      result.converged = true;
      break;
    }
    GOC_ASSERT(move->from == s.of(move->miner),
               "scheduler produced a move that does not apply");
    GOC_ASSERT(move->gain.is_positive(),
               "scheduler produced a non-improving move");
    if (options.audit_potential) {
      GOC_ASSERT(observation1_holds(game, s, *move),
                 "Observation 1 violated: mover descended in list(s)");
      GOC_ASSERT(observation2_holds(game, s, *move),
                 "Observation 2 violated: RPU did not rise on both coins");
    }
    s.move(move->miner, move->to);
    if (index) index->sync(s);
    ++result.steps;
    hash_move(result.move_hash, *move);
    if (keep_moves) {
      result.trace.add_step(
          *move, options.record_configurations ? &s : nullptr);
    }
    if (options.audit_potential) {
      PotentialKey key = potential_key(game, s);
      GOC_ASSERT(prev_key < key,
                 "Theorem 1 violated: ordinal potential did not increase");
      prev_key = std::move(key);
      if (index) index->audit();
    }
  }
  if (!result.converged) {
    // Cap hit — distinguish "still improving" from "converged on the nose".
    result.converged = is_equilibrium(game, s);
  }
  return result;
}

LearningResult run_learning_to_epsilon(const Game& game, Configuration start,
                                       const Rational& epsilon,
                                       const LearningOptions& options) {
  GOC_CHECK_ARG(!epsilon.is_negative(), "epsilon must be nonnegative");
  GOC_CHECK_ARG(&start.system() == &game.system(),
                "configuration belongs to a different system");
  GOC_CHECK_ARG(game.respects_access(start),
                "start configuration violates the game's access policy");
  LearningResult result{std::move(start), 0, false, Trace{}};
  Configuration& s = result.final_configuration;
  const bool keep_moves = options.record_moves || options.record_configurations;
  if (options.record_configurations) result.trace.set_start(s);

  std::optional<dynamics::BestResponseIndex> index;
  if (options.use_index) index.emplace(game, s);

  while (result.steps < options.max_steps) {
    // Globally maximal relative gain; ties toward lower miner/coin ids.
    std::optional<Move> best;
    Rational best_relative(0);
    if (index) {
      // The maximal-relative-gain move of a miner is its best response
      // (current payoff is fixed per miner), so only unstable miners'
      // cached bests compete. The strict `>` over the id-ordered unstable
      // set reproduces the scan's lowest-miner tie-break.
      for (const MinerId miner : index->unstable()) {
        const Rational relative =
            index->best_gain(miner) / game.payoff(s, miner);
        if (!best || relative > best_relative) {
          best = index->best_move(miner);
          best_relative = relative;
        }
      }
      if (options.audit_potential) index->audit();
    } else {
      for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
        const MinerId miner(p);
        const Rational current = game.payoff(s, miner);
        const CoinId here = s.of(miner);
        for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
          const CoinId coin(c);
          if (coin == here || !game.can_mine(miner, coin)) continue;
          const Rational after = game.payoff_if_move(s, miner, coin);
          if (after <= current) continue;
          const Rational relative = (after - current) / current;
          if (!best || relative > best_relative) {
            best = Move{miner, here, coin, after - current};
            best_relative = relative;
          }
        }
      }
    }
    if (!best || !(best_relative > epsilon)) {
      result.converged = true;  // ε-equilibrium reached (exact when ε == 0)
      break;
    }
    s.move(best->miner, best->to);
    if (index) index->sync(s);
    ++result.steps;
    hash_move(result.move_hash, *best);
    if (keep_moves) {
      result.trace.add_step(*best,
                            options.record_configurations ? &s : nullptr);
    }
  }
  if (!result.converged) {
    result.converged = is_epsilon_equilibrium(game, s, epsilon);
  }
  GOC_DASSERT(!result.converged || is_epsilon_equilibrium(game, s, epsilon),
              "epsilon driver stopped away from an epsilon-equilibrium");
  return result;
}

}  // namespace goc
