#pragma once

#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/moves.hpp"
#include "util/table.hpp"

/// \file trace.hpp
/// Recording of better-response trajectories for auditing and reporting.
///
/// A trace stores the move sequence and (optionally) every intermediate
/// configuration, letting tests replay Theorem 1's potential-ascent
/// argument step by step and letting benches export migration time series.

namespace goc {

class Trace {
 public:
  Trace() = default;

  /// `start` must be provided before steps when configurations are kept.
  void set_start(const Configuration& start) { configurations_ = {start}; }

  /// Appends a step; when `after` is non-null the configuration snapshot is
  /// kept as well.
  void add_step(const Move& move, const Configuration* after);

  const std::vector<Move>& moves() const noexcept { return moves_; }

  /// Snapshots including the start configuration; empty when snapshots were
  /// not recorded. `configurations()[k]` is the state *before* move k.
  const std::vector<Configuration>& configurations() const noexcept {
    return configurations_;
  }

  std::size_t size() const noexcept { return moves_.size(); }
  bool empty() const noexcept { return moves_.empty(); }

  /// step | miner | from | to | gain table.
  Table to_table() const;

  std::string to_string() const;

 private:
  std::vector<Move> moves_;
  std::vector<Configuration> configurations_;
};

}  // namespace goc
