#include "dynamics/scheduler.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace goc {
namespace {

/// Builds the Move record for miner p moving to its best response.
std::optional<Move> best_response_move(const Game& game, const Configuration& s,
                                       MinerId p) {
  const auto target = best_response(game, s, p);
  if (!target) return std::nullopt;
  return Move{p, s.of(p), *target, move_gain(game, s, p, *target)};
}

class RandomMoveScheduler final : public Scheduler {
 public:
  explicit RandomMoveScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    std::vector<Move> moves = all_better_response_moves(game, s);
    if (moves.empty()) return std::nullopt;
    return moves[rng_.pick_index(moves)];
  }
  std::string name() const override { return "random-move"; }

 private:
  Rng rng_;
};

class RandomMinerScheduler final : public Scheduler {
 public:
  explicit RandomMinerScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const std::vector<MinerId> unstable = unstable_miners(game, s);
    if (unstable.empty()) return std::nullopt;
    const MinerId p = unstable[rng_.pick_index(unstable)];
    const std::vector<CoinId> options = better_responses(game, s, p);
    GOC_ASSERT(!options.empty(), "unstable miner without better responses");
    const CoinId to = options[rng_.pick_index(options)];
    return Move{p, s.of(p), to, move_gain(game, s, p, to)};
  }
  std::string name() const override { return "random-miner"; }

 private:
  Rng rng_;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const std::size_t n = game.num_miners();
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      const MinerId p(static_cast<std::uint32_t>(cursor_));
      cursor_ = (cursor_ + 1) % n;
      if (auto move = best_response_move(game, s, p)) return move;
    }
    return std::nullopt;
  }
  std::string name() const override { return "round-robin"; }
  void reset() override { cursor_ = 0; }

 private:
  std::size_t cursor_ = 0;
};

/// Shared implementation for global gain-extremal schedulers.
template <bool kMax>
class GainExtremalScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    std::vector<Move> moves = all_better_response_moves(game, s);
    if (moves.empty()) return std::nullopt;
    const auto better = [](const Move& a, const Move& b) {
      if (a.gain != b.gain) return kMax ? a.gain > b.gain : a.gain < b.gain;
      if (a.miner != b.miner) return a.miner < b.miner;
      return a.to < b.to;
    };
    return *std::min_element(moves.begin(), moves.end(),
                             [&](const Move& a, const Move& b) {
                               return better(a, b);
                             });
  }
  std::string name() const override { return kMax ? "max-gain" : "min-gain"; }
};

/// Power-ordered schedulers: the heaviest (or lightest) unstable miner takes
/// its best response; ties break on miner id.
template <bool kLargest>
class PowerOrderedScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const std::vector<MinerId> unstable = unstable_miners(game, s);
    if (unstable.empty()) return std::nullopt;
    const System& system = game.system();
    MinerId chosen = unstable.front();
    for (const MinerId p : unstable) {
      const bool strictly_better =
          kLargest ? system.power(p) > system.power(chosen)
                   : system.power(p) < system.power(chosen);
      if (strictly_better) chosen = p;
    }
    return best_response_move(game, s, chosen);
  }
  std::string name() const override {
    return kLargest ? "largest-first" : "smallest-first";
  }
};

class LexicographicScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
      const MinerId miner(p);
      const std::vector<CoinId> options = better_responses(game, s, miner);
      if (!options.empty()) {
        const CoinId to = options.front();
        return Move{miner, s.of(miner), to, move_gain(game, s, miner, to)};
      }
    }
    return std::nullopt;
  }
  std::string name() const override { return "lexicographic"; }
};

}  // namespace

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kRandomMove,   SchedulerKind::kRandomMiner,
      SchedulerKind::kRoundRobin,   SchedulerKind::kMaxGain,
      SchedulerKind::kMinGain,      SchedulerKind::kLargestFirst,
      SchedulerKind::kSmallestFirst, SchedulerKind::kLexicographic};
  return kinds;
}

std::string scheduler_kind_name(SchedulerKind kind) {
  return make_scheduler(kind)->name();
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kRandomMove:
      return std::make_unique<RandomMoveScheduler>(seed);
    case SchedulerKind::kRandomMiner:
      return std::make_unique<RandomMinerScheduler>(seed);
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kMaxGain:
      return std::make_unique<GainExtremalScheduler<true>>();
    case SchedulerKind::kMinGain:
      return std::make_unique<GainExtremalScheduler<false>>();
    case SchedulerKind::kLargestFirst:
      return std::make_unique<PowerOrderedScheduler<true>>();
    case SchedulerKind::kSmallestFirst:
      return std::make_unique<PowerOrderedScheduler<false>>();
    case SchedulerKind::kLexicographic:
      return std::make_unique<LexicographicScheduler>();
  }
  GOC_ASSERT(false, "unknown scheduler kind");
  return nullptr;
}

}  // namespace goc
