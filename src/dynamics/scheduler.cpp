#include "dynamics/scheduler.hpp"

#include <algorithm>

#include "dynamics/best_response_index.hpp"
#include "util/assert.hpp"

namespace goc {
namespace {

using dynamics::BestResponseIndex;

/// Builds the Move record for miner p moving to its best response.
std::optional<Move> best_response_move(const Game& game, const Configuration& s,
                                       MinerId p) {
  const auto target = best_response(game, s, p);
  if (!target) return std::nullopt;
  return Move{p, s.of(p), *target, move_gain(game, s, p, *target)};
}

class RandomMoveScheduler final : public Scheduler {
 public:
  explicit RandomMoveScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    // Count-then-select: one uniform draw over the same (miner, coin)
    // ordering the old materialized vector had, but without building (and
    // copying) n·|C| Move records with Rational gains every step.
    const std::size_t total = count_all_better_response_moves(game, s);
    if (total == 0) return std::nullopt;
    return nth_better_response_move(game, s, rng_.next_below(total));
  }

  std::optional<Move> pick_indexed(const Game& game, const Configuration& s,
                                   const BestResponseIndex& index) override {
    (void)game;
    (void)s;
    const std::size_t total = index.total_improving();
    if (total == 0) return std::nullopt;
    std::size_t n = rng_.next_below(total);
    for (const MinerId p : index.unstable()) {
      const std::size_t here = index.improving_count(p);
      if (n < here) return index.move_to(p, index.nth_improving(p, n));
      n -= here;
    }
    GOC_ASSERT(false, "improving-move counts out of sync");
    return std::nullopt;
  }
  std::string name() const override { return "random-move"; }
  bool supports_index() const override { return true; }

 private:
  Rng rng_;
};

class RandomMinerScheduler final : public Scheduler {
 public:
  explicit RandomMinerScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const std::vector<MinerId> unstable = unstable_miners(game, s);
    if (unstable.empty()) return std::nullopt;
    const MinerId p = unstable[rng_.pick_index(unstable)];
    const std::vector<CoinId> options = better_responses(game, s, p);
    GOC_ASSERT(!options.empty(), "unstable miner without better responses");
    const CoinId to = options[rng_.pick_index(options)];
    return Move{p, s.of(p), to, move_gain(game, s, p, to)};
  }

  std::optional<Move> pick_indexed(const Game& game, const Configuration& s,
                                   const BestResponseIndex& index) override {
    (void)game;
    (void)s;
    const std::vector<MinerId>& unstable = index.unstable();
    if (unstable.empty()) return std::nullopt;
    const MinerId p = unstable[rng_.pick_index(unstable)];
    const std::size_t options = index.improving_count(p);
    GOC_ASSERT(options > 0, "unstable miner without better responses");
    const CoinId to = index.nth_improving(p, rng_.next_below(options));
    return index.move_to(p, to);
  }
  std::string name() const override { return "random-miner"; }
  bool supports_index() const override { return true; }

 private:
  Rng rng_;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const std::size_t n = game.num_miners();
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      const MinerId p(static_cast<std::uint32_t>(cursor_));
      cursor_ = (cursor_ + 1) % n;
      if (auto move = best_response_move(game, s, p)) return move;
    }
    return std::nullopt;
  }

  std::optional<Move> pick_indexed(const Game& game, const Configuration& s,
                                   const BestResponseIndex& index) override {
    (void)s;
    const std::size_t n = game.num_miners();
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      const MinerId p(static_cast<std::uint32_t>(cursor_));
      cursor_ = (cursor_ + 1) % n;
      if (!index.stable(p)) return index.best_move(p);
    }
    return std::nullopt;
  }
  std::string name() const override { return "round-robin"; }
  bool supports_index() const override { return true; }
  void reset() override { cursor_ = 0; }

 private:
  std::size_t cursor_ = 0;
};

/// Shared implementation for global gain-extremal schedulers.
template <bool kMax>
class GainExtremalScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    std::vector<Move> moves = all_better_response_moves(game, s);
    if (moves.empty()) return std::nullopt;
    const auto better = [](const Move& a, const Move& b) {
      if (a.gain != b.gain) return kMax ? a.gain > b.gain : a.gain < b.gain;
      if (a.miner != b.miner) return a.miner < b.miner;
      return a.to < b.to;
    };
    return *std::min_element(moves.begin(), moves.end(),
                             [&](const Move& a, const Move& b) {
                               return better(a, b);
                             });
  }

  std::optional<Move> pick_indexed(const Game& game, const Configuration& s,
                                   const BestResponseIndex& index) override {
    (void)game;
    (void)s;
    // The extremal move over all improving (miner, coin) pairs decomposes
    // per miner: the max-gain move of a miner is its best response, the
    // min-gain move its lowest-payoff improving coin — with lowest-coin-id
    // ties inside the miner, and the unstable scan in miner-id order with
    // strict comparisons reproducing the lowest-miner-id tie-break.
    // Cross-miner gain comparisons stay exact `Rational` (max-gain reads
    // the cached gains; min-gain computes one candidate gain per unstable
    // miner per pick — O(U) rational ops, traded against the considerably
    // hairier i128 form of m_p·(F(t)/(M_t+m_p) − F(x)/M_x) comparisons).
    std::optional<Move> chosen;
    for (const MinerId p : index.unstable()) {
      Move candidate = kMax
                           ? *index.best_move(p)
                           : index.move_to(p, index.min_improving(p));
      if (!chosen ||
          (kMax ? candidate.gain > chosen->gain
                : candidate.gain < chosen->gain)) {
        chosen = std::move(candidate);
      }
    }
    return chosen;
  }
  std::string name() const override { return kMax ? "max-gain" : "min-gain"; }
  bool supports_index() const override { return true; }
};

/// Power-ordered schedulers: the heaviest (or lightest) unstable miner takes
/// its best response; ties break on miner id.
template <bool kLargest>
class PowerOrderedScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    const std::vector<MinerId> unstable = unstable_miners(game, s);
    if (unstable.empty()) return std::nullopt;
    return best_response_move(game, s, choose(game, unstable));
  }

  std::optional<Move> pick_indexed(const Game& game, const Configuration& s,
                                   const BestResponseIndex& index) override {
    (void)s;
    const std::vector<MinerId>& unstable = index.unstable();
    if (unstable.empty()) return std::nullopt;
    return index.best_move(choose(game, unstable));
  }
  std::string name() const override {
    return kLargest ? "largest-first" : "smallest-first";
  }
  bool supports_index() const override { return true; }

 private:
  static MinerId choose(const Game& game,
                        const std::vector<MinerId>& unstable) {
    const System& system = game.system();
    MinerId chosen = unstable.front();
    for (const MinerId p : unstable) {
      const bool strictly_better =
          kLargest ? system.power(p) > system.power(chosen)
                   : system.power(p) < system.power(chosen);
      if (strictly_better) chosen = p;
    }
    return chosen;
  }
};

class LexicographicScheduler final : public Scheduler {
 public:
  std::optional<Move> pick(const Game& game, const Configuration& s) override {
    for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
      const MinerId miner(p);
      const std::vector<CoinId> options = better_responses(game, s, miner);
      if (!options.empty()) {
        const CoinId to = options.front();
        return Move{miner, s.of(miner), to, move_gain(game, s, miner, to)};
      }
    }
    return std::nullopt;
  }

  std::optional<Move> pick_indexed(const Game& game, const Configuration& s,
                                   const BestResponseIndex& index) override {
    (void)game;
    (void)s;
    if (index.unstable().empty()) return std::nullopt;
    const MinerId miner = index.unstable().front();
    return index.move_to(miner, index.nth_improving(miner, 0));
  }
  std::string name() const override { return "lexicographic"; }
  bool supports_index() const override { return true; }
};

}  // namespace

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kRandomMove,   SchedulerKind::kRandomMiner,
      SchedulerKind::kRoundRobin,   SchedulerKind::kMaxGain,
      SchedulerKind::kMinGain,      SchedulerKind::kLargestFirst,
      SchedulerKind::kSmallestFirst, SchedulerKind::kLexicographic};
  return kinds;
}

const std::string& scheduler_kind_name(SchedulerKind kind) {
  // Interned: derived from Scheduler::name() once at first use instead of
  // constructing a scheduler object per call. Indexed by enum value (no
  // ordering assumption on all_scheduler_kinds()).
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const SchedulerKind k : all_scheduler_kinds()) {
      const auto index = static_cast<std::size_t>(k);
      if (names.size() <= index) names.resize(index + 1);
      names[index] = make_scheduler(k)->name();
    }
    return names;
  }();
  const auto index = static_cast<std::size_t>(kind);
  GOC_ASSERT(index < kNames.size() && !kNames[index].empty(),
             "unknown scheduler kind");
  return kNames[index];
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kRandomMove:
      return std::make_unique<RandomMoveScheduler>(seed);
    case SchedulerKind::kRandomMiner:
      return std::make_unique<RandomMinerScheduler>(seed);
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kMaxGain:
      return std::make_unique<GainExtremalScheduler<true>>();
    case SchedulerKind::kMinGain:
      return std::make_unique<GainExtremalScheduler<false>>();
    case SchedulerKind::kLargestFirst:
      return std::make_unique<PowerOrderedScheduler<true>>();
    case SchedulerKind::kSmallestFirst:
      return std::make_unique<PowerOrderedScheduler<false>>();
    case SchedulerKind::kLexicographic:
      return std::make_unique<LexicographicScheduler>();
  }
  GOC_ASSERT(false, "unknown scheduler kind");
  return nullptr;
}

}  // namespace goc
