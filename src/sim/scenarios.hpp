#pragma once

#include <cstdint>

#include "chain/chain_sim.hpp"
#include "sim/event_core.hpp"

/// \file scenarios.hpp
/// Canonical Monte Carlo reference workloads, single-sourced.
///
/// The reference chain scenario used to live inside bench_des.cpp; the
/// serve daemon needs the *same* workload so that a daemon-submitted batch
/// and the one-shot bench run produce bit-identical `values_hash` — the
/// determinism contract CI asserts. Moving the factory here makes that
/// identity true by construction: both callers stamp replicas from one
/// definition, and any change to the workload changes both sides at once.

namespace goc::sim {

/// Shape of the reference chain workload (defaults are the full-size
/// bench_des batch scenario; `bench_des --quick` passes 128/8/10).
struct ReferenceChainParams {
  std::size_t miners = 256;
  std::size_t chains = 8;
  double days = 20.0;
  /// 0 = sequential decision epochs; >= 1 = the sharded frozen-state
  /// epoch (bit-identical at any lane count).
  std::size_t epoch_lanes = 0;
};

/// The reference chain workload: a heavy-tailed population spread over
/// many chains under game-semantics migration — block events dominate,
/// and the legacy path pays a full miner scan per block. Deterministic in
/// (params, engine, seed).
chain::MultiChainSimulator make_reference_chain(
    const ReferenceChainParams& params, EngineKind engine, std::uint64_t seed);

}  // namespace goc::sim
