#include "sim/batch_cli.hpp"

namespace goc::sim {

void apply_batch_cli(const Cli& cli, TrajectoryBatchOptions& options) {
  options.replicas = cli.get_u64("replicas", options.replicas);
  options.threads = cli.get_u64("threads", options.threads);
  const bool preseeded = options.stopping.has_value();
  const std::string metric =
      cli.get_string("stop-metric", preseeded ? options.stopping->metric : "");
  if (!metric.empty()) {
    StoppingRule rule;
    if (preseeded) rule = *options.stopping;
    rule.metric = metric;
    rule.tolerance = cli.get_double("stop-tol", rule.tolerance);
    rule.relative = cli.get_bool("stop-rel", rule.relative);
    rule.min_replicas = cli.get_u64("stop-min", rule.min_replicas);
    // A pre-seeded ceiling is a deliberate default and must survive (the
    // documented contract); only a rule born from the flags alone falls
    // back to --replicas, so "the same study, adaptive" is one extra flag.
    rule.max_replicas = cli.get_u64(
        "stop-max", preseeded ? rule.max_replicas : options.replicas);
    rule.wave = cli.get_u64("stop-wave", rule.wave);
    options.stopping = rule;
  }
  const std::string checkpoint = cli.get_string("checkpoint", "");
  if (!checkpoint.empty()) {
    replay::CheckpointOptions ckpt;
    ckpt.path = checkpoint;
    ckpt.interval = cli.get_u64("checkpoint-interval", ckpt.interval);
    options.checkpoint = ckpt;
  }
}

const std::vector<std::string>& batch_cli_names() {
  static const std::vector<std::string> kNames = {
      "replicas",  "threads",  "stop-metric", "stop-tol",
      "stop-rel",  "stop-min", "stop-max",    "stop-wave",
      "checkpoint", "checkpoint-interval"};
  return kNames;
}

std::size_t epoch_lanes_from_cli(const Cli& cli, std::size_t fallback) {
  return static_cast<std::size_t>(cli.get_u64("epoch-lanes", fallback));
}

}  // namespace goc::sim
