#pragma once

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

/// \file event_core.hpp
/// The flat discrete-event core — layer 1 of the `sim/` subsystem.
///
/// The legacy `chain::EventQueue` stores one `std::function` per event: a
/// heap allocation at schedule time, an indirect call at dispatch, and
/// 48-byte items churning through `std::priority_queue`. This core replaces
/// the callback with a type-tagged POD `Event` dispatched by enum switch at
/// the call site, stored in an explicit binary heap over a reusable
/// `std::vector` — zero per-event allocation once the heap has warmed up.
///
/// Two facilities the simulators used to re-implement per call site live in
/// the core itself:
///  * **FIFO tie-breaking** — events at equal times pop in schedule order
///    (a monotone sequence number participates in the heap order), so event
///    trajectories are deterministic without epsilon time offsets;
///  * **generation-counter invalidation** — each (type, subject) stream
///    carries a generation; `schedule` stamps the current one onto the
///    event and `invalidate` bumps it, so stale events (a block race whose
///    rate changed when miners migrated) are skipped inside `pop` without
///    ever reaching the dispatch switch. The exponential race is
///    memoryless, so resampling after an invalidation is statistically
///    exact — same contract as the legacy queue, now enforced centrally.

namespace goc::sim {

/// Which simulators run on which engine. The flat core is the hot path;
/// the legacy `chain::EventQueue` / epoch-loop path is retained as the
/// reference implementation (same role as the `*_scan` walkers of the
/// enumeration engine) and must produce bit-identical trajectories.
enum class EngineKind {
  kFlat,    ///< sim::EventCore, enum-switch dispatch (default)
  kLegacy,  ///< std::function queue / plain epoch loop (reference)
};

/// Event vocabulary of the stochastic simulators. `subject` is the chain
/// index for kBlockFound, the coin index for kPriceTick / kFeeUpdate, and
/// unused (0) for kDecisionEpoch.
enum class EventType : std::uint8_t {
  kBlockFound = 0,
  kDecisionEpoch = 1,
  kPriceTick = 2,
  kFeeUpdate = 3,
};
inline constexpr std::size_t kNumEventTypes = 4;

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;         ///< schedule order; breaks time ties FIFO
  std::uint32_t subject = 0;     ///< stream index within the type
  std::uint32_t generation = 0;  ///< stream generation at schedule time
  EventType type = EventType::kBlockFound;
};
static_assert(std::is_trivially_copyable_v<Event>,
              "events must stay POD — the heap moves them by plain copy");

class EventCore {
 public:
  /// Declares `count` subject streams for `type` (resets their
  /// generations). Scheduling on an undeclared stream is an error.
  void declare_streams(EventType type, std::size_t count);

  /// Schedules an event at absolute `time` (must be ≥ now()), stamped with
  /// the stream's current generation.
  void schedule(double time, EventType type, std::uint32_t subject);

  /// Bumps the stream's generation: every pending event scheduled on it
  /// becomes stale and will be silently dropped by `pop`.
  void invalidate(EventType type, std::uint32_t subject);

  /// Pops the earliest *live* event into `out` and advances the clock to
  /// its time. Stale events are skipped. Returns false when drained.
  bool pop(Event& out);

  /// Like `pop`, restricted to events with time ≤ `t_end`. When no live
  /// event remains in the window the clock advances to `t_end` (mirroring
  /// the legacy queue's `run_until`) and false is returned.
  bool pop_until(Event& out, double t_end);

  double now() const noexcept { return now_; }
  /// Pending events, stale ones included.
  std::size_t pending() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  /// Drops all pending events (clock and generations unchanged, capacity
  /// retained — reuse across replicas does not reallocate).
  void clear() noexcept { heap_.clear(); }

  /// Clears events, rewinds the clock to `now`, and resets the sequence
  /// counter; stream declarations and capacity survive.
  void reset(double now = 0.0);

 private:
  static bool earlier(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  bool pop_raw(Event& out) noexcept;  ///< heap pop, no staleness check
  bool is_stale(const Event& e) const noexcept {
    return generations_[static_cast<std::size_t>(e.type)][e.subject] !=
           e.generation;
  }

  std::vector<Event> heap_;  ///< explicit binary min-heap by (time, seq)
  std::array<std::vector<std::uint32_t>, kNumEventTypes> generations_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace goc::sim
