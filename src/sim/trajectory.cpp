#include "sim/trajectory.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc::sim {

namespace {

struct BatchMetrics {
  obs::Counter& batches;
  obs::Counter& replicas_run;
  obs::Counter& replicas_saved;
  obs::Histogram& wave_ns;
  obs::Histogram& checkpoint_write_ns;
  obs::Histogram& wall_ns;

  static BatchMetrics& get() {
    static BatchMetrics m{
        obs::Registry::instance().counter("sim.batch.batches"),
        obs::Registry::instance().counter("sim.batch.replicas_run"),
        obs::Registry::instance().counter("sim.batch.replicas_saved"),
        obs::Registry::instance().histogram("sim.batch.wave_ns"),
        obs::Registry::instance().histogram("sim.batch.checkpoint_write_ns"),
        obs::Registry::instance().histogram("sim.batch.wall_ns"),
    };
    return m;
  }
};

}  // namespace

const char* stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kFixedReplicas:
      return "fixed";
    case StopReason::kToleranceMet:
      return "tolerance";
    case StopReason::kMaxReplicas:
      return "max-replicas";
  }
  return "unknown";
}

NestedLanePlan plan_nested_lanes(std::size_t replicas, std::size_t lanes,
                                 std::size_t miners,
                                 std::size_t epoch_cutoff) noexcept {
  NestedLanePlan plan;
  if (lanes == 0) lanes = engine::ThreadPool::default_threads();
  if (lanes <= 1) return plan;  // serial everywhere: {1, 1}
  if (miners < epoch_cutoff) {
    plan.replica_lanes = lanes;  // population too small to shard an epoch
    return plan;
  }
  // Both levels could use the pool; give it to the replica fan-out whenever
  // the batch is wide enough to keep at least half the lanes busy (replica
  // parallelism has no serial apply phase, so it scales strictly better).
  // Only a batch too narrow to feed the lanes hands the pool down to the
  // epoch evaluate shards.
  if (replicas * 2 >= lanes) {
    plan.replica_lanes = lanes;
  } else {
    plan.epoch_lanes = lanes;
  }
  return plan;
}

TrajectoryBatchResult::TrajectoryBatchResult(
    std::vector<std::string> metric_names, std::size_t replicas,
    std::vector<double> values, std::uint64_t root_seed,
    std::size_t replicas_requested, StopReason stop_reason)
    : names_(std::move(metric_names)),
      replicas_(replicas),
      root_seed_(root_seed),
      replicas_requested_(replicas_requested == 0 ? replicas
                                                  : replicas_requested),
      stop_reason_(stop_reason),
      values_(std::move(values)) {
  GOC_CHECK_ARG(replicas_ >= 1, "a batch needs at least one replica");
  GOC_CHECK_ARG(!names_.empty(), "a batch needs at least one metric");
  GOC_CHECK_ARG(values_.size() == replicas_ * names_.size(),
                "value matrix arity mismatch");
  // Welford in replica order: the summaries are a pure function of the
  // value matrix, so they inherit its thread-count invariance.
  summaries_.resize(names_.size());
  for (std::size_t m = 0; m < names_.size(); ++m) {
    MetricSummary& s = summaries_[m];
    s.name = names_[m];
    s.replicas = replicas_;
    double mean = 0.0, m2 = 0.0;
    for (std::size_t r = 0; r < replicas_; ++r) {
      const double x = value(r, m);
      if (r == 0) {
        s.min = s.max = x;
      } else {
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
      }
      const double delta = x - mean;
      mean += delta / static_cast<double>(r + 1);
      m2 += delta * (x - mean);
    }
    s.mean = mean;
    if (replicas_ > 1) {
      s.variance = m2 / static_cast<double>(replicas_ - 1);
      s.stddev = std::sqrt(s.variance);
      s.ci95_halfwidth = 1.959963984540054 * s.stddev /
                         std::sqrt(static_cast<double>(replicas_));
    }
  }
}

const MetricSummary& TrajectoryBatchResult::summary(
    const std::string& name) const {
  for (const MetricSummary& s : summaries_) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown metric name: " + name);
}

std::uint64_t TrajectoryBatchResult::values_hash() const noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const double v : values_) fnv::mix_bytes(h, v);
  return h;
}

Table TrajectoryBatchResult::to_table(int precision) const {
  Table table({"metric", "mean", "ci95", "sd", "min", "max", "replicas"});
  for (const MetricSummary& s : summaries_) {
    table.row() << s.name << fmt_double(s.mean, precision)
                << fmt_double(s.ci95_halfwidth, precision)
                << fmt_double(s.stddev, precision)
                << fmt_double(s.min, precision) << fmt_double(s.max, precision)
                << std::uint64_t(s.replicas);
  }
  return table;
}

bool TrajectoryBatchResult::deterministic_equals(
    const TrajectoryBatchResult& other) const {
  if (names_ != other.names_ || replicas_ != other.replicas_ ||
      values_.size() != other.values_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(values_[i]) !=
        std::bit_cast<std::uint64_t>(other.values_[i])) {
      return false;
    }
  }
  return true;
}

TrajectoryBatchResult run_trajectory_batch(
    std::vector<std::string> metric_names,
    const TrajectoryBatchOptions& options,
    const std::function<std::vector<double>(std::size_t replica,
                                            std::uint64_t seed)>& replica) {
  GOC_CHECK_ARG(replica != nullptr, "a batch needs a replica function");
  const std::size_t metrics = metric_names.size();
  GOC_CHECK_ARG(metrics >= 1, "a batch needs at least one metric");

  std::size_t metric_index = 0;
  std::size_t requested = options.replicas;
  if (options.stopping.has_value()) {
    const StoppingRule& rule = *options.stopping;
    GOC_CHECK_ARG(std::isfinite(rule.tolerance) && rule.tolerance >= 0.0,
                  "stopping tolerance must be finite and non-negative");
    GOC_CHECK_ARG(rule.min_replicas >= 2,
                  "stopping needs min_replicas >= 2 (a CI needs a variance)");
    GOC_CHECK_ARG(rule.max_replicas >= rule.min_replicas,
                  "stopping needs max_replicas >= min_replicas");
    GOC_CHECK_ARG(rule.wave >= 1, "stopping needs a wave of >= 1 replicas");
    const auto it =
        std::find(metric_names.begin(), metric_names.end(), rule.metric);
    GOC_CHECK_ARG(it != metric_names.end(),
                  "stopping metric is not one of the batch's metrics");
    metric_index = static_cast<std::size_t>(it - metric_names.begin());
    requested = rule.max_replicas;
  } else {
    GOC_CHECK_ARG(options.replicas >= 1, "a batch needs at least one replica");
  }

  const replay::CheckpointOptions* ckpt =
      options.checkpoint.has_value() ? &*options.checkpoint : nullptr;
  if (ckpt != nullptr) {
    GOC_CHECK_ARG(!ckpt->path.empty(), "checkpointing needs a path");
    GOC_CHECK_ARG(ckpt->interval >= 1, "checkpoint interval must be >= 1");
  }
  if (options.on_progress) {
    GOC_CHECK_ARG(options.progress_interval >= 1,
                  "progress reporting needs an interval of >= 1 replicas");
  }

  BatchMetrics& metrics_obs = BatchMetrics::get();
  metrics_obs.batches.add();
  obs::Span wall(metrics_obs.wall_ns);

  const auto report = [&](std::size_t done, double ci) {
    if (options.on_progress) {
      BatchProgress progress;
      progress.completed = done;
      progress.requested = requested;
      progress.ci_halfwidth = ci;
      options.on_progress(progress);
    }
  };

  // Slot writes into a pre-sized matrix: replica r's value row depends only
  // on (root_seed, r), never on scheduling.
  std::vector<double> values(requested * metrics, 0.0);

  // Resume: a checkpoint's row prefix is ground truth (rows are pure
  // functions of (root_seed, r)), so adopting it and re-entering the wave
  // loop reproduces the uninterrupted run bit-for-bit. Salvage mode keeps
  // a damaged artifact's longest valid prefix — losing at most one wave —
  // while magic/version/header damage still surfaces as a typed error.
  std::size_t completed = 0;
  if (ckpt != nullptr && ckpt->resume && replay::file_exists(ckpt->path)) {
    const replay::BatchCheckpoint loaded =
        replay::BatchCheckpoint::load(ckpt->path, /*salvage=*/true);
    const auto mismatch = [&](const char* what) {
      throw replay::ReplayException(
          replay::ReplayError::kHeaderMismatch,
          std::string("checkpoint does not match this batch: ") + what);
    };
    if (loaded.root_seed != options.root_seed) mismatch("root seed differs");
    if (loaded.metric_names != metric_names) mismatch("metric names differ");
    if (loaded.adaptive != options.stopping.has_value()) {
      mismatch("fixed/adaptive mode differs");
    }
    if (loaded.replicas_requested != requested) {
      mismatch("replica ceiling differs");
    }
    if (options.config_hash != 0 && loaded.config_hash != options.config_hash) {
      mismatch("scenario config hash differs");
    }
    completed = std::min(loaded.completed, requested);
    std::copy(loaded.values.begin(),
              loaded.values.begin() +
                  static_cast<std::ptrdiff_t>(completed * metrics),
              values.begin());
  }

  const auto write_checkpoint = [&](std::size_t done) {
    replay::BatchCheckpoint cp;
    cp.root_seed = options.root_seed;
    cp.config_hash = options.config_hash;
    cp.metric_names = metric_names;
    cp.replicas_requested = requested;
    cp.adaptive = options.stopping.has_value();
    cp.completed = done;
    cp.values.assign(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(done * metrics));
    obs::Span span(metrics_obs.checkpoint_write_ns);
    cp.save(ckpt->path);
    if (ckpt->on_write) ckpt->on_write(done);
  };

  // Cancellation granularity is one replica: `parallel_for` stops handing
  // out indices after the first throw, so a cancel lands within one unit
  // of replica work plus whatever is already in flight.
  const auto run_range = [&](engine::ThreadPool& pool, std::size_t begin,
                             std::size_t end) {
    obs::Span span(metrics_obs.wave_ns);
    metrics_obs.replicas_run.add(end - begin);
    pool.parallel_for(end - begin, [&](std::size_t k) {
      options.cancel.throw_if_stale("trajectory batch cancelled");
      const std::size_t r = begin + k;
      const std::uint64_t seed = engine::task_seed(options.root_seed, r, 0);
      const std::vector<double> row = replica(r, seed);
      GOC_CHECK_ARG(row.size() == metrics,
                    "replica returned the wrong number of metrics");
      std::copy(row.begin(), row.end(), values.begin() + r * metrics);
    });
  };

  std::optional<engine::ThreadPool> owned;
  engine::ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    const std::size_t lanes =
        engine::ThreadPool::resolve_lanes(options.threads);
    owned.emplace(engine::ThreadPool::workers_for(lanes));
    pool = &*owned;
  }

  options.cancel.throw_if_stale("trajectory batch cancelled before start");

  std::size_t run_count = 0;
  StopReason reason = StopReason::kFixedReplicas;
  if (!options.stopping.has_value()) {
    if (ckpt == nullptr && !options.on_progress) {
      run_range(*pool, 0, requested);
    } else {
      // Interval chunks aligned to multiples of `interval` regardless of
      // where a salvaged prefix landed, so the persisted boundaries are
      // the same whether or not the batch was ever interrupted. Progress
      // reporting reuses the same chunking (checkpoint interval when both
      // are on — one wave, two observers); slot writes keep the value
      // matrix bit-identical however the range is carved up.
      const std::size_t interval =
          ckpt != nullptr ? ckpt->interval : options.progress_interval;
      while (completed < requested) {
        const std::size_t next =
            std::min(requested, ((completed / interval) + 1) * interval);
        run_range(*pool, completed, next);
        completed = next;
        if (ckpt != nullptr) write_checkpoint(completed);
        report(completed, 0.0);
      }
    }
    run_count = requested;
  } else {
    const StoppingRule& rule = *options.stopping;
    reason = StopReason::kMaxReplicas;
    while (run_count < rule.max_replicas) {
      options.cancel.throw_if_stale("trajectory batch cancelled");
      // Wave boundaries depend only on (min_replicas, max_replicas, wave):
      // the first wave jumps straight to min_replicas, later ones add a
      // fixed `wave` — never a lane-count-derived amount.
      const std::size_t next =
          run_count == 0 ? rule.min_replicas
                         : std::min(rule.max_replicas, run_count + rule.wave);
      if (next > completed) {
        // A resumed prefix can end mid-wave (a salvaged artifact keeps
        // whatever rows survived); only the missing tail runs.
        run_range(*pool, completed, next);
        completed = next;
        if (ckpt != nullptr) write_checkpoint(completed);
      }
      run_count = next;
      // Welford over the replica-ordered prefix [0, run_count): the stop
      // decision is a pure function of the prefix, so the chosen R is
      // identical at any thread count.
      double mean = 0.0;
      double m2 = 0.0;
      for (std::size_t r = 0; r < run_count; ++r) {
        const double x = values[r * metrics + metric_index];
        const double delta = x - mean;
        mean += delta / static_cast<double>(r + 1);
        m2 += delta * (x - mean);
      }
      const double variance = m2 / static_cast<double>(run_count - 1);
      const double ci = 1.959963984540054 * std::sqrt(variance) /
                        std::sqrt(static_cast<double>(run_count));
      const double bound =
          rule.relative ? rule.tolerance * std::abs(mean) : rule.tolerance;
      report(run_count, ci);
      if (ci <= bound) {
        reason = StopReason::kToleranceMet;
        break;
      }
    }
    values.resize(run_count * metrics);
    metrics_obs.replicas_saved.add(requested - run_count);
  }
  return TrajectoryBatchResult(std::move(metric_names), run_count,
                               std::move(values), options.root_seed, requested,
                               reason);
}

// ------------------------------------------------------- simulator adapters

const std::vector<std::string>& chain_batch_metrics() {
  static const std::vector<std::string> kNames = {
      "blocks_total", "blocks_share_chain0", "migrations", "share_mae",
      "reward_total_fiat"};
  return kNames;
}

std::vector<double> chain_replica_metrics(const chain::ChainSimResult& result) {
  std::uint64_t blocks = 0;
  for (const std::uint64_t b : result.blocks_per_chain) blocks += b;
  double reward = 0.0;
  for (const double r : result.miner_rewards_fiat) reward += r;
  const double share0 =
      blocks > 0 ? static_cast<double>(result.blocks_per_chain[0]) /
                       static_cast<double>(blocks)
                 : 0.0;
  return {static_cast<double>(blocks), share0,
          static_cast<double>(result.migrations), result.share_prediction_mae,
          reward};
}

TrajectoryBatchResult run_chain_batch(
    const std::function<chain::MultiChainSimulator(std::uint64_t seed)>&
        make_replica,
    const TrajectoryBatchOptions& options) {
  GOC_CHECK_ARG(make_replica != nullptr, "chain batch needs a factory");
  return run_trajectory_batch(
      chain_batch_metrics(), options,
      [&make_replica](std::size_t, std::uint64_t seed) {
        chain::MultiChainSimulator sim = make_replica(seed);
        return chain_replica_metrics(sim.run());
      });
}

const std::vector<std::string>& market_batch_metrics() {
  static const std::vector<std::string> kNames = {
      "mean_share_coin0", "final_share_coin0", "equilibrium_fraction",
      "br_steps_total", "final_price_coin0"};
  return kNames;
}

std::vector<double> market_replica_metrics(
    const std::vector<market::EpochRecord>& records) {
  double share_sum = 0.0;
  double at_eq = 0.0;
  double steps = 0.0;
  for (const market::EpochRecord& r : records) {
    share_sum += r.hashrate_share[0];
    if (r.at_equilibrium) at_eq += 1.0;
    steps += static_cast<double>(r.br_steps);
  }
  const double n = records.empty() ? 1.0 : static_cast<double>(records.size());
  const double final_share =
      records.empty() ? 0.0 : records.back().hashrate_share[0];
  const double final_price = records.empty() ? 0.0 : records.back().prices[0];
  return {share_sum / n, final_share, at_eq / n, steps, final_price};
}

TrajectoryBatchResult run_market_batch(
    const std::function<market::MarketSimulator(std::uint64_t seed)>&
        make_replica,
    const TrajectoryBatchOptions& options) {
  GOC_CHECK_ARG(make_replica != nullptr, "market batch needs a factory");
  return run_trajectory_batch(
      market_batch_metrics(), options,
      [&make_replica](std::size_t, std::uint64_t seed) {
        market::MarketSimulator sim = make_replica(seed);
        return market_replica_metrics(sim.run());
      });
}

TrajectoryBatchResult run_market_batch(const market::Scenario& scenario,
                                       const TrajectoryBatchOptions& options) {
  return run_market_batch(
      [&scenario](std::uint64_t seed) { return scenario.make_simulator(seed); },
      options);
}

// ------------------------------------------------------- trajectory hashes

std::uint64_t chain_result_hash(const chain::ChainSimResult& result) noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const std::uint64_t b : result.blocks_per_chain) fnv::mix_bytes(h, b);
  for (const double r : result.miner_rewards_fiat) fnv::mix_bytes(h, r);
  for (const std::uint64_t b : result.miner_blocks) fnv::mix_bytes(h, b);
  // share_prediction_mae is deliberately NOT hashed: the flat engine
  // accrues it through the stint integral, the legacy engine per block, so
  // it agrees across engines only to FP tolerance (see ChainSimResult) —
  // every hashed field below is bit-identical.
  fnv::mix_bytes(h, result.migrations);
  for (const chain::TimelinePoint& p : result.timeline) {
    fnv::mix_bytes(h, p.t_hours);
    for (const double d : p.difficulty) fnv::mix_bytes(h, d);
    for (const double m : p.hashrate) fnv::mix_bytes(h, m);
    for (const std::uint64_t b : p.blocks) fnv::mix_bytes(h, b);
    for (const double w : p.reward_fiat) fnv::mix_bytes(h, w);
  }
  return h;
}

std::uint64_t market_records_hash(
    const std::vector<market::EpochRecord>& records) noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const market::EpochRecord& r : records) {
    fnv::mix_bytes(h, r.t_hours);
    for (const double p : r.prices) fnv::mix_bytes(h, p);
    for (const double w : r.weights) fnv::mix_bytes(h, w);
    for (const double s : r.hashrate_share) fnv::mix_bytes(h, s);
    fnv::mix_bytes(h, r.br_steps);
    fnv::mix_bytes(h, r.at_equilibrium ? std::uint64_t{1} : std::uint64_t{0});
  }
  return h;
}

}  // namespace goc::sim
