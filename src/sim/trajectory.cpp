#include "sim/trajectory.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc::sim {

TrajectoryBatchResult::TrajectoryBatchResult(
    std::vector<std::string> metric_names, std::size_t replicas,
    std::vector<double> values, std::uint64_t root_seed)
    : names_(std::move(metric_names)),
      replicas_(replicas),
      root_seed_(root_seed),
      values_(std::move(values)) {
  GOC_CHECK_ARG(!names_.empty(), "a batch needs at least one metric");
  GOC_CHECK_ARG(values_.size() == replicas_ * names_.size(),
                "value matrix arity mismatch");
  // Welford in replica order: the summaries are a pure function of the
  // value matrix, so they inherit its thread-count invariance.
  summaries_.resize(names_.size());
  for (std::size_t m = 0; m < names_.size(); ++m) {
    MetricSummary& s = summaries_[m];
    s.name = names_[m];
    s.replicas = replicas_;
    double mean = 0.0, m2 = 0.0;
    for (std::size_t r = 0; r < replicas_; ++r) {
      const double x = value(r, m);
      if (r == 0) {
        s.min = s.max = x;
      } else {
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
      }
      const double delta = x - mean;
      mean += delta / static_cast<double>(r + 1);
      m2 += delta * (x - mean);
    }
    s.mean = mean;
    if (replicas_ > 1) {
      s.variance = m2 / static_cast<double>(replicas_ - 1);
      s.stddev = std::sqrt(s.variance);
      s.ci95_halfwidth = 1.959963984540054 * s.stddev /
                         std::sqrt(static_cast<double>(replicas_));
    }
  }
}

const MetricSummary& TrajectoryBatchResult::summary(
    const std::string& name) const {
  for (const MetricSummary& s : summaries_) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown metric name: " + name);
}

std::uint64_t TrajectoryBatchResult::values_hash() const noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const double v : values_) fnv::mix_bytes(h, v);
  return h;
}

Table TrajectoryBatchResult::to_table(int precision) const {
  Table table({"metric", "mean", "ci95", "sd", "min", "max", "replicas"});
  for (const MetricSummary& s : summaries_) {
    table.row() << s.name << fmt_double(s.mean, precision)
                << fmt_double(s.ci95_halfwidth, precision)
                << fmt_double(s.stddev, precision)
                << fmt_double(s.min, precision) << fmt_double(s.max, precision)
                << std::uint64_t(s.replicas);
  }
  return table;
}

bool TrajectoryBatchResult::deterministic_equals(
    const TrajectoryBatchResult& other) const {
  if (names_ != other.names_ || replicas_ != other.replicas_ ||
      values_.size() != other.values_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(values_[i]) !=
        std::bit_cast<std::uint64_t>(other.values_[i])) {
      return false;
    }
  }
  return true;
}

TrajectoryBatchResult run_trajectory_batch(
    std::vector<std::string> metric_names,
    const TrajectoryBatchOptions& options,
    const std::function<std::vector<double>(std::size_t replica,
                                            std::uint64_t seed)>& replica) {
  GOC_CHECK_ARG(options.replicas >= 1, "a batch needs at least one replica");
  GOC_CHECK_ARG(replica != nullptr, "a batch needs a replica function");
  const std::size_t metrics = metric_names.size();
  GOC_CHECK_ARG(metrics >= 1, "a batch needs at least one metric");

  std::vector<double> values(options.replicas * metrics, 0.0);
  const auto run_all = [&](engine::ThreadPool& pool) {
    pool.parallel_for(options.replicas, [&](std::size_t r) {
      const std::uint64_t seed = engine::task_seed(options.root_seed, r, 0);
      const std::vector<double> row = replica(r, seed);
      GOC_CHECK_ARG(row.size() == metrics,
                    "replica returned the wrong number of metrics");
      std::copy(row.begin(), row.end(), values.begin() + r * metrics);
    });
  };
  if (options.pool != nullptr) {
    run_all(*options.pool);
  } else {
    const std::size_t lanes =
        engine::ThreadPool::resolve_lanes(options.threads);
    engine::ThreadPool pool(engine::ThreadPool::workers_for(lanes));
    run_all(pool);
  }
  return TrajectoryBatchResult(std::move(metric_names), options.replicas,
                               std::move(values), options.root_seed);
}

// ------------------------------------------------------- simulator adapters

const std::vector<std::string>& chain_batch_metrics() {
  static const std::vector<std::string> kNames = {
      "blocks_total", "blocks_share_chain0", "migrations", "share_mae",
      "reward_total_fiat"};
  return kNames;
}

TrajectoryBatchResult run_chain_batch(
    const std::function<chain::MultiChainSimulator(std::uint64_t seed)>&
        make_replica,
    const TrajectoryBatchOptions& options) {
  GOC_CHECK_ARG(make_replica != nullptr, "chain batch needs a factory");
  return run_trajectory_batch(
      chain_batch_metrics(), options,
      [&make_replica](std::size_t, std::uint64_t seed) {
        chain::MultiChainSimulator sim = make_replica(seed);
        const chain::ChainSimResult result = sim.run();
        std::uint64_t blocks = 0;
        for (const std::uint64_t b : result.blocks_per_chain) blocks += b;
        double reward = 0.0;
        for (const double r : result.miner_rewards_fiat) reward += r;
        const double share0 =
            blocks > 0 ? static_cast<double>(result.blocks_per_chain[0]) /
                             static_cast<double>(blocks)
                       : 0.0;
        return std::vector<double>{
            static_cast<double>(blocks), share0,
            static_cast<double>(result.migrations),
            result.share_prediction_mae, reward};
      });
}

const std::vector<std::string>& market_batch_metrics() {
  static const std::vector<std::string> kNames = {
      "mean_share_coin0", "final_share_coin0", "equilibrium_fraction",
      "br_steps_total", "final_price_coin0"};
  return kNames;
}

TrajectoryBatchResult run_market_batch(
    const std::function<market::MarketSimulator(std::uint64_t seed)>&
        make_replica,
    const TrajectoryBatchOptions& options) {
  GOC_CHECK_ARG(make_replica != nullptr, "market batch needs a factory");
  return run_trajectory_batch(
      market_batch_metrics(), options,
      [&make_replica](std::size_t, std::uint64_t seed) {
        market::MarketSimulator sim = make_replica(seed);
        const std::vector<market::EpochRecord> records = sim.run();
        double share_sum = 0.0;
        double at_eq = 0.0;
        double steps = 0.0;
        for (const market::EpochRecord& r : records) {
          share_sum += r.hashrate_share[0];
          if (r.at_equilibrium) at_eq += 1.0;
          steps += static_cast<double>(r.br_steps);
        }
        const double n = records.empty()
                             ? 1.0
                             : static_cast<double>(records.size());
        const double final_share =
            records.empty() ? 0.0 : records.back().hashrate_share[0];
        const double final_price =
            records.empty() ? 0.0 : records.back().prices[0];
        return std::vector<double>{share_sum / n, final_share, at_eq / n,
                                   steps, final_price};
      });
}

TrajectoryBatchResult run_market_batch(const market::Scenario& scenario,
                                       const TrajectoryBatchOptions& options) {
  return run_market_batch(
      [&scenario](std::uint64_t seed) { return scenario.make_simulator(seed); },
      options);
}

// ------------------------------------------------------- trajectory hashes

std::uint64_t chain_result_hash(const chain::ChainSimResult& result) noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const std::uint64_t b : result.blocks_per_chain) fnv::mix_bytes(h, b);
  for (const double r : result.miner_rewards_fiat) fnv::mix_bytes(h, r);
  for (const std::uint64_t b : result.miner_blocks) fnv::mix_bytes(h, b);
  // share_prediction_mae is deliberately NOT hashed: the flat engine
  // accrues it through the stint integral, the legacy engine per block, so
  // it agrees across engines only to FP tolerance (see ChainSimResult) —
  // every hashed field below is bit-identical.
  fnv::mix_bytes(h, result.migrations);
  for (const chain::TimelinePoint& p : result.timeline) {
    fnv::mix_bytes(h, p.t_hours);
    for (const double d : p.difficulty) fnv::mix_bytes(h, d);
    for (const double m : p.hashrate) fnv::mix_bytes(h, m);
    for (const std::uint64_t b : p.blocks) fnv::mix_bytes(h, b);
    for (const double w : p.reward_fiat) fnv::mix_bytes(h, w);
  }
  return h;
}

std::uint64_t market_records_hash(
    const std::vector<market::EpochRecord>& records) noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const market::EpochRecord& r : records) {
    fnv::mix_bytes(h, r.t_hours);
    for (const double p : r.prices) fnv::mix_bytes(h, p);
    for (const double w : r.weights) fnv::mix_bytes(h, w);
    for (const double s : r.hashrate_share) fnv::mix_bytes(h, s);
    fnv::mix_bytes(h, r.br_steps);
    fnv::mix_bytes(h, r.at_equilibrium ? std::uint64_t{1} : std::uint64_t{0});
  }
  return h;
}

}  // namespace goc::sim
