#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chain/chain_sim.hpp"
#include "engine/cancel.hpp"
#include "market/market_sim.hpp"
#include "market/scenario.hpp"
#include "replay/checkpoint.hpp"
#include "util/table.hpp"

/// \file trajectory.hpp
/// The batched Monte Carlo trajectory engine — layer 2 of the `sim/`
/// subsystem.
///
/// A stochastic simulator run is a *trajectory*; a study is R independent
/// replicas of the same scenario under different seeds, summarized per
/// metric as mean / variance / 95% CI. This layer fans the replicas across
/// `engine::ThreadPool` with the sweep engine's determinism contract:
/// replica r's seed is `engine::task_seed(root_seed, r, ·)` — a pure
/// function of the root seed and the replica index — and every replica
/// writes its metric vector into a pre-sized slot, so the aggregated
/// `TrajectoryBatchResult` is **bit-identical at any thread count**
/// (aggregation itself runs serially in replica order; no atomics, no
/// completion-order reductions).

namespace goc::engine {
class ThreadPool;  // engine/thread_pool.hpp
}

namespace goc::sim {

/// CI-driven sequential stopping: instead of always running a fixed R,
/// the batch spawns replicas in deterministic waves and stops as soon as
/// the 95% CI half-width of `metric` — computed by a Welford pass over the
/// replica-ordered prefix [0, replicas_run) — drops to `tolerance`.
///
/// Determinism contract: replica r's seed and value are the same pure
/// function of (root_seed, r) as in the fixed-R path, waves are a pure
/// function of (min_replicas, max_replicas, wave), and the stop check runs
/// over replica-ordered prefixes at wave boundaries only — so the chosen R
/// and every emitted value are bit-identical at any thread count.
struct StoppingRule {
  /// Metric whose CI drives the stop (must be one of the batch's metrics).
  std::string metric;
  /// Target 95% CI half-width. 0 is legal and stops only on zero variance
  /// (otherwise the batch escalates to max_replicas); must be finite and
  /// non-negative.
  double tolerance = 0.0;
  /// Interpret `tolerance` as a fraction of |prefix mean| instead of an
  /// absolute half-width (a zero mean then behaves like tolerance 0).
  bool relative = false;
  /// First stop check happens at this many replicas (>= 2: a CI needs a
  /// variance estimate).
  std::size_t min_replicas = 8;
  /// Hard ceiling: the batch reports StopReason::kMaxReplicas when the
  /// tolerance was never met.
  std::size_t max_replicas = 1024;
  /// Replicas added per wave between stop checks. A *fixed* count, never
  /// derived from the lane count — that is what keeps the chosen R
  /// thread-invariant.
  std::size_t wave = 16;
};

/// Why a batch stopped at its final replica count.
enum class StopReason {
  kFixedReplicas,  ///< no stopping rule: the requested R ran exhaustively
  kToleranceMet,   ///< CI half-width reached the tolerance at a wave check
  kMaxReplicas,    ///< rule enabled but the ceiling hit first
};

/// Stable display name ("fixed" / "tolerance" / "max-replicas").
const char* stop_reason_name(StopReason reason) noexcept;

/// One wave-boundary progress report (see
/// `TrajectoryBatchOptions::on_progress`).
struct BatchProgress {
  /// Replicas finished so far (monotone across reports).
  std::size_t completed = 0;
  /// Ceiling the batch may run (fixed R, or the rule's max_replicas).
  std::size_t requested = 0;
  /// 95% CI half-width of the stopping metric over the completed prefix —
  /// the number the adaptive rule compares against its tolerance. 0 for
  /// fixed-R batches (no stopping metric) and before two replicas exist.
  double ci_halfwidth = 0.0;
};

struct TrajectoryBatchOptions {
  /// Fixed replica count when no stopping rule is set; ignored (the rule's
  /// min/max govern) when `stopping` is engaged. Must be >= 1.
  std::size_t replicas = 32;
  /// Root of the per-replica seed derivation (engine::task_seed).
  std::uint64_t root_seed = 2021;
  /// Total concurrent lanes: 0 = one per hardware thread, 1 = serial
  /// reference path. Ignored when `pool` is set.
  std::size_t threads = 0;
  /// Reuse an existing pool (e.g. the sweep engine's) instead of spawning
  /// one per batch.
  engine::ThreadPool* pool = nullptr;
  /// Adaptive sequential stopping; disengaged by default (fixed R).
  std::optional<StoppingRule> stopping;
  /// Scenario identity stamped into checkpoint artifacts. A checkpoint
  /// recorded under one config hash refuses to resume a batch with
  /// another (`replay::ReplayError::kHeaderMismatch`); 0 disables only
  /// this check, never the seed/metric/ceiling checks.
  std::uint64_t config_hash = 0;
  /// Crash-safe checkpointing (path + interval + resume semantics — see
  /// replay/checkpoint.hpp). Disengaged by default. When set, the batch
  /// persists its completed-replica prefix at wave boundaries (atomic
  /// tmp+fsync+rename) and, on start, resumes from an existing artifact:
  /// a batch killed at any point and resumed is byte-identical to an
  /// uninterrupted run — same values, `values_hash`, summaries and (for
  /// adaptive batches) the same chosen R, at any `threads`.
  std::optional<replay::CheckpointOptions> checkpoint;
  /// Cooperative cancellation (engine/cancel.hpp): polled before every
  /// replica and at wave boundaries; a stale view makes the batch throw
  /// `engine::Cancelled` instead of returning a torn result. The default
  /// (no token) never cancels — existing callers are unaffected.
  engine::CancelView cancel;
  /// Wave-boundary progress reports (the serve daemon's `watch` rows).
  /// Called on the batch's calling thread after each wave completes —
  /// strictly observational: reports never influence seeds, wave
  /// boundaries, or the stop decision. Default: no reports.
  std::function<void(const BatchProgress&)> on_progress;
  /// Fixed-R batches have no natural wave; when `on_progress` is set they
  /// chunk into ranges of this many replicas purely to have reporting
  /// boundaries (slot writes make results bit-identical under any
  /// chunking). Adaptive batches report at their own wave boundaries and
  /// ignore this. Must be >= 1 when a callback is set.
  std::size_t progress_interval = 16;
};

/// Splits one shared pool's lanes between the two parallelism levels of a
/// Monte Carlo study: replica fan-out vs intra-replica decision-epoch
/// sharding (`ChainSimOptions::epoch_lanes`). Exactly one level gets the
/// pool — nesting `parallel_for` on a shared pool can deadlock (lanes
/// blocked on futures do not drain the queue), and two live levels would
/// oversubscribe anyway. Wide batches keep every lane at replica level; a
/// batch narrower than the lane count whose population clears the sharding
/// cutoff hands the whole pool to the epoch evaluate phase instead. The
/// choice is pure scheduling: results are bit-identical either way.
struct NestedLanePlan {
  std::size_t replica_lanes = 1;  ///< TrajectoryBatchOptions::threads
  std::size_t epoch_lanes = 1;    ///< ChainSimOptions::epoch_lanes
};
NestedLanePlan plan_nested_lanes(std::size_t replicas, std::size_t lanes,
                                 std::size_t miners,
                                 std::size_t epoch_cutoff) noexcept;

/// Per-metric summary over the replicas (normal-approximation CI).
struct MetricSummary {
  std::string name;
  std::size_t replicas = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< sample variance (n−1)
  double stddev = 0.0;
  double ci95_halfwidth = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// The outcome of a Monte Carlo batch: the replica×metric value matrix
/// (replica-major) plus per-metric summaries computed in replica order.
/// Adaptive batches additionally record provenance: how many replicas the
/// rule would have allowed (`replicas_requested` = max_replicas) vs how
/// many actually ran, and why the batch stopped.
class TrajectoryBatchResult {
 public:
  /// `replicas_requested` defaults to `replicas` (fixed-R batches request
  /// exactly what they run); pass 0 for the same effect.
  TrajectoryBatchResult(std::vector<std::string> metric_names,
                        std::size_t replicas, std::vector<double> values,
                        std::uint64_t root_seed,
                        std::size_t replicas_requested = 0,
                        StopReason stop_reason = StopReason::kFixedReplicas);

  const std::vector<std::string>& metric_names() const noexcept {
    return names_;
  }
  std::size_t replicas() const noexcept { return replicas_; }
  std::size_t metrics() const noexcept { return names_.size(); }
  std::uint64_t root_seed() const noexcept { return root_seed_; }
  /// Ceiling the batch was allowed (fixed R, or the rule's max_replicas).
  std::size_t replicas_requested() const noexcept {
    return replicas_requested_;
  }
  StopReason stop_reason() const noexcept { return stop_reason_; }

  double value(std::size_t replica, std::size_t metric) const {
    return values_[replica * names_.size() + metric];
  }
  const std::vector<MetricSummary>& summaries() const noexcept {
    return summaries_;
  }
  const MetricSummary& summary(const std::string& name) const;

  /// FNV-1a over the raw bit patterns of the value matrix (replica-major):
  /// one number that equals iff every replica's every metric is bit-equal.
  std::uint64_t values_hash() const noexcept;

  /// metric | mean | ±ci95 | sd | min | max | n rows.
  Table to_table(int precision = 4) const;

  /// Bitwise equality of names, replica count and the full value matrix —
  /// the thread-invariance and legacy-vs-flat contract check.
  bool deterministic_equals(const TrajectoryBatchResult& other) const;

 private:
  std::vector<std::string> names_;
  std::size_t replicas_;
  std::uint64_t root_seed_;
  std::size_t replicas_requested_;
  StopReason stop_reason_;
  std::vector<double> values_;  ///< replicas × metrics, replica-major
  std::vector<MetricSummary> summaries_;
};

/// Runs `replica(r, seed)` for r in [0, replicas) across the pool; the
/// callback must return one value per metric name (checked). Replicas must
/// not share mutable state — slot writes make determinism the engine's
/// job, independence stays the caller's contract.
TrajectoryBatchResult run_trajectory_batch(
    std::vector<std::string> metric_names,
    const TrajectoryBatchOptions& options,
    const std::function<std::vector<double>(std::size_t replica,
                                            std::uint64_t seed)>& replica);

// ------------------------------------------------------- simulator adapters

/// Metric names of `run_chain_batch` rows.
const std::vector<std::string>& chain_batch_metrics();

/// One `chain_batch_metrics()` row from a finished chain run. The batch
/// adapter and the golden-replay recorder (replay/golden.hpp) share this
/// so a recorded row is bit-identical to what a batch would aggregate.
std::vector<double> chain_replica_metrics(const chain::ChainSimResult& result);

/// Batched chain studies: `make_replica(seed)` builds a fresh simulator
/// (chain specs, options and RNG seeded from `seed`); each replica runs it
/// and reports {blocks_total, blocks_share_chain0, migrations, share_mae,
/// reward_total_fiat}.
TrajectoryBatchResult run_chain_batch(
    const std::function<chain::MultiChainSimulator(std::uint64_t seed)>&
        make_replica,
    const TrajectoryBatchOptions& options);

/// Metric names of `run_market_batch` rows.
const std::vector<std::string>& market_batch_metrics();

/// One `market_batch_metrics()` row from a finished market run (same
/// sharing contract as `chain_replica_metrics`).
std::vector<double> market_replica_metrics(
    const std::vector<market::EpochRecord>& records);

/// Batched market studies: each replica runs `make_replica(seed)` and
/// reports {mean_share_coin0, final_share_coin0, equilibrium_fraction,
/// br_steps_total, final_price_coin0}.
TrajectoryBatchResult run_market_batch(
    const std::function<market::MarketSimulator(std::uint64_t seed)>&
        make_replica,
    const TrajectoryBatchOptions& options);

/// Scenario-prototype convenience: each replica is
/// `scenario.make_simulator(seed)` (coins deep-cloned per replica, seeds
/// from the batch's derivation) — no hand-written factory needed.
TrajectoryBatchResult run_market_batch(const market::Scenario& scenario,
                                       const TrajectoryBatchOptions& options);

// ------------------------------------------------------- trajectory hashes

/// FNV-1a over every deterministic field of a chain result (counters plus
/// raw double bits, timeline included) — bit-equality of two hashes means
/// the *trajectories*, not just the endpoints, coincided. This is how
/// `--compare-scan` proves the flat event core replays the legacy
/// `EventQueue` path draw-for-draw.
std::uint64_t chain_result_hash(const chain::ChainSimResult& result) noexcept;

/// Same contract for the market simulator's epoch records.
std::uint64_t market_records_hash(
    const std::vector<market::EpochRecord>& records) noexcept;

}  // namespace goc::sim
