#include "sim/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "chain/difficulty.hpp"
#include "util/rng.hpp"

namespace goc::sim {

chain::MultiChainSimulator make_reference_chain(
    const ReferenceChainParams& params, EngineKind engine,
    std::uint64_t seed) {
  const std::size_t miners = params.miners;
  const std::size_t num_chains = params.chains;
  Rng setup(seed ^ 0xDE5ULL);
  std::vector<double> powers;
  powers.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    powers.push_back(std::min(4000.0, std::ceil(setup.pareto(10.0, 1.16))));
  }
  std::vector<std::size_t> assignment;
  assignment.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    assignment.push_back(i % num_chains);
  }
  std::vector<double> mass(num_chains, 0.0);
  for (std::size_t i = 0; i < miners; ++i) mass[assignment[i]] += powers[i];

  std::vector<chain::ChainSpec> chains;
  for (std::size_t c = 0; c < num_chains; ++c) {
    // Difficulty calibrated to the initial split (protocol cadence 6/h);
    // rewards spread 3:1 so better-response migration stays busy.
    const double reward = 10.0 + 20.0 * static_cast<double>(c) /
                                     static_cast<double>(num_chains);
    chains.push_back(chain::ChainSpec{
        "c" + std::to_string(c), std::max(1.0, mass[c] / 6.0), 1.0 / 6.0,
        reward,
        std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)});
  }
  chain::ChainSimOptions options;
  options.duration_hours = params.days * 24.0;
  options.decision_interval_hours = 4.0;
  options.policy = chain::MinerPolicy::kBetterResponse;
  options.reevaluation_fraction = 0.15;
  options.seed = seed;
  options.record_timeline = false;
  options.engine = engine;
  options.epoch_lanes = params.epoch_lanes;
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options, std::move(assignment));
}

}  // namespace goc::sim
