#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/trajectory.hpp"
#include "util/cli.hpp"

/// \file batch_cli.hpp
/// The shared Monte Carlo batch flags, single-sourced.
///
/// Every surface that fans replicas — the bench harnesses
/// (`bench::apply_batch_cli` in bench_common.hpp forwards here), the
/// examples, and the serve daemon's request parser — accepts the same
/// flag vocabulary and maps it onto `sim::TrajectoryBatchOptions` through
/// this one function:
///
/// ```
/// --replicas=N --threads=N
/// --stop-metric=NAME            engage CI-driven sequential stopping
///   [--stop-tol=X]              95% CI half-width target (default 0)
///   [--stop-rel]                interpret tolerance relative to |mean|
///   [--stop-min=N --stop-max=N --stop-wave=N]
/// --checkpoint=PATH             crash-safe wave-boundary checkpoints
///   [--checkpoint-interval=N]   fixed-R replicas per write (default 16)
/// ```
///
/// Contract: values already present in `options` act as defaults, so
/// callers can pre-seed workload-specific rules — including a pre-seeded
/// `stopping->max_replicas`, which survives unless `--stop-max` is passed
/// explicitly. Only when the caller did *not* pre-seed a stopping rule
/// does `--stop-max` default to `--replicas` ("the same study, adaptive"
/// stays one extra flag).

namespace goc::sim {

/// Applies the shared batch flags onto `options` (see file comment for
/// the grammar and the pre-seeding contract).
void apply_batch_cli(const Cli& cli, TrajectoryBatchOptions& options);

/// The option names `apply_batch_cli` consumes — callers splice these
/// into the known-name list they hand `Cli::unknown` to fail fast.
const std::vector<std::string>& batch_cli_names();

/// The `--epoch-lanes` flag (`chain::ChainSimOptions::epoch_lanes` /
/// `market::Fig1ReplayParams::epoch_lanes`): 0 = the sequential policy
/// scan, >= 1 = the sharded simultaneous-move decision epoch.
std::size_t epoch_lanes_from_cli(const Cli& cli, std::size_t fallback = 0);

}  // namespace goc::sim
