#include "sim/event_core.hpp"

#include "obs/registry.hpp"

namespace goc::sim {

namespace {

/// Per-event-type dispatch/invalidation counters, interned once. This is
/// THE hottest seam in the repo (one `pop` per simulated event), so the
/// cost budget is exactly one relaxed add per live pop and one per stale
/// drop — handle lookup happens only at static init.
struct EventMetrics {
  std::array<obs::Counter*, kNumEventTypes> dispatched;
  std::array<obs::Counter*, kNumEventTypes> invalidated;
  obs::Counter& stale_dropped;

  static EventMetrics& get() {
    static EventMetrics m = [] {
      auto& reg = obs::Registry::instance();
      static constexpr const char* kTypeNames[kNumEventTypes] = {
          "block_found", "decision_epoch", "price_tick", "fee_update"};
      EventMetrics out{{}, {}, reg.counter("sim.events.stale_dropped")};
      for (std::size_t t = 0; t < kNumEventTypes; ++t) {
        out.dispatched[t] = &reg.counter(std::string("sim.events.dispatched.") +
                                         kTypeNames[t]);
        out.invalidated[t] = &reg.counter(
            std::string("sim.events.invalidated.") + kTypeNames[t]);
      }
      return out;
    }();
    return m;
  }
};

}  // namespace

void EventCore::declare_streams(EventType type, std::size_t count) {
  auto& gens = generations_[static_cast<std::size_t>(type)];
  gens.assign(count, 0);
}

void EventCore::schedule(double time, EventType type, std::uint32_t subject) {
  GOC_CHECK_ARG(time >= now_, "cannot schedule events in the past");
  const auto& gens = generations_[static_cast<std::size_t>(type)];
  GOC_CHECK_ARG(subject < gens.size(), "undeclared event stream");
  heap_.push_back(Event{time, next_seq_++, subject, gens[subject], type});
  sift_up(heap_.size() - 1);
}

void EventCore::invalidate(EventType type, std::uint32_t subject) {
  auto& gens = generations_[static_cast<std::size_t>(type)];
  GOC_CHECK_ARG(subject < gens.size(), "undeclared event stream");
  ++gens[subject];
  EventMetrics::get().invalidated[static_cast<std::size_t>(type)]->add();
}

bool EventCore::pop(Event& out) {
  EventMetrics& metrics = EventMetrics::get();
  while (pop_raw(out)) {
    if (is_stale(out)) {
      metrics.stale_dropped.add();
      continue;
    }
    now_ = out.time;
    metrics.dispatched[static_cast<std::size_t>(out.type)]->add();
    return true;
  }
  return false;
}

bool EventCore::pop_until(Event& out, double t_end) {
  GOC_CHECK_ARG(t_end >= now_, "cannot run backwards");
  EventMetrics& metrics = EventMetrics::get();
  while (!heap_.empty() && heap_.front().time <= t_end) {
    pop_raw(out);
    if (is_stale(out)) {
      metrics.stale_dropped.add();
      continue;  // dropped inside the window
    }
    now_ = out.time;
    metrics.dispatched[static_cast<std::size_t>(out.type)]->add();
    return true;
  }
  now_ = t_end;
  return false;
}

void EventCore::reset(double now) {
  heap_.clear();
  now_ = now;
  next_seq_ = 0;
}

void EventCore::sift_up(std::size_t i) noexcept {
  Event moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void EventCore::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  Event moving = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], moving)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = moving;
}

bool EventCore::pop_raw(Event& out) noexcept {
  if (heap_.empty()) return false;
  out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return true;
}

}  // namespace goc::sim
