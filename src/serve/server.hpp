#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"
#include "serve/job_table.hpp"
#include "util/cli.hpp"

/// \file server.hpp
/// The engine-as-a-service daemon: a line-oriented text protocol over a
/// long-lived engine process (`goc-serve`), in the spirit of chess/crossword
/// engine protocols — newline-delimited commands in, newline-delimited
/// responses out, every command terminated by exactly one `ok ...` or
/// `err ...` line so clients can script against it without timeouts.
///
/// ```
/// submit batch|sweep|enumerate [--flags...]   -> ok id=N kind=...
/// batch|sweep|enumerate [--flags...]          (submit shorthand)
/// status <id>                                 -> ok id=N kind=... state=...
///                                                progress=done/total ...
/// jobs                                        -> job ... lines, ok jobs=N
/// result <id> [--wait]                        -> JSON payload, then ok ...
/// cancel <id>                                 -> ok id=N state=cancelled
/// watch <id> [--interval-ms=N]                -> progress ... rows, ok ...
/// stats [--json]                              -> metrics payload, ok stats
/// ping | help | quit
/// ```
///
/// Jobs run asynchronously on driver threads that fan their inner work
/// onto ONE warm shared `engine::ThreadPool` — the daemon's reason to
/// exist: scripted studies submit many requests against an engine that
/// never re-spawns threads, and results come back as the same
/// `io::table_to_json` documents the bench binaries emit, with the same
/// deterministic `values_hash` a one-shot CLI run of the identical
/// workload produces (the scenario factories and batch flag grammar are
/// single-sourced with the benches — sim/scenarios.hpp, sim/batch_cli.hpp).
/// `cancel` rides the engines' generation-invalidation machinery
/// (engine/cancel.hpp) and returns promptly.

namespace goc::serve {

struct ServerOptions {
  /// Lane count of the shared pool (`--threads` convention: 0 = one lane
  /// per hardware thread, 1 = serial). Per-job `--threads` flags are
  /// accepted but inert — pooled jobs always share this warm pool.
  std::size_t threads = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Handles one protocol line, writing the full response (payload lines
  /// plus the terminating ok/err line) to `out`. Returns false iff the
  /// line was `quit` — the caller should stop its read loop. Blank lines
  /// and `#` comments produce no output. Never throws: every parse or
  /// engine error becomes an `err` line.
  bool handle_line(const std::string& line, std::ostream& out);

  /// Read-eval-print loop over a stream pair until `quit` or EOF.
  void serve(std::istream& in, std::ostream& out);

  /// Total lanes of the shared pool (workers + the driving thread).
  std::size_t lanes() const noexcept { return lanes_; }

  JobTable& jobs() noexcept { return jobs_; }

 private:
  void cmd_submit(const std::string& kind, const std::vector<std::string>& args,
                  std::ostream& out);
  void cmd_status(const std::vector<std::string>& args, std::ostream& out);
  void cmd_result(const std::vector<std::string>& args, std::ostream& out);
  void cmd_cancel(const std::vector<std::string>& args, std::ostream& out);
  void cmd_jobs(std::ostream& out);
  void cmd_watch(const std::vector<std::string>& args, std::ostream& out);
  void cmd_stats(const std::vector<std::string>& args, std::ostream& out);
  void cmd_help(std::ostream& out);

  JobTable::Work make_batch_work(const Cli& cli);
  JobTable::Work make_sweep_work(const Cli& cli);
  JobTable::Work make_enumerate_work(const Cli& cli);

  std::size_t lanes_;
  engine::ThreadPool pool_;
  // Declared after the pool: jobs join their drivers (which reference the
  // pool) before the pool's destructor runs.
  JobTable jobs_;
};

}  // namespace goc::serve
