#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/cancel.hpp"

/// \file job_table.hpp
/// The serve daemon's asynchronous job table.
///
/// Every submitted request becomes a *job*: a closure run on a dedicated
/// driver thread (which fans its inner work onto the daemon's shared
/// `engine::ThreadPool` — driver threads never run pool work themselves,
/// so nested `parallel_for` can never deadlock the pool). The table owns
/// the job lifecycle:
///
///   queued → running → done | failed | cancelled
///
/// Completed results are retained until fetched (`fetch` hands the outcome
/// over exactly once and erases the entry), so a client may poll `status`
/// at leisure and collect the payload later. Cancellation rides the same
/// generation-invalidation machinery the flat event core uses for stale
/// races (engine/cancel.hpp): `cancel` bumps the job's `CancelToken`
/// generation, the engines poll their `CancelView` at replica / task /
/// shard boundaries, and the work unwinds with `engine::Cancelled`. The
/// job is marked cancelled *immediately* — the client's `cancel` returns
/// promptly even while the work is still draining its current replica.

namespace goc::serve {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Stable display name ("queued" / "running" / "done" / "failed" /
/// "cancelled").
const char* job_state_name(JobState state) noexcept;

/// True for the states a job can no longer leave.
bool job_state_terminal(JobState state) noexcept;

/// What a finished job hands back: the JSON payload (the same
/// `io::table_to_json` document the bench binaries emit with `--json`),
/// the deterministic result hash, and a short human-readable summary for
/// the protocol's ok-line.
struct JobOutcome {
  std::string json;
  std::uint64_t values_hash = 0;
  std::string summary;
};

/// Live progress a job's work reports through its `ProgressFn` (for a
/// batch job these are `sim::BatchProgress` wave boundaries). `total == 0`
/// means the work has not reported yet.
struct JobProgress {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  /// CI half-width of the stopping metric at the last report (0 when the
  /// job has no adaptive stopping).
  double ci_halfwidth = 0.0;
};

/// A point-in-time snapshot of one job's lifecycle.
struct JobStatus {
  std::uint64_t id = 0;
  std::string kind;
  JobState state = JobState::kQueued;
  /// Failure detail (`what()` of the escaped exception) for kFailed.
  std::string detail;
  /// Last progress report (zeros until the work reports).
  JobProgress progress;
  /// Milliseconds the work has been (or was) running; 0 while queued.
  std::uint64_t elapsed_ms = 0;
};

/// Thread-safe job registry: submit / status / list / cancel / fetch.
/// Safe to drive from multiple client threads (the TCP listener and the
/// stdin loop may share one table).
class JobTable {
 public:
  /// Sink the work calls (from its own driver thread) whenever it has a
  /// fresh progress report; the table folds it into the job's status.
  using ProgressFn = std::function<void(const JobProgress&)>;

  /// Job body: runs on the driver thread, polls `cancel` cooperatively,
  /// reports progress through `progress` (calling it is optional), and
  /// returns the outcome. Throwing `engine::Cancelled` marks the job
  /// cancelled; any other exception marks it failed with `what()`.
  using Work = std::function<JobOutcome(const engine::CancelView& cancel,
                                        const ProgressFn& progress)>;

  JobTable() = default;
  ~JobTable() { shutdown(); }

  JobTable(const JobTable&) = delete;
  JobTable& operator=(const JobTable&) = delete;

  /// Registers the job and starts its driver thread; returns the id
  /// (monotonic from 1).
  std::uint64_t submit(std::string kind, Work work);

  /// Snapshot of one job, or nullopt for an unknown (or already fetched)
  /// id.
  std::optional<JobStatus> status(std::uint64_t id) const;

  /// Snapshots of all live jobs, in id order.
  std::vector<JobStatus> list() const;

  /// Requests cancellation: marks the job cancelled and invalidates its
  /// token so the engines unwind at their next poll. Returns false when
  /// the id is unknown or the job already reached a terminal state.
  /// Returns promptly — it never waits for the work to drain.
  bool cancel(std::uint64_t id);

  /// A fetched job: its final status plus (for kDone) the outcome.
  struct Fetched {
    JobStatus status;
    JobOutcome outcome;
  };

  /// Collects a job's result. Unknown id → nullopt. Non-terminal job with
  /// `wait == false` → a snapshot (entry retained, outcome empty) so the
  /// caller can report "still running". Otherwise blocks until the job is
  /// terminal *and* its driver thread has drained (a cancelled job's work
  /// may still be unwinding), joins the driver, erases the entry, and
  /// returns the final status + outcome. Each result is handed out once.
  std::optional<Fetched> fetch(std::uint64_t id, bool wait);

  /// Number of live (unfetched) jobs.
  std::size_t size() const;

  /// Cancels everything and joins all drivers; the table ends empty.
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string kind;
    JobState state = JobState::kQueued;
    std::string detail;
    JobOutcome outcome;
    JobProgress progress;
    engine::CancelToken token;
    std::thread driver;
    /// Set (under the table mutex) as the driver's last action; `fetch`
    /// may only join once this is true.
    bool driver_done = false;
    /// Lifecycle stamps (obs::now_ns time base; 0 = not reached). These
    /// feed `elapsed_ms` and the serve latency histograms.
    std::uint64_t submitted_ns = 0;
    std::uint64_t started_ns = 0;
    std::uint64_t cancel_requested_ns = 0;
    std::uint64_t finished_ns = 0;
  };

  JobStatus snapshot_locked(const Job& job) const;
  void run_driver(const std::shared_ptr<Job>& job, const Work& work);

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
};

}  // namespace goc::serve
