#include "serve/job_table.hpp"

#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace goc::serve {

namespace {

struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& done;
  obs::Counter& failed;
  obs::Counter& cancelled;
  obs::Gauge& queued;
  obs::Gauge& running;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& run_ns;
  obs::Histogram& cancel_ns;

  static ServeMetrics& get() {
    static ServeMetrics m{
        obs::Registry::instance().counter("serve.jobs.submitted"),
        obs::Registry::instance().counter("serve.jobs.done"),
        obs::Registry::instance().counter("serve.jobs.failed"),
        obs::Registry::instance().counter("serve.jobs.cancelled"),
        obs::Registry::instance().gauge("serve.jobs.queued"),
        obs::Registry::instance().gauge("serve.jobs.running"),
        obs::Registry::instance().histogram("serve.job.queue_wait_ns"),
        obs::Registry::instance().histogram("serve.job.run_ns"),
        obs::Registry::instance().histogram("serve.job.cancel_ns"),
    };
    return m;
  }
};

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool job_state_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

JobStatus JobTable::snapshot_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.kind = job.kind;
  status.state = job.state;
  status.detail = job.detail;
  status.progress = job.progress;
  if (job.started_ns != 0) {
    const std::uint64_t until =
        job.finished_ns != 0 ? job.finished_ns : obs::now_ns();
    status.elapsed_ms = (until - job.started_ns) / 1000000;
  }
  return status;
}

void JobTable::run_driver(const std::shared_ptr<Job>& job, const Work& work) {
  ServeMetrics& metrics = ServeMetrics::get();
  const engine::CancelView view = engine::CancelView::of(job->token);
  // A cancel (or shutdown) that lands before the snapshot above has
  // already bumped the token, so the view reads *fresh* and would never
  // go stale — the terminal-state check below is what catches that
  // window. cancel() orders its state write before the bump, so a fresh
  // view from a pre-start cancel implies the state is already terminal
  // here; a cancel after the snapshot makes the view stale instead, and
  // the first poll throws.
  bool cancelled_before_start = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job_state_terminal(job->state)) {
      job->driver_done = true;
      cancelled_before_start = true;
    } else {
      job->state = JobState::kRunning;
      job->started_ns = obs::now_ns();
      metrics.queue_wait_ns.record(job->started_ns - job->submitted_ns);
      metrics.queued.sub(1);
      metrics.running.add(1);
    }
  }
  if (cancelled_before_start) {
    done_cv_.notify_all();
    return;
  }
  // Progress lands on the driver thread; the fold into the job is a short
  // critical section on the table mutex (status readers copy it out).
  const ProgressFn on_progress = [this, &job](const JobProgress& progress) {
    std::lock_guard<std::mutex> lock(mutex_);
    job->progress = progress;
  };
  JobOutcome outcome;
  JobState final_state = JobState::kDone;
  std::string detail;
  try {
    view.throw_if_stale("job cancelled before start");
    outcome = work(view, on_progress);
  } catch (const engine::Cancelled&) {
    final_state = JobState::kCancelled;
  } catch (const std::exception& error) {
    final_state = JobState::kFailed;
    detail = error.what();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->finished_ns = obs::now_ns();
    metrics.run_ns.record(job->finished_ns - job->started_ns);
    metrics.running.sub(1);
    // A cancel() that won the race keeps the job cancelled even when the
    // work raced to completion — the client was already told "cancelled",
    // and handing out a result it asked to abandon would be a lie.
    if (!job_state_terminal(job->state)) {
      job->state = final_state;
      job->detail = std::move(detail);
      if (final_state == JobState::kDone) job->outcome = std::move(outcome);
      (final_state == JobState::kDone     ? metrics.done
       : final_state == JobState::kFailed ? metrics.failed
                                          : metrics.cancelled)
          .add();
    }
    // Cancel latency = cancel request → work actually unwound.
    if (job->cancel_requested_ns != 0) {
      metrics.cancel_ns.record(job->finished_ns - job->cancel_requested_ns);
    }
    job->driver_done = true;
  }
  done_cv_.notify_all();
}

std::uint64_t JobTable::submit(std::string kind, Work work) {
  GOC_CHECK_ARG(work != nullptr, "JobTable::submit requires a work closure");
  auto job = std::make_shared<Job>();
  job->kind = std::move(kind);
  job->submitted_ns = obs::now_ns();
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.submitted.add();
  metrics.queued.add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  job->id = next_id_++;
  // The driver is a dedicated thread, never a pool lane: the work fans
  // onto the shared pool with parallel_for, and a pool worker blocking on
  // its own pool's futures would deadlock. Started under the table lock so
  // `job->driver` is fully assigned before the job becomes visible (the
  // driver's own first lock acquisition serializes behind this one), and a
  // concurrent fetch can never move a half-assigned thread object.
  job->driver = std::thread([this, job, work = std::move(work)] {
    run_driver(job, work);
  });
  jobs_.emplace(job->id, job);
  return job->id;
}

std::optional<JobStatus> JobTable::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

std::vector<JobStatus> JobTable::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> statuses;
  statuses.reserve(jobs_.size());
  for (const auto& [_, job] : jobs_) statuses.push_back(snapshot_locked(*job));
  return statuses;
}

bool JobTable::cancel(std::uint64_t id) {
  ServeMetrics& metrics = ServeMetrics::get();
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    if (job_state_terminal(it->second->state)) return false;
    // A queued job never reaches the driver's gauge transitions, so its
    // queued slot is released here; a running one stays on the `running`
    // gauge until its driver actually unwinds.
    if (it->second->state == JobState::kQueued) metrics.queued.sub(1);
    it->second->state = JobState::kCancelled;
    it->second->cancel_requested_ns = obs::now_ns();
    metrics.cancelled.add();
    job = it->second;
  }
  // Invalidate outside the lock: the engines poll the token lock-free,
  // and the bump itself is what makes every live CancelView stale.
  job->token.invalidate();
  return true;
}

std::optional<JobTable::Fetched> JobTable::fetch(std::uint64_t id, bool wait) {
  std::thread driver;
  Fetched fetched;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    const std::shared_ptr<Job> job = it->second;
    if (!wait && !(job_state_terminal(job->state) && job->driver_done)) {
      fetched.status = snapshot_locked(*job);
      return fetched;  // entry retained; caller sees a live snapshot
    }
    done_cv_.wait(lock, [&] {
      return job_state_terminal(job->state) && job->driver_done;
    });
    fetched.status = snapshot_locked(*job);
    fetched.outcome = std::move(job->outcome);
    driver = std::move(job->driver);
    jobs_.erase(it);
  }
  if (driver.joinable()) driver.join();
  return fetched;
}

std::size_t JobTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

void JobTable::shutdown() {
  ServeMetrics& metrics = ServeMetrics::get();
  std::vector<std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [_, job] : jobs_) {
      if (!job_state_terminal(job->state)) {
        if (job->state == JobState::kQueued) metrics.queued.sub(1);
        job->state = JobState::kCancelled;
        job->cancel_requested_ns = obs::now_ns();
        metrics.cancelled.add();
      }
      jobs.push_back(job);
    }
    jobs_.clear();
  }
  for (const auto& job : jobs) job->token.invalidate();
  for (const auto& job : jobs) {
    if (job->driver.joinable()) job->driver.join();
  }
}

}  // namespace goc::serve
