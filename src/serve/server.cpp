#include "serve/server.hpp"

#include <chrono>
#include <exception>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/generators.hpp"
#include "engine/sweep.hpp"
#include "equilibrium/enumerate.hpp"
#include "io/serialize.hpp"
#include "obs/registry.hpp"
#include "market/scenario.hpp"
#include "serve/request.hpp"
#include "sim/batch_cli.hpp"
#include "sim/scenarios.hpp"
#include "sim/trajectory.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace goc::serve {

namespace {

/// Shared flag vocabulary, spliced per command for `reject_unknown`.
std::vector<std::string> with_batch_names(std::vector<std::string> names) {
  const auto& batch = sim::batch_cli_names();
  names.insert(names.end(), batch.begin(), batch.end());
  return names;
}

std::uint64_t parse_job_id(const std::vector<std::string>& args,
                           const char* verb) {
  if (args.empty() || args[0].rfind("--", 0) == 0) {
    throw std::invalid_argument(std::string(verb) + " expects a job id");
  }
  try {
    return std::stoull(args[0]);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(verb) + " expects a job id, got '" +
                                args[0] + "'");
  }
}

sim::EngineKind engine_from_cli(const Cli& cli) {
  const std::string name = cli.get_string("engine", "flat");
  if (name == "flat") return sim::EngineKind::kFlat;
  if (name == "legacy") return sim::EngineKind::kLegacy;
  throw std::invalid_argument("unknown engine '" + name + "' (flat, legacy)");
}

/// The shared progress vocabulary of `status` and `watch` — both render
/// the same fields from the same `JobStatus` snapshot, so a client parser
/// written against one reads the other.
void write_progress_fields(std::ostream& out, const JobStatus& status) {
  out << " progress=" << status.progress.done << "/" << status.progress.total
      << " ci=" << status.progress.ci_halfwidth
      << " elapsed_ms=" << status.elapsed_ms;
}

/// Adapts a batch's wave-boundary `sim::BatchProgress` reports into the
/// job table's progress slot.
sim::TrajectoryBatchOptions with_progress(sim::TrajectoryBatchOptions options,
                                          const engine::CancelView& cancel,
                                          const JobTable::ProgressFn& report) {
  options.cancel = cancel;
  if (report) {
    options.on_progress = [report](const sim::BatchProgress& progress) {
      JobProgress job_progress;
      job_progress.done = progress.completed;
      job_progress.total = progress.requested;
      job_progress.ci_halfwidth = progress.ci_halfwidth;
      report(job_progress);
    };
  }
  return options;
}

JobOutcome batch_outcome(const sim::TrajectoryBatchResult& result,
                         const std::string& title) {
  JobOutcome outcome;
  outcome.json = io::table_to_json(result.to_table(), title);
  outcome.values_hash = result.values_hash();
  outcome.summary = "replicas=" + std::to_string(result.replicas()) +
                    " stop=" + sim::stop_reason_name(result.stop_reason());
  return outcome;
}

}  // namespace

Server::Server(ServerOptions options)
    : lanes_(engine::ThreadPool::resolve_lanes(options.threads)),
      pool_(engine::ThreadPool::workers_for(lanes_)) {}

// ---------------------------------------------------------------- batch

JobTable::Work Server::make_batch_work(const Cli& cli) {
  reject_unknown(cli, with_batch_names({"scenario", "miners", "chains",
                                        "coins", "days", "epoch-lanes",
                                        "engine", "seed"}));
  sim::TrajectoryBatchOptions options;
  options.pool = &pool_;
  options.root_seed = cli.get_u64("seed", options.root_seed);
  sim::apply_batch_cli(cli, options);

  const std::string scenario = cli.get_string("scenario", "chain-reference");
  if (scenario == "chain-reference") {
    sim::ReferenceChainParams params;
    params.miners = cli.get_u64("miners", params.miners);
    params.chains = cli.get_u64("chains", params.chains);
    params.days = cli.get_double("days", params.days);
    params.epoch_lanes = sim::epoch_lanes_from_cli(cli, params.epoch_lanes);
    const sim::EngineKind engine = engine_from_cli(cli);
    return [options, params, engine](const engine::CancelView& cancel,
                                     const JobTable::ProgressFn& progress) {
      const sim::TrajectoryBatchOptions opts =
          with_progress(options, cancel, progress);
      const auto factory = [&](std::uint64_t seed) {
        return sim::make_reference_chain(params, engine, seed);
      };
      return batch_outcome(sim::run_chain_batch(factory, opts),
                           "goc-serve batch chain-reference");
    };
  }
  if (scenario == "market-random") {
    const std::size_t miners = cli.get_u64("miners", 48);
    const std::size_t coins = cli.get_u64("coins", 3);
    const double days = cli.get_double("days", 30.0);
    const std::uint64_t seed = options.root_seed;
    // market::Scenario is move-only (unique_ptr price processes), and a
    // JobTable::Work must be copyable — rebuild the prototype inside the
    // job from its deterministic parameters instead of capturing it.
    return [options, miners, coins, days, seed](
               const engine::CancelView& cancel,
               const JobTable::ProgressFn& progress) {
      const sim::TrajectoryBatchOptions opts =
          with_progress(options, cancel, progress);
      const market::Scenario proto =
          market::random_market_prototype(miners, coins, days, seed);
      return batch_outcome(sim::run_market_batch(proto, opts),
                           "goc-serve batch market-random");
    };
  }
  if (scenario == "market-fork") {
    market::ForkFlipParams params;
    params.miners = cli.get_u64("miners", params.miners);
    params.days = cli.get_double("days", params.days);
    params.seed = cli.get_u64("seed", params.seed);
    return [options, params](const engine::CancelView& cancel,
                             const JobTable::ProgressFn& progress) {
      const sim::TrajectoryBatchOptions opts =
          with_progress(options, cancel, progress);
      const market::Scenario proto = market::fork_flip_prototype(params);
      return batch_outcome(sim::run_market_batch(proto, opts),
                           "goc-serve batch market-fork");
    };
  }
  throw std::invalid_argument(
      "unknown batch scenario '" + scenario +
      "' (chain-reference, market-random, market-fork)");
}

// ---------------------------------------------------------------- sweep

JobTable::Work Server::make_sweep_work(const Cli& cli) {
  reject_unknown(cli, {"miners", "coins", "power-shapes", "reward-shapes",
                       "schedulers", "trials", "seed", "max-steps"});
  engine::SweepSpec spec;
  spec.miner_counts = parse_size_list(cli.get_string("miners", ""), "--miners");
  spec.coin_counts = parse_size_list(cli.get_string("coins", ""), "--coins");
  const auto split_names = [](const std::string& text) {
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size() && !text.empty()) {
      const std::size_t comma = text.find(',', start);
      const std::string item =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!item.empty()) items.push_back(item);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return items;
  };
  for (const std::string& name :
       split_names(cli.get_string("power-shapes", ""))) {
    spec.power_shapes.push_back(power_shape_from_name(name));
  }
  for (const std::string& name :
       split_names(cli.get_string("reward-shapes", ""))) {
    spec.reward_shapes.push_back(reward_shape_from_name(name));
  }
  for (const std::string& name :
       split_names(cli.get_string("schedulers", ""))) {
    spec.scheduler_kinds.push_back(scheduler_kind_from_name(name));
  }
  spec.trials = cli.get_u64("trials", spec.trials);
  spec.root_seed = cli.get_u64("seed", spec.root_seed);
  spec.learning.max_steps =
      cli.get_u64("max-steps", spec.learning.max_steps);

  return [this, spec](const engine::CancelView& cancel,
                      const JobTable::ProgressFn&) {
    engine::SweepRunner::Options options;
    options.pool = &pool_;
    options.cancel = cancel;
    const engine::SweepResult result = engine::SweepRunner(options).run(spec);
    JobOutcome outcome;
    outcome.json = io::table_to_json(result.to_table(), "goc-serve sweep");
    std::uint64_t h = fnv::kOffset;
    std::size_t converged = 0;
    for (const auto& record : result.records()) {
      fnv::mix_bytes(h, static_cast<std::uint64_t>(record.task.grid_index));
      fnv::mix_bytes(h, record.steps);
      fnv::mix_bytes(h, record.move_hash);
      fnv::mix_bytes(h, record.converged ? std::uint64_t{1} : std::uint64_t{0});
      fnv::mix_bytes(h, record.welfare_efficiency);
      fnv::mix_bytes(h, record.rpu_fairness);
      fnv::mix_bytes(h, record.max_domination_share);
      fnv::mix_bytes(h, static_cast<std::uint64_t>(record.majority_controlled));
      fnv::mix_bytes(h, static_cast<std::uint64_t>(record.occupied_coins));
      converged += record.converged ? 1 : 0;
    }
    outcome.values_hash = h;
    outcome.summary = "tasks=" + std::to_string(result.records().size()) +
                      " converged=" + std::to_string(converged);
    return outcome;
  };
}

// ------------------------------------------------------------ enumerate

JobTable::Work Server::make_enumerate_work(const Cli& cli) {
  reject_unknown(cli, {"miners", "coins", "power-shape", "reward-shape",
                       "seed", "max-configs", "symmetry"});
  GameSpec spec;
  spec.num_miners = cli.get_u64("miners", spec.num_miners);
  spec.num_coins = cli.get_u64("coins", spec.num_coins);
  spec.power_shape =
      power_shape_from_name(cli.get_string("power-shape", "uniform"));
  spec.reward_shape =
      reward_shape_from_name(cli.get_string("reward-shape", "uniform"));
  const std::uint64_t seed = cli.get_u64("seed", 2021);
  EnumerationOptions options;
  options.pool = &pool_;
  options.max_configs = cli.get_u64("max-configs", options.max_configs);
  options.symmetry = cli.get_bool("symmetry", options.symmetry);

  return [spec, seed, options](const engine::CancelView& cancel,
                               const JobTable::ProgressFn&) {
    EnumerationOptions opts = options;
    opts.cancel = cancel;
    Rng rng(seed);
    const Game game = random_game(spec, rng);
    const CanonicalEquilibria found =
        enumerate_canonical_equilibria(game, opts);
    Table table({"metric", "value"});
    table.row() << "canonical_representatives"
                << static_cast<std::uint64_t>(found.representatives.size());
    table.row() << "equilibria_total" << found.total();
    JobOutcome outcome;
    outcome.json = io::table_to_json(table, "goc-serve enumerate");
    std::uint64_t h = fnv::kOffset;
    for (std::size_t i = 0; i < found.representatives.size(); ++i) {
      fnv::mix_bytes(
          h, static_cast<std::uint64_t>(found.representatives[i].hash()));
      fnv::mix_bytes(h, found.orbit_sizes[i]);
    }
    outcome.values_hash = h;
    outcome.summary =
        "canonical=" + std::to_string(found.representatives.size()) +
        " total=" + std::to_string(found.total());
    return outcome;
  };
}

// ------------------------------------------------------------- protocol

void Server::cmd_submit(const std::string& kind,
                        const std::vector<std::string>& args,
                        std::ostream& out) {
  const Cli cli = cli_from_tokens("goc-serve:" + kind, args);
  JobTable::Work work;
  if (kind == "batch") {
    work = make_batch_work(cli);
  } else if (kind == "sweep") {
    work = make_sweep_work(cli);
  } else if (kind == "enumerate") {
    work = make_enumerate_work(cli);
  } else {
    throw std::invalid_argument("unknown job kind '" + kind +
                                "' (batch, sweep, enumerate)");
  }
  const std::uint64_t id = jobs_.submit(kind, std::move(work));
  out << "ok id=" << id << " kind=" << kind << "\n";
}

void Server::cmd_status(const std::vector<std::string>& args,
                        std::ostream& out) {
  const std::uint64_t id = parse_job_id(args, "status");
  const auto status = jobs_.status(id);
  if (!status) {
    out << "err unknown job " << id << "\n";
    return;
  }
  out << "ok id=" << status->id << " kind=" << status->kind
      << " state=" << job_state_name(status->state);
  write_progress_fields(out, *status);
  if (!status->detail.empty()) out << " detail=" << status->detail;
  out << "\n";
}

void Server::cmd_watch(const std::vector<std::string>& args,
                       std::ostream& out) {
  const std::uint64_t id = parse_job_id(args, "watch");
  const Cli cli = cli_from_tokens(
      "goc-serve:watch",
      std::vector<std::string>(args.begin() + 1, args.end()));
  reject_unknown(cli, {"interval-ms"});
  const std::uint64_t interval_ms = cli.get_u64("interval-ms", 50);

  const auto write_row = [&out](const JobStatus& status) {
    out << "progress id=" << status.id
        << " state=" << job_state_name(status.state);
    write_progress_fields(out, status);
    // Linear-extrapolation ETA from the completed fraction; only once a
    // wave has landed (done > 0), so the row never divides by zero.
    if (status.progress.done > 0 &&
        status.progress.total >= status.progress.done) {
      out << " eta_ms="
          << status.elapsed_ms *
                 (status.progress.total - status.progress.done) /
                 status.progress.done;
    }
    out << "\n";
    out.flush();  // rows must stream, not buffer until the ok line
  };

  auto status = jobs_.status(id);
  if (!status) {
    out << "err unknown job " << id << "\n";
    return;
  }
  // One row immediately, one per observed progress change, one terminal —
  // a watcher always sees at least two rows with monotone `done`.
  std::uint64_t rows = 0;
  std::uint64_t last_done = status->progress.done;
  write_row(*status);
  ++rows;
  while (!job_state_terminal(status->state)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const auto next = jobs_.status(id);
    if (!next) break;  // fetched out from under the watch
    status = next;
    if (!job_state_terminal(status->state) &&
        status->progress.done != last_done) {
      last_done = status->progress.done;
      write_row(*status);
      ++rows;
    }
  }
  write_row(*status);
  ++rows;
  out << "ok id=" << id << " rows=" << rows
      << " state=" << job_state_name(status->state) << "\n";
}

void Server::cmd_stats(const std::vector<std::string>& args,
                       std::ostream& out) {
  const Cli cli = cli_from_tokens("goc-serve:stats", args);
  reject_unknown(cli, {"json"});
  const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
  if (cli.get_bool("json", false)) {
    out << snapshot.to_json(/*compact=*/true) << "\n";
  } else {
    out << snapshot.to_prometheus();
  }
  out << "ok stats counters=" << snapshot.counters.size()
      << " gauges=" << snapshot.gauges.size()
      << " histograms=" << snapshot.histograms.size() << "\n";
}

void Server::cmd_result(const std::vector<std::string>& args,
                        std::ostream& out) {
  const std::uint64_t id = parse_job_id(args, "result");
  const Cli cli = cli_from_tokens(
      "goc-serve:result",
      std::vector<std::string>(args.begin() + 1, args.end()));
  reject_unknown(cli, {"wait"});
  const bool wait = cli.get_bool("wait", false);
  const auto fetched = jobs_.fetch(id, wait);
  if (!fetched) {
    out << "err unknown job " << id << "\n";
    return;
  }
  if (!job_state_terminal(fetched->status.state)) {
    out << "err job " << id
        << " state=" << job_state_name(fetched->status.state)
        << " (pass --wait to block)\n";
    return;
  }
  if (fetched->status.state != JobState::kDone) {
    out << "err job " << id
        << " state=" << job_state_name(fetched->status.state);
    if (!fetched->status.detail.empty()) {
      out << " detail=" << fetched->status.detail;
    }
    out << "\n";
    return;
  }
  // Payload first (the io::table_to_json document, newline-terminated),
  // then the ok line — a client reads until the ok/err terminator.
  out << fetched->outcome.json;
  if (fetched->outcome.json.empty() || fetched->outcome.json.back() != '\n') {
    out << "\n";
  }
  out << "ok id=" << fetched->status.id << " kind=" << fetched->status.kind
      << " state=done values_hash=" << fetched->outcome.values_hash;
  if (!fetched->outcome.summary.empty()) out << " " << fetched->outcome.summary;
  out << "\n";
}

void Server::cmd_cancel(const std::vector<std::string>& args,
                        std::ostream& out) {
  const std::uint64_t id = parse_job_id(args, "cancel");
  if (jobs_.cancel(id)) {
    out << "ok id=" << id << " state=cancelled\n";
  } else if (jobs_.status(id)) {
    out << "err job " << id << " already "
        << job_state_name(jobs_.status(id)->state) << "\n";
  } else {
    out << "err unknown job " << id << "\n";
  }
}

void Server::cmd_jobs(std::ostream& out) {
  const auto statuses = jobs_.list();
  for (const auto& status : statuses) {
    out << "job id=" << status.id << " kind=" << status.kind
        << " state=" << job_state_name(status.state) << "\n";
  }
  out << "ok jobs=" << statuses.size() << "\n";
}

void Server::cmd_help(std::ostream& out) {
  out << "# submit batch|sweep|enumerate [--flags...]  (bare kind works too)\n"
      << "# status <id> | result <id> [--wait] | cancel <id> | jobs\n"
      << "# watch <id> [--interval-ms=N]  streams progress rows until done\n"
      << "# stats [--json]  process metrics (Prometheus text or one JSON "
         "line)\n"
      << "# batch: --scenario=chain-reference|market-random|market-fork\n"
      << "#        --miners --chains --coins --days --epoch-lanes --engine\n"
      << "#        --seed --replicas --stop-* --checkpoint[-interval]\n"
      << "# sweep: --miners=a,b --coins=a,b --power-shapes=... --trials\n"
      << "#        --seed --max-steps\n"
      << "# enumerate: --miners --coins --power-shape --reward-shape --seed\n"
      << "#            --max-configs --symmetry\n"
      << "ok help\n";
}

bool Server::handle_line(const std::string& line, std::ostream& out) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') return true;
  const std::string& verb = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  try {
    if (verb == "quit") {
      out << "ok bye\n";
      return false;
    }
    if (verb == "ping") {
      out << "ok pong\n";
    } else if (verb == "help") {
      cmd_help(out);
    } else if (verb == "submit") {
      if (args.empty()) {
        throw std::invalid_argument(
            "submit expects a job kind (batch, sweep, enumerate)");
      }
      cmd_submit(args[0],
                 std::vector<std::string>(args.begin() + 1, args.end()), out);
    } else if (verb == "batch" || verb == "sweep" || verb == "enumerate") {
      cmd_submit(verb, args, out);
    } else if (verb == "status") {
      cmd_status(args, out);
    } else if (verb == "result") {
      cmd_result(args, out);
    } else if (verb == "cancel") {
      cmd_cancel(args, out);
    } else if (verb == "jobs") {
      cmd_jobs(out);
    } else if (verb == "watch") {
      cmd_watch(args, out);
    } else if (verb == "stats") {
      cmd_stats(args, out);
    } else {
      out << "err unknown command '" << verb << "' (try help)\n";
    }
  } catch (const std::exception& error) {
    out << "err " << error.what() << "\n";
  }
  return true;
}

void Server::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    const bool keep_going = handle_line(line, out);
    out.flush();
    if (!keep_going) return;
  }
}

}  // namespace goc::serve
