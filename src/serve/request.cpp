#include "serve/request.hpp"

#include <stdexcept>

namespace goc::serve {

std::vector<std::string> tokenize(const std::string& line) {
  std::string text = line;
  if (!text.empty() && text.back() == '\r') text.pop_back();
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) tokens.push_back(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

Cli cli_from_tokens(const std::string& program,
                    const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back(program.c_str());
  for (const auto& arg : args) argv.push_back(arg.c_str());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

void reject_unknown(const Cli& cli, const std::vector<std::string>& known) {
  const std::vector<std::string> stray = cli.unknown(known);
  if (stray.empty()) return;
  std::string message = "unknown option(s) for " + cli.program() + ":";
  for (const auto& name : stray) message += " --" + name;
  throw std::invalid_argument(message);
}

std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& what) {
  std::vector<std::size_t> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      try {
        values.push_back(static_cast<std::size_t>(std::stoull(item)));
      } catch (const std::exception&) {
        throw std::invalid_argument(what + " expects a comma-separated " +
                                    "integer list, got '" + text + "'");
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

PowerShape power_shape_from_name(const std::string& name) {
  for (const PowerShape shape : {PowerShape::kEqual, PowerShape::kUniform,
                                 PowerShape::kZipf, PowerShape::kPareto}) {
    if (power_shape_name(shape) == name) return shape;
  }
  throw std::invalid_argument("unknown power shape '" + name +
                              "' (equal, uniform, zipf, pareto)");
}

RewardShape reward_shape_from_name(const std::string& name) {
  for (const RewardShape shape :
       {RewardShape::kEqual, RewardShape::kUniform, RewardShape::kMajors}) {
    if (reward_shape_name(shape) == name) return shape;
  }
  throw std::invalid_argument("unknown reward shape '" + name +
                              "' (equal, uniform, majors)");
}

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    if (scheduler_kind_name(kind) == name) return kind;
  }
  std::string valid;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    if (!valid.empty()) valid += ", ";
    valid += scheduler_kind_name(kind);
  }
  throw std::invalid_argument("unknown scheduler '" + name + "' (" + valid +
                              ")");
}

}  // namespace goc::serve
