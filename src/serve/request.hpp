#pragma once

#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dynamics/scheduler.hpp"
#include "util/cli.hpp"

/// \file request.hpp
/// Parsing for the serve daemon's line protocol.
///
/// A request line is whitespace-separated tokens: a verb, then the same
/// `--name=value` / `--name value` / `--flag` option syntax every binary
/// in this repo speaks — the tokens are handed to `goc::Cli` verbatim, so
/// the daemon's flags parse (and fail) exactly like the CLI's, and
/// `Cli::unknown` gives the same fail-fast typo rejection. No quoting:
/// values cannot contain whitespace (none of the option surface needs it).

namespace goc::serve {

/// Splits a protocol line on runs of spaces/tabs; a trailing '\r' (CRLF
/// clients over TCP) is stripped first.
std::vector<std::string> tokenize(const std::string& line);

/// Builds a `Cli` over `args` with `program` as argv[0] (so option-error
/// messages name the command that failed).
Cli cli_from_tokens(const std::string& program,
                    const std::vector<std::string>& args);

/// Throws std::invalid_argument naming every option of `cli` outside
/// `known` — the protocol's fail-fast guard, shared with the bench
/// binaries' `Cli::unknown` checks.
void reject_unknown(const Cli& cli, const std::vector<std::string>& known);

/// Comma-separated u64 list ("16,64,256"); empty string → empty vector.
std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& what);

/// Shape / scheduler names, inverse to `power_shape_name` /
/// `reward_shape_name` / `scheduler_kind_name`. Throw
/// std::invalid_argument on an unknown name (listing the valid ones).
PowerShape power_shape_from_name(const std::string& name);
RewardShape reward_shape_from_name(const std::string& name);
SchedulerKind scheduler_kind_from_name(const std::string& name);

}  // namespace goc::serve
