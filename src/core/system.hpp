#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rational.hpp"

/// \file system.hpp
/// The paper's system tuple ⟨Π, C⟩ (Section 2): a finite set of miners with
/// positive mining powers and a finite set of coins.

namespace goc {

/// Immutable after construction; a `Game` couples a System with a reward
/// function, and a `Configuration` assigns each miner a coin.
class System {
 public:
  /// `powers[i]` is the mining power of miner `p_i`; all must be positive.
  /// `num_coins` must be at least 1.
  System(std::vector<Rational> powers, std::size_t num_coins);

  /// Convenience: integer powers.
  static System from_integer_powers(const std::vector<std::int64_t>& powers,
                                    std::size_t num_coins);

  std::size_t num_miners() const noexcept { return powers_.size(); }
  std::size_t num_coins() const noexcept { return num_coins_; }

  const Rational& power(MinerId p) const;
  const std::vector<Rational>& powers() const noexcept { return powers_; }

  /// Σ_p m_p.
  const Rational& total_power() const noexcept { return total_power_; }
  /// min_p m_p.
  const Rational& min_power() const noexcept { return min_power_; }
  /// max_p m_p.
  const Rational& max_power() const noexcept { return max_power_; }

  /// True iff powers are strictly decreasing in miner-id order
  /// (m_{p_1} > m_{p_2} > …), the standing assumption of Section 5.
  bool strictly_decreasing_powers() const noexcept;

  /// True iff powers are non-increasing in miner-id order
  /// (m_{p_1} ≥ m_{p_2} ≥ …), the convention of Section 4 / Appendix A.
  bool non_increasing_powers() const noexcept;

  /// A copy of this system with miners permuted into non-increasing power
  /// order. `out_permutation[new_index] = old MinerId` when non-null.
  System sorted_by_power_desc(std::vector<MinerId>* out_permutation = nullptr) const;

  /// All miner ids, in index order.
  std::vector<MinerId> miner_ids() const;
  /// All coin ids, in index order.
  std::vector<CoinId> coin_ids() const;

  bool valid_miner(MinerId p) const noexcept {
    return p.value < powers_.size();
  }
  bool valid_coin(CoinId c) const noexcept { return c.value < num_coins_; }

  std::string to_string() const;

 private:
  std::vector<Rational> powers_;
  std::size_t num_coins_;
  Rational total_power_;
  Rational min_power_;
  Rational max_power_;
};

}  // namespace goc
