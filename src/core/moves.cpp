#include "core/moves.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

std::string Move::to_string() const {
  std::ostringstream os;
  os << miner.to_string() << ": " << from.to_string() << " -> "
     << to.to_string() << " (+" << gain.to_string() << ")";
  return os.str();
}

Rational move_gain(const Game& game, const Configuration& s, MinerId p,
                   CoinId c) {
  return game.payoff_if_move(s, p, c) - game.payoff(s, p);
}

bool is_better_response(const Game& game, const Configuration& s, MinerId p,
                        CoinId c) {
  if (s.of(p) == c) return false;
  if (!game.can_mine(p, c)) return false;
  return game.payoff_if_move(s, p, c) > game.payoff(s, p);
}

std::vector<CoinId> better_responses(const Game& game, const Configuration& s,
                                     MinerId p) {
  std::vector<CoinId> out;
  const Rational current = game.payoff(s, p);
  const CoinId here = s.of(p);
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (coin == here) continue;
    if (!game.can_mine(p, coin)) continue;
    if (game.payoff_if_move(s, p, coin) > current) out.push_back(coin);
  }
  return out;
}

std::optional<CoinId> best_response(const Game& game, const Configuration& s,
                                    MinerId p) {
  const Rational current = game.payoff(s, p);
  const CoinId here = s.of(p);
  std::optional<CoinId> best;
  Rational best_payoff = current;
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (coin == here) continue;
    if (!game.can_mine(p, coin)) continue;
    const Rational after = game.payoff_if_move(s, p, coin);
    if (after > best_payoff) {
      best_payoff = after;
      best = coin;
    }
  }
  return best;
}

bool is_stable(const Game& game, const Configuration& s, MinerId p) {
  const Rational current = game.payoff(s, p);
  const CoinId here = s.of(p);
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (coin == here) continue;
    if (!game.can_mine(p, coin)) continue;
    if (game.payoff_if_move(s, p, coin) > current) return false;
  }
  return true;
}

bool is_equilibrium(const Game& game, const Configuration& s) {
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    if (!is_stable(game, s, MinerId(p))) return false;
  }
  return true;
}

std::vector<MinerId> unstable_miners(const Game& game, const Configuration& s) {
  std::vector<MinerId> out;
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    if (!is_stable(game, s, MinerId(p))) out.emplace_back(p);
  }
  return out;
}

bool is_epsilon_stable(const Game& game, const Configuration& s, MinerId p,
                       const Rational& epsilon) {
  GOC_CHECK_ARG(!epsilon.is_negative(), "epsilon must be nonnegative");
  const Rational current = game.payoff(s, p);
  const Rational threshold = current + current * epsilon;
  const CoinId here = s.of(p);
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (coin == here) continue;
    if (!game.can_mine(p, coin)) continue;
    if (game.payoff_if_move(s, p, coin) > threshold) return false;
  }
  return true;
}

bool is_epsilon_equilibrium(const Game& game, const Configuration& s,
                            const Rational& epsilon) {
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    if (!is_epsilon_stable(game, s, MinerId(p), epsilon)) return false;
  }
  return true;
}

std::size_t count_better_responses(const Game& game, const Configuration& s,
                                   MinerId p) {
  std::size_t count = 0;
  const Rational current = game.payoff(s, p);
  const CoinId here = s.of(p);
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (coin == here) continue;
    if (!game.can_mine(p, coin)) continue;
    if (game.payoff_if_move(s, p, coin) > current) ++count;
  }
  return count;
}

std::size_t count_all_better_response_moves(const Game& game,
                                            const Configuration& s) {
  std::size_t count = 0;
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    count += count_better_responses(game, s, MinerId(p));
  }
  return count;
}

std::optional<Move> nth_better_response_move(const Game& game,
                                             const Configuration& s,
                                             std::size_t n) {
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    const MinerId miner(p);
    const Rational current = game.payoff(s, miner);
    const CoinId here = s.of(miner);
    for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
      const CoinId coin(c);
      if (coin == here) continue;
      if (!game.can_mine(miner, coin)) continue;
      const Rational after = game.payoff_if_move(s, miner, coin);
      if (after > current) {
        if (n == 0) return Move{miner, here, coin, after - current};
        --n;
      }
    }
  }
  return std::nullopt;
}

std::vector<Move> all_better_response_moves(const Game& game,
                                            const Configuration& s) {
  std::vector<Move> out;
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    const MinerId miner(p);
    const Rational current = game.payoff(s, miner);
    const CoinId here = s.of(miner);
    for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
      const CoinId coin(c);
      if (coin == here) continue;
      if (!game.can_mine(miner, coin)) continue;
      const Rational after = game.payoff_if_move(s, miner, coin);
      if (after > current) {
        out.push_back(Move{miner, here, coin, after - current});
      }
    }
  }
  return out;
}

}  // namespace goc
