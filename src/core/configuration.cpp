#include "core/configuration.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc {

Configuration::Configuration(std::shared_ptr<const System> system,
                             std::vector<CoinId> assignment)
    : system_(std::move(system)), assignment_(std::move(assignment)) {
  GOC_CHECK_ARG(system_ != nullptr, "Configuration requires a system");
  GOC_CHECK_ARG(assignment_.size() == system_->num_miners(),
                "assignment arity must equal the number of miners");
  mass_.assign(system_->num_coins(), Rational(0));
  count_.assign(system_->num_coins(), 0);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    const CoinId c = assignment_[i];
    GOC_CHECK_ARG(system_->valid_coin(c), "assignment references unknown coin");
    mass_[c.value] += system_->power(MinerId(static_cast<std::uint32_t>(i)));
    if (count_[c.value]++ == 0) ++occupied_;
  }
}

Configuration Configuration::all_at(std::shared_ptr<const System> system,
                                    CoinId c) {
  GOC_CHECK_ARG(system != nullptr, "Configuration requires a system");
  GOC_CHECK_ARG(system->valid_coin(c), "unknown coin id");
  const std::size_t n = system->num_miners();
  return Configuration(std::move(system), std::vector<CoinId>(n, c));
}

CoinId Configuration::of(MinerId p) const {
  GOC_CHECK_ARG(system_->valid_miner(p), "unknown miner id");
  return assignment_[p.value];
}

const Rational& Configuration::mass(CoinId c) const {
  GOC_CHECK_ARG(system_->valid_coin(c), "unknown coin id");
  return mass_[c.value];
}

std::size_t Configuration::population(CoinId c) const {
  GOC_CHECK_ARG(system_->valid_coin(c), "unknown coin id");
  return count_[c.value];
}

std::vector<MinerId> Configuration::members(CoinId c) const {
  GOC_CHECK_ARG(system_->valid_coin(c), "unknown coin id");
  std::vector<MinerId> out;
  out.reserve(count_[c.value]);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    if (assignment_[i] == c) out.emplace_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

void Configuration::move(MinerId p, CoinId to) {
  GOC_CHECK_ARG(system_->valid_miner(p), "unknown miner id");
  GOC_CHECK_ARG(system_->valid_coin(to), "unknown coin id");
  const CoinId from = assignment_[p.value];
  if (from == to) return;
  const Rational& m = system_->power(p);
  mass_[from.value] -= m;
  if (--count_[from.value] == 0) --occupied_;
  mass_[to.value] += m;
  if (count_[to.value]++ == 0) ++occupied_;
  assignment_[p.value] = to;
  ++move_epoch_;
  last_delta_ = MoveDelta{p, from, to};
  GOC_DASSERT(!mass_[from.value].is_negative(), "coin mass went negative");
}

Configuration Configuration::with_move(MinerId p, CoinId to) const {
  Configuration copy = *this;
  copy.move(p, to);
  return copy;
}

bool Configuration::operator==(const Configuration& other) const {
  GOC_CHECK_ARG(system_ == other.system_ ||
                    (system_->num_miners() == other.system_->num_miners() &&
                     system_->num_coins() == other.system_->num_coins()),
                "comparing configurations of different systems");
  return assignment_ == other.assignment_;
}

std::size_t Configuration::hash() const noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const CoinId c : assignment_) {
    fnv::mix_word(h, c.value);
  }
  return h;
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  os << "<";
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    if (i != 0) os << ", ";
    os << assignment_[i].to_string();
  }
  os << ">";
  return os.str();
}

}  // namespace goc
