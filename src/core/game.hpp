#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/access.hpp"
#include "core/configuration.hpp"
#include "core/reward.hpp"
#include "core/system.hpp"
#include "util/xrational.hpp"

/// \file game.hpp
/// The game G_{Π,C,F} (Section 2): a system plus a reward function.
///
/// Payoff semantics: coin c divides F(c) among its miners proportionally to
/// power, so RPU_c(s) = F(c)/M_c(s) and u_p(s) = m_p · RPU_{s.p}(s). An
/// empty coin's RPU is modeled as +∞ (see DESIGN.md §2.1): joining it alone
/// yields the full reward, i.e. the *post-move* RPU is what better-response
/// reasoning uses, and Observations 1–2 stay valid with this convention.

namespace goc {

class Game {
 public:
  /// Shares the system with configurations and other games (e.g. designed
  /// reward variants over the same ⟨Π, C⟩). The optional access policy
  /// models the asymmetric case of §6 (player-specific coin sets); it
  /// defaults to unrestricted, the paper's base model.
  Game(std::shared_ptr<const System> system, RewardFunction rewards,
       AccessPolicy access = {});

  /// Convenience: takes ownership of a freshly built system.
  Game(System system, RewardFunction rewards, AccessPolicy access = {});

  const System& system() const noexcept { return *system_; }
  const std::shared_ptr<const System>& system_ptr() const noexcept {
    return system_;
  }
  const RewardFunction& rewards() const noexcept { return rewards_; }
  const AccessPolicy& access() const noexcept { return access_; }

  /// May miner p (re)point its hashpower at coin c?
  bool can_mine(MinerId p, CoinId c) const { return access_.allowed(p, c); }

  /// The coins p may mine, in id order.
  std::vector<CoinId> allowed_coins(MinerId p) const {
    return access_.allowed_coins(p, num_coins());
  }

  /// Every miner in s sits on a coin it may mine.
  bool respects_access(const Configuration& s) const;

  std::size_t num_miners() const noexcept { return system_->num_miners(); }
  std::size_t num_coins() const noexcept { return system_->num_coins(); }

  /// RPU_c(s) = F(c)/M_c(s); +∞ when c is empty.
  XRational rpu(const Configuration& s, CoinId c) const;

  /// u_p(s) = m_p · RPU_{s.p}(s). Always finite (p itself mines s.p).
  Rational payoff(const Configuration& s, MinerId p) const;

  /// u_p((s_{-p}, c)) — p's payoff after unilaterally moving to c (equals
  /// payoff(s, p) when c == s.p). Always finite. Throws when the access
  /// policy forbids p mining c.
  Rational payoff_if_move(const Configuration& s, MinerId p, CoinId c) const;

  /// Same game, different rewards (used by the reward-design mechanism);
  /// the access policy carries over.
  Game with_rewards(RewardFunction rewards) const;

  /// Replaces the reward function *in place* — system and access policy
  /// untouched, arity checked. The complement of `with_rewards` for
  /// simulation loops that change weights every epoch: observers holding a
  /// reference to this game (configurations, comparators, indices) keep
  /// it; anything caching reward-derived state must be refreshed (see
  /// `dynamics::BestResponseIndex::reweight`).
  void reweight(RewardFunction rewards);

  /// Zero-allocation reweight: copies `weights` into the reward function's
  /// preallocated storage (`RewardFunction::assign`). The market epoch
  /// engine's steady-state path.
  void reweight(const std::vector<Rational>& weights);

  std::string to_string() const;

 private:
  std::shared_ptr<const System> system_;
  RewardFunction rewards_;
  AccessPolicy access_;
};

}  // namespace goc
