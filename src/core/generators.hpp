#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "util/rng.hpp"

/// \file generators.hpp
/// Random workload generation for tests and benchmark sweeps.
///
/// Mining power in practice is heavy-tailed (a few large pools, many small
/// miners), so besides uniform powers we provide Zipf- and Pareto-shaped
/// integer powers. Reward functions model coin weights (block reward ×
/// exchange rate + fees), drawn uniformly or sized like a "majors + long
/// tail" market.

namespace goc {

enum class PowerShape {
  kEqual,    ///< all miners identical (symmetric stress case)
  kUniform,  ///< uniform integers in [power_lo, power_hi]
  kZipf,     ///< rank-r miner gets ⌈power_hi / r^zipf_s⌉
  kPareto,   ///< i.i.d. Pareto(power_lo, pareto_alpha), rounded up
};

enum class RewardShape {
  kEqual,    ///< symmetric case of Appendix B
  kUniform,  ///< uniform integers in [reward_lo, reward_hi]
  kMajors,   ///< a few heavy coins plus a geometric tail
};

/// Stable identifier for tables/CSV ("equal", "uniform", "zipf", "pareto").
/// Returns an interned static — record emission stamps these onto every
/// row, so no per-call allocation.
const std::string& power_shape_name(PowerShape shape);

/// Stable identifier for tables/CSV ("equal", "uniform", "majors").
/// Interned like `power_shape_name`.
const std::string& reward_shape_name(RewardShape shape);

struct GameSpec {
  std::size_t num_miners = 10;
  std::size_t num_coins = 3;

  PowerShape power_shape = PowerShape::kUniform;
  std::int64_t power_lo = 1;
  std::int64_t power_hi = 1000;
  double zipf_s = 1.0;
  double pareto_alpha = 1.16;  // the "80/20" shape

  /// Force strictly distinct powers (the standing assumption of Section 5).
  bool distinct_powers = false;
  /// Emit miners sorted by decreasing power (p1 largest), as Sections 4–5
  /// index them.
  bool sort_desc = false;

  RewardShape reward_shape = RewardShape::kUniform;
  std::int64_t reward_lo = 100;
  std::int64_t reward_hi = 10000;

  std::string to_string() const;
};

/// Draws a game according to `spec`. Deterministic for a fixed `rng` state.
Game random_game(const GameSpec& spec, Rng& rng);

/// Uniformly random assignment of miners to coins.
Configuration random_configuration(const Game& game, Rng& rng);

/// Makes all miner powers pairwise distinct while preserving their order
/// and relative magnitudes: m_i ↦ m_i·scale + (n−i). Integer powers stay
/// integer (exact arithmetic stays cheap); payoff ratios are perturbed by
/// O(n/scale) only, since the game is invariant under uniform power
/// scaling. `scale` ≤ 0 selects n+1. Used to establish the strict-ordering
/// precondition of Section 5 on arbitrary inputs; throws when existing
/// nonzero power gaps are finer than n/scale (pass a larger scale).
System with_distinct_powers(const System& system, std::int64_t scale = 0);

}  // namespace goc
