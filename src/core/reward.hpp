#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rational.hpp"

/// \file reward.hpp
/// The paper's reward function F : C → R+ (Section 2). Every coin's reward
/// is strictly positive; a `Game` couples a `System` with a
/// `RewardFunction`, and the reward-design machinery of Section 5 produces
/// *modified* reward functions H with H(c) ≥ F(c).

namespace goc {

class RewardFunction {
 public:
  /// `rewards[c]` is F(c); all entries must be positive.
  explicit RewardFunction(std::vector<Rational> rewards);

  /// Constant function F(c) = value (the "symmetric case" of Appendix B).
  static RewardFunction constant(std::size_t num_coins, Rational value);

  /// Convenience: integer rewards.
  static RewardFunction from_integers(const std::vector<std::int64_t>& rewards);

  std::size_t num_coins() const noexcept { return rewards_.size(); }

  const Rational& operator()(CoinId c) const;
  const Rational& at(CoinId c) const { return (*this)(c); }
  const std::vector<Rational>& values() const noexcept { return rewards_; }

  /// max_c F(c).
  const Rational& max_reward() const noexcept { return max_; }
  /// min_c F(c).
  const Rational& min_reward() const noexcept { return min_; }
  /// Σ_c F(c).
  const Rational& total_reward() const noexcept { return total_; }

  /// True iff F is constant across coins.
  bool is_symmetric() const noexcept;

  /// Returns a copy with coin `c` set to `value` (must be positive).
  RewardFunction with(CoinId c, Rational value) const;

  /// Replaces every coin's reward in place, reusing the existing storage
  /// (no allocation when the arity matches, which it must). Same
  /// validation as the constructor; the min/max/total aggregates are
  /// recomputed. This is the zero-rebuild path the market epoch engine
  /// drives through `Game::reweight`.
  void assign(const std::vector<Rational>& rewards);

  /// Pointwise `this ≥ other` — the Algorithm 1 admissibility condition for
  /// a designed reward function relative to the base F.
  bool dominates(const RewardFunction& other) const;

  /// Σ_c (this(c) − base(c)); the per-epoch cost a manipulator pays to
  /// sustain this designed reward function over `base`. Requires
  /// `dominates(base)`.
  Rational overpayment(const RewardFunction& base) const;

  bool operator==(const RewardFunction& other) const noexcept {
    return rewards_ == other.rewards_;
  }

  std::string to_string() const;

 private:
  std::vector<Rational> rewards_;
  Rational max_;
  Rational min_;
  Rational total_;
};

}  // namespace goc
