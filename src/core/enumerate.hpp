#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/configuration.hpp"
#include "core/system.hpp"

/// \file enumerate.hpp
/// Exhaustive iteration over the configuration space S = C^n (odometer
/// order). Exponential — callers must bound the space; used by equilibrium
/// enumeration, Assumption 1 checking, and exact-potential verification on
/// small games.

namespace goc {

/// Number of configurations |C|^n, or nullopt if it exceeds 2^63−1.
std::optional<std::uint64_t> configuration_count(const System& system);

/// Invokes `visit` on every configuration in odometer order (miner 0 is the
/// fastest-changing digit). Stops early when `visit` returns false.
/// Throws std::invalid_argument when |C|^n > max_configs.
void for_each_configuration(const std::shared_ptr<const System>& system,
                            std::uint64_t max_configs,
                            const std::function<bool(const Configuration&)>& visit);

}  // namespace goc
