#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "core/system.hpp"
#include "engine/cancel.hpp"
#include "engine/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"
#include "util/int128.hpp"

/// \file enumerate.hpp
/// The exhaustive-enumeration engine: high-throughput iteration over the
/// configuration space S = C^n for equilibrium enumeration, Assumption 1
/// checking, and exact-potential verification.
///
/// Four stacked mechanisms (mirroring the learning hot loop of PR 2):
///
///  * **De-virtualized incremental walk** — `walk_canonical_shard` is a
///    template over its visitor (no `std::function` dispatch) and advances
///    an odometer one `Configuration::move` at a time, so per-coin masses
///    update in O(1) per visited configuration.
///  * **Symmetry reduction** — miners with identical power and identical
///    access rights are interchangeable: permuting them is a game
///    automorphism, so equilibrium-ness, never-alone violations, and
///    4-cycle obstructions are orbit-invariant. The walker enumerates only
///    *canonical representatives* (coin ids non-decreasing in miner-id
///    order within each class), shrinking |C|^n toward the multiset count;
///    `expand_orbit` recovers the full orbit on demand.
///  * **Deterministic sharding** — the odometer splits into consecutive
///    rank ranges (top-digit prefixes, with oversized prefixes split
///    further by canonical unranking) fanned across `engine::ThreadPool`.
///    Shards are indexed in global odometer order and sized exactly
///    (`ShardPlan::sizes` / `start_ranks`), so per-shard results
///    concatenate into a result that is bit-identical at any thread count.
///  * **i128 predicates** — consumers check equilibrium/stability inside
///    the walk with `MoveComparator` (core/move_compare.hpp) instead of
///    exact `Rational` payoff scans.
///
/// The legacy `for_each_configuration` callback walker is kept verbatim as
/// the validation reference (`--compare-scan` paths and golden tests).

namespace goc {

/// Number of configurations |C|^n, or nullopt if it exceeds 2^63−1.
std::optional<std::uint64_t> configuration_count(const System& system);

/// Reference walker: invokes `visit` on every configuration in odometer
/// order (miner 0 is the fastest-changing digit). Stops early when `visit`
/// returns false. Throws std::invalid_argument when |C|^n > max_configs.
void for_each_configuration(const std::shared_ptr<const System>& system,
                            std::uint64_t max_configs,
                            const std::function<bool(const Configuration&)>& visit);

// ------------------------------------------------------------ symmetry

/// The partition of miners into interchangeability classes: p ~ q iff they
/// have equal power and identical access rows. Permuting classmates is a
/// game automorphism (it preserves every per-coin mass and every miner's
/// action set), so all engine predicates are constant on orbits.
struct SymmetryClasses {
  /// miner -> index of its class in `classes`.
  std::vector<std::uint32_t> class_of;
  /// Members of each class, in miner-id order.
  std::vector<std::vector<MinerId>> classes;
  /// miner -> the next classmate with a larger id, or -1 when it is the
  /// largest of its class. The canonical-form constraint is
  /// digit[p] <= digit[next_classmate[p]].
  std::vector<std::int32_t> next_classmate;
  /// True when every class is a singleton (no reduction available); the
  /// canonical walk then visits the full space in exact legacy order.
  bool trivial = true;
};

/// Groups the game's miners by (power, access row).
SymmetryClasses symmetry_classes(const Game& game);

/// The no-symmetry partition: n singleton classes (used when
/// `EnumerationOptions::symmetry` is off).
SymmetryClasses singleton_classes(std::size_t num_miners);

struct EnumerationOptions;

/// The partition `opts` selects: symmetry classes, or singletons when
/// symmetry is off. Every engine consumer resolves its classes through
/// this so walk and post-processing (orbit expansion) always agree.
SymmetryClasses classes_for(const Game& game, const EnumerationOptions& opts);

/// Number of canonical representatives: Π over classes of the multiset
/// count C(|K| + |C| − 1, |K|). nullopt on 64-bit overflow.
std::optional<std::uint64_t> canonical_count(const System& system,
                                             const SymmetryClasses& classes);

/// Orbit size of `assignment` under the class permutations: Π over classes
/// of the multinomial |K|! / Π_c (members of K on c)!. Throws OverflowError
/// if the product exceeds 2^64−1.
std::uint64_t orbit_size(const std::vector<CoinId>& assignment,
                         const SymmetryClasses& classes);

/// All configurations in the orbit of `canonical` (including itself), in
/// unspecified order. The orbit of a canonical equilibrium is exactly its
/// equivalence class in the full space.
std::vector<Configuration> expand_orbit(const Configuration& canonical,
                                        const SymmetryClasses& classes);

/// Odometer rank of an assignment: Σ_i digit(i)·|C|^i. Total order of the
/// legacy walk; used to merge expanded orbits back into legacy output
/// order. Caller must have bounded |C|^n to 2^63−1 (configuration_count).
std::uint64_t odometer_rank(const std::vector<CoinId>& assignment,
                            std::size_t num_coins);

/// Canonical cap of miner `pos`'s digit: its next classmate's current
/// digit (the non-decreasing-within-class constraint), else the largest
/// coin. The one definition of the canonical form, shared by both walkers
/// and the shard planner.
inline std::uint32_t canonical_cap(const SymmetryClasses& classes,
                                   const std::vector<std::uint32_t>& digits,
                                   std::size_t pos, std::uint32_t coins) {
  const std::int32_t nc = classes.next_classmate[pos];
  return nc < 0 ? coins - 1 : digits[static_cast<std::size_t>(nc)];
}

// ------------------------------------------------------------ sharding

struct EnumerationOptions {
  /// Total concurrent lanes; 0 = one per hardware thread, 1 = serial (the
  /// deterministic-by-construction reference schedule). Ignored when
  /// `pool` is set.
  std::size_t threads = 1;
  /// Enumerate canonical representatives only. Off = full space (the
  /// walker then visits configurations in exact legacy odometer order).
  bool symmetry = true;
  /// Bound on the FULL |C|^n space (legacy semantics — consumers throw
  /// std::invalid_argument above it even when the canonical space is
  /// smaller).
  std::uint64_t max_configs = 1u << 22;
  /// Shard granularity: aim for this many shards per lane so uneven
  /// per-shard cost still load-balances across the pool.
  std::size_t shards_per_lane = 8;
  /// …but never shards smaller than this many configurations (dispatch
  /// overhead would exceed the walk): the shard count is capped at
  /// canonical/min_shard_configs (floored at one shard per lane).
  std::uint64_t min_shard_configs = 1024;
  /// Canonical spaces smaller than this run serially in one shard —
  /// fan-out overhead would swamp the walk (results are identical either
  /// way; this is purely a scheduling decision). Consumers with heavy
  /// per-configuration work compare a *weighted* count against this
  /// cutoff instead of lowering it (the 4-cycle scanners multiply the
  /// base count by cycles-per-base; see `weighted_bases` in
  /// exact_potential.cpp).
  std::uint64_t serial_cutoff = 4096;
  /// Reuse an existing pool instead of spawning one per call (spawning
  /// costs more than walking a small game). Non-owning; lanes =
  /// pool->num_threads() + 1. nullptr = spawn from `threads`.
  engine::ThreadPool* pool = nullptr;
  /// Cooperative cancellation (engine/cancel.hpp): polled before every
  /// shard walk; a stale view makes the fan-out throw `engine::Cancelled`.
  /// Default never cancels. Granularity is one shard — coarse, but an
  /// enumeration that matters is sharded, and the serial small-space path
  /// finishes faster than any cancel could land.
  engine::CancelView cancel;
};

/// A deterministic split of the canonical space into consecutive rank
/// ranges. Shard i enumerates exactly the canonical configurations with
/// ranks [start_ranks[i], start_ranks[i] + sizes[i]) in canonical odometer
/// order, so concatenating per-shard results in index order reproduces the
/// serial walk bit-for-bit. The planner first cuts by top-digit prefix,
/// then splits any prefix larger than ~ceil(total/target) into even rank
/// subranges via canonical unranking — pathological class layouts (e.g.
/// one giant symmetry class, where most of the space shares one top
/// digit) no longer serialize a single lane on one oversized shard.
struct ShardPlan {
  /// starts[i] = full digit vector (miner -> coin) of shard i's first
  /// canonical configuration, in global odometer order.
  std::vector<std::vector<std::uint32_t>> starts;
  /// Canonical configurations per shard.
  std::vector<std::uint64_t> sizes;
  /// Exclusive prefix sums of `sizes` (global canonical start rank).
  std::vector<std::uint64_t> start_ranks;
};

/// Splits the canonical space into at least `target_shards` shards when
/// possible, each of at most ~ceil(canonical/target_shards)
/// configurations (a single shard when target_shards <= 1).
ShardPlan plan_shards(const System& system, const SymmetryClasses& classes,
                      std::size_t target_shards);

/// The full digit vector of the canonical configuration with the given
/// canonical odometer rank — the unranking behind ShardPlan's subrange
/// starts. O(n·|C|·classes) per call; `rank` must be < the canonical
/// count.
std::vector<std::uint32_t> canonical_digits_at_rank(
    const System& system, const SymmetryClasses& classes, std::uint64_t rank);

// ------------------------------------------------------------ the walk

/// Visits every canonical configuration of one shard in canonical odometer
/// order, advancing via `Configuration::move` (one miner hop per step).
/// `visit(const Configuration&)` returns false to abort the shard; the
/// function returns false iff aborted. `prefix` pins the digits of miners
/// [free_miners, n) — pass free_miners == n (empty prefix) for the whole
/// space.
template <typename Visit>
bool walk_canonical_shard(const std::shared_ptr<const System>& system,
                          const SymmetryClasses& classes,
                          std::size_t free_miners,
                          const std::vector<std::uint32_t>& prefix,
                          Visit&& visit) {
  const std::size_t n = system->num_miners();
  const std::uint32_t coins = static_cast<std::uint32_t>(system->num_coins());
  std::vector<std::uint32_t> digits(n, 0);
  for (std::size_t j = free_miners; j < n; ++j) digits[j] = prefix[j - free_miners];
  std::vector<CoinId> assignment;
  assignment.reserve(n);
  for (std::size_t i = 0; i < n; ++i) assignment.emplace_back(digits[i]);
  Configuration config(system, std::move(assignment));
  for (;;) {
    if (!visit(static_cast<const Configuration&>(config))) return false;
    std::size_t pos = 0;
    while (pos < free_miners) {
      if (digits[pos] < canonical_cap(classes, digits, pos, coins)) {
        ++digits[pos];
        config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(digits[pos]));
        break;
      }
      if (digits[pos] != 0) {
        digits[pos] = 0;
        config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(0));
      }
      ++pos;
    }
    if (pos == free_miners) return true;  // shard odometer wrapped
  }
}

/// Rank-range walker: visits `count` consecutive canonical configurations
/// starting at `start` (a full digit vector that must itself be
/// canonical), advancing the global canonical odometer one
/// `Configuration::move` at a time. This is the walker behind `ShardPlan`;
/// `walk_canonical_shard` stays as the prefix-pinned reference. Returns
/// false iff `visit` aborted.
template <typename Visit>
bool walk_canonical_range(const std::shared_ptr<const System>& system,
                          const SymmetryClasses& classes,
                          const std::vector<std::uint32_t>& start,
                          std::uint64_t count, Visit&& visit) {
  if (count == 0) return true;
  const std::size_t n = system->num_miners();
  const std::uint32_t coins = static_cast<std::uint32_t>(system->num_coins());
  std::vector<std::uint32_t> digits = start;
  std::vector<CoinId> assignment;
  assignment.reserve(n);
  for (std::size_t i = 0; i < n; ++i) assignment.emplace_back(digits[i]);
  Configuration config(system, std::move(assignment));
  for (;;) {
    if (!visit(static_cast<const Configuration&>(config))) return false;
    if (--count == 0) return true;
    std::size_t pos = 0;
    while (pos < n) {
      if (digits[pos] < canonical_cap(classes, digits, pos, coins)) {
        ++digits[pos];
        config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(digits[pos]));
        break;
      }
      if (digits[pos] != 0) {
        digits[pos] = 0;
        config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(0));
      }
      ++pos;
    }
    GOC_ASSERT(pos < n, "rank range ran past the canonical space");
  }
}

/// Effective lane count for `opts` over a canonical space of `canonical`
/// configurations: the pool's lanes (or `opts.threads`), clamped to 1
/// below the serial cutoff.
std::size_t enumeration_lanes(const EnumerationOptions& opts,
                              std::optional<std::uint64_t> canonical);

/// Shard target for a lane count over a canonical space (1 lane = 1
/// shard; otherwise shards_per_lane per lane, capped so shards hold at
/// least `min_shard_configs` configurations each).
std::size_t shard_target(const EnumerationOptions& opts, std::size_t lanes,
                         std::optional<std::uint64_t> canonical);

/// Fans a precomputed `ShardPlan` across the pool (the caller's
/// `opts.pool`, or a freshly spawned one). One state per shard
/// (`make_state(shard_index)`), created on the calling thread in shard
/// order; `visit(state, config, shard_index)` runs inside the walk
/// (return false to abort that shard). The returned states are in shard
/// (= global odometer) order regardless of thread count.
namespace enumeration_detail {

/// Shared fan-out: one per-shard state (created on the calling thread in
/// shard order), `walk_shard(state, shard_index)` dispatched across the
/// caller's pool (or a freshly spawned one). Both walkers' drivers funnel
/// through here so the scheduling policy exists exactly once.
template <typename MakeState, typename WalkShard>
auto run_shards(const ShardPlan& plan, const EnumerationOptions& opts,
                std::size_t lanes, MakeState&& make_state, WalkShard&& walk_shard)
    -> std::vector<std::decay_t<std::invoke_result_t<MakeState&, std::size_t>>> {
  using State = std::decay_t<std::invoke_result_t<MakeState&, std::size_t>>;
  std::vector<State> states;
  states.reserve(plan.sizes.size());
  for (std::size_t i = 0; i < plan.sizes.size(); ++i) {
    states.push_back(make_state(i));
  }
  static obs::Counter& kShardsWalked =
      obs::Registry::instance().counter("enum.shards_walked");
  static obs::Histogram& kShardWalkNs =
      obs::Registry::instance().histogram("enum.shard_walk_ns");
  const auto run = [&](engine::ThreadPool& pool) {
    pool.parallel_for(plan.sizes.size(), [&](std::size_t i) {
      opts.cancel.throw_if_stale("enumeration cancelled");
      obs::Span span(kShardWalkNs);
      walk_shard(states[i], i);
      kShardsWalked.add();
    });
  };
  if (opts.pool != nullptr && lanes > 1) {
    run(*opts.pool);
  } else {
    engine::ThreadPool local(engine::ThreadPool::workers_for(lanes));
    run(local);
  }
  return states;
}

}  // namespace enumeration_detail

template <typename MakeState, typename Visit>
auto enumerate_planned(const std::shared_ptr<const System>& system,
                       const SymmetryClasses& classes, const ShardPlan& plan,
                       const EnumerationOptions& opts, std::size_t lanes,
                       MakeState&& make_state, Visit&& visit)
    -> std::vector<std::decay_t<std::invoke_result_t<MakeState&, std::size_t>>> {
  return enumeration_detail::run_shards(
      plan, opts, lanes, std::forward<MakeState>(make_state),
      [&](auto& state, std::size_t i) {
        walk_canonical_range(system, classes, plan.starts[i], plan.sizes[i],
                             [&](const Configuration& s) {
                               return visit(state, s, i);
                             });
      });
}

/// Convenience driver: plans shards from `opts` and runs
/// `enumerate_planned`. Consumers that need shard ranks (deterministic
/// visit budgets) call `plan_shards` themselves.
template <typename MakeState, typename Visit>
auto enumerate_states(const std::shared_ptr<const System>& system,
                      const SymmetryClasses& classes,
                      const EnumerationOptions& opts, MakeState&& make_state,
                      Visit&& visit)
    -> std::vector<std::decay_t<std::invoke_result_t<MakeState&, std::size_t>>> {
  const auto canonical = canonical_count(*system, classes);
  const std::size_t lanes = enumeration_lanes(opts, canonical);
  const ShardPlan plan =
      plan_shards(*system, classes, shard_target(opts, lanes, canonical));
  return enumerate_planned(system, classes, plan, opts, lanes,
                           std::forward<MakeState>(make_state),
                           std::forward<Visit>(visit));
}

// ------------------------------------------------------------ integer walk

/// Precomputed raw numerators for the integer fast path (valid only when
/// every power and reward is an integer — `MoveComparator::integer_mode` —
/// where numerators ARE the values).
struct IntegerGameView {
  std::vector<i128> power;   ///< miner -> m_p
  std::vector<i128> reward;  ///< coin -> F(c)
};

IntegerGameView integer_game_view(const Game& game);

/// The integer walker's state: the plain odometer plus incrementally
/// maintained raw masses and populations — what `Configuration` tracks,
/// without a `Rational` (or a heap object) anywhere near the hot loop.
struct IntegerWalkState {
  std::vector<std::uint32_t> digits;      ///< miner -> coin
  std::vector<i128> mass;                 ///< coin -> M_c
  std::vector<std::uint32_t> population;  ///< coin -> |P_c|
};

/// `walk_canonical_shard` on raw integers: same canonical odometer, same
/// order, ~4 i128 adds per step. `visit(const IntegerWalkState&)` returns
/// false to abort. Consumers materialize a `Configuration` only on hits
/// (`materialize_configuration`).
template <typename Visit>
bool walk_canonical_shard_integer(const IntegerGameView& view,
                                  const SymmetryClasses& classes,
                                  std::size_t num_coins, std::size_t free_miners,
                                  const std::vector<std::uint32_t>& prefix,
                                  Visit&& visit) {
  const std::size_t n = view.power.size();
  const std::uint32_t coins = static_cast<std::uint32_t>(num_coins);
  IntegerWalkState st;
  st.digits.assign(n, 0);
  for (std::size_t j = free_miners; j < n; ++j) st.digits[j] = prefix[j - free_miners];
  st.mass.assign(coins, 0);
  st.population.assign(coins, 0);
  for (std::size_t i = 0; i < n; ++i) {
    st.mass[st.digits[i]] += view.power[i];
    ++st.population[st.digits[i]];
  }
  for (;;) {
    if (!visit(static_cast<const IntegerWalkState&>(st))) return false;
    std::size_t pos = 0;
    while (pos < free_miners) {
      const std::uint32_t from = st.digits[pos];
      if (from < canonical_cap(classes, st.digits, pos, coins)) {
        st.mass[from] -= view.power[pos];
        --st.population[from];
        st.digits[pos] = from + 1;
        st.mass[from + 1] += view.power[pos];
        ++st.population[from + 1];
        break;
      }
      if (from != 0) {
        st.mass[from] -= view.power[pos];
        --st.population[from];
        st.digits[pos] = 0;
        st.mass[0] += view.power[pos];
        ++st.population[0];
      }
      ++pos;
    }
    if (pos == free_miners) return true;  // shard odometer wrapped
  }
}

/// `walk_canonical_range` on raw integers: same global canonical odometer,
/// same order, countdown instead of prefix pinning.
template <typename Visit>
bool walk_canonical_range_integer(const IntegerGameView& view,
                                  const SymmetryClasses& classes,
                                  std::size_t num_coins,
                                  const std::vector<std::uint32_t>& start,
                                  std::uint64_t count, Visit&& visit) {
  if (count == 0) return true;
  const std::size_t n = view.power.size();
  const std::uint32_t coins = static_cast<std::uint32_t>(num_coins);
  IntegerWalkState st;
  st.digits = start;
  st.mass.assign(coins, 0);
  st.population.assign(coins, 0);
  for (std::size_t i = 0; i < n; ++i) {
    st.mass[st.digits[i]] += view.power[i];
    ++st.population[st.digits[i]];
  }
  for (;;) {
    if (!visit(static_cast<const IntegerWalkState&>(st))) return false;
    if (--count == 0) return true;
    std::size_t pos = 0;
    while (pos < n) {
      const std::uint32_t from = st.digits[pos];
      if (from < canonical_cap(classes, st.digits, pos, coins)) {
        st.mass[from] -= view.power[pos];
        --st.population[from];
        st.digits[pos] = from + 1;
        st.mass[from + 1] += view.power[pos];
        ++st.population[from + 1];
        break;
      }
      if (from != 0) {
        st.mass[from] -= view.power[pos];
        --st.population[from];
        st.digits[pos] = 0;
        st.mass[0] += view.power[pos];
        ++st.population[0];
      }
      ++pos;
    }
    GOC_ASSERT(pos < n, "rank range ran past the canonical space");
  }
}

/// `enumerate_planned` over the integer walker.
template <typename MakeState, typename Visit>
auto enumerate_planned_integer(const IntegerGameView& view,
                               const SymmetryClasses& classes,
                               std::size_t num_coins, const ShardPlan& plan,
                               const EnumerationOptions& opts, std::size_t lanes,
                               MakeState&& make_state, Visit&& visit)
    -> std::vector<std::decay_t<std::invoke_result_t<MakeState&, std::size_t>>> {
  return enumeration_detail::run_shards(
      plan, opts, lanes, std::forward<MakeState>(make_state),
      [&](auto& state, std::size_t i) {
        walk_canonical_range_integer(view, classes, num_coins, plan.starts[i],
                                     plan.sizes[i],
                                     [&](const IntegerWalkState& st) {
                                       return visit(state, st, i);
                                     });
      });
}

/// `enumerate_states` over the integer walker: resolves lanes and plans
/// shards from `opts`, then fans out `walk_canonical_shard_integer`.
template <typename MakeState, typename Visit>
auto enumerate_states_integer(const Game& game, const IntegerGameView& view,
                              const SymmetryClasses& classes,
                              const EnumerationOptions& opts,
                              MakeState&& make_state, Visit&& visit)
    -> std::vector<std::decay_t<std::invoke_result_t<MakeState&, std::size_t>>> {
  const auto canonical = canonical_count(game.system(), classes);
  const std::size_t lanes = enumeration_lanes(opts, canonical);
  const ShardPlan plan =
      plan_shards(game.system(), classes, shard_target(opts, lanes, canonical));
  return enumerate_planned_integer(view, classes, game.num_coins(), plan, opts,
                                   lanes, std::forward<MakeState>(make_state),
                                   std::forward<Visit>(visit));
}

/// A `Configuration` with the walker's current assignment (hit path only).
Configuration materialize_configuration(const std::shared_ptr<const System>& system,
                                        const std::vector<std::uint32_t>& digits);

/// Lock-free fetch-min: records `value` in `slot` iff smaller. The
/// cross-shard witness-priority primitive — a shard that finds a witness
/// stamps its index, and shards above the current minimum abort while
/// shards below always finish, making the reported witness the first in
/// canonical order at any thread count.
inline void atomic_store_min(std::atomic<std::size_t>& slot, std::size_t value) {
  std::size_t expected = slot.load(std::memory_order_relaxed);
  while (value < expected && !slot.compare_exchange_weak(expected, value)) {
  }
}

// ------------------------------------------------------------ access

/// Incremental `Game::respects_access` for enumeration walks: tracks the
/// number of miners sitting on coins they may not mine through the
/// move-epoch hook, so each odometer step costs O(1) instead of the O(n)
/// from-scratch scan. Falls back to a full recount on epoch jumps or a
/// change of tracked configuration object.
class AccessTracker {
 public:
  explicit AccessTracker(const Game& game);

  /// True iff every miner in `s` sits on an allowed coin.
  bool respects(const Configuration& s);

 private:
  const Game* game_;
  const Configuration* tracked_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t violations_ = 0;
  bool unrestricted_;
};

}  // namespace goc
