#include "core/enumerate.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/int128.hpp"

namespace goc {

std::optional<std::uint64_t> configuration_count(const System& system) {
  const std::uint64_t coins = system.num_coins();
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < system.num_miners(); ++i) {
    if (total > (static_cast<std::uint64_t>(INT64_MAX) / coins)) return std::nullopt;
    total *= coins;
  }
  return total;
}

void for_each_configuration(
    const std::shared_ptr<const System>& system, std::uint64_t max_configs,
    const std::function<bool(const Configuration&)>& visit) {
  GOC_CHECK_ARG(system != nullptr, "for_each_configuration requires a system");
  const auto count = configuration_count(*system);
  GOC_CHECK_ARG(count.has_value() && *count <= max_configs,
                "configuration space too large to enumerate");

  const std::size_t n = system->num_miners();
  const std::uint32_t coins = static_cast<std::uint32_t>(system->num_coins());
  Configuration config = Configuration::all_at(system, CoinId(0));
  std::vector<std::uint32_t> digits(n, 0);
  for (;;) {
    if (!visit(config)) return;
    // Odometer increment; miner 0 is the least-significant digit.
    std::size_t pos = 0;
    while (pos < n) {
      if (++digits[pos] < coins) {
        config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(digits[pos]));
        break;
      }
      digits[pos] = 0;
      config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(0));
      ++pos;
    }
    if (pos == n) return;  // odometer wrapped — all configurations visited
  }
}

// ---------------------------------------------------------------- symmetry

namespace {

/// C(n, k) as u64; nullopt on overflow. Exact at every step: the running
/// product after multiplying by (n-k+i) is divisible by i.
std::optional<std::uint64_t> binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  u128 result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    u128 next;
    if (__builtin_mul_overflow(result, static_cast<u128>(n - k + i), &next)) {
      return std::nullopt;
    }
    result = next / i;
  }
  if (result > static_cast<u128>(UINT64_MAX)) return std::nullopt;
  return static_cast<std::uint64_t>(result);
}

/// Non-decreasing sequences of length `slots` over `values` coin choices:
/// C(slots + values - 1, slots).
std::optional<std::uint64_t> multiset_count(std::uint64_t slots,
                                            std::uint64_t values) {
  if (slots == 0) return 1;
  GOC_ASSERT(values > 0, "multiset_count over an empty value set");
  return binomial(slots + values - 1, slots);
}

}  // namespace

SymmetryClasses symmetry_classes(const Game& game) {
  const std::size_t n = game.num_miners();
  const std::size_t coins = game.num_coins();
  SymmetryClasses out;
  out.class_of.resize(n);
  out.next_classmate.assign(n, -1);

  const auto interchangeable = [&](MinerId a, MinerId b) {
    if (!(game.system().power(a) == game.system().power(b))) return false;
    for (std::uint32_t c = 0; c < coins; ++c) {
      if (game.can_mine(a, CoinId(c)) != game.can_mine(b, CoinId(c))) return false;
    }
    return true;
  };

  for (std::uint32_t p = 0; p < n; ++p) {
    const MinerId miner(p);
    std::size_t found = out.classes.size();
    for (std::size_t k = 0; k < out.classes.size(); ++k) {
      if (interchangeable(out.classes[k].front(), miner)) {
        found = k;
        break;
      }
    }
    if (found == out.classes.size()) {
      out.classes.push_back({miner});
    } else {
      out.next_classmate[out.classes[found].back().value] =
          static_cast<std::int32_t>(p);
      out.classes[found].push_back(miner);
      out.trivial = false;
    }
    out.class_of[p] = static_cast<std::uint32_t>(found);
  }
  return out;
}

SymmetryClasses classes_for(const Game& game, const EnumerationOptions& opts) {
  return opts.symmetry ? symmetry_classes(game)
                       : singleton_classes(game.num_miners());
}

SymmetryClasses singleton_classes(std::size_t num_miners) {
  SymmetryClasses out;
  out.class_of.resize(num_miners);
  out.next_classmate.assign(num_miners, -1);
  out.classes.reserve(num_miners);
  for (std::uint32_t p = 0; p < num_miners; ++p) {
    out.class_of[p] = p;
    out.classes.push_back({MinerId(p)});
  }
  return out;
}

std::optional<std::uint64_t> canonical_count(const System& system,
                                             const SymmetryClasses& classes) {
  std::uint64_t total = 1;
  for (const auto& members : classes.classes) {
    const auto per_class = multiset_count(members.size(), system.num_coins());
    if (!per_class.has_value()) return std::nullopt;
    if (*per_class != 0 && total > UINT64_MAX / *per_class) return std::nullopt;
    total *= *per_class;
  }
  return total;
}

std::uint64_t orbit_size(const std::vector<CoinId>& assignment,
                         const SymmetryClasses& classes) {
  u128 total = 1;
  std::vector<std::uint64_t> on_coin;
  for (const auto& members : classes.classes) {
    if (members.size() < 2) continue;
    on_coin.clear();
    for (const MinerId p : members) {
      const std::uint32_t c = assignment[p.value].value;
      if (c >= on_coin.size()) on_coin.resize(c + 1, 0);
      ++on_coin[c];
    }
    // |K|! / Π_c cnt_c! as a product of binomials C(remaining, cnt_c).
    std::uint64_t remaining = members.size();
    for (const std::uint64_t cnt : on_coin) {
      if (cnt == 0) continue;
      const auto choose = binomial(remaining, cnt);
      if (!choose.has_value()) throw OverflowError("orbit size overflows u64");
      u128 next;
      if (__builtin_mul_overflow(total, static_cast<u128>(*choose), &next) ||
          next > static_cast<u128>(UINT64_MAX)) {
        throw OverflowError("orbit size overflows u64");
      }
      total = next;
      remaining -= cnt;
    }
  }
  return static_cast<std::uint64_t>(total);
}

std::vector<Configuration> expand_orbit(const Configuration& canonical,
                                        const SymmetryClasses& classes) {
  if (classes.trivial) return {canonical};
  std::vector<Configuration> out;
  std::vector<CoinId> scratch = canonical.assignment();

  // Cartesian product over classes of the distinct within-class digit
  // permutations. Canonical digits are sorted ascending per class, so
  // std::next_permutation cycles through every distinct arrangement and
  // ends back at sorted order.
  const auto emit = [&](const auto& self, std::size_t class_idx) -> void {
    if (class_idx == classes.classes.size()) {
      out.emplace_back(canonical.system_ptr(), scratch);
      return;
    }
    const auto& members = classes.classes[class_idx];
    // Read from the canonical assignment (scratch holds whatever the
    // previous arrangement of this class wrote).
    std::vector<std::uint32_t> digits;
    digits.reserve(members.size());
    for (const MinerId p : members) {
      digits.push_back(canonical.assignment()[p.value].value);
    }
    GOC_ASSERT(std::is_sorted(digits.begin(), digits.end()),
               "expand_orbit requires a canonical representative");
    do {
      for (std::size_t j = 0; j < members.size(); ++j) {
        scratch[members[j].value] = CoinId(digits[j]);
      }
      self(self, class_idx + 1);
    } while (std::next_permutation(digits.begin(), digits.end()));
  };
  emit(emit, 0);
  return out;
}

std::uint64_t odometer_rank(const std::vector<CoinId>& assignment,
                            std::size_t num_coins) {
  std::uint64_t rank = 0;
  for (std::size_t i = assignment.size(); i-- > 0;) {
    rank = rank * num_coins + assignment[i].value;
  }
  return rank;
}

// ---------------------------------------------------------------- sharding

namespace {

/// Canonical count of the free region given the pinned digits
/// `digits[free_miners..n)`: per class, the free members (ids <
/// free_miners, always a prefix of the class in id order) form a
/// non-decreasing sequence bounded above by the class's first pinned digit
/// (or the largest coin). The free entries of `digits` are ignored.
std::uint64_t shard_size(const System& system, const SymmetryClasses& classes,
                         std::size_t free_miners,
                         const std::vector<std::uint32_t>& digits) {
  std::uint64_t total = 1;
  for (const auto& members : classes.classes) {
    std::size_t free_count = 0;
    std::uint32_t values = static_cast<std::uint32_t>(system.num_coins());
    for (const MinerId p : members) {
      if (p.value < free_miners) {
        ++free_count;
      } else {
        // First pinned member (smallest id >= free_miners) caps the free run.
        values = digits[p.value] + 1;
        break;
      }
    }
    const auto per_class = multiset_count(free_count, values);
    GOC_ASSERT(per_class.has_value(), "shard size overflows u64");
    total *= *per_class;
  }
  return total;
}

}  // namespace

std::vector<std::uint32_t> canonical_digits_at_rank(
    const System& system, const SymmetryClasses& classes, std::uint64_t rank) {
  const std::size_t n = system.num_miners();
  const std::uint32_t coins = static_cast<std::uint32_t>(system.num_coins());
  // Choose digits most-significant first: the canonical walk's visit order
  // is lexicographic on (digit n−1, …, digit 0), and the number of
  // canonical completions below position `pos` depends only on the digits
  // at and above it — so each digit is found by subtracting completion
  // blocks until the residual rank falls inside one.
  std::vector<std::uint32_t> digits(n, 0);
  for (std::size_t pos = n; pos-- > 0;) {
    const std::uint32_t cap = canonical_cap(classes, digits, pos, coins);
    bool placed = false;
    for (std::uint32_t d = 0; d <= cap; ++d) {
      digits[pos] = d;
      const std::uint64_t block = shard_size(system, classes, pos, digits);
      if (rank < block) {
        placed = true;
        break;
      }
      rank -= block;
    }
    GOC_ASSERT(placed, "rank beyond the canonical space");
  }
  GOC_ASSERT(rank == 0, "canonical unranking left a remainder");
  return digits;
}

ShardPlan plan_shards(const System& system, const SymmetryClasses& classes,
                      std::size_t target_shards) {
  const std::size_t n = system.num_miners();
  const std::uint32_t coins = static_cast<std::uint32_t>(system.num_coins());

  // Smallest pinned suffix whose canonical prefix count reaches the
  // target. Counting per candidate k is closed-form, so this scan is cheap.
  std::size_t pinned = 0;
  if (target_shards > 1) {
    for (; pinned < n; ++pinned) {
      std::uint64_t count = 1;
      bool overflow = false;
      for (const auto& members : classes.classes) {
        std::size_t in_suffix = 0;
        for (const MinerId p : members) {
          if (p.value >= n - pinned) ++in_suffix;
        }
        const auto per_class = multiset_count(in_suffix, coins);
        if (!per_class.has_value() || (*per_class != 0 && count > UINT64_MAX / *per_class)) {
          overflow = true;
          break;
        }
        count *= *per_class;
      }
      if (overflow || count >= target_shards) break;
    }
  }
  const std::size_t free_miners = n - pinned;

  // Phase 1: enumerate the pinned digits canonically, least-significant
  // pinned miner first — exactly the global odometer order. A shard's
  // start is the prefix with the free region all-zero (the prefix's first
  // canonical configuration).
  ShardPlan plan;
  std::vector<std::uint32_t> digits(n, 0);
  std::uint64_t rank = 0;
  for (;;) {
    const std::uint64_t size = shard_size(system, classes, free_miners, digits);
    plan.starts.push_back(digits);
    plan.sizes.push_back(size);
    plan.start_ranks.push_back(rank);
    rank += size;
    std::size_t pos = free_miners;
    while (pos < n) {
      if (digits[pos] < canonical_cap(classes, digits, pos, coins)) {
        ++digits[pos];
        break;
      }
      digits[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }

  // Phase 2: prefix sizes can be wildly uneven (one big symmetry class
  // puts ~the whole space under a single top digit). Split every prefix
  // exceeding the ideal per-shard load into even rank subranges, unranking
  // each subrange's start digits — rank concatenation is unchanged, so
  // results stay bit-identical to the unsplit plan.
  const std::uint64_t total = rank;
  if (target_shards > 1 && total > 0) {
    const std::uint64_t ideal =
        (total + target_shards - 1) / static_cast<std::uint64_t>(target_shards);
    ShardPlan split;
    for (std::size_t i = 0; i < plan.sizes.size(); ++i) {
      const std::uint64_t size = plan.sizes[i];
      if (size <= ideal) {
        split.starts.push_back(std::move(plan.starts[i]));
        split.sizes.push_back(size);
        split.start_ranks.push_back(plan.start_ranks[i]);
        continue;
      }
      const std::uint64_t pieces = (size + ideal - 1) / ideal;
      const std::uint64_t base = size / pieces;
      const std::uint64_t extra = size % pieces;  // first `extra` get +1
      std::uint64_t piece_rank = plan.start_ranks[i];
      for (std::uint64_t j = 0; j < pieces; ++j) {
        const std::uint64_t piece = base + (j < extra ? 1 : 0);
        split.starts.push_back(
            j == 0 ? std::move(plan.starts[i])
                   : canonical_digits_at_rank(system, classes, piece_rank));
        split.sizes.push_back(piece);
        split.start_ranks.push_back(piece_rank);
        piece_rank += piece;
      }
    }
    plan = std::move(split);
  }
  return plan;
}

IntegerGameView integer_game_view(const Game& game) {
  IntegerGameView view;
  view.power.reserve(game.num_miners());
  for (const Rational& m : game.system().powers()) {
    GOC_CHECK_ARG(m.is_integer(), "integer_game_view requires integer powers");
    view.power.push_back(m.numerator());
  }
  view.reward.reserve(game.num_coins());
  for (const Rational& f : game.rewards().values()) {
    GOC_CHECK_ARG(f.is_integer(), "integer_game_view requires integer rewards");
    view.reward.push_back(f.numerator());
  }
  return view;
}

Configuration materialize_configuration(const std::shared_ptr<const System>& system,
                                        const std::vector<std::uint32_t>& digits) {
  std::vector<CoinId> assignment;
  assignment.reserve(digits.size());
  for (const std::uint32_t d : digits) assignment.emplace_back(d);
  return Configuration(system, std::move(assignment));
}

std::size_t enumeration_lanes(const EnumerationOptions& opts,
                              std::optional<std::uint64_t> canonical) {
  if (canonical.has_value() && *canonical < opts.serial_cutoff) return 1;
  // An explicitly provided pool is the caller's deliberate lane choice.
  if (opts.pool != nullptr) return opts.pool->num_threads() + 1;
  // Otherwise cap at hardware: a CPU-bound walk never benefits from more
  // lanes than cores — oversubscription only adds scheduler noise.
  // (Results are identical at any lane count; purely a scheduling call.)
  const std::size_t lanes = engine::ThreadPool::resolve_lanes(opts.threads);
  const std::size_t hw = engine::ThreadPool::default_threads();
  return lanes < hw ? lanes : hw;
}

std::size_t shard_target(const EnumerationOptions& opts, std::size_t lanes,
                         std::optional<std::uint64_t> canonical) {
  if (lanes == 1) return 1;
  std::size_t target = lanes * opts.shards_per_lane;
  if (canonical.has_value() && opts.min_shard_configs > 0) {
    const std::uint64_t fit = *canonical / opts.min_shard_configs;
    if (fit < target) {
      target = static_cast<std::size_t>(fit < lanes ? lanes : fit);
    }
  }
  return target;
}

// ---------------------------------------------------------------- access

AccessTracker::AccessTracker(const Game& game)
    : game_(&game), unrestricted_(game.access().is_unrestricted()) {}

bool AccessTracker::respects(const Configuration& s) {
  if (unrestricted_) return true;
  if (tracked_ == &s && epoch_ == s.move_epoch()) return violations_ == 0;
  if (tracked_ == &s && epoch_ + 1 == s.move_epoch()) {
    const MoveDelta& delta = s.last_delta();
    if (!game_->can_mine(delta.miner, delta.to)) ++violations_;
    if (!game_->can_mine(delta.miner, delta.from)) --violations_;
  } else {
    violations_ = 0;
    for (std::uint32_t p = 0; p < s.num_miners(); ++p) {
      if (!game_->can_mine(MinerId(p), s.of(MinerId(p)))) ++violations_;
    }
    tracked_ = &s;
  }
  epoch_ = s.move_epoch();
  return violations_ == 0;
}

}  // namespace goc
