#include "core/enumerate.hpp"

#include "util/assert.hpp"

namespace goc {

std::optional<std::uint64_t> configuration_count(const System& system) {
  const std::uint64_t coins = system.num_coins();
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < system.num_miners(); ++i) {
    if (total > (static_cast<std::uint64_t>(INT64_MAX) / coins)) return std::nullopt;
    total *= coins;
  }
  return total;
}

void for_each_configuration(
    const std::shared_ptr<const System>& system, std::uint64_t max_configs,
    const std::function<bool(const Configuration&)>& visit) {
  GOC_CHECK_ARG(system != nullptr, "for_each_configuration requires a system");
  const auto count = configuration_count(*system);
  GOC_CHECK_ARG(count.has_value() && *count <= max_configs,
                "configuration space too large to enumerate");

  const std::size_t n = system->num_miners();
  const std::uint32_t coins = static_cast<std::uint32_t>(system->num_coins());
  Configuration config = Configuration::all_at(system, CoinId(0));
  std::vector<std::uint32_t> digits(n, 0);
  for (;;) {
    if (!visit(config)) return;
    // Odometer increment; miner 0 is the least-significant digit.
    std::size_t pos = 0;
    while (pos < n) {
      if (++digits[pos] < coins) {
        config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(digits[pos]));
        break;
      }
      digits[pos] = 0;
      config.move(MinerId(static_cast<std::uint32_t>(pos)), CoinId(0));
      ++pos;
    }
    if (pos == n) return;  // odometer wrapped — all configurations visited
  }
}

}  // namespace goc
