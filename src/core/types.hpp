#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

/// \file types.hpp
/// Strong identifier types for the two kinds of entities in the model:
/// miners (players) and coins (resources). Using distinct wrapper types —
/// rather than raw indices — makes it impossible to index a coin table with
/// a miner id and vice versa.

namespace goc {

struct MinerId {
  std::uint32_t value = 0;

  constexpr MinerId() = default;
  constexpr explicit MinerId(std::uint32_t v) : value(v) {}

  constexpr auto operator<=>(const MinerId&) const = default;

  std::string to_string() const { return "p" + std::to_string(value); }
};

struct CoinId {
  std::uint32_t value = 0;

  constexpr CoinId() = default;
  constexpr explicit CoinId(std::uint32_t v) : value(v) {}

  constexpr auto operator<=>(const CoinId&) const = default;

  std::string to_string() const { return "c" + std::to_string(value); }
};

}  // namespace goc

template <>
struct std::hash<goc::MinerId> {
  std::size_t operator()(const goc::MinerId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<goc::CoinId> {
  std::size_t operator()(const goc::CoinId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
