#pragma once

#include <compare>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "util/int128.hpp"
#include "util/rational.hpp"

/// \file move_compare.hpp
/// The index-backed fast path for better-response comparisons.
///
/// `core/moves.*` is the *scan-based reference*: it evaluates full payoffs
/// with normalized `Rational` arithmetic (GCD on every operation). The hot
/// loop only ever needs *orderings* of post-move payoffs of one miner, and
/// for miner p those reduce to comparing F(a)/(M_a + m_p) against
/// F(b)/(M_b + m_p) — a cross-multiplication. When every power and reward
/// is an integer (the overwhelmingly common workload: all generators emit
/// integers), masses are integers too and the whole comparison is two raw
/// `i128` multiplies with no `Rational` construction and no GCD.
///
/// Rewards need not be integers for that to work: orderings are invariant
/// under scaling all rewards by one positive constant, so any reward set
/// with integer powers is rescaled at construction to a common denominator
/// L = lcm_c(den(F(c))) and compared through the integer numerators
/// K_c = F(c)·L. This is what keeps the market epoch engine on the i128
/// path — its weights are `Rational::from_double` quantizations whose
/// denominators all divide the quantization denominator. Overflowing
/// products, non-integer powers, and reward sets whose rescaling would
/// overflow fall back to the exact `Rational` path, so the ordering
/// returned is always exact — bit-for-bit the same decision the reference
/// scan makes.

namespace goc {

/// Slow path of `compare_positive_fractions`: exact comparison through
/// `Rational` (whose <=> never overflows).
std::strong_ordering compare_fractions_exact(i128 a_num, i128 a_den, i128 b_num,
                                             i128 b_den);

/// Exact comparison of a_num/a_den vs b_num/b_den for nonnegative
/// numerators and positive denominators: two raw i128 multiplies on the
/// fast path (inline — this sits in every engine inner loop), exact
/// `Rational` fallback when a cross product overflows. The shared
/// primitive of the comparator and the enumeration engine's integer-mode
/// checks.
inline std::strong_ordering compare_positive_fractions(i128 a_num, i128 a_den,
                                                       i128 b_num, i128 b_den) {
  i128 lhs, rhs;
  if (!mul_overflow(a_num, b_den, &lhs) && !mul_overflow(b_num, a_den, &rhs)) {
    return lhs <=> rhs;
  }
  return compare_fractions_exact(a_num, a_den, b_num, b_den);
}

/// Exact post-move payoff comparisons for a fixed game, with an integer
/// `i128` fast path. Holds a reference to the game; the configuration is
/// passed per call so one comparator serves an evolving trajectory.
class MoveComparator {
 public:
  explicit MoveComparator(const Game& game);

  /// Re-derives the comparison mode and the rescaled reward numerators
  /// from the game's *current* rewards, reusing the existing storage (no
  /// allocation). Must be called after `Game::reweight` changed the reward
  /// function under this comparator; `BestResponseIndex::reweight` does.
  void refresh();

  /// True when every power and reward is an integer, enabling the raw
  /// `i128` cross-multiplication path.
  bool integer_mode() const noexcept { return integer_mode_; }

  /// True when comparisons run on the i128 path: integer powers and
  /// rewards rescalable to integers by a common positive factor (a strict
  /// superset of `integer_mode`).
  bool fast_mode() const noexcept { return fast_mode_; }

  /// Compares miner p's payoff after unilaterally moving to `c1` vs `c2`
  /// (either may equal s.of(p), meaning "stay put" — the current payoff).
  /// Exact: equals comparing `game.payoff_if_move` results, without the
  /// Rational construction in integer mode. Coins must be mineable by p.
  std::strong_ordering compare(const Configuration& s, MinerId p, CoinId c1,
                               CoinId c2) const;

  /// True iff moving to `c` strictly improves p's payoff (c != s.of(p) and
  /// p may mine c are the caller's responsibility to pre-check, as the
  /// index does; `is_better_response` in moves.hpp is the checked
  /// reference).
  bool improves(const Configuration& s, MinerId p, CoinId c) const {
    return compare(s, p, c, s.of(p)) > 0;
  }

  /// True iff p has no better response in s — `is_stable` without a single
  /// `Rational` temporary in integer mode. Access-aware (skips coins p may
  /// not mine) and exits on the first improving coin.
  bool stable(const Configuration& s, MinerId p) const;

  /// True iff every miner is stable — `is_equilibrium` on the i128 path,
  /// exiting at the first improving miner. The enumeration engine's inner
  /// check.
  bool equilibrium(const Configuration& s) const;

 private:
  const Game* game_;
  bool integer_mode_;
  bool fast_mode_;
  bool unrestricted_;
  std::vector<i128> scaled_rewards_;  // K_c = F(c)·L; valid in fast mode
};

}  // namespace goc
