#include "core/game.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

Game::Game(std::shared_ptr<const System> system, RewardFunction rewards,
           AccessPolicy access)
    : system_(std::move(system)),
      rewards_(std::move(rewards)),
      access_(std::move(access)) {
  GOC_CHECK_ARG(system_ != nullptr, "Game requires a system");
  GOC_CHECK_ARG(rewards_.num_coins() == system_->num_coins(),
                "reward function arity must equal the number of coins");
  access_.validate(system_->num_miners(), system_->num_coins());
}

Game::Game(System system, RewardFunction rewards, AccessPolicy access)
    : Game(std::make_shared<const System>(std::move(system)),
           std::move(rewards), std::move(access)) {}

bool Game::respects_access(const Configuration& s) const {
  GOC_CHECK_ARG(&s.system() == system_.get(),
                "configuration belongs to a different system");
  for (std::uint32_t p = 0; p < num_miners(); ++p) {
    if (!can_mine(MinerId(p), s.of(MinerId(p)))) return false;
  }
  return true;
}

XRational Game::rpu(const Configuration& s, CoinId c) const {
  GOC_CHECK_ARG(&s.system() == system_.get(),
                "configuration belongs to a different system");
  GOC_CHECK_ARG(system_->valid_coin(c), "unknown coin id");
  const Rational& mass = s.mass(c);
  if (mass.is_zero()) return XRational::infinity();
  return XRational(rewards_(c) / mass);
}

Rational Game::payoff(const Configuration& s, MinerId p) const {
  GOC_CHECK_ARG(&s.system() == system_.get(),
                "configuration belongs to a different system");
  const CoinId c = s.of(p);
  const Rational& mass = s.mass(c);
  GOC_ASSERT(mass.is_positive(), "occupied coin with nonpositive mass");
  return system_->power(p) * rewards_(c) / mass;
}

Rational Game::payoff_if_move(const Configuration& s, MinerId p, CoinId c) const {
  GOC_CHECK_ARG(&s.system() == system_.get(),
                "configuration belongs to a different system");
  GOC_CHECK_ARG(system_->valid_coin(c), "unknown coin id");
  GOC_CHECK_ARG(can_mine(p, c), "access policy forbids this miner-coin pair");
  const Rational& mp = system_->power(p);
  if (s.of(p) == c) return payoff(s, p);
  return mp * rewards_(c) / (s.mass(c) + mp);
}

Game Game::with_rewards(RewardFunction rewards) const {
  return Game(system_, std::move(rewards), access_);
}

void Game::reweight(RewardFunction rewards) {
  GOC_CHECK_ARG(rewards.num_coins() == system_->num_coins(),
                "reward function arity must equal the number of coins");
  rewards_ = std::move(rewards);
}

void Game::reweight(const std::vector<Rational>& weights) {
  GOC_CHECK_ARG(weights.size() == system_->num_coins(),
                "reward function arity must equal the number of coins");
  rewards_.assign(weights);
}

std::string Game::to_string() const {
  std::ostringstream os;
  os << "Game{" << system_->to_string() << ", " << rewards_.to_string() << "}";
  return os.str();
}

}  // namespace goc
