#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file moves.hpp
/// Better-response analysis (Section 2): a move of miner p from s.p to c is
/// a *better response* iff it strictly increases p's payoff. A miner with
/// no better response is *stable*; a configuration where every miner is
/// stable is a pure equilibrium.
///
/// Everything here is the *scan-based reference implementation*: from
/// scratch, exact `Rational` payoffs, O(|C|) per miner. The learning hot
/// loop uses `dynamics::BestResponseIndex` (built on the `MoveComparator`
/// fast path in core/move_compare.hpp) instead, and the reference scans
/// double as its audit oracle.

namespace goc {

/// One improvement step: `miner` moved `from → to`, gaining `gain > 0`.
struct Move {
  MinerId miner;
  CoinId from;
  CoinId to;
  Rational gain;

  std::string to_string() const;
};

/// u_p((s_{-p}, c)) − u_p(s); positive iff moving to c is a better response.
Rational move_gain(const Game& game, const Configuration& s, MinerId p, CoinId c);

/// Strict-improvement test (no move when c == s.p).
bool is_better_response(const Game& game, const Configuration& s, MinerId p,
                        CoinId c);

/// All coins that are better responses for p in s, in coin-id order.
std::vector<CoinId> better_responses(const Game& game, const Configuration& s,
                                     MinerId p);

/// The best response for p (maximum post-move payoff), or nullopt when p is
/// stable. Ties break toward the lowest coin id, making schedulers built on
/// this deterministic.
std::optional<CoinId> best_response(const Game& game, const Configuration& s,
                                    MinerId p);

/// True iff p has no better response in s.
bool is_stable(const Game& game, const Configuration& s, MinerId p);

/// True iff every miner is stable in s (pure equilibrium).
bool is_equilibrium(const Game& game, const Configuration& s);

/// Miners with at least one better response, in miner-id order.
std::vector<MinerId> unstable_miners(const Game& game, const Configuration& s);

/// Every better-response move available in s (the full improvement
/// neighborhood; used by enumeration and as the audit reference). Moves are
/// ordered by (miner id, coin id).
std::vector<Move> all_better_response_moves(const Game& game,
                                            const Configuration& s);

/// |better_responses(game, s, p)| without materializing the vector.
std::size_t count_better_responses(const Game& game, const Configuration& s,
                                   MinerId p);

/// |all_better_response_moves(game, s)| without materializing the vector
/// (no `Rational` gain is computed per move).
std::size_t count_all_better_response_moves(const Game& game,
                                            const Configuration& s);

/// The move at position `n` of `all_better_response_moves(game, s)` — the
/// same (miner id, coin id) ordering — materializing only that one move.
/// nullopt when fewer than n+1 improving moves exist. Lets samplers pick a
/// uniform improving move in O(n·|C|) comparisons and O(1) allocations.
std::optional<Move> nth_better_response_move(const Game& game,
                                             const Configuration& s,
                                             std::size_t n);

/// ε-stability (relative): p has no move improving its payoff by more than
/// epsilon·u_p(s). With epsilon = 0 this is exact stability. Miners with
/// real switching costs stop at ε-equilibria long before the exact one —
/// the practical reading of the §6 convergence-speed question.
bool is_epsilon_stable(const Game& game, const Configuration& s, MinerId p,
                       const Rational& epsilon);

/// Every miner is ε-stable.
bool is_epsilon_equilibrium(const Game& game, const Configuration& s,
                            const Rational& epsilon);

}  // namespace goc
