#include "core/generators.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace goc {
namespace {

std::vector<Rational> draw_powers(const GameSpec& spec, Rng& rng) {
  GOC_CHECK_ARG(spec.power_lo > 0, "power_lo must be positive");
  GOC_CHECK_ARG(spec.power_hi >= spec.power_lo, "power_hi < power_lo");
  std::vector<Rational> powers;
  powers.reserve(spec.num_miners);
  for (std::size_t i = 0; i < spec.num_miners; ++i) {
    switch (spec.power_shape) {
      case PowerShape::kEqual:
        powers.emplace_back(spec.power_hi);
        break;
      case PowerShape::kUniform:
        powers.emplace_back(rng.uniform_int(spec.power_lo, spec.power_hi));
        break;
      case PowerShape::kZipf: {
        const double rank = static_cast<double>(i + 1);
        const double raw =
            static_cast<double>(spec.power_hi) / std::pow(rank, spec.zipf_s);
        powers.emplace_back(std::max<std::int64_t>(
            spec.power_lo, static_cast<std::int64_t>(std::ceil(raw))));
        break;
      }
      case PowerShape::kPareto: {
        const double raw =
            rng.pareto(static_cast<double>(spec.power_lo), spec.pareto_alpha);
        // Clamp the tail so integer powers stay comfortably inside i64.
        const double clamped =
            std::min(raw, static_cast<double>(spec.power_lo) * 1e9);
        powers.emplace_back(static_cast<std::int64_t>(std::ceil(clamped)));
        break;
      }
    }
  }
  return powers;
}

std::vector<Rational> draw_rewards(const GameSpec& spec, Rng& rng) {
  GOC_CHECK_ARG(spec.reward_lo > 0, "reward_lo must be positive");
  GOC_CHECK_ARG(spec.reward_hi >= spec.reward_lo, "reward_hi < reward_lo");
  std::vector<Rational> rewards;
  rewards.reserve(spec.num_coins);
  for (std::size_t c = 0; c < spec.num_coins; ++c) {
    switch (spec.reward_shape) {
      case RewardShape::kEqual:
        rewards.emplace_back(spec.reward_hi);
        break;
      case RewardShape::kUniform:
        rewards.emplace_back(rng.uniform_int(spec.reward_lo, spec.reward_hi));
        break;
      case RewardShape::kMajors: {
        // Geometric decay from the top coin with ±10% jitter; models a
        // couple of majors plus a long tail of minor coins.
        const double base =
            static_cast<double>(spec.reward_hi) / std::pow(2.0, static_cast<double>(c));
        const double jittered = base * rng.uniform(0.9, 1.1);
        rewards.emplace_back(std::max<std::int64_t>(
            spec.reward_lo, static_cast<std::int64_t>(std::llround(jittered))));
        break;
      }
    }
  }
  return rewards;
}

}  // namespace

const std::string& power_shape_name(PowerShape shape) {
  // Interned: emission layers stamp these onto every record row, so the
  // labels are shared statics rather than per-call allocations.
  static const std::string kEqual = "equal", kUniform = "uniform",
                           kZipf = "zipf", kPareto = "pareto",
                           kUnknown = "unknown";
  switch (shape) {
    case PowerShape::kEqual:
      return kEqual;
    case PowerShape::kUniform:
      return kUniform;
    case PowerShape::kZipf:
      return kZipf;
    case PowerShape::kPareto:
      return kPareto;
  }
  return kUnknown;
}

const std::string& reward_shape_name(RewardShape shape) {
  static const std::string kEqual = "equal", kUniform = "uniform",
                           kMajors = "majors", kUnknown = "unknown";
  switch (shape) {
    case RewardShape::kEqual:
      return kEqual;
    case RewardShape::kUniform:
      return kUniform;
    case RewardShape::kMajors:
      return kMajors;
  }
  return kUnknown;
}

std::string GameSpec::to_string() const {
  std::ostringstream os;
  os << "GameSpec{n=" << num_miners << ", coins=" << num_coins
     << ", powers=" << static_cast<int>(power_shape) << "[" << power_lo << ","
     << power_hi << "]"
     << ", rewards=" << static_cast<int>(reward_shape) << "[" << reward_lo
     << "," << reward_hi << "]"
     << (distinct_powers ? ", distinct" : "") << (sort_desc ? ", sorted" : "")
     << "}";
  return os.str();
}

Game random_game(const GameSpec& spec, Rng& rng) {
  GOC_CHECK_ARG(spec.num_miners >= 1, "need at least one miner");
  GOC_CHECK_ARG(spec.num_coins >= 1, "need at least one coin");
  std::vector<Rational> powers = draw_powers(spec, rng);
  if (spec.sort_desc) {
    std::sort(powers.begin(), powers.end(),
              [](const Rational& a, const Rational& b) { return a > b; });
  }
  System system(std::move(powers), spec.num_coins);
  if (spec.distinct_powers) {
    system = with_distinct_powers(system);
  }
  return Game(std::move(system), RewardFunction(draw_rewards(spec, rng)));
}

Configuration random_configuration(const Game& game, Rng& rng) {
  std::vector<CoinId> assignment;
  assignment.reserve(game.num_miners());
  for (std::uint32_t i = 0; i < game.num_miners(); ++i) {
    if (game.access().is_unrestricted()) {
      assignment.emplace_back(
          static_cast<std::uint32_t>(rng.next_below(game.num_coins())));
    } else {
      const auto coins = game.allowed_coins(MinerId(i));
      assignment.push_back(coins[rng.pick_index(coins)]);
    }
  }
  return Configuration(game.system_ptr(), std::move(assignment));
}

System with_distinct_powers(const System& system, std::int64_t scale) {
  const auto n = static_cast<std::int64_t>(system.num_miners());
  if (scale <= 0) scale = n + 1;
  GOC_CHECK_ARG(scale > n, "scale must exceed the number of miners");
  // Map m_i ↦ m_i·scale + (n−i): the additive ranks are pairwise distinct
  // and strictly decreasing in i, so equal powers become distinct (earlier
  // miner larger), and any pre-existing gap — at least 1/q for rationals
  // with denominator q — is widened past the < n additive spread, so the
  // original (non-strict) order is preserved, strictified. Crucially,
  // integer inputs stay integers: exact-arithmetic mass sums keep unit
  // denominators instead of compounding fractions, and payoff ratios
  // m_p/M_c are only perturbed by O(n/scale), not rescaled (the game is
  // invariant under uniform power scaling).
  GOC_CHECK_ARG(
      [&] {
        // The smallest nonzero pairwise gap is between adjacent sorted
        // values; it must exceed the additive spread n/scale.
        std::vector<Rational> sorted = system.powers();
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 1; i < sorted.size(); ++i) {
          const Rational gap = sorted[i] - sorted[i - 1];
          if (!gap.is_zero() && gap * Rational(scale) < Rational(n)) return false;
        }
        return true;
      }(),
      "power gaps too fine for this scale; pass a larger scale");
  std::vector<Rational> powers = system.powers();
  for (std::size_t i = 0; i < powers.size(); ++i) {
    powers[i] = powers[i] * Rational(scale) +
                Rational(n - static_cast<std::int64_t>(i));
  }
  return System(std::move(powers), system.num_coins());
}

}  // namespace goc
