#include "core/system.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/assert.hpp"

namespace goc {

System::System(std::vector<Rational> powers, std::size_t num_coins)
    : powers_(std::move(powers)), num_coins_(num_coins) {
  GOC_CHECK_ARG(!powers_.empty(), "a system needs at least one miner");
  GOC_CHECK_ARG(num_coins_ >= 1, "a system needs at least one coin");
  GOC_CHECK_ARG(powers_.size() <= 0xFFFFFFFFu, "too many miners");
  GOC_CHECK_ARG(num_coins_ <= 0xFFFFFFFFu, "too many coins");
  total_power_ = Rational(0);
  min_power_ = powers_.front();
  max_power_ = powers_.front();
  for (const auto& m : powers_) {
    GOC_CHECK_ARG(m.is_positive(), "mining powers must be positive");
    total_power_ += m;
    if (m < min_power_) min_power_ = m;
    if (m > max_power_) max_power_ = m;
  }
}

System System::from_integer_powers(const std::vector<std::int64_t>& powers,
                                   std::size_t num_coins) {
  std::vector<Rational> rp;
  rp.reserve(powers.size());
  for (auto v : powers) rp.emplace_back(v);
  return System(std::move(rp), num_coins);
}

const Rational& System::power(MinerId p) const {
  GOC_CHECK_ARG(valid_miner(p), "unknown miner id");
  return powers_[p.value];
}

bool System::strictly_decreasing_powers() const noexcept {
  for (std::size_t i = 1; i < powers_.size(); ++i) {
    if (!(powers_[i - 1] > powers_[i])) return false;
  }
  return true;
}

bool System::non_increasing_powers() const noexcept {
  for (std::size_t i = 1; i < powers_.size(); ++i) {
    if (powers_[i - 1] < powers_[i]) return false;
  }
  return true;
}

System System::sorted_by_power_desc(std::vector<MinerId>* out_permutation) const {
  std::vector<std::size_t> order(powers_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return powers_[a] > powers_[b];
  });
  std::vector<Rational> sorted;
  sorted.reserve(powers_.size());
  for (std::size_t idx : order) sorted.push_back(powers_[idx]);
  if (out_permutation != nullptr) {
    out_permutation->clear();
    out_permutation->reserve(order.size());
    for (std::size_t idx : order)
      out_permutation->push_back(MinerId(static_cast<std::uint32_t>(idx)));
  }
  return System(std::move(sorted), num_coins_);
}

std::vector<MinerId> System::miner_ids() const {
  std::vector<MinerId> ids;
  ids.reserve(num_miners());
  for (std::uint32_t i = 0; i < num_miners(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<CoinId> System::coin_ids() const {
  std::vector<CoinId> ids;
  ids.reserve(num_coins());
  for (std::uint32_t i = 0; i < num_coins(); ++i) ids.emplace_back(i);
  return ids;
}

std::string System::to_string() const {
  std::ostringstream os;
  os << "System{n=" << num_miners() << ", coins=" << num_coins() << ", powers=[";
  for (std::size_t i = 0; i < powers_.size(); ++i) {
    if (i != 0) os << ", ";
    os << powers_[i].to_string();
  }
  os << "]}";
  return os.str();
}

}  // namespace goc
