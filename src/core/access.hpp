#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

/// \file access.hpp
/// Player-specific action sets — the paper's asymmetric case (§6: "some
/// coins can be mined only by a subset of the miners").
///
/// In practice mining hardware partitions the coin set: SHA-256 ASICs mine
/// BTC/BCH, Ethash GPUs mine(d) ETH/ETC, and so on — whattomine.com asks
/// for the hardware before listing coins. An `AccessPolicy` records, per
/// miner, which coins it may mine. The ordinal-potential argument of
/// Theorem 1 only inspects the improving move itself, so *better-response
/// learning still converges* under any access policy (exercised by tests
/// and experiment E11); the greedy equilibrium construction of Appendix A,
/// by contrast, genuinely needs symmetry (Claim 7 compares miners across
/// the same action set), so restricted games obtain equilibria via
/// learning instead.

namespace goc {

class AccessPolicy {
 public:
  /// Unrestricted: every miner may mine every coin (the paper's base
  /// model). This is the default-constructed state.
  AccessPolicy() = default;

  /// Explicit matrix: `allowed[p][c]`. Every miner needs ≥ 1 allowed coin.
  AccessPolicy(std::vector<std::vector<bool>> allowed);

  /// Random policy: each (miner, coin) pair is allowed with probability
  /// `density`; each miner additionally gets one uniformly chosen coin so
  /// the policy is well-formed. Deterministic for a fixed rng state.
  static AccessPolicy random(std::size_t num_miners, std::size_t num_coins,
                             double density, Rng& rng);

  /// Hardware-class policy: miner p belongs to class `miner_class[p]` and
  /// may mine coin c iff `class_allows[miner_class[p]][c]`.
  static AccessPolicy hardware_classes(
      const std::vector<std::size_t>& miner_class,
      const std::vector<std::vector<bool>>& class_allows);

  /// True when this is the unrestricted policy (matrix absent or all-true).
  bool is_unrestricted() const noexcept;

  /// May `p` mine `c`? Unrestricted policies allow everything.
  bool allowed(MinerId p, CoinId c) const;

  /// The coins `p` may mine, in id order (empty matrix ⇒ caller should use
  /// the full coin range; see `Game::allowed_coins`).
  std::vector<CoinId> allowed_coins(MinerId p, std::size_t num_coins) const;

  /// Validates shape against a system of `num_miners` × `num_coins`;
  /// throws std::invalid_argument on mismatch or a coin-less miner.
  void validate(std::size_t num_miners, std::size_t num_coins) const;

  /// Fraction of allowed (miner, coin) pairs; 1 when unrestricted.
  double density(std::size_t num_miners, std::size_t num_coins) const;

  std::string to_string() const;

 private:
  // Empty ⇒ unrestricted. Otherwise allowed_[p][c].
  std::vector<std::vector<bool>> allowed_;
};

}  // namespace goc
