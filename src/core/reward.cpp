#include "core/reward.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

RewardFunction::RewardFunction(std::vector<Rational> rewards)
    : rewards_(std::move(rewards)) {
  GOC_CHECK_ARG(!rewards_.empty(), "a reward function needs at least one coin");
  max_ = rewards_.front();
  min_ = rewards_.front();
  total_ = Rational(0);
  for (const auto& r : rewards_) {
    GOC_CHECK_ARG(r.is_positive(), "coin rewards must be positive");
    if (r > max_) max_ = r;
    if (r < min_) min_ = r;
    total_ += r;
  }
}

RewardFunction RewardFunction::constant(std::size_t num_coins, Rational value) {
  GOC_CHECK_ARG(value.is_positive(), "coin rewards must be positive");
  return RewardFunction(std::vector<Rational>(num_coins, value));
}

RewardFunction RewardFunction::from_integers(
    const std::vector<std::int64_t>& rewards) {
  std::vector<Rational> r;
  r.reserve(rewards.size());
  for (auto v : rewards) r.emplace_back(v);
  return RewardFunction(std::move(r));
}

const Rational& RewardFunction::operator()(CoinId c) const {
  GOC_CHECK_ARG(c.value < rewards_.size(), "unknown coin id");
  return rewards_[c.value];
}

bool RewardFunction::is_symmetric() const noexcept { return min_ == max_; }

RewardFunction RewardFunction::with(CoinId c, Rational value) const {
  GOC_CHECK_ARG(c.value < rewards_.size(), "unknown coin id");
  GOC_CHECK_ARG(value.is_positive(), "coin rewards must be positive");
  std::vector<Rational> copy = rewards_;
  copy[c.value] = std::move(value);
  return RewardFunction(std::move(copy));
}

void RewardFunction::assign(const std::vector<Rational>& rewards) {
  GOC_CHECK_ARG(rewards.size() == rewards_.size(),
                "assign must keep the reward function's arity");
  for (const auto& r : rewards) {
    GOC_CHECK_ARG(r.is_positive(), "coin rewards must be positive");
  }
  // Element-wise copy into the existing buffer: same-size vector
  // copy-assignment never reallocates, and Rational is a value type.
  rewards_ = rewards;
  max_ = rewards_.front();
  min_ = rewards_.front();
  total_ = Rational(0);
  for (const auto& r : rewards_) {
    if (r > max_) max_ = r;
    if (r < min_) min_ = r;
    total_ += r;
  }
}

bool RewardFunction::dominates(const RewardFunction& other) const {
  GOC_CHECK_ARG(num_coins() == other.num_coins(),
                "reward functions over different coin sets");
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    if (rewards_[i] < other.rewards_[i]) return false;
  }
  return true;
}

Rational RewardFunction::overpayment(const RewardFunction& base) const {
  GOC_CHECK_ARG(dominates(base), "overpayment of a non-dominating function");
  Rational sum(0);
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    sum += rewards_[i] - base.rewards_[i];
  }
  return sum;
}

std::string RewardFunction::to_string() const {
  std::ostringstream os;
  os << "F[";
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    if (i != 0) os << ", ";
    os << rewards_[i].to_string();
  }
  os << "]";
  return os.str();
}

}  // namespace goc
