#include "core/access.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

AccessPolicy::AccessPolicy(std::vector<std::vector<bool>> allowed)
    : allowed_(std::move(allowed)) {
  GOC_CHECK_ARG(!allowed_.empty(), "empty access matrix; use the default "
                                   "constructor for the unrestricted policy");
  const std::size_t coins = allowed_.front().size();
  GOC_CHECK_ARG(coins >= 1, "access matrix needs at least one coin column");
  for (const auto& row : allowed_) {
    GOC_CHECK_ARG(row.size() == coins, "ragged access matrix");
    bool any = false;
    for (const bool b : row) any = any || b;
    GOC_CHECK_ARG(any, "every miner must be able to mine at least one coin");
  }
}

AccessPolicy AccessPolicy::random(std::size_t num_miners, std::size_t num_coins,
                                  double density, Rng& rng) {
  GOC_CHECK_ARG(num_miners >= 1 && num_coins >= 1, "empty system");
  GOC_CHECK_ARG(density >= 0.0 && density <= 1.0, "density must lie in [0,1]");
  std::vector<std::vector<bool>> allowed(num_miners,
                                         std::vector<bool>(num_coins, false));
  for (std::size_t p = 0; p < num_miners; ++p) {
    for (std::size_t c = 0; c < num_coins; ++c) {
      allowed[p][c] = rng.bernoulli(density);
    }
    // Well-formedness: at least one coin per miner.
    allowed[p][rng.next_below(num_coins)] = true;
  }
  return AccessPolicy(std::move(allowed));
}

AccessPolicy AccessPolicy::hardware_classes(
    const std::vector<std::size_t>& miner_class,
    const std::vector<std::vector<bool>>& class_allows) {
  GOC_CHECK_ARG(!miner_class.empty(), "no miners");
  GOC_CHECK_ARG(!class_allows.empty(), "no hardware classes");
  std::vector<std::vector<bool>> allowed;
  allowed.reserve(miner_class.size());
  for (const std::size_t cls : miner_class) {
    GOC_CHECK_ARG(cls < class_allows.size(), "unknown hardware class");
    allowed.push_back(class_allows[cls]);
  }
  return AccessPolicy(std::move(allowed));
}

bool AccessPolicy::is_unrestricted() const noexcept {
  if (allowed_.empty()) return true;
  for (const auto& row : allowed_) {
    for (const bool b : row) {
      if (!b) return false;
    }
  }
  return true;
}

bool AccessPolicy::allowed(MinerId p, CoinId c) const {
  if (allowed_.empty()) return true;
  GOC_CHECK_ARG(p.value < allowed_.size(), "unknown miner id");
  GOC_CHECK_ARG(c.value < allowed_.front().size(), "unknown coin id");
  return allowed_[p.value][c.value];
}

std::vector<CoinId> AccessPolicy::allowed_coins(MinerId p,
                                                std::size_t num_coins) const {
  std::vector<CoinId> coins;
  for (std::uint32_t c = 0; c < num_coins; ++c) {
    if (allowed(p, CoinId(c))) coins.emplace_back(c);
  }
  return coins;
}

void AccessPolicy::validate(std::size_t num_miners, std::size_t num_coins) const {
  if (allowed_.empty()) return;
  GOC_CHECK_ARG(allowed_.size() == num_miners,
                "access matrix rows must equal the number of miners");
  GOC_CHECK_ARG(allowed_.front().size() == num_coins,
                "access matrix columns must equal the number of coins");
}

double AccessPolicy::density(std::size_t num_miners, std::size_t num_coins) const {
  if (allowed_.empty()) return 1.0;
  std::size_t on = 0;
  for (const auto& row : allowed_) {
    for (const bool b : row) on += b ? 1 : 0;
  }
  return static_cast<double>(on) /
         static_cast<double>(num_miners * num_coins);
}

std::string AccessPolicy::to_string() const {
  if (allowed_.empty()) return "AccessPolicy{unrestricted}";
  std::ostringstream os;
  os << "AccessPolicy{";
  for (std::size_t p = 0; p < allowed_.size(); ++p) {
    if (p != 0) os << ", ";
    os << "p" << p << ":";
    for (const bool b : allowed_[p]) os << (b ? '1' : '0');
  }
  os << "}";
  return os.str();
}

}  // namespace goc
