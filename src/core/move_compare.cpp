#include "core/move_compare.hpp"

#include "core/moves.hpp"
#include "util/rational.hpp"

namespace goc {

std::strong_ordering compare_fractions_exact(i128 a_num, i128 a_den, i128 b_num,
                                             i128 b_den) {
  return Rational::from_parts(a_num, a_den) <=>
         Rational::from_parts(b_num, b_den);
}

MoveComparator::MoveComparator(const Game& game)
    : game_(&game), unrestricted_(game.access().is_unrestricted()) {
  scaled_rewards_.resize(game.num_coins());
  refresh();
}

void MoveComparator::refresh() {
  bool integer_powers = true;
  for (const Rational& m : game_->system().powers()) {
    if (!m.is_integer()) {
      integer_powers = false;
      break;
    }
  }
  const std::vector<Rational>& rewards = game_->rewards().values();
  bool integer_rewards = true;
  for (const Rational& f : rewards) {
    if (!f.is_integer()) {
      integer_rewards = false;
      break;
    }
  }
  integer_mode_ = integer_powers && integer_rewards;
  fast_mode_ = false;
  if (!integer_powers) return;  // masses would not be integers
  // Orderings are invariant under scaling every reward by one positive
  // constant, so rescale to the common denominator L = lcm(den(F(c))) and
  // compare through the integer numerators K_c = F(c)·L (for all-integer
  // rewards L = 1 and K_c is just the stored numerator). Any overflow
  // while rescaling drops back to the exact Rational path.
  i128 lcm = 1;
  for (const Rational& f : rewards) {
    const i128 q = f.denominator();
    const i128 g = static_cast<i128>(gcd128(uabs128(lcm), uabs128(q)));
    if (mul_overflow(lcm / g, q, &lcm)) return;
  }
  for (std::size_t c = 0; c < rewards.size(); ++c) {
    const i128 scale = lcm / rewards[c].denominator();
    if (mul_overflow(rewards[c].numerator(), scale, &scaled_rewards_[c])) {
      return;
    }
  }
  fast_mode_ = true;
}

std::strong_ordering MoveComparator::compare(const Configuration& s, MinerId p,
                                             CoinId c1, CoinId c2) const {
  if (c1 == c2) return std::strong_ordering::equal;
  const CoinId here = s.of(p);
  if (fast_mode_) {
    // Powers (hence masses) are integers stored in normalized Rationals,
    // so the numerators ARE the values; rewards enter as their rescaled
    // integer numerators K_c (the common denominator L cancels from the
    // ratio). Post-move "value" of coin c for p is K_c / D_c with
    // D_c = M_c + m_p for a move and D_c = M_c for the current coin
    // (whose mass already includes m_p); the common factor m_p > 0 cancels
    // from both sides.
    const i128 mp = game_->system().power(p).numerator();
    const i128 n1 = scaled_rewards_[c1.value];
    const i128 n2 = scaled_rewards_[c2.value];
    const i128 d1 = s.mass(c1).numerator() + (c1 == here ? 0 : mp);
    const i128 d2 = s.mass(c2).numerator() + (c2 == here ? 0 : mp);
    return compare_positive_fractions(n1, d1, n2, d2);
  }
  const Rational v1 = c1 == here ? game_->payoff(s, p)
                                 : game_->payoff_if_move(s, p, c1);
  const Rational v2 = c2 == here ? game_->payoff(s, p)
                                 : game_->payoff_if_move(s, p, c2);
  return v1 <=> v2;
}

bool MoveComparator::stable(const Configuration& s, MinerId p) const {
  const CoinId here = s.of(p);
  const std::uint32_t coins = static_cast<std::uint32_t>(s.num_coins());
  if (fast_mode_) {
    // Hoist the loop-invariant "stay put" side: K_here/M_here, with
    // M_here already including m_p.
    const i128 mp = game_->system().power(p).numerator();
    const i128 n_here = scaled_rewards_[here.value];
    const i128 d_here = s.mass(here).numerator();
    for (std::uint32_t c = 0; c < coins; ++c) {
      const CoinId coin(c);
      if (coin == here) continue;
      if (!unrestricted_ && !game_->can_mine(p, coin)) continue;
      const i128 n_c = scaled_rewards_[c];
      const i128 d_c = s.mass(coin).numerator() + mp;
      if (compare_positive_fractions(n_c, d_c, n_here, d_here) > 0) return false;
    }
    return true;
  }
  return is_stable(*game_, s, p);
}

bool MoveComparator::equilibrium(const Configuration& s) const {
  const std::uint32_t n = static_cast<std::uint32_t>(s.num_miners());
  for (std::uint32_t p = 0; p < n; ++p) {
    if (!stable(s, MinerId(p))) return false;
  }
  return true;
}

}  // namespace goc
