#include "core/move_compare.hpp"

#include "util/rational.hpp"

namespace goc {

namespace {

/// Compares the positive fractions a_num/a_den and b_num/b_den exactly.
/// Two multiplies on the fast path; reduces through `Rational` (which never
/// overflows a comparison) when a cross product exceeds 128 bits.
std::strong_ordering compare_fractions(i128 a_num, i128 a_den, i128 b_num,
                                       i128 b_den) {
  i128 lhs, rhs;
  if (!mul_overflow(a_num, b_den, &lhs) && !mul_overflow(b_num, a_den, &rhs)) {
    return lhs <=> rhs;
  }
  return Rational::from_parts(a_num, a_den) <=>
         Rational::from_parts(b_num, b_den);
}

}  // namespace

MoveComparator::MoveComparator(const Game& game) : game_(&game) {
  integer_mode_ = true;
  for (const Rational& m : game.system().powers()) {
    if (!m.is_integer()) integer_mode_ = false;
  }
  for (const Rational& f : game.rewards().values()) {
    if (!f.is_integer()) integer_mode_ = false;
  }
}

std::strong_ordering MoveComparator::compare(const Configuration& s, MinerId p,
                                             CoinId c1, CoinId c2) const {
  if (c1 == c2) return std::strong_ordering::equal;
  const CoinId here = s.of(p);
  if (integer_mode_) {
    // All quantities are integers stored in normalized Rationals, so the
    // numerators ARE the values. Post-move "value" of coin c for p is
    // F(c) / D_c with D_c = M_c + m_p for a move and D_c = M_c for the
    // current coin (whose mass already includes m_p); the common factor
    // m_p > 0 cancels from both sides.
    const i128 mp = game_->system().power(p).numerator();
    const i128 n1 = game_->rewards()(c1).numerator();
    const i128 n2 = game_->rewards()(c2).numerator();
    const i128 d1 = s.mass(c1).numerator() + (c1 == here ? 0 : mp);
    const i128 d2 = s.mass(c2).numerator() + (c2 == here ? 0 : mp);
    return compare_fractions(n1, d1, n2, d2);
  }
  const Rational v1 = c1 == here ? game_->payoff(s, p)
                                 : game_->payoff_if_move(s, p, c1);
  const Rational v2 = c2 == here ? game_->payoff(s, p)
                                 : game_->payoff_if_move(s, p, c2);
  return v1 <=> v2;
}

}  // namespace goc
