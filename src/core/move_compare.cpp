#include "core/move_compare.hpp"

#include "core/moves.hpp"
#include "util/rational.hpp"

namespace goc {

std::strong_ordering compare_fractions_exact(i128 a_num, i128 a_den, i128 b_num,
                                             i128 b_den) {
  return Rational::from_parts(a_num, a_den) <=>
         Rational::from_parts(b_num, b_den);
}

MoveComparator::MoveComparator(const Game& game)
    : game_(&game), unrestricted_(game.access().is_unrestricted()) {
  integer_mode_ = true;
  for (const Rational& m : game.system().powers()) {
    if (!m.is_integer()) integer_mode_ = false;
  }
  for (const Rational& f : game.rewards().values()) {
    if (!f.is_integer()) integer_mode_ = false;
  }
}

std::strong_ordering MoveComparator::compare(const Configuration& s, MinerId p,
                                             CoinId c1, CoinId c2) const {
  if (c1 == c2) return std::strong_ordering::equal;
  const CoinId here = s.of(p);
  if (integer_mode_) {
    // All quantities are integers stored in normalized Rationals, so the
    // numerators ARE the values. Post-move "value" of coin c for p is
    // F(c) / D_c with D_c = M_c + m_p for a move and D_c = M_c for the
    // current coin (whose mass already includes m_p); the common factor
    // m_p > 0 cancels from both sides.
    const i128 mp = game_->system().power(p).numerator();
    const i128 n1 = game_->rewards()(c1).numerator();
    const i128 n2 = game_->rewards()(c2).numerator();
    const i128 d1 = s.mass(c1).numerator() + (c1 == here ? 0 : mp);
    const i128 d2 = s.mass(c2).numerator() + (c2 == here ? 0 : mp);
    return compare_positive_fractions(n1, d1, n2, d2);
  }
  const Rational v1 = c1 == here ? game_->payoff(s, p)
                                 : game_->payoff_if_move(s, p, c1);
  const Rational v2 = c2 == here ? game_->payoff(s, p)
                                 : game_->payoff_if_move(s, p, c2);
  return v1 <=> v2;
}

bool MoveComparator::stable(const Configuration& s, MinerId p) const {
  const CoinId here = s.of(p);
  const std::uint32_t coins = static_cast<std::uint32_t>(s.num_coins());
  if (integer_mode_) {
    // Hoist the loop-invariant "stay put" side: F(here)/M_here, with
    // M_here already including m_p.
    const i128 mp = game_->system().power(p).numerator();
    const i128 n_here = game_->rewards()(here).numerator();
    const i128 d_here = s.mass(here).numerator();
    for (std::uint32_t c = 0; c < coins; ++c) {
      const CoinId coin(c);
      if (coin == here) continue;
      if (!unrestricted_ && !game_->can_mine(p, coin)) continue;
      const i128 n_c = game_->rewards()(coin).numerator();
      const i128 d_c = s.mass(coin).numerator() + mp;
      if (compare_positive_fractions(n_c, d_c, n_here, d_here) > 0) return false;
    }
    return true;
  }
  return is_stable(*game_, s, p);
}

bool MoveComparator::equilibrium(const Configuration& s) const {
  const std::uint32_t n = static_cast<std::uint32_t>(s.num_miners());
  for (std::uint32_t p = 0; p < n; ++p) {
    if (!stable(s, MinerId(p))) return false;
  }
  return true;
}

}  // namespace goc
