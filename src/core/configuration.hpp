#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/types.hpp"
#include "util/rational.hpp"

/// \file configuration.hpp
/// A configuration s ∈ S = C^n assigns every miner a coin (Section 2).
///
/// The class maintains, incrementally, the per-coin aggregate mass
/// M_c(s) = Σ_{p ∈ P_c(s)} m_p and population |P_c(s)| so that applying a
/// move costs O(1) and a full better-response scan costs O(|C|) per miner.
/// Configurations share ownership of their `System` (shared_ptr) so that a
/// configuration, the base game, and any number of *designed* games over
/// the same system can coexist without lifetime pitfalls.
///
/// Derived structures (e.g. `dynamics::BestResponseIndex`) track a
/// configuration incrementally through the *move-epoch hook*: every
/// effective `move()` bumps `move_epoch()` and records the delta
/// (`last_delta()`), so an observer that saw epoch k and now sees k+1 can
/// update in O(Δ) from the two changed coins instead of rescanning.

namespace goc {

/// The change applied by the most recent effective `Configuration::move`.
struct MoveDelta {
  MinerId miner;
  CoinId from;
  CoinId to;
};

class Configuration {
 public:
  /// Assignment must have one entry per miner and reference valid coins.
  Configuration(std::shared_ptr<const System> system,
                std::vector<CoinId> assignment);

  /// Every miner on coin `c` — the start of reward-design stage 1.
  static Configuration all_at(std::shared_ptr<const System> system, CoinId c);

  const System& system() const noexcept { return *system_; }
  const std::shared_ptr<const System>& system_ptr() const noexcept {
    return system_;
  }

  std::size_t num_miners() const noexcept { return assignment_.size(); }
  std::size_t num_coins() const noexcept { return system_->num_coins(); }

  /// s.p — the coin mined by p.
  CoinId of(MinerId p) const;
  const std::vector<CoinId>& assignment() const noexcept { return assignment_; }

  /// M_c(s): total power mining c (zero for an empty coin).
  const Rational& mass(CoinId c) const;
  /// |P_c(s)|.
  std::size_t population(CoinId c) const;
  bool empty_coin(CoinId c) const { return population(c) == 0; }
  /// Number of coins with at least one miner.
  std::size_t occupied_coins() const noexcept { return occupied_; }

  /// P_c(s), in miner-id order. O(n).
  std::vector<MinerId> members(CoinId c) const;

  /// Moves p to `to` (no-op when already there), updating masses in O(1).
  /// Effective moves bump `move_epoch()` and record `last_delta()`.
  void move(MinerId p, CoinId to);

  /// Number of effective moves applied since construction (copies inherit
  /// the source's epoch). No-op moves (to == current coin) do not count.
  std::uint64_t move_epoch() const noexcept { return move_epoch_; }

  /// The delta of the most recent effective move; only meaningful when
  /// `move_epoch() > 0`.
  const MoveDelta& last_delta() const noexcept { return last_delta_; }

  /// (s_{-p}, c) — a copy with p moved.
  Configuration with_move(MinerId p, CoinId to) const;

  /// Assignment equality (systems must coincide — checked).
  bool operator==(const Configuration& other) const;

  /// Hash of the assignment (for equilibrium enumeration sets).
  std::size_t hash() const noexcept;

  /// e.g. "⟨c1, c0, c1⟩".
  std::string to_string() const;

 private:
  std::shared_ptr<const System> system_;
  std::vector<CoinId> assignment_;
  std::vector<Rational> mass_;        // indexed by coin
  std::vector<std::size_t> count_;    // indexed by coin
  std::size_t occupied_ = 0;
  std::uint64_t move_epoch_ = 0;
  MoveDelta last_delta_{MinerId(0), CoinId(0), CoinId(0)};
};

}  // namespace goc

template <>
struct std::hash<goc::Configuration> {
  std::size_t operator()(const goc::Configuration& c) const noexcept {
    return c.hash();
  }
};
