#pragma once

#include <compare>
#include <string>
#include <utility>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "util/xrational.hpp"

/// \file list_potential.hpp
/// The ordinal potential of Theorem 1.
///
/// For a configuration s, `list(s)` is the sequence of pairs
/// ⟨RPU_c(s), c⟩ for all coins c, sorted lexicographically ascending. The
/// paper's potential is the *rank* of list(s) among all reachable lists
/// under the lexicographic order; ranks are astronomically large, but an
/// ordinal potential only ever needs *comparisons*, so we expose the key
/// itself plus a three-way comparator. Theorem 1: every better-response
/// step strictly increases the key.
///
/// Empty coins carry RPU = +∞ (DESIGN.md §2.1) and therefore sort last;
/// the theorem's argument is unaffected because a better-response step
/// never decreases the RPU of the coin it leaves or enters.

namespace goc {

/// Sorted list of (RPU, coin) pairs — the potential "value" of a
/// configuration up to order-isomorphism.
class PotentialKey {
 public:
  using Entry = std::pair<XRational, CoinId>;

  PotentialKey() = default;
  explicit PotentialKey(std::vector<Entry> sorted_entries);

  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// v_i(s): the coin in the i-th (0-based) entry.
  CoinId coin_at(std::size_t i) const;

  std::strong_ordering operator<=>(const PotentialKey& other) const noexcept;
  bool operator==(const PotentialKey& other) const noexcept {
    return entries_ == other.entries_;
  }

  std::string to_string() const;

 private:
  std::vector<Entry> entries_;
};

/// Computes list(s) for game `game`.
PotentialKey potential_key(const Game& game, const Configuration& s);

/// Convenience: potential_key(s) <=> potential_key(s').
std::strong_ordering compare_potential(const Game& game, const Configuration& a,
                                       const Configuration& b);

/// Audit helper for Theorem 1: returns the index of the first step in
/// `trajectory` that fails to strictly increase the potential, or
/// `trajectory.size()` when the whole path ascends. (A correct
/// better-response trajectory always ascends; this is used by tests and by
/// the learning driver's `audit_potential` mode.)
std::size_t first_non_ascending_step(const Game& game,
                                     const std::vector<Configuration>& trajectory);

}  // namespace goc
