#include "potential/exact_potential.hpp"

#include <sstream>

#include "core/enumerate.hpp"
#include "util/assert.hpp"

namespace goc {

std::string FourCycleWitness::to_string() const {
  std::ostringstream os;
  os << "4-cycle via " << p.to_string() << "," << q.to_string() << ": "
     << s1.to_string() << " -> " << s2.to_string() << " -> " << s3.to_string()
     << " -> " << s4.to_string() << " -> (s1), sum=" << cycle_sum.to_string();
  return os.str();
}

Rational four_cycle_sum(const Game& game, const Configuration& s, MinerId p,
                        CoinId a_prime, MinerId q, CoinId b_prime) {
  GOC_CHECK_ARG(p != q, "four_cycle_sum requires distinct miners");
  const CoinId a = s.of(p);
  const CoinId b = s.of(q);
  GOC_CHECK_ARG(a != a_prime && b != b_prime,
                "cycle strategies must differ from the base assignment");
  const Configuration& s1 = s;
  const Configuration s2 = s1.with_move(p, a_prime);
  const Configuration s3 = s2.with_move(q, b_prime);
  const Configuration s4 = s3.with_move(p, a);
  // s4.with_move(q, b) == s1 closes the cycle.
  return (game.payoff(s2, p) - game.payoff(s1, p)) +
         (game.payoff(s3, q) - game.payoff(s2, q)) +
         (game.payoff(s4, p) - game.payoff(s3, p)) +
         (game.payoff(s1, q) - game.payoff(s4, q));
}

namespace {

template <typename OnCycle>
void visit_four_cycles(const Game& game, std::uint64_t max_bases,
                       const OnCycle& on_cycle) {
  const std::uint32_t n = static_cast<std::uint32_t>(game.num_miners());
  const std::uint32_t coins = static_cast<std::uint32_t>(game.num_coins());
  if (n < 2 || coins < 2) return;
  std::uint64_t bases = 0;
  for_each_configuration(
      game.system_ptr(), UINT64_MAX, [&](const Configuration& base) {
        if (++bases > max_bases) return false;
        for (std::uint32_t pi = 0; pi < n; ++pi) {
          for (std::uint32_t qi = pi + 1; qi < n; ++qi) {
            const MinerId p(pi), q(qi);
            for (std::uint32_t ap = 0; ap < coins; ++ap) {
              if (CoinId(ap) == base.of(p)) continue;
              for (std::uint32_t bp = 0; bp < coins; ++bp) {
                if (CoinId(bp) == base.of(q)) continue;
                if (!on_cycle(base, p, CoinId(ap), q, CoinId(bp))) return false;
              }
            }
          }
        }
        return true;
      });
}

}  // namespace

std::optional<FourCycleWitness> find_nonzero_four_cycle(const Game& game,
                                                        std::uint64_t max_bases) {
  std::optional<FourCycleWitness> witness;
  visit_four_cycles(game, max_bases,
                    [&](const Configuration& base, MinerId p, CoinId ap,
                        MinerId q, CoinId bp) {
                      const Rational sum = four_cycle_sum(game, base, p, ap, q, bp);
                      if (!sum.is_zero()) {
                        const Configuration s2 = base.with_move(p, ap);
                        const Configuration s3 = s2.with_move(q, bp);
                        const Configuration s4 = s3.with_move(p, base.of(p));
                        witness = FourCycleWitness{base, s2, s3, s4, p, q, sum};
                        return false;
                      }
                      return true;
                    });
  return witness;
}

bool has_exact_potential(const Game& game, std::uint64_t max_configs) {
  const auto count = configuration_count(game.system());
  GOC_CHECK_ARG(count.has_value() && *count <= max_configs,
                "game too large for exhaustive exact-potential check");
  bool all_zero = true;
  visit_four_cycles(game, *count,
                    [&](const Configuration& base, MinerId p, CoinId ap,
                        MinerId q, CoinId bp) {
                      if (!four_cycle_sum(game, base, p, ap, q, bp).is_zero()) {
                        all_zero = false;
                        return false;
                      }
                      return true;
                    });
  return all_zero;
}

Game proposition1_game() {
  System system = System::from_integer_powers({2, 1}, 2);
  return Game(std::move(system), RewardFunction::from_integers({1, 1}));
}

}  // namespace goc
