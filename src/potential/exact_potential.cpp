#include "potential/exact_potential.hpp"

#include <atomic>
#include <optional>
#include <sstream>

#include "core/move_compare.hpp"
#include "util/assert.hpp"
#include "util/int128.hpp"

namespace goc {

std::string FourCycleWitness::to_string() const {
  std::ostringstream os;
  os << "4-cycle via " << p.to_string() << "," << q.to_string() << ": "
     << s1.to_string() << " -> " << s2.to_string() << " -> " << s3.to_string()
     << " -> " << s4.to_string() << " -> (s1), sum=" << cycle_sum.to_string();
  return os.str();
}

Rational four_cycle_sum(const Game& game, const Configuration& s, MinerId p,
                        CoinId a_prime, MinerId q, CoinId b_prime) {
  GOC_CHECK_ARG(p != q, "four_cycle_sum requires distinct miners");
  const CoinId a = s.of(p);
  const CoinId b = s.of(q);
  GOC_CHECK_ARG(a != a_prime && b != b_prime,
                "cycle strategies must differ from the base assignment");
  const Configuration& s1 = s;
  const Configuration s2 = s1.with_move(p, a_prime);
  const Configuration s3 = s2.with_move(q, b_prime);
  const Configuration s4 = s3.with_move(p, a);
  // s4.with_move(q, b) == s1 closes the cycle.
  return (game.payoff(s2, p) - game.payoff(s1, p)) +
         (game.payoff(s3, q) - game.payoff(s2, q)) +
         (game.payoff(s4, p) - game.payoff(s3, p)) +
         (game.payoff(s1, q) - game.payoff(s4, q));
}

namespace {

/// The legacy reference: full-space bases, three configuration copies per
/// cycle (`four_cycle_sum`).
template <typename OnCycle>
void visit_four_cycles_scan(const Game& game, std::uint64_t max_bases,
                            const OnCycle& on_cycle) {
  const std::uint32_t n = static_cast<std::uint32_t>(game.num_miners());
  const std::uint32_t coins = static_cast<std::uint32_t>(game.num_coins());
  if (n < 2 || coins < 2) return;
  std::uint64_t bases = 0;
  for_each_configuration(
      game.system_ptr(), UINT64_MAX, [&](const Configuration& base) {
        if (++bases > max_bases) return false;
        for (std::uint32_t pi = 0; pi < n; ++pi) {
          for (std::uint32_t qi = pi + 1; qi < n; ++qi) {
            const MinerId p(pi), q(qi);
            for (std::uint32_t ap = 0; ap < coins; ++ap) {
              if (CoinId(ap) == base.of(p)) continue;
              for (std::uint32_t bp = 0; bp < coins; ++bp) {
                if (CoinId(bp) == base.of(q)) continue;
                if (!on_cycle(base, p, CoinId(ap), q, CoinId(bp))) return false;
              }
            }
          }
        }
        return true;
      });
}

/// The engine's in-place cycle walker. Mirrors the shard's advancing base
/// into a scratch configuration (one O(1) move per odometer step via the
/// move-epoch hook) and walks each 4-cycle s1→s2→s3→s4 with four O(1)
/// moves — no configuration copies, payoffs read straight off the
/// incrementally-maintained masses (i128 numerators in integer games).
class CycleScanner {
 public:
  explicit CycleScanner(const Game& game)
      : game_(&game), integer_mode_(MoveComparator(game).integer_mode()) {}

  /// Invokes `on(p, a', q, b', cycle_sum)` for every 4-cycle rooted at
  /// `base`, in (p, q, a', b') order; `on` returns false to abort (the
  /// scratch is restored to `base` first). Returns false iff aborted.
  template <typename OnCycle>
  bool scan(const Configuration& base, OnCycle&& on) {
    sync(base);
    Configuration& s = *scratch_;
    const std::uint32_t n = static_cast<std::uint32_t>(s.num_miners());
    const std::uint32_t coins = static_cast<std::uint32_t>(s.num_coins());
    for (std::uint32_t pi = 0; pi < n; ++pi) {
      for (std::uint32_t qi = pi + 1; qi < n; ++qi) {
        const MinerId p(pi), q(qi);
        const CoinId a = s.of(p);
        const CoinId b = s.of(q);
        const Rational up_s1 = payoff_at(s, p);
        const Rational uq_s1 = payoff_at(s, q);
        for (std::uint32_t ap = 0; ap < coins; ++ap) {
          if (CoinId(ap) == a) continue;
          s.move(p, CoinId(ap));  // s2 = (s1_{-p}, a')
          const Rational up_s2 = payoff_at(s, p);
          const Rational uq_s2 = payoff_at(s, q);
          for (std::uint32_t bp = 0; bp < coins; ++bp) {
            if (CoinId(bp) == b) continue;
            s.move(q, CoinId(bp));  // s3 = (s2_{-q}, b')
            const Rational uq_s3 = payoff_at(s, q);
            const Rational up_s3 = payoff_at(s, p);
            s.move(p, a);  // s4 = (s3_{-p}, a)
            const Rational up_s4 = payoff_at(s, p);
            const Rational uq_s4 = payoff_at(s, q);
            const Rational sum = (up_s2 - up_s1) + (uq_s3 - uq_s2) +
                                 (up_s4 - up_s3) + (uq_s1 - uq_s4);
            if (!on(p, CoinId(ap), q, CoinId(bp), sum)) {
              s.move(q, b);  // s4 with q back on b == base
              return false;
            }
            s.move(p, CoinId(ap));  // back to s3
            s.move(q, b);           // back to s2
          }
          s.move(p, a);  // back to base
        }
      }
    }
    return true;
  }

 private:
  void sync(const Configuration& base) {
    if (scratch_.has_value() && tracked_ == &base) {
      if (base.move_epoch() == seen_epoch_ + 1) {
        scratch_->move(base.last_delta().miner, base.last_delta().to);
      } else if (base.move_epoch() != seen_epoch_) {
        scratch_ = base;
      }
    } else {
      scratch_ = base;
    }
    tracked_ = &base;
    seen_epoch_ = base.move_epoch();
  }

  /// u_p(s) = m_p·F(s.p)/M_{s.p}(s) — one multiply and one reduction in
  /// integer mode instead of the generic rpu-then-scale path.
  Rational payoff_at(const Configuration& s, MinerId p) const {
    const CoinId c = s.of(p);
    if (integer_mode_) {
      return Rational::from_parts(
          checked_mul(game_->system().power(p).numerator(),
                      game_->rewards()(c).numerator()),
          s.mass(c).numerator());
    }
    return game_->payoff(s, p);
  }

  const Game* game_;
  bool integer_mode_;
  std::optional<Configuration> scratch_;
  const Configuration* tracked_ = nullptr;
  std::uint64_t seen_epoch_ = 0;
};

/// Scheduling weight: cycles per base, so the serial cutoff compares like
/// with like (a base costs ~n²|C|² cycle sums, not one equilibrium check).
std::optional<std::uint64_t> weighted_bases(const Game& game,
                                            std::optional<std::uint64_t> bases) {
  if (!bases.has_value()) return std::nullopt;
  const std::uint64_t n = game.num_miners();
  const std::uint64_t c = game.num_coins() - 1;
  const std::uint64_t per_base = n * (n - 1) / 2 * c * c;
  if (per_base != 0 && *bases > UINT64_MAX / per_base) return std::nullopt;
  return *bases * per_base;
}

/// The shared scheduling preamble of both cycle consumers: classes, lanes
/// resolved against the *weighted* base count, and the shard plan.
struct CyclePlan {
  SymmetryClasses classes;
  std::size_t lanes;
  ShardPlan plan;
};

CyclePlan plan_cycles(const Game& game, const EnumerationOptions& opts) {
  CyclePlan out;
  out.classes = classes_for(game, opts);
  const auto weighted =
      weighted_bases(game, canonical_count(game.system(), out.classes));
  out.lanes = enumeration_lanes(opts, weighted);
  out.plan = plan_shards(game.system(), out.classes,
                         shard_target(opts, out.lanes, weighted));
  return out;
}

}  // namespace

std::optional<FourCycleWitness> find_nonzero_four_cycle(
    const Game& game, std::uint64_t max_bases, const EnumerationOptions& opts) {
  if (game.num_miners() < 2 || game.num_coins() < 2) return std::nullopt;
  GOC_CHECK_ARG(configuration_count(game.system()).has_value(),
                "configuration space too large to enumerate");
  const auto [classes, lanes, plan] = plan_cycles(game, opts);

  struct ShardState {
    CycleScanner scanner;
    std::uint64_t budget;  // canonical bases this shard may still visit
    std::optional<FourCycleWitness> witness;
  };
  std::atomic<std::size_t> found_shard{SIZE_MAX};
  auto states = enumerate_planned(
      game.system_ptr(), classes, plan, opts, lanes,
      [&](std::size_t i) {
        // The `max_bases` cap applies to the first canonical bases in
        // global rank order — a deterministic per-shard budget.
        const std::uint64_t start = plan.start_ranks[i];
        return ShardState{CycleScanner(game),
                          start >= max_bases ? 0 : max_bases - start,
                          std::nullopt};
      },
      [&](ShardState& st, const Configuration& base, std::size_t shard) {
        if (st.budget == 0) return false;
        --st.budget;
        if (found_shard.load(std::memory_order_relaxed) < shard) return false;
        return st.scanner.scan(base, [&](MinerId p, CoinId ap, MinerId q,
                                         CoinId bp, const Rational& sum) {
          if (sum.is_zero()) return true;
          const Configuration s2 = base.with_move(p, ap);
          const Configuration s3 = s2.with_move(q, bp);
          const Configuration s4 = s3.with_move(p, base.of(p));
          st.witness = FourCycleWitness{base, s2, s3, s4, p, q, sum};
          atomic_store_min(found_shard, shard);
          return false;
        });
      });
  for (auto& st : states) {
    if (st.witness.has_value()) return std::move(st.witness);
  }
  return std::nullopt;
}

std::optional<FourCycleWitness> find_nonzero_four_cycle(const Game& game,
                                                        std::uint64_t max_bases) {
  return find_nonzero_four_cycle(game, max_bases, EnumerationOptions{});
}

std::optional<FourCycleWitness> find_nonzero_four_cycle_scan(
    const Game& game, std::uint64_t max_bases) {
  std::optional<FourCycleWitness> witness;
  visit_four_cycles_scan(game, max_bases,
                         [&](const Configuration& base, MinerId p, CoinId ap,
                             MinerId q, CoinId bp) {
                           const Rational sum = four_cycle_sum(game, base, p, ap, q, bp);
                           if (!sum.is_zero()) {
                             const Configuration s2 = base.with_move(p, ap);
                             const Configuration s3 = s2.with_move(q, bp);
                             const Configuration s4 = s3.with_move(p, base.of(p));
                             witness = FourCycleWitness{base, s2, s3, s4, p, q, sum};
                             return false;
                           }
                           return true;
                         });
  return witness;
}

bool has_exact_potential(const Game& game, const EnumerationOptions& opts) {
  const auto count = configuration_count(game.system());
  GOC_CHECK_ARG(count.has_value() && *count <= opts.max_configs,
                "game too large for exhaustive exact-potential check");
  if (game.num_miners() < 2 || game.num_coins() < 2) return true;
  const auto [classes, lanes, plan] = plan_cycles(game, opts);
  std::atomic<bool> nonzero{false};
  enumerate_planned(
      game.system_ptr(), classes, plan, opts, lanes,
      [&](std::size_t) { return CycleScanner(game); },
      [&](CycleScanner& scanner, const Configuration& base, std::size_t) {
        if (nonzero.load(std::memory_order_relaxed)) return false;
        return scanner.scan(base, [&](MinerId, CoinId, MinerId, CoinId,
                                      const Rational& sum) {
          if (!sum.is_zero()) {
            nonzero.store(true, std::memory_order_relaxed);
            return false;
          }
          return true;
        });
      });
  return !nonzero.load();
}

bool has_exact_potential(const Game& game, std::uint64_t max_configs) {
  EnumerationOptions opts;
  opts.max_configs = max_configs;
  return has_exact_potential(game, opts);
}

bool has_exact_potential_scan(const Game& game, std::uint64_t max_configs) {
  const auto count = configuration_count(game.system());
  GOC_CHECK_ARG(count.has_value() && *count <= max_configs,
                "game too large for exhaustive exact-potential check");
  bool all_zero = true;
  visit_four_cycles_scan(game, *count,
                         [&](const Configuration& base, MinerId p, CoinId ap,
                             MinerId q, CoinId bp) {
                           if (!four_cycle_sum(game, base, p, ap, q, bp).is_zero()) {
                             all_zero = false;
                             return false;
                           }
                           return true;
                         });
  return all_zero;
}

Game proposition1_game() {
  System system = System::from_integer_powers({2, 1}, 2);
  return Game(std::move(system), RewardFunction::from_integers({1, 1}));
}

}  // namespace goc
