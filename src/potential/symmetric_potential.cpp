#include "potential/symmetric_potential.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

std::string SymmetricPotential::to_string() const {
  std::ostringstream os;
  os << "(empty=" << empty_coins
     << ", sum=" << occupied_inverse_mass_sum.to_string() << ")";
  return os.str();
}

SymmetricPotential symmetric_potential(const Game& game, const Configuration& s) {
  GOC_CHECK_ARG(game.rewards().is_symmetric(),
                "symmetric_potential requires a constant reward function");
  SymmetricPotential result;
  result.occupied_inverse_mass_sum = Rational(0);
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (s.empty_coin(coin)) {
      ++result.empty_coins;
    } else {
      result.occupied_inverse_mass_sum += s.mass(coin).reciprocal();
    }
  }
  return result;
}

}  // namespace goc
