#include "potential/observations.hpp"

#include "potential/list_potential.hpp"
#include "util/assert.hpp"

namespace goc {

bool observation1_holds(const Game& game, const Configuration& s,
                        const Move& move) {
  GOC_CHECK_ARG(s.of(move.miner) == move.from, "move does not apply to s");
  const PotentialKey key = potential_key(game, s);
  std::size_t from_pos = key.entries().size();
  std::size_t to_pos = key.entries().size();
  for (std::size_t i = 0; i < key.entries().size(); ++i) {
    if (key.entries()[i].second == move.from) from_pos = i;
    if (key.entries()[i].second == move.to) to_pos = i;
  }
  GOC_ASSERT(from_pos < key.entries().size() && to_pos < key.entries().size(),
             "move references coins absent from the potential key");
  return to_pos > from_pos;
}

bool observation2_holds(const Game& game, const Configuration& s,
                        const Move& move) {
  GOC_CHECK_ARG(s.of(move.miner) == move.from, "move does not apply to s");
  const Configuration after = s.with_move(move.miner, move.to);
  const XRational before_from = game.rpu(s, move.from);
  const XRational after_from = game.rpu(after, move.from);
  const XRational after_to = game.rpu(after, move.to);
  const XRational& min_after = after_from < after_to ? after_from : after_to;
  return before_from < min_after;
}

}  // namespace goc
