#pragma once

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "core/moves.hpp"

/// \file observations.hpp
/// Machine-checkable forms of the paper's Observations 1–2 (Appendix C),
/// used by property tests and by the learning driver's audit mode. Both are
/// *theorems* — these checkers exist to validate the implementation against
/// the paper, not because the properties could fail in a correct build.

namespace goc {

/// Observation 1: if a better-response step of p changes s.p = v_i(s) to
/// v_j(s), then j > i — the mover always climbs to a coin that sits later
/// in list(s). Returns true when the (claimed) better-response move
/// satisfies the observation.
bool observation1_holds(const Game& game, const Configuration& s, const Move& move);

/// Observation 2: a better-response step of p from c to c' satisfies
/// RPU_c(s) < min(RPU_c(s'), RPU_{c'}(s')). Returns true when it does.
bool observation2_holds(const Game& game, const Configuration& s, const Move& move);

}  // namespace goc
