#include "potential/list_potential.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace goc {

PotentialKey::PotentialKey(std::vector<Entry> sorted_entries)
    : entries_(std::move(sorted_entries)) {
  GOC_DASSERT(std::is_sorted(entries_.begin(), entries_.end(),
                             [](const Entry& a, const Entry& b) {
                               if (auto c = a.first <=> b.first; c != 0)
                                 return c < 0;
                               return a.second < b.second;
                             }),
              "PotentialKey entries must be sorted");
}

CoinId PotentialKey::coin_at(std::size_t i) const {
  GOC_CHECK_ARG(i < entries_.size(), "potential key index out of range");
  return entries_[i].second;
}

std::strong_ordering PotentialKey::operator<=>(const PotentialKey& other) const noexcept {
  const std::size_t n = std::min(entries_.size(), other.entries_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (auto c = entries_[i].first <=> other.entries_[i].first; c != 0) return c;
    if (auto c = entries_[i].second <=> other.entries_[i].second; c != 0) return c;
  }
  return entries_.size() <=> other.entries_.size();
}

std::string PotentialKey::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) os << ", ";
    os << "<" << entries_[i].first.to_string() << ","
       << entries_[i].second.to_string() << ">";
  }
  os << "]";
  return os.str();
}

PotentialKey potential_key(const Game& game, const Configuration& s) {
  std::vector<PotentialKey::Entry> entries;
  entries.reserve(game.num_coins());
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    entries.emplace_back(game.rpu(s, coin), coin);
  }
  std::sort(entries.begin(), entries.end(),
            [](const PotentialKey::Entry& a, const PotentialKey::Entry& b) {
              if (auto cmp = a.first <=> b.first; cmp != 0) return cmp < 0;
              return a.second < b.second;
            });
  return PotentialKey(std::move(entries));
}

std::strong_ordering compare_potential(const Game& game, const Configuration& a,
                                       const Configuration& b) {
  return potential_key(game, a) <=> potential_key(game, b);
}

std::size_t first_non_ascending_step(
    const Game& game, const std::vector<Configuration>& trajectory) {
  if (trajectory.empty()) return 0;
  PotentialKey prev = potential_key(game, trajectory.front());
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    PotentialKey cur = potential_key(game, trajectory[i]);
    if (!(prev < cur)) return i;
    prev = std::move(cur);
  }
  return trajectory.size();
}

}  // namespace goc
