#pragma once

#include <compare>
#include <string>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file symmetric_potential.hpp
/// Appendix B: when F is constant across coins, H(s) = Σ_c 1/M_c(s) is a
/// *decreasing* ordinal potential — every better-response step strictly
/// lowers it (Proposition 4).
///
/// The paper's sum is over all coins, which is undefined with empty coins.
/// We use the refinement (empty_coins(s), Σ_{occupied} 1/M_c(s)) compared
/// lexicographically: a better-response step into an empty coin strictly
/// reduces the empty-coin count (a solo miner never has a better response
/// in a symmetric game, so the vacated coin stays occupied), and a step
/// between occupied coins reduces the sum with the count unchanged — the
/// exact argument of Proposition 4. When all coins are occupied this
/// coincides with the paper's H.

namespace goc {

/// The refined symmetric-case potential value.
struct SymmetricPotential {
  std::size_t empty_coins = 0;
  Rational occupied_inverse_mass_sum;  ///< Σ_{c occupied} 1/M_c(s)

  std::strong_ordering operator<=>(const SymmetricPotential& other) const noexcept {
    if (auto c = empty_coins <=> other.empty_coins; c != 0) return c;
    return occupied_inverse_mass_sum <=> other.occupied_inverse_mass_sum;
  }
  bool operator==(const SymmetricPotential&) const noexcept = default;

  std::string to_string() const;
};

/// Computes the potential; throws std::invalid_argument unless the game is
/// symmetric (F constant).
SymmetricPotential symmetric_potential(const Game& game, const Configuration& s);

}  // namespace goc
