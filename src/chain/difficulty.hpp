#pragma once

#include <deque>
#include <memory>
#include <string>

#include "util/assert.hpp"

/// \file difficulty.hpp
/// Difficulty adjustment algorithms (DAAs).
///
/// Difficulty here is "expected hash-units per block": with aggregate
/// hashrate M on a chain of difficulty D, blocks arrive Poisson at rate
/// M/D. A DAA observes block timestamps and retunes D toward the protocol's
/// target interval. Three real-world families are implemented:
///  * fixed-window retarget (Bitcoin: 2016-block windows, clamped ×4);
///  * simple moving average (many altcoins);
///  * fixed-window + emergency adjustment (Bitcoin Cash's 2017 EDA: drop
///    difficulty 20% whenever blocks stall) — the algorithm whose
///    interaction with reward-chasing miners produced the hashrate
///    oscillations visible in the paper's Figure 1b.

namespace goc::chain {

class DifficultyAdjuster {
 public:
  virtual ~DifficultyAdjuster() = default;

  /// Observes a block found at absolute time `now` (hours) under the
  /// current difficulty, and returns the difficulty for the next block.
  virtual double on_block(double now, double current_difficulty) = 0;

  /// The difficulty the *next* block would face if found at time `now`,
  /// without consuming any state. Identity for window/SMA rules; the EDA
  /// overrides it with the stall discount — the rule is public protocol, so
  /// profit-chasing miners evaluate it *before* deciding where to point
  /// hashrate (as BCH miners famously did in 2017).
  virtual double prospective(double now, double current_difficulty) const {
    (void)now;
    return current_difficulty;
  }

  virtual std::string name() const = 0;

  /// Forgets all observed history.
  virtual void reset() = 0;
};

/// Bitcoin-style: every `window` blocks, scale difficulty by
/// expected/actual span, clamped to [1/max_factor, max_factor].
class FixedWindowRetarget final : public DifficultyAdjuster {
 public:
  FixedWindowRetarget(std::size_t window, double target_interval_hours,
                      double max_factor = 4.0);

  double on_block(double now, double current_difficulty) override;
  std::string name() const override { return "fixed-window"; }
  void reset() override;

 private:
  std::size_t window_;
  double target_interval_;
  double max_factor_;
  std::size_t blocks_in_window_ = 0;
  double window_start_ = 0.0;
  bool have_start_ = false;
};

/// Per-block retarget toward the target interval using a moving average of
/// the last `window` inter-block intervals, with per-block clamping.
class SmaRetarget final : public DifficultyAdjuster {
 public:
  SmaRetarget(std::size_t window, double target_interval_hours,
              double max_step = 1.2);

  double on_block(double now, double current_difficulty) override;
  std::string name() const override { return "sma"; }
  void reset() override;

 private:
  std::size_t window_;
  double target_interval_;
  double max_step_;
  std::deque<double> times_;
};

/// Fixed-window retarget plus the EDA rule: one multiplicative cut of
/// `emergency_drop` (20% in BCH) per full `emergency_gap_hours` elapsed
/// since the previous block — so a deep stall compounds discounts, exactly
/// the dynamic that let BCH recover hashrate in 2017. `prospective` exposes
/// the discount the next block would enjoy, which is what profit-chasing
/// miners act on; the sawtooth of Figure 1b emerges from this interplay.
class EmergencyAdjuster final : public DifficultyAdjuster {
 public:
  EmergencyAdjuster(std::size_t window, double target_interval_hours,
                    double emergency_gap_hours, double emergency_drop = 0.20,
                    double max_factor = 4.0);

  double on_block(double now, double current_difficulty) override;
  double prospective(double now, double current_difficulty) const override;
  std::string name() const override { return "eda"; }
  void reset() override;

 private:
  /// 0.8^⌊stall/gap⌋ (bounded below so difficulty never hits zero).
  double stall_discount(double now) const;

  FixedWindowRetarget base_;
  double emergency_gap_;
  double emergency_drop_;
  // The genesis block anchors the stall clock at t = 0, so an idle chain's
  // prospective difficulty decays from the start of the run.
  double last_block_time_ = 0.0;
  bool have_last_ = true;
};

}  // namespace goc::chain
