#include "chain/chain_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace goc::chain {

namespace {

/// "Stay put" sentinel in epoch_target_ / absent-chain marker in TopTwo.
constexpr std::uint32_t kNoChain = std::numeric_limits<std::uint32_t>::max();

/// Shard grain sizes for the parallel evaluate phase: large enough that a
/// chunk amortizes its dispatch, small enough that the cursor balances
/// uneven progress. Pure scheduling — results never depend on them.
constexpr std::size_t kMinerGrain = 4096;
constexpr std::size_t kClassGrain = 512;

}  // namespace

MultiChainSimulator::MultiChainSimulator(std::vector<double> miner_powers,
                                         std::vector<ChainSpec> chains,
                                         ChainSimOptions options,
                                         std::vector<std::size_t> initial_assignment)
    : powers_(std::move(miner_powers)),
      chains_(std::move(chains)),
      options_(options),
      rng_(options.seed),
      flat_(options.engine == sim::EngineKind::kFlat) {
  GOC_CHECK_ARG(!powers_.empty(), "need at least one miner");
  GOC_CHECK_ARG(!chains_.empty(), "need at least one chain");
  for (const double m : powers_) {
    GOC_CHECK_ARG(m > 0.0, "miner powers must be positive");
  }
  for (const ChainSpec& c : chains_) {
    GOC_CHECK_ARG(c.initial_difficulty > 0.0, "difficulty must be positive");
    GOC_CHECK_ARG(c.target_interval_hours > 0.0, "target interval must be positive");
    GOC_CHECK_ARG(c.block_reward_fiat > 0.0, "block reward must be positive");
    GOC_CHECK_ARG(c.adjuster != nullptr, "every chain needs a DAA");
  }
  if (initial_assignment.empty()) {
    assignment_.assign(powers_.size(), 0);
  } else {
    GOC_CHECK_ARG(initial_assignment.size() == powers_.size(),
                  "assignment arity must match miners");
    for (const std::size_t c : initial_assignment) {
      GOC_CHECK_ARG(c < chains_.size(), "assignment references unknown chain");
    }
    assignment_ = std::move(initial_assignment);
  }
  mass_.assign(chains_.size(), 0.0);
  for (std::size_t i = 0; i < powers_.size(); ++i) {
    mass_[assignment_[i]] += powers_[i];
  }
  if (flat_) {
    members_.resize(chains_.size());
    for (auto& m : members_) m.reserve(powers_.size());  // alloc-free moves
    for (std::size_t i = 0; i < powers_.size(); ++i) {
      members_[assignment_[i]].push_back(static_cast<std::uint32_t>(i));
    }
    reward_per_power_.assign(chains_.size(), 0.0);
    stint_base_.assign(powers_.size(), 0.0);
    core_.declare_streams(sim::EventType::kBlockFound, chains_.size());
    core_.declare_streams(sim::EventType::kDecisionEpoch, 1);
  }
  difficulty_.resize(chains_.size());
  reward_fiat_.resize(chains_.size());
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    difficulty_[c] = chains_[c].initial_difficulty;
    reward_fiat_[c] = chains_[c].block_reward_fiat;
  }
  if (options_.epoch_lanes >= 1) {
    // Sharded-epoch scratch, sized once so epochs never allocate.
    unique_powers_ = powers_;
    std::sort(unique_powers_.begin(), unique_powers_.end());
    unique_powers_.erase(
        std::unique(unique_powers_.begin(), unique_powers_.end()),
        unique_powers_.end());
    power_class_.resize(powers_.size());
    for (std::size_t i = 0; i < powers_.size(); ++i) {
      power_class_[i] = static_cast<std::uint32_t>(
          std::lower_bound(unique_powers_.begin(), unique_powers_.end(),
                           powers_[i]) -
          unique_powers_.begin());
    }
    epoch_target_.assign(powers_.size(), kNoChain);
    epoch_chain_value_.resize(chains_.size());
    epoch_top2_.resize(unique_powers_.size());
    if (options_.epoch_pool != nullptr) {
      epoch_pool_ = options_.epoch_pool;
    } else {
      const std::size_t lanes = powers_.size() >= options_.epoch_shard_cutoff
                                    ? options_.epoch_lanes
                                    : 1;
      owned_epoch_pool_ = std::make_unique<engine::ThreadPool>(
          engine::ThreadPool::workers_for(lanes));
      epoch_pool_ = owned_epoch_pool_.get();
    }
  }
  generation_.assign(chains_.size(), 0);
  result_.blocks_per_chain.assign(chains_.size(), 0);
  result_.miner_rewards_fiat.assign(powers_.size(), 0.0);
  result_.miner_blocks.assign(powers_.size(), 0);
  predicted_rewards_.assign(powers_.size(), 0.0);
}

double MultiChainSimulator::sim_now() const noexcept {
  return flat_ ? core_.now() : queue_.now();
}

void MultiChainSimulator::arm_block_race(std::size_t chain) {
  if (mass_[chain] <= 0.0) return;  // re-armed when a miner joins
  // The next block faces the prospective difficulty (EDA discounts apply).
  const double difficulty =
      chains_[chain].adjuster->prospective(sim_now(), difficulty_[chain]);
  const double rate = mass_[chain] / difficulty;  // blocks per hour
  const double at = sim_now() + rng_.exponential(rate);
  if (flat_) {
    core_.schedule(at, sim::EventType::kBlockFound,
                   static_cast<std::uint32_t>(chain));
    return;
  }
  const std::uint64_t gen = generation_[chain];
  queue_.schedule(at, [this, chain, gen] {
    if (gen != generation_[chain]) return;  // stale race: hashrate changed
    on_block(chain);
  });
}

void MultiChainSimulator::on_block(std::size_t chain) {
  const ChainSpec& spec = chains_[chain];
  ++result_.events_dispatched;
  ++result_.blocks_per_chain[chain];

  // Winner lottery ∝ power among the chain's miners; simultaneously accrue
  // the proportional-split prediction the paper's model assumes. Both
  // engines visit the members in ascending miner order, so the lottery is
  // bit-identical; the flat engine accrues the prediction as one O(1) bump
  // of the chain's reward-per-power integral (settled per stint) and exits
  // the walk at the winner, the legacy engine pays O(chain members) adds.
  const double ticket = rng_.uniform01() * mass_[chain];
  double acc = 0.0;
  std::size_t winner = powers_.size();
  if (flat_) {
    reward_per_power_[chain] += reward_fiat_[chain] / mass_[chain];
    for (const std::uint32_t i : members_[chain]) {
      acc += powers_[i];
      if (ticket < acc) {
        winner = i;
        break;
      }
    }
    if (winner == powers_.size() && !members_[chain].empty()) {
      // Numeric edge (ticket == mass): award the last member.
      winner = members_[chain].back();
    }
  } else {
    for (std::size_t i = 0; i < powers_.size(); ++i) {
      if (assignment_[i] != chain) continue;
      predicted_rewards_[i] +=
          reward_fiat_[chain] * powers_[i] / mass_[chain];
      if (winner == powers_.size()) {
        acc += powers_[i];
        if (ticket < acc) winner = i;
      }
    }
    if (winner == powers_.size()) {
      // Numeric edge (ticket == mass): award the last member.
      for (std::size_t i = powers_.size(); i-- > 0;) {
        if (assignment_[i] == chain) {
          winner = i;
          break;
        }
      }
    }
  }
  GOC_ASSERT(winner < powers_.size(), "block found on a chain with no miners");
  result_.miner_rewards_fiat[winner] += reward_fiat_[chain];
  ++result_.miner_blocks[winner];

  difficulty_[chain] = spec.adjuster->on_block(sim_now(), difficulty_[chain]);
  GOC_ASSERT(difficulty_[chain] > 0.0, "DAA produced nonpositive difficulty");
  arm_block_race(chain);
}

double MultiChainSimulator::expected_rpu_game(std::size_t miner,
                                              std::size_t chain,
                                              bool joining) const {
  // The paper's weight: protocol reward rate in fiat per hour.
  const double weight =
      reward_fiat_[chain] / chains_[chain].target_interval_hours;
  const double mass = mass_[chain] + (joining ? powers_[miner] : 0.0);
  return weight * powers_[miner] / mass;
}

void MultiChainSimulator::move_miner(std::size_t miner, std::size_t to_chain) {
  const std::size_t from = assignment_[miner];
  if (from == to_chain) return;
  mass_[from] -= powers_[miner];
  if (mass_[from] < 0.0) mass_[from] = 0.0;  // float dust
  mass_[to_chain] += powers_[miner];
  assignment_[miner] = to_chain;
  ++result_.migrations;
  if (flat_) {
    // Settle the finished stint on `from` and start a new one on `to`.
    predicted_rewards_[miner] +=
        powers_[miner] * (reward_per_power_[from] - stint_base_[miner]);
    stint_base_[miner] = reward_per_power_[to_chain];
    const auto id = static_cast<std::uint32_t>(miner);
    auto& src = members_[from];
    src.erase(std::lower_bound(src.begin(), src.end(), id));
    auto& dst = members_[to_chain];
    dst.insert(std::lower_bound(dst.begin(), dst.end(), id), id);
    // Both races now run at the wrong rate; memorylessness makes a fresh
    // exponential draw exact. The core drops the stale races at pop time.
    core_.invalidate(sim::EventType::kBlockFound,
                     static_cast<std::uint32_t>(from));
    core_.invalidate(sim::EventType::kBlockFound,
                     static_cast<std::uint32_t>(to_chain));
  } else {
    ++generation_[from];
    ++generation_[to_chain];
  }
  arm_block_race(from);
  arm_block_race(to_chain);
}

void MultiChainSimulator::decision_epoch() {
  ++result_.events_dispatched;
  if (reward_hook_) {
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      const double updated = reward_hook_(c, sim_now());
      GOC_ASSERT(updated > 0.0, "reward hook produced a nonpositive reward");
      reward_fiat_[c] = updated;
    }
  }
  if (options_.policy != MinerPolicy::kStatic &&
      options_.epoch_lanes >= 1) {
    decision_epoch_sharded();
  } else if (options_.policy != MinerPolicy::kStatic) {
    for (std::size_t i = 0; i < powers_.size(); ++i) {
      if (!rng_.bernoulli(options_.reevaluation_fraction)) continue;
      const std::size_t cur = assignment_[i];
      std::size_t best = cur;
      if (options_.policy == MinerPolicy::kBetterResponse) {
        double best_value = expected_rpu_game(i, cur, /*joining=*/false);
        for (std::size_t c = 0; c < chains_.size(); ++c) {
          if (c == cur) continue;
          const double v = expected_rpu_game(i, c, /*joining=*/true);
          if (v > best_value) {
            best_value = v;
            best = c;
          }
        }
      } else {  // kMyopicDifficulty: chase fiat per hash at the difficulty
        // the next block would face (incl. prospective EDA discounts).
        const auto myopic_value = [&](std::size_t c) {
          const double d =
              chains_[c].adjuster->prospective(sim_now(), difficulty_[c]);
          return reward_fiat_[c] / d;
        };
        // Hysteresis models switching friction: stay unless an alternative
        // clears the current chain by the configured relative margin.
        double best_value =
            myopic_value(cur) * (1.0 + options_.myopic_hysteresis);
        for (std::size_t c = 0; c < chains_.size(); ++c) {
          if (c == cur) continue;
          const double v = myopic_value(c);
          if (v > best_value) {
            best_value = v;
            best = c;
          }
        }
      }
      move_miner(i, best);
    }
  }
  ++epoch_index_;

  if (options_.record_timeline) {
    TimelinePoint point;
    point.t_hours = sim_now();
    point.difficulty = difficulty_;
    point.hashrate = mass_;
    point.blocks = result_.blocks_per_chain;
    point.reward_fiat = reward_fiat_;
    result_.timeline.push_back(std::move(point));
  }

  const double next = sim_now() + options_.decision_interval_hours;
  if (next <= options_.duration_hours) {
    if (flat_) {
      core_.schedule(next, sim::EventType::kDecisionEpoch, 0);
    } else {
      queue_.schedule(next, [this] { decision_epoch(); });
    }
  }
}

void MultiChainSimulator::decision_epoch_sharded() {
  const std::size_t n = powers_.size();
  const std::size_t num_chains = chains_.size();
  const double now = sim_now();
  const bool better_response = options_.policy == MinerPolicy::kBetterResponse;

  // --- Freeze the per-chain values every evaluation reads. -----------------
  // kBetterResponse: the paper's weight F(c) = reward / target interval;
  // kMyopicDifficulty: fiat per hash at the prospective difficulty. The
  // myopic loop stays serial — adjusters are not required to tolerate
  // concurrent prospective() calls, and it is O(|C|) anyway.
  if (better_response) {
    for (std::size_t c = 0; c < num_chains; ++c) {
      epoch_chain_value_[c] =
          reward_fiat_[c] / chains_[c].target_interval_hours;
    }
    // Per distinct power p: top-2 chains by join value F(c)·p/(M_c + p),
    // first-argmax ties — exactly what a first-wins strict-`>` scan over
    // chains picks. Join values read only frozen state, so classes shard
    // freely.
    epoch_pool_->parallel_for_chunks(
        unique_powers_.size(), kClassGrain,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const double p = unique_powers_[k];
            TopTwo t{kNoChain, kNoChain, 0.0, 0.0};
            for (std::uint32_t c = 0; c < num_chains; ++c) {
              const double v = epoch_chain_value_[c] * p / (mass_[c] + p);
              if (t.c1 == kNoChain || v > t.v1) {
                t.c2 = t.c1;
                t.v2 = t.v1;
                t.c1 = c;
                t.v1 = v;
              } else if (t.c2 == kNoChain || v > t.v2) {
                t.c2 = c;
                t.v2 = v;
              }
            }
            epoch_top2_[k] = t;
          }
        });
  } else {
    TopTwo t{kNoChain, kNoChain, 0.0, 0.0};
    for (std::uint32_t c = 0; c < num_chains; ++c) {
      const double v = reward_fiat_[c] /
                       chains_[c].adjuster->prospective(now, difficulty_[c]);
      epoch_chain_value_[c] = v;
      if (t.c1 == kNoChain || v > t.v1) {
        t.c2 = t.c1;
        t.v2 = t.v1;
        t.c1 = c;
        t.v1 = v;
      } else if (t.c2 == kNoChain || v > t.v2) {
        t.c2 = c;
        t.v2 = v;
      }
    }
    epoch_top2_[0] = t;
  }

  // --- Evaluate: pure per-miner, parallel over contiguous shards. ----------
  // Reevaluation draws come from a counter-based per-epoch splitmix64
  // substream — miner i's draw is a function of (seed, epoch, i) alone, so
  // it is decision-order-stable no matter how the range is sharded (the
  // main RNG stream is untouched; it serves only the block races the apply
  // phase re-arms, in miner order as before).
  std::uint64_t epoch_state =
      options_.seed + 0x9E3779B97F4A7C15ULL * (epoch_index_ + 1);
  const std::uint64_t epoch_seed = splitmix64(epoch_state);
  const double fraction = options_.reevaluation_fraction;
  const double hysteresis = 1.0 + options_.myopic_hysteresis;
  epoch_pool_->parallel_for_chunks(
      n, kMinerGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          epoch_target_[i] = kNoChain;
          std::uint64_t s =
              epoch_seed +
              0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(i) + 1);
          const double u =
              static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
          if (!(u < fraction)) continue;
          const auto cur = static_cast<std::uint32_t>(assignment_[i]);
          const TopTwo& t =
              better_response ? epoch_top2_[power_class_[i]] : epoch_top2_[0];
          const std::uint32_t cand = t.c1 != cur ? t.c1 : t.c2;
          if (cand == kNoChain) continue;
          const double cand_value = t.c1 != cur ? t.v1 : t.v2;
          // Stay value against the frozen state; myopic hysteresis models
          // switching friction exactly as in the sequential scan.
          const double stay =
              better_response
                  ? epoch_chain_value_[cur] * powers_[i] / mass_[cur]
                  : epoch_chain_value_[cur] * hysteresis;
          if (cand_value > stay) epoch_target_[i] = cand;
        }
      });

  // --- Apply: replay the moves serially in miner order. --------------------
  // Mass updates, member-list edits, race invalidation and the fresh
  // exponential draws all happen in ascending miner order, so the apply
  // phase is a pure function of the target vector — identical at any lane
  // count.
  for (std::size_t i = 0; i < n; ++i) {
    if (epoch_target_[i] != kNoChain) move_miner(i, epoch_target_[i]);
  }
}

ChainSimResult MultiChainSimulator::run() {
  for (std::size_t c = 0; c < chains_.size(); ++c) arm_block_race(c);
  if (flat_) {
    core_.schedule(options_.decision_interval_hours,
                   sim::EventType::kDecisionEpoch, 0);
    sim::Event event;
    while (core_.pop_until(event, options_.duration_hours)) {
      switch (event.type) {
        case sim::EventType::kBlockFound:
          on_block(event.subject);
          break;
        case sim::EventType::kDecisionEpoch:
          decision_epoch();
          break;
        default:
          GOC_ASSERT(false, "unexpected event type in the chain simulator");
      }
    }
  } else {
    queue_.schedule(options_.decision_interval_hours,
                    [this] { decision_epoch(); });
    queue_.run_until(options_.duration_hours);
  }

  if (flat_) {
    // Settle every miner's open stint into the prediction accumulator.
    for (std::size_t i = 0; i < powers_.size(); ++i) {
      predicted_rewards_[i] +=
          powers_[i] * (reward_per_power_[assignment_[i]] - stint_base_[i]);
    }
  }

  // E9 validation: realized vs predicted reward shares.
  double total = 0.0;
  for (const double r : result_.miner_rewards_fiat) total += r;
  if (total > 0.0) {
    double mae = 0.0;
    for (std::size_t i = 0; i < powers_.size(); ++i) {
      const double realized = result_.miner_rewards_fiat[i] / total;
      const double predicted = predicted_rewards_[i] / total;
      mae += std::fabs(realized - predicted);
    }
    result_.share_prediction_mae = mae / static_cast<double>(powers_.size());
  }
  return std::move(result_);
}

}  // namespace goc::chain
