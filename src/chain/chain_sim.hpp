#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chain/des.hpp"
#include "chain/difficulty.hpp"
#include "engine/thread_pool.hpp"
#include "sim/event_core.hpp"
#include "util/rng.hpp"

/// \file chain_sim.hpp
/// Multi-chain proof-of-work simulator (experiment E9, and the mechanism
/// behind Figure 1b's hashrate series).
///
/// Each chain runs an exponential block race: with aggregate hashrate M_c
/// and difficulty D_c, the next block arrives after Exp(M_c/D_c) hours and
/// is won by a miner on c with probability proportional to its power —
/// the mechanism the paper abstracts as "reward divided in proportion to
/// power". The simulator validates that abstraction (realized reward share
/// → m_p/M_c) and exposes the difficulty-adjustment dynamics the
/// abstraction hides.
///
/// Miner policies at decision epochs:
///  * kStatic          — never move (pure validation of the reward split);
///  * kBetterResponse  — the paper's game semantics: coin weight is the
///    protocol reward rate F(c) = reward·/target_interval, miners take
///    better responses on F(c)·m/(M+m) vs F(c)·m/M;
///  * kMyopicDifficulty — chase instantaneous per-hash profitability
///    reward/D_c (what whattomine-style dashboards report); with an EDA
///    chain this produces the famous hashrate sawtooth.
///
/// Two event engines drive the same dynamics. The default flat path runs
/// on `sim::EventCore` (POD events, enum-switch dispatch, generation
/// invalidation in the core) and keeps a sorted member list per chain so a
/// block costs O(miners on that chain) instead of O(all miners). The
/// legacy path (`sim::EngineKind::kLegacy`) is the original
/// `chain::EventQueue` implementation, kept as the reference: both paths
/// consume the RNG identically and produce **bit-identical trajectories**
/// (`tests/test_sim.cpp`, `bench_des --compare-scan`).

namespace goc::chain {

struct ChainSpec {
  std::string name;
  double initial_difficulty;      ///< hash-units per block
  double target_interval_hours;   ///< protocol cadence
  double block_reward_fiat;       ///< fiat value per block
  std::unique_ptr<DifficultyAdjuster> adjuster;
};

enum class MinerPolicy { kStatic, kBetterResponse, kMyopicDifficulty };

struct ChainSimOptions {
  double duration_hours = 24.0 * 30;
  double decision_interval_hours = 1.0;
  MinerPolicy policy = MinerPolicy::kBetterResponse;
  /// Fraction of miners re-evaluating per decision epoch (inertia).
  double reevaluation_fraction = 0.25;
  /// Myopic policy only: switch only when the best alternative beats the
  /// current chain by this relative margin (switching costs / friction).
  double myopic_hysteresis = 0.0;
  std::uint64_t seed = 42;
  /// Record a timeline sample at every decision epoch.
  bool record_timeline = true;
  /// Flat event core (default) or the legacy callback queue (reference).
  sim::EngineKind engine = sim::EngineKind::kFlat;
  /// Decision-epoch execution mode. 0 (default) keeps the original
  /// sequential policy scan: miners re-evaluate one at a time against the
  /// *live* state (earlier movers shift the masses later miners see) with
  /// reevaluation draws from the main RNG stream. Any value >= 1 selects
  /// the **sharded epoch**: a simultaneous-move dynamics where every miner
  /// evaluates against the frozen pre-epoch state with a counter-based
  /// per-epoch reevaluation substream (evaluate phase, parallel over
  /// contiguous miner shards) and moves replay serially in miner order
  /// (apply phase). The two modes are *different dynamics* — equally valid
  /// discretizations of the paper's epoch game — so their trajectories are
  /// not comparable; within sharded mode, results are bit-identical at ANY
  /// lane count (epoch_lanes = 1 is the serial reference) and across both
  /// event engines.
  std::size_t epoch_lanes = 0;
  /// Shared pool for the sharded evaluate phase (e.g. handed down by
  /// `sim::plan_nested_lanes` arbitration). When null, the simulator owns a
  /// pool of `epoch_lanes` lanes — unless the population is smaller than
  /// `epoch_shard_cutoff`, where shard dispatch costs more than the scan it
  /// saves and the evaluate runs inline. Never affects results, only
  /// scheduling.
  engine::ThreadPool* epoch_pool = nullptr;
  /// Minimum miner count before an owned pool spawns workers (see above).
  std::size_t epoch_shard_cutoff = 8192;
};

/// Recomputes a chain's fiat block reward at a decision epoch — the
/// coupling point for exchange-rate processes (fiat reward = subsidy ×
/// price(t)). Called per chain with the simulation clock; the returned
/// value must be positive.
using RewardHook = std::function<double(std::size_t chain, double t_hours)>;

struct TimelinePoint {
  double t_hours = 0.0;
  std::vector<double> difficulty;      ///< per chain
  std::vector<double> hashrate;        ///< per chain (hash-units)
  std::vector<std::uint64_t> blocks;   ///< cumulative per chain
  std::vector<double> reward_fiat;     ///< per chain (as of this epoch)
};

struct ChainSimResult {
  std::vector<std::uint64_t> blocks_per_chain;
  std::vector<double> miner_rewards_fiat;       ///< per miner
  std::vector<std::uint64_t> miner_blocks;      ///< per miner
  std::vector<TimelinePoint> timeline;
  /// Mean absolute error between each miner's realized reward share and
  /// its within-chain power share prediction, over miners with nonzero
  /// predicted share (the E9 validation number).
  ///
  /// FP-order note: the flat engine accrues the prediction through the
  /// per-chain reward-per-power integral (O(1) per block, settled per
  /// stint), the legacy engine adds per miner per block. The two sums are
  /// mathematically identical but associate differently, so this one field
  /// matches across engines only to floating-point tolerance — every other
  /// field stays bit-identical, and `sim::chain_result_hash` excludes this
  /// field for exactly that reason.
  double share_prediction_mae = 0.0;
  std::uint64_t migrations = 0;  ///< total miner moves across the run
  /// Live events dispatched (blocks + decision epochs; stale races are
  /// skipped before dispatch on both engines). The throughput denominator
  /// of `bench_des`.
  std::uint64_t events_dispatched = 0;
};

class MultiChainSimulator {
 public:
  /// `miner_powers` in hash-units/hour; `initial_assignment[i]` is the
  /// starting chain of miner i (empty → all on chain 0).
  MultiChainSimulator(std::vector<double> miner_powers,
                      std::vector<ChainSpec> chains, ChainSimOptions options,
                      std::vector<std::size_t> initial_assignment = {});

  /// Installs a per-epoch fiat-reward recomputation (price coupling). Must
  /// be called before run().
  void set_reward_hook(RewardHook hook) { reward_hook_ = std::move(hook); }

  ChainSimResult run();

 private:
  double sim_now() const noexcept;
  void arm_block_race(std::size_t chain);
  void on_block(std::size_t chain);
  void decision_epoch();
  void decision_epoch_sharded();
  void move_miner(std::size_t miner, std::size_t to_chain);
  double expected_rpu_game(std::size_t miner, std::size_t chain, bool joining) const;

  std::vector<double> powers_;
  std::vector<ChainSpec> chains_;
  ChainSimOptions options_;
  Rng rng_;
  bool flat_;  // options_.engine == kFlat, hoisted for the hot loops

  sim::EventCore core_;                     // flat engine
  EventQueue queue_;                        // legacy engine
  std::vector<std::size_t> assignment_;     // miner -> chain
  // Flat engine only: per-chain member lists, ascending miner index —
  // keeps the winner lottery and prediction accrual at O(chain members)
  // while iterating in exactly the legacy full-scan order.
  std::vector<std::vector<std::uint32_t>> members_;
  std::vector<double> mass_;                // per chain
  std::vector<double> difficulty_;          // per chain
  std::vector<double> reward_fiat_;         // per chain (hook-updated)
  std::vector<std::uint64_t> generation_;   // legacy block-race invalidation
  RewardHook reward_hook_;                  // optional price coupling
  ChainSimResult result_;
  // Accumulated (power-share × chain reward) prediction per miner. The
  // legacy engine adds reward·m_i/M_c for every chain member on every
  // block; the flat engine settles lazily from the stint integral below.
  std::vector<double> predicted_rewards_;
  // Flat engine only: reward_per_power_[c] = Σ over c's blocks of
  // reward/M_c — the cumulative fiat a unit of hashpower parked on c would
  // have been predicted to earn. A block then costs O(1) accrual (bump the
  // integral) instead of O(chain members); a miner's prediction for one
  // stint on c is m_i · (integral at leave − integral at join), with the
  // join value kept in stint_base_[i]. Settled on every move and at the
  // end of run(). Changes only the FP association of
  // share_prediction_mae — see the field's note above.
  std::vector<double> reward_per_power_;
  std::vector<double> stint_base_;

  // Sharded decision epochs (options_.epoch_lanes >= 1). The evaluate
  // phase is a pure per-miner function of the frozen pre-epoch state, so
  // two key memoizations apply: powers_ is immutable, so a miner's best
  // *alternative* chain under kBetterResponse depends only on its power
  // value — per epoch we compute, per distinct power, the top-2 chains by
  // join value (first-argmax tie rule, matching a first-wins strict-`>`
  // scan) and each miner compares against top1 (or top2 when top1 is its
  // own chain); kMyopicDifficulty values are power-independent, so one
  // top-2 serves everyone. All scratch is sized once in the constructor —
  // steady-state epochs allocate nothing.
  struct TopTwo {
    std::uint32_t c1, c2;  // kNoChain when absent
    double v1, v2;
  };
  std::unique_ptr<engine::ThreadPool> owned_epoch_pool_;
  engine::ThreadPool* epoch_pool_ = nullptr;
  std::uint64_t epoch_index_ = 0;           // decision epochs completed
  std::vector<std::uint32_t> epoch_target_; // kNoChain = stay put
  std::vector<double> unique_powers_;       // sorted distinct power values
  std::vector<std::uint32_t> power_class_;  // miner -> unique_powers_ index
  std::vector<double> epoch_chain_value_;   // frozen per-chain scratch
  std::vector<TopTwo> epoch_top2_;          // per power class (myopic: [0])
};

}  // namespace goc::chain
