#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.hpp"

/// \file des.hpp
/// The legacy discrete-event engine: a time-ordered queue of callbacks
/// with FIFO tie-breaking. Stale events (e.g. a block race whose rate
/// changed when miners migrated) are handled by generation counters at the
/// call site — the exponential race is memoryless, so resampling after an
/// invalidation is statistically exact.
///
/// This is the *reference* path: the simulators' hot loops run on the flat
/// `sim::EventCore` (POD events, enum-switch dispatch, built-in
/// invalidation), and this queue survives — selectable via
/// `sim::EngineKind::kLegacy` — so trajectory bit-equality between the two
/// engines stays checkable (`bench_des --compare-scan`,
/// `tests/test_sim.cpp`). The heap is an explicit `std::push_heap` /
/// `std::pop_heap` over a vector: popping moves the callback out of a
/// mutable element instead of `const_cast`ing `priority_queue::top()`.

namespace goc::chain {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute `time` (must be ≥ now()).
  void schedule(double time, Callback fn);

  /// Pops and runs the earliest event. Returns false when empty.
  bool run_next();

  /// Runs events with time ≤ `t_end`; afterwards now() == t_end (even if
  /// the queue drained earlier).
  void run_until(double t_end);

  double now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return queue_.size(); }
  bool empty() const noexcept { return queue_.empty(); }

  /// Drops all pending events (the clock is unchanged).
  void clear();

 private:
  struct Item {
    double time;
    std::uint64_t seq;  // insertion order for deterministic ties
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Binary max-heap under `Later` (so the *earliest* item is at front).
  std::vector<Item> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace goc::chain
