#include "chain/des.hpp"

#include <algorithm>
#include <utility>

namespace goc::chain {

void EventQueue::schedule(double time, Callback fn) {
  GOC_CHECK_ARG(time >= now_, "cannot schedule events in the past");
  GOC_CHECK_ARG(fn != nullptr, "cannot schedule a null callback");
  queue_.push_back(Item{time, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Item item = std::move(queue_.back());
  queue_.pop_back();
  now_ = item.time;
  item.fn();
  return true;
}

void EventQueue::run_until(double t_end) {
  GOC_CHECK_ARG(t_end >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.front().time <= t_end) {
    run_next();
  }
  now_ = t_end;
}

void EventQueue::clear() { queue_.clear(); }

}  // namespace goc::chain
