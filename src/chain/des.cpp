#include "chain/des.hpp"

#include <utility>

namespace goc::chain {

void EventQueue::schedule(double time, Callback fn) {
  GOC_CHECK_ARG(time >= now_, "cannot schedule events in the past");
  GOC_CHECK_ARG(fn != nullptr, "cannot schedule a null callback");
  queue_.push(Item{time, next_seq_++, std::move(fn)});
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();
  now_ = item.time;
  item.fn();
  return true;
}

void EventQueue::run_until(double t_end) {
  GOC_CHECK_ARG(t_end >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.top().time <= t_end) {
    run_next();
  }
  now_ = t_end;
}

void EventQueue::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace goc::chain
