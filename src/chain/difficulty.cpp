#include "chain/difficulty.hpp"

#include <algorithm>
#include <cmath>

namespace goc::chain {

FixedWindowRetarget::FixedWindowRetarget(std::size_t window,
                                         double target_interval_hours,
                                         double max_factor)
    : window_(window),
      target_interval_(target_interval_hours),
      max_factor_(max_factor) {
  GOC_CHECK_ARG(window >= 1, "retarget window must be positive");
  GOC_CHECK_ARG(target_interval_hours > 0.0, "target interval must be positive");
  GOC_CHECK_ARG(max_factor >= 1.0, "clamp factor must be at least 1");
}

double FixedWindowRetarget::on_block(double now, double current_difficulty) {
  if (!have_start_) {
    window_start_ = now;
    have_start_ = true;
    blocks_in_window_ = 0;
    return current_difficulty;
  }
  if (++blocks_in_window_ < window_) return current_difficulty;

  const double actual = std::max(now - window_start_, 1e-9);
  const double expected = static_cast<double>(window_) * target_interval_;
  const double raw_factor = expected / actual;
  const double factor =
      std::clamp(raw_factor, 1.0 / max_factor_, max_factor_);
  blocks_in_window_ = 0;
  window_start_ = now;
  return current_difficulty * factor;
}

void FixedWindowRetarget::reset() {
  blocks_in_window_ = 0;
  window_start_ = 0.0;
  have_start_ = false;
}

SmaRetarget::SmaRetarget(std::size_t window, double target_interval_hours,
                         double max_step)
    : window_(window), target_interval_(target_interval_hours),
      max_step_(max_step) {
  GOC_CHECK_ARG(window >= 2, "SMA window must be at least 2");
  GOC_CHECK_ARG(target_interval_hours > 0.0, "target interval must be positive");
  GOC_CHECK_ARG(max_step >= 1.0, "per-block clamp must be at least 1");
}

double SmaRetarget::on_block(double now, double current_difficulty) {
  times_.push_back(now);
  if (times_.size() > window_) times_.pop_front();
  if (times_.size() < 2) return current_difficulty;
  const double span = times_.back() - times_.front();
  const double mean_interval =
      std::max(span / static_cast<double>(times_.size() - 1), 1e-9);
  const double raw_factor = target_interval_ / mean_interval;
  const double factor = std::clamp(raw_factor, 1.0 / max_step_, max_step_);
  return current_difficulty * factor;
}

void SmaRetarget::reset() { times_.clear(); }

EmergencyAdjuster::EmergencyAdjuster(std::size_t window,
                                     double target_interval_hours,
                                     double emergency_gap_hours,
                                     double emergency_drop, double max_factor)
    : base_(window, target_interval_hours, max_factor),
      emergency_gap_(emergency_gap_hours),
      emergency_drop_(emergency_drop) {
  GOC_CHECK_ARG(emergency_gap_hours > 0.0, "emergency gap must be positive");
  GOC_CHECK_ARG(emergency_drop > 0.0 && emergency_drop < 1.0,
                "emergency drop must lie in (0,1)");
}

double EmergencyAdjuster::stall_discount(double now) const {
  if (!have_last_) return 1.0;
  const double stall = now - last_block_time_;
  if (stall <= emergency_gap_) return 1.0;
  const double cuts = std::floor(stall / emergency_gap_);
  // Cap the compounding at 50 cuts (≈ 0.8^50 ≈ 1e-5) so difficulty cannot
  // underflow to zero during pathological stalls.
  const double bounded = std::min(cuts, 50.0);
  return std::pow(1.0 - emergency_drop_, bounded);
}

double EmergencyAdjuster::prospective(double now, double current_difficulty) const {
  return current_difficulty * stall_discount(now);
}

double EmergencyAdjuster::on_block(double now, double current_difficulty) {
  const double difficulty = current_difficulty * stall_discount(now);
  last_block_time_ = now;
  have_last_ = true;
  return base_.on_block(now, difficulty);
}

void EmergencyAdjuster::reset() {
  base_.reset();
  last_block_time_ = 0.0;
  have_last_ = true;  // genesis anchor
}

}  // namespace goc::chain
