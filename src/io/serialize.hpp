#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "util/table.hpp"

/// \file serialize.hpp
/// Plain-text persistence for games and configurations.
///
/// Experiments cite seeds, but shipping a *scenario* (a concrete game plus
/// starting state) to a colleague or a bug report needs a stable artifact.
/// The format is line-oriented and versioned:
///
/// ```
/// goc-game v1
/// miners 3
/// powers 5 3 1/2
/// coins 2
/// rewards 10 7
/// access 11 10 01        # optional; one row per miner, '1' = allowed
/// ```
///
/// ```
/// goc-config v1
/// assignment 0 1 0
/// ```
///
/// Rationals serialize as `p` or `p/q` (exact round-trip). Blank lines and
/// `#` comments are ignored. Parsers throw std::invalid_argument with a
/// line-number-bearing message on malformed input.

namespace goc::io {

/// Serializes a game (system + rewards + access policy).
std::string to_text(const Game& game);

/// Parses a game. Throws std::invalid_argument on malformed input.
Game game_from_text(const std::string& text);

/// Serializes a configuration (assignment only; the system travels with
/// its game).
std::string to_text(const Configuration& config);

/// Parses a configuration onto `system`. Throws std::invalid_argument on
/// malformed input or arity/coin-range mismatch.
Configuration configuration_from_text(const std::string& text,
                                      std::shared_ptr<const System> system);

/// File helpers; throw std::runtime_error on I/O failure.
void save_game(const Game& game, const std::string& path);
Game load_game(const std::string& path);
void save_configuration(const Configuration& config, const std::string& path);
Configuration load_configuration(const std::string& path,
                                 std::shared_ptr<const System> system);

/// Exact round-trip helpers for rationals ("p" or "p/q").
std::string rational_to_text(const Rational& value);
Rational rational_from_text(const std::string& text);

// ------------------------------------------------------------------- JSON
// Result emission for the sweep engine and benchmark harnesses. We only
// ever *write* JSON (plots and trajectory tracking consume it); there is
// deliberately no parser here.

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& text);

/// Renders a table as `{"title": ..., "headers": [...], "rows": [[...]]}`.
/// Cells are emitted as JSON strings (tables are already formatted text).
std::string table_to_json(const Table& table, const std::string& title);

/// Same document plus trailing top-level members: each (key, value) pair
/// appends `"key": value`, where `value` is spliced in verbatim as raw
/// JSON (the caller quotes strings; numbers go in bare). The benches use
/// this to stamp peak RSS and total wall time into every `--json` file.
std::string table_to_json(
    const Table& table, const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& extras);

/// Writes `content` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& content, const std::string& path);

/// Crash-safe write: `content` (text or binary) goes to `path + ".tmp"`,
/// is flushed to stable storage (fsync), then renamed over `path` — on a
/// POSIX filesystem readers observe either the old file or the complete
/// new one, never a torn mix. Used for every artifact whose partial state
/// is worse than its absence: replay checkpoints, golden recordings, and
/// the benches' `BENCH_*.json` perf baselines. Throws std::runtime_error
/// on I/O failure (the tmp file is removed on the failure paths that
/// leave one behind).
void atomic_write_file(const std::string& content, const std::string& path);

}  // namespace goc::io
