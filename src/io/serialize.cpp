#include "io/serialize.hpp"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "util/assert.hpp"

namespace goc::io {
namespace {

/// Tokenized, comment-stripped line reader with positional errors.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  /// Next non-empty, non-comment line split on whitespace; false at EOF.
  bool next(std::vector<std::string>* tokens) {
    std::string line;
    while (std::getline(stream_, line)) {
      ++line_number_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      tokens->clear();
      std::string tok;
      while (ls >> tok) tokens->push_back(tok);
      if (!tokens->empty()) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("goc::io parse error at line " +
                                std::to_string(line_number_) + ": " + what);
  }

  /// Reads a line and checks its keyword.
  std::vector<std::string> expect(const std::string& keyword) {
    std::vector<std::string> tokens;
    if (!next(&tokens)) fail("expected '" + keyword + "', got end of input");
    if (tokens.front() != keyword) {
      fail("expected '" + keyword + "', got '" + tokens.front() + "'");
    }
    return tokens;
  }

 private:
  std::istringstream stream_;
  std::size_t line_number_ = 0;
};

i128 parse_i128(const std::string& text, const LineReader& reader) {
  // Manual parse: std::from_chars has no i128 overload.
  if (text.empty()) reader.fail("empty integer");
  std::size_t pos = 0;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = (text[0] == '-');
    pos = 1;
  }
  if (pos == text.size()) reader.fail("sign without digits in '" + text + "'");
  i128 value = 0;
  for (; pos < text.size(); ++pos) {
    const char ch = text[pos];
    if (ch < '0' || ch > '9') {
      reader.fail("invalid digit in integer '" + text + "'");
    }
    i128 next_value;
    if (mul_overflow(value, 10, &next_value) ||
        add_overflow(next_value, ch - '0', &next_value)) {
      reader.fail("integer out of range: '" + text + "'");
    }
    value = next_value;
  }
  return negative ? -value : value;
}

Rational parse_rational(const std::string& text, const LineReader& reader) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    return Rational::from_parts(parse_i128(text, reader), 1);
  }
  const i128 num = parse_i128(text.substr(0, slash), reader);
  const i128 den = parse_i128(text.substr(slash + 1), reader);
  if (den == 0) reader.fail("zero denominator in '" + text + "'");
  return Rational::from_parts(num, den);
}

std::size_t parse_size(const std::string& text, const LineReader& reader) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    reader.fail("invalid count '" + text + "'");
  }
  return value;
}

}  // namespace

std::string rational_to_text(const Rational& value) { return value.to_string(); }

Rational rational_from_text(const std::string& text) {
  LineReader reader("");  // positionless helper
  return parse_rational(text, reader);
}

std::string to_text(const Game& game) {
  std::ostringstream os;
  os << "goc-game v1\n";
  os << "miners " << game.num_miners() << "\n";
  os << "powers";
  for (const Rational& m : game.system().powers()) os << " " << m.to_string();
  os << "\ncoins " << game.num_coins() << "\n";
  os << "rewards";
  for (const Rational& r : game.rewards().values()) os << " " << r.to_string();
  os << "\n";
  if (!game.access().is_unrestricted()) {
    os << "access";
    for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
      os << " ";
      for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
        os << (game.can_mine(MinerId(p), CoinId(c)) ? '1' : '0');
      }
    }
    os << "\n";
  }
  return os.str();
}

Game game_from_text(const std::string& text) {
  LineReader reader(text);
  const auto header = reader.expect("goc-game");
  if (header.size() != 2 || header[1] != "v1") {
    reader.fail("unsupported game format version");
  }

  const auto miners_line = reader.expect("miners");
  if (miners_line.size() != 2) reader.fail("miners expects one count");
  const std::size_t miners = parse_size(miners_line[1], reader);

  const auto powers_line = reader.expect("powers");
  if (powers_line.size() != miners + 1) {
    reader.fail("powers expects exactly " + std::to_string(miners) + " values");
  }
  std::vector<Rational> powers;
  powers.reserve(miners);
  for (std::size_t i = 1; i < powers_line.size(); ++i) {
    powers.push_back(parse_rational(powers_line[i], reader));
  }

  const auto coins_line = reader.expect("coins");
  if (coins_line.size() != 2) reader.fail("coins expects one count");
  const std::size_t coins = parse_size(coins_line[1], reader);

  const auto rewards_line = reader.expect("rewards");
  if (rewards_line.size() != coins + 1) {
    reader.fail("rewards expects exactly " + std::to_string(coins) + " values");
  }
  std::vector<Rational> rewards;
  rewards.reserve(coins);
  for (std::size_t i = 1; i < rewards_line.size(); ++i) {
    rewards.push_back(parse_rational(rewards_line[i], reader));
  }

  AccessPolicy access;
  std::vector<std::string> extra;
  if (reader.next(&extra)) {
    if (extra.front() != "access" || extra.size() != miners + 1) {
      reader.fail("expected optional 'access' with one row per miner");
    }
    std::vector<std::vector<bool>> allowed(miners);
    for (std::size_t p = 0; p < miners; ++p) {
      const std::string& row = extra[p + 1];
      if (row.size() != coins) {
        reader.fail("access row must have one flag per coin");
      }
      allowed[p].reserve(coins);
      for (const char ch : row) {
        if (ch != '0' && ch != '1') reader.fail("access flags must be 0/1");
        allowed[p].push_back(ch == '1');
      }
    }
    access = AccessPolicy(std::move(allowed));
  }

  try {
    return Game(System(std::move(powers), coins), RewardFunction(std::move(rewards)),
                std::move(access));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("goc::io: invalid game: ") + e.what());
  }
}

std::string to_text(const Configuration& config) {
  std::ostringstream os;
  os << "goc-config v1\nassignment";
  for (const CoinId c : config.assignment()) os << " " << c.value;
  os << "\n";
  return os.str();
}

Configuration configuration_from_text(const std::string& text,
                                      std::shared_ptr<const System> system) {
  GOC_CHECK_ARG(system != nullptr, "configuration needs a system");
  LineReader reader(text);
  const auto header = reader.expect("goc-config");
  if (header.size() != 2 || header[1] != "v1") {
    reader.fail("unsupported configuration format version");
  }
  const auto line = reader.expect("assignment");
  if (line.size() != system->num_miners() + 1) {
    reader.fail("assignment expects one coin per miner");
  }
  std::vector<CoinId> assignment;
  assignment.reserve(system->num_miners());
  for (std::size_t i = 1; i < line.size(); ++i) {
    const std::size_t coin = parse_size(line[i], reader);
    if (coin >= system->num_coins()) reader.fail("coin id out of range");
    assignment.emplace_back(static_cast<std::uint32_t>(coin));
  }
  return Configuration(std::move(system), std::move(assignment));
}

void save_game(const Game& game, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << to_text(game);
  if (!out) throw std::runtime_error("failed writing " + path);
}

Game load_game(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return game_from_text(buffer.str());
}

void save_configuration(const Configuration& config, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << to_text(config);
  if (!out) throw std::runtime_error("failed writing " + path);
}

Configuration load_configuration(const std::string& path,
                                 std::shared_ptr<const System> system) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return configuration_from_text(buffer.str(), std::move(system));
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string table_to_json(const Table& table, const std::string& title) {
  return table_to_json(table, title, {});
}

std::string table_to_json(
    const Table& table, const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& extras) {
  std::ostringstream os;
  os << "{\n  \"title\": \"" << json_escape(title) << "\",\n  \"headers\": [";
  const auto& headers = table.headers();
  for (std::size_t i = 0; i < headers.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(headers[i]) << '"';
  }
  os << "],\n  \"rows\": [\n";
  const auto& rows = table.row_data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "    [";
    for (std::size_t i = 0; i < rows[r].size(); ++i) {
      os << (i ? ", " : "") << '"' << json_escape(rows[r][i]) << '"';
    }
    os << "]" << (r + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]";
  for (const auto& [key, value] : extras) {
    os << ",\n  \"" << json_escape(key) << "\": " << value;
  }
  os << "\n}\n";
  return os.str();
}

void write_text_file(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << content;
  if (!out) throw std::runtime_error("failed writing " + path);
}

void atomic_write_file(const std::string& content, const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("cannot open " + tmp + " for writing");
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error("failed writing " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync *before* rename: the rename must never become durable ahead of
  // the bytes it points at, or a crash could leave a short file under the
  // final name — exactly the torn artifact this function exists to prevent.
  // close() runs unconditionally: short-circuiting it after a failed fsync
  // would leak the descriptor, and a long-lived daemon calling this per
  // checkpoint would bleed fds until open() itself starts failing.
  const bool synced = ::fsync(fd) == 0;
  const bool closed = ::close(fd) == 0;
  if (!synced || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("failed flushing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

}  // namespace goc::io
