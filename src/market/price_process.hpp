#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

/// \file price_process.hpp
/// Fiat exchange-rate processes for the multi-coin market simulator.
///
/// The paper's Figure 1a shows the BTC and BCH exchange rates around
/// November 12, 2017 — a scripted, exogenous shock from this simulator's
/// point of view. We model rates as stochastic processes:
///  * geometric Brownian motion (baseline drift/volatility),
///  * jump-diffusion (GBM plus Poisson-arriving log-normal jumps), and
///  * a scheduled-shock wrapper that multiplies the rate by scripted
///    factors at given times (used to replay the 2017 fork-flip event with
///    a deterministic shape).
/// All processes advance in hours and are deterministic for a fixed Rng.

namespace goc::market {

class PriceProcess {
 public:
  virtual ~PriceProcess() = default;

  /// Advances the process by `dt_hours` and returns the new price.
  virtual double step(double dt_hours, Rng& rng) = 0;

  /// Current price (initial price before the first step).
  virtual double price() const = 0;

  /// Restores the initial state (prices only; the caller owns Rng state).
  virtual void reset() = 0;

  /// Deep copy carrying the *full runtime state* (current price, shock
  /// clock, fired shocks), not just the construction parameters — cloning
  /// then stepping both copies with identical Rng draws produces identical
  /// paths. The replica-stamping primitive behind `CoinSpec::clone` and
  /// `Scenario::make_simulator`.
  virtual std::unique_ptr<PriceProcess> clone() const = 0;
};

/// dS = μ·S·dt + σ·S·dW, parameters per *day*.
class GbmProcess final : public PriceProcess {
 public:
  /// `initial_price` > 0; `sigma_daily` ≥ 0.
  GbmProcess(double initial_price, double mu_daily, double sigma_daily);

  double step(double dt_hours, Rng& rng) override;
  double price() const override { return price_; }
  void reset() override { price_ = initial_; }
  std::unique_ptr<PriceProcess> clone() const override {
    return std::make_unique<GbmProcess>(*this);
  }

 private:
  double initial_;
  double mu_daily_;
  double sigma_daily_;
  double price_;
};

/// GBM plus Poisson jumps: at rate `jumps_per_day`, the price is multiplied
/// by exp(N(jump_mean_log, jump_sigma_log)).
class JumpDiffusionProcess final : public PriceProcess {
 public:
  JumpDiffusionProcess(double initial_price, double mu_daily, double sigma_daily,
                       double jumps_per_day, double jump_mean_log,
                       double jump_sigma_log);

  double step(double dt_hours, Rng& rng) override;
  double price() const override { return price_; }
  void reset() override { price_ = initial_; }
  std::unique_ptr<PriceProcess> clone() const override {
    return std::make_unique<JumpDiffusionProcess>(*this);
  }

 private:
  double initial_;
  double mu_daily_;
  double sigma_daily_;
  double jumps_per_day_;
  double jump_mean_log_;
  double jump_sigma_log_;
  double price_;
};

/// Wraps a base process and applies scripted multiplicative shocks when the
/// simulated clock passes their times (each fires once per run).
class ScheduledShockProcess final : public PriceProcess {
 public:
  struct Shock {
    double at_hours;
    double factor;  ///< price *= factor when the clock passes at_hours
  };

  ScheduledShockProcess(std::unique_ptr<PriceProcess> base,
                        std::vector<Shock> shocks);

  double step(double dt_hours, Rng& rng) override;
  double price() const override;
  void reset() override;
  std::unique_ptr<PriceProcess> clone() const override;

 private:
  std::unique_ptr<PriceProcess> base_;
  std::vector<Shock> shocks_;  // sorted by time
  double clock_hours_ = 0.0;
  std::size_t next_shock_ = 0;
  double shock_multiplier_ = 1.0;
};

}  // namespace goc::market
