#include "market/market_sim.hpp"

#include <algorithm>

#include "core/moves.hpp"
#include "util/assert.hpp"

namespace goc::market {
namespace {

std::shared_ptr<const System> build_system(
    const std::vector<std::int64_t>& powers, std::size_t num_coins) {
  std::vector<Rational> rp;
  rp.reserve(powers.size());
  for (const auto v : powers) rp.emplace_back(v);
  return std::make_shared<const System>(std::move(rp), num_coins);
}

}  // namespace

MarketSimulator::MarketSimulator(std::vector<std::int64_t> miner_powers,
                                 std::vector<CoinSpec> coins,
                                 MarketOptions options)
    : system_(build_system(miner_powers, coins.size())),
      coins_(std::move(coins)),
      options_(options),
      rng_(options.seed),
      scheduler_(make_scheduler(options.scheduler, options.seed ^ 0x5eedULL)),
      config_(Configuration::all_at(system_, CoinId(0))) {
  GOC_CHECK_ARG(!coins_.empty(), "market needs at least one coin");
  GOC_CHECK_ARG(options_.epoch_hours > 0.0, "epoch length must be positive");
  for (const CoinSpec& c : coins_) {
    GOC_CHECK_ARG(c.price != nullptr, "every coin needs a price process");
    GOC_CHECK_ARG(c.block_subsidy >= 0.0, "subsidy must be nonnegative");
    GOC_CHECK_ARG(c.blocks_per_hour > 0.0, "block cadence must be positive");
  }
  // Start from the greedy assignment induced by initial weights: miners
  // begin on the initially heaviest coin, then immediately adapt; this
  // avoids an artificial all-on-coin-0 transient when coin 0 is minor.
  std::size_t heaviest = 0;
  double best = -1.0;
  for (std::size_t c = 0; c < coins_.size(); ++c) {
    const double w = coins_[c].price->price() *
                     (coins_[c].block_subsidy * coins_[c].blocks_per_hour);
    if (w > best) {
      best = w;
      heaviest = c;
    }
  }
  config_ = Configuration::all_at(system_, CoinId(static_cast<std::uint32_t>(heaviest)));
}

void MarketSimulator::inject_whale(std::size_t coin, double fee) {
  GOC_CHECK_ARG(coin < coins_.size(), "unknown coin index");
  coins_[coin].fees.inject_whale(fee);
}

const Game& MarketSimulator::current_game() const {
  GOC_CHECK_ARG(ws_ != nullptr && ws_->epochs_run > 0, "no epoch has run yet");
  return ws_->game;
}

void MarketSimulator::ensure_workspace() {
  if (ws_) return;
  ws_ = std::make_unique<EpochWorkspace>(
      system_, config_, options_.engine == sim::EngineKind::kFlat);
}

void MarketSimulator::step_coin_price(std::size_t c, EpochRecord& record) {
  record.prices[c] = coins_[c].price->step(options_.epoch_hours, rng_);
}

void MarketSimulator::step_coin_fees(std::size_t c, EpochRecord& record,
                                     std::vector<Rational>& weights) {
  CoinSpec& coin = coins_[c];
  coin.fees.accrue(options_.epoch_hours, rng_);
  const double fees_native = coin.fees.collect();
  const double subsidy_native =
      coin.block_subsidy * coin.blocks_per_hour * options_.epoch_hours;
  const double weight_fiat = (subsidy_native + fees_native) * record.prices[c];
  record.weights[c] = weight_fiat;
  // Quantize at the boundary; weights must stay positive for the game.
  const double clamped = std::max(weight_fiat, 1e-9);
  weights[c] = Rational::from_double(clamped, options_.weight_denominator);
  if (!weights[c].is_positive()) weights[c] = Rational(1, 1000000);
}

void MarketSimulator::finish_epoch(EpochRecord& record,
                                   std::vector<Rational>& weights) {
  // Induced game and partial better-response adjustment.
  Game& game = ws_->game;
  const std::uint64_t cap = options_.br_steps_per_epoch == 0
                                ? UINT64_MAX
                                : options_.br_steps_per_epoch;
  std::uint64_t steps = 0;
  if (options_.engine == sim::EngineKind::kFlat) {
    // Zero-rebuild path: swap this epoch's weights into the workspace game
    // and reweight-invalidate the index — no Game, RewardFunction or index
    // construction, no allocation. pick_indexed picks the exact move pick
    // would and draws the same variates, so the trajectory matches the
    // legacy rebuild path bit-for-bit.
    game.reweight(weights);
    dynamics::BestResponseIndex& index = *ws_->index;
    index.reweight();
    while (steps < cap) {
      const auto move = scheduler_->pick_indexed(game, config_, index);
      if (!move) break;
      config_.move(move->miner, move->to);
      index.sync(config_);
      ++steps;
    }
    record.at_equilibrium = index.at_equilibrium();
  } else {
    // Legacy reference: genuinely rebuild the induced game and run the
    // schedulers' from-scratch scan path every epoch.
    game = Game(system_, RewardFunction(std::move(weights)));
    while (steps < cap) {
      const auto move = scheduler_->pick(game, config_);
      if (!move) break;
      config_.move(move->miner, move->to);
      ++steps;
    }
    record.at_equilibrium = is_equilibrium(game, config_);
  }
  record.br_steps = steps;
  ++ws_->epochs_run;

  // Hashrate shares.
  const double total = system_->total_power().to_double();
  for (std::size_t c = 0; c < coins_.size(); ++c) {
    record.hashrate_share[c] =
        config_.mass(CoinId(static_cast<std::uint32_t>(c))).to_double() / total;
  }
}

EpochRecord MarketSimulator::step_epoch(double t_hours) {
  EpochRecord record;
  record.t_hours = t_hours;
  record.prices.resize(coins_.size());
  record.weights.resize(coins_.size());
  record.hashrate_share.resize(coins_.size());

  std::vector<Rational> weights(coins_.size());
  for (std::size_t c = 0; c < coins_.size(); ++c) {
    step_coin_price(c, record);
    step_coin_fees(c, record, weights);
  }
  finish_epoch(record, weights);
  return record;
}

std::vector<EpochRecord> MarketSimulator::run_flat() {
  sim::EventCore core;
  core.declare_streams(sim::EventType::kPriceTick, coins_.size());
  core.declare_streams(sim::EventType::kFeeUpdate, coins_.size());
  core.declare_streams(sim::EventType::kDecisionEpoch, 1);

  std::vector<EpochRecord> records;
  if (options_.epochs == 0) return records;  // match the legacy no-op run
  ensure_workspace();
  // Preallocate the *entire* output: after this block the event loop does
  // not touch the heap — epochs write into their records in place, weights
  // are copied into the workspace game's existing storage, and the index
  // rescans its preallocated strips (tests/test_sim.cpp counts the
  // allocations to prove it).
  records.resize(options_.epochs);
  for (EpochRecord& r : records) {
    r.prices.resize(coins_.size());
    r.weights.resize(coins_.size());
    r.hashrate_share.resize(coins_.size());
  }
  std::size_t done = 0;

  // Schedules epoch e's events: per coin a price tick then a fee update
  // (FIFO tie-breaking preserves exactly the legacy per-coin order), then
  // the decision epoch.
  const auto schedule_epoch = [&](std::size_t e) {
    const double t = static_cast<double>(e + 1) * options_.epoch_hours;
    for (std::size_t c = 0; c < coins_.size(); ++c) {
      core.schedule(t, sim::EventType::kPriceTick,
                    static_cast<std::uint32_t>(c));
      core.schedule(t, sim::EventType::kFeeUpdate,
                    static_cast<std::uint32_t>(c));
    }
    core.schedule(t, sim::EventType::kDecisionEpoch, 0);
  };
  schedule_epoch(0);

  sim::Event event;
  while (core.pop(event)) {
    switch (event.type) {
      case sim::EventType::kPriceTick:
        step_coin_price(event.subject, records[done]);
        break;
      case sim::EventType::kFeeUpdate:
        step_coin_fees(event.subject, records[done], ws_->weights);
        break;
      case sim::EventType::kDecisionEpoch: {
        records[done].t_hours = core.now();
        finish_epoch(records[done], ws_->weights);
        ++done;
        if (done < options_.epochs) schedule_epoch(done);
        break;
      }
      default:
        GOC_ASSERT(false, "unexpected event type in the market simulator");
    }
  }
  return records;
}

std::vector<EpochRecord> MarketSimulator::run() {
  if (options_.engine == sim::EngineKind::kFlat) return run_flat();
  std::vector<EpochRecord> records;
  records.reserve(options_.epochs);
  if (options_.epochs > 0) ensure_workspace();
  for (std::size_t e = 0; e < options_.epochs; ++e) {
    const double t = static_cast<double>(e + 1) * options_.epoch_hours;
    records.push_back(step_epoch(t));
  }
  return records;
}

}  // namespace goc::market
