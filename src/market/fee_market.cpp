#include "market/fee_market.hpp"

#include "util/assert.hpp"

namespace goc::market {

FeeMarket::FeeMarket(double tx_per_hour, double fee_scale, double fee_shape)
    : tx_per_hour_(tx_per_hour), fee_scale_(fee_scale), fee_shape_(fee_shape) {
  GOC_CHECK_ARG(tx_per_hour >= 0.0, "tx rate must be nonnegative");
  GOC_CHECK_ARG(fee_scale > 0.0, "fee scale must be positive");
  GOC_CHECK_ARG(fee_shape > 1.0, "fee shape must exceed 1 (finite mean)");
}

double FeeMarket::accrue(double dt_hours, Rng& rng) {
  GOC_CHECK_ARG(dt_hours >= 0.0, "dt must be nonnegative");
  // Poisson thinning: draw inter-arrival exponentials until the budget of
  // dt hours is spent. Typical epochs carry tens to hundreds of arrivals.
  double added = 0.0;
  if (tx_per_hour_ > 0.0) {
    double t = rng.exponential(tx_per_hour_);
    while (t <= dt_hours) {
      added += rng.pareto(fee_scale_, fee_shape_);
      t += rng.exponential(tx_per_hour_);
    }
  }
  pending_ += added;
  return added;
}

void FeeMarket::inject_whale(double fee) {
  GOC_CHECK_ARG(fee >= 0.0, "whale fee must be nonnegative");
  pending_ += fee;
  whale_total_ += fee;
}

double FeeMarket::collect() {
  const double out = pending_;
  pending_ = 0.0;
  return out;
}

double FeeMarket::expected_hourly() const noexcept {
  // Pareto(scale, shape) mean = scale·shape/(shape−1).
  return tx_per_hour_ * fee_scale_ * fee_shape_ / (fee_shape_ - 1.0);
}

}  // namespace goc::market
