#pragma once

#include "util/rng.hpp"

/// \file fee_market.hpp
/// A coin's transaction-fee market.
///
/// Transactions arrive Poisson at `tx_per_hour`, each carrying a fee drawn
/// from Pareto(fee_scale, fee_shape) — heavy-tailed, matching observed fee
/// distributions. Fees accumulate in a pending pool and are collected by
/// the epoch's blocks. A *whale transaction* (Liao–Katz) is an injected
/// outsized fee: the lever the paper names for raising a coin's weight
/// without touching the exchange rate. The reward-design examples use it as
/// the physical carrier of H(c) − F(c).

namespace goc::market {

class FeeMarket {
 public:
  /// `tx_per_hour` ≥ 0, `fee_scale` > 0 (native coin units),
  /// `fee_shape` > 1 (finite mean).
  FeeMarket(double tx_per_hour, double fee_scale, double fee_shape);

  /// Accrues `dt_hours` of organic fee arrivals into the pending pool.
  /// Returns the amount added.
  double accrue(double dt_hours, Rng& rng);

  /// Adds a whale fee (native units) to the pending pool.
  void inject_whale(double fee);

  /// Drains the pool — the fees collected by the blocks mined this epoch.
  double collect();

  double pending() const noexcept { return pending_; }
  /// Total whale fees injected over the lifetime (cost accounting).
  double whale_total() const noexcept { return whale_total_; }

  /// Expected organic fee income per hour (rate × mean fee).
  double expected_hourly() const noexcept;

 private:
  double tx_per_hour_;
  double fee_scale_;
  double fee_shape_;
  double pending_ = 0.0;
  double whale_total_ = 0.0;
};

}  // namespace goc::market
