#include "market/price_process.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace goc::market {
namespace {
constexpr double kHoursPerDay = 24.0;
}

GbmProcess::GbmProcess(double initial_price, double mu_daily, double sigma_daily)
    : initial_(initial_price),
      mu_daily_(mu_daily),
      sigma_daily_(sigma_daily),
      price_(initial_price) {
  GOC_CHECK_ARG(initial_price > 0.0, "initial price must be positive");
  GOC_CHECK_ARG(sigma_daily >= 0.0, "volatility must be nonnegative");
}

double GbmProcess::step(double dt_hours, Rng& rng) {
  GOC_CHECK_ARG(dt_hours > 0.0, "dt must be positive");
  const double dt = dt_hours / kHoursPerDay;
  // Exact log-normal update (no Euler discretization error).
  const double drift = (mu_daily_ - 0.5 * sigma_daily_ * sigma_daily_) * dt;
  const double diffusion = sigma_daily_ * std::sqrt(dt) * rng.normal();
  price_ *= std::exp(drift + diffusion);
  return price_;
}

JumpDiffusionProcess::JumpDiffusionProcess(double initial_price, double mu_daily,
                                           double sigma_daily,
                                           double jumps_per_day,
                                           double jump_mean_log,
                                           double jump_sigma_log)
    : initial_(initial_price),
      mu_daily_(mu_daily),
      sigma_daily_(sigma_daily),
      jumps_per_day_(jumps_per_day),
      jump_mean_log_(jump_mean_log),
      jump_sigma_log_(jump_sigma_log),
      price_(initial_price) {
  GOC_CHECK_ARG(initial_price > 0.0, "initial price must be positive");
  GOC_CHECK_ARG(sigma_daily >= 0.0, "volatility must be nonnegative");
  GOC_CHECK_ARG(jumps_per_day >= 0.0, "jump rate must be nonnegative");
}

double JumpDiffusionProcess::step(double dt_hours, Rng& rng) {
  GOC_CHECK_ARG(dt_hours > 0.0, "dt must be positive");
  const double dt = dt_hours / kHoursPerDay;
  const double drift = (mu_daily_ - 0.5 * sigma_daily_ * sigma_daily_) * dt;
  const double diffusion = sigma_daily_ * std::sqrt(dt) * rng.normal();
  double jump_log = 0.0;
  // Number of jumps in dt is Poisson(jumps_per_day·dt); dt is small, so
  // draw via sequential Bernoulli thinning of the exponential clock.
  double remaining = dt * jumps_per_day_;
  while (remaining > 0.0 && rng.uniform01() < 1.0 - std::exp(-remaining)) {
    jump_log += rng.normal(jump_mean_log_, jump_sigma_log_);
    remaining -= 1.0;  // subsequent jumps in the same step are ever rarer
  }
  price_ *= std::exp(drift + diffusion + jump_log);
  return price_;
}

ScheduledShockProcess::ScheduledShockProcess(std::unique_ptr<PriceProcess> base,
                                             std::vector<Shock> shocks)
    : base_(std::move(base)), shocks_(std::move(shocks)) {
  GOC_CHECK_ARG(base_ != nullptr, "shock wrapper requires a base process");
  std::sort(shocks_.begin(), shocks_.end(),
            [](const Shock& a, const Shock& b) { return a.at_hours < b.at_hours; });
  for (const Shock& s : shocks_) {
    GOC_CHECK_ARG(s.factor > 0.0, "shock factors must be positive");
  }
}

double ScheduledShockProcess::step(double dt_hours, Rng& rng) {
  base_->step(dt_hours, rng);
  clock_hours_ += dt_hours;
  while (next_shock_ < shocks_.size() &&
         shocks_[next_shock_].at_hours <= clock_hours_) {
    shock_multiplier_ *= shocks_[next_shock_].factor;
    ++next_shock_;
  }
  return price();
}

double ScheduledShockProcess::price() const {
  return base_->price() * shock_multiplier_;
}

void ScheduledShockProcess::reset() {
  base_->reset();
  clock_hours_ = 0.0;
  next_shock_ = 0;
  shock_multiplier_ = 1.0;
}

std::unique_ptr<PriceProcess> ScheduledShockProcess::clone() const {
  auto copy = std::make_unique<ScheduledShockProcess>(base_->clone(), shocks_);
  // The constructor re-sorts and validates; carry the runtime state over so
  // mid-run clones continue the path (fired shocks stay fired).
  copy->clock_hours_ = clock_hours_;
  copy->next_shock_ = next_shock_;
  copy->shock_multiplier_ = shock_multiplier_;
  return copy;
}

}  // namespace goc::market
