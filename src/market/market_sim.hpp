#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "dynamics/scheduler.hpp"
#include "market/fee_market.hpp"
#include "market/price_process.hpp"
#include "sim/event_core.hpp"

/// \file market_sim.hpp
/// The multi-coin market simulator — the substrate for experiment E1/E2
/// (Figure 1a/1b).
///
/// Each coin has an exchange-rate process, a fee market, and protocol
/// constants (block subsidy, block cadence). Per epoch the simulator:
///   1. advances every coin's price and accrues fees;
///   2. derives the coin *weight* F(c) = (blocks/epoch × subsidy + fees) ×
///      price — the paper's "reward the coin divides among its miners",
///      quantized into exact rationals at the game boundary;
///   3. lets the miner population take up to `br_steps_per_epoch`
///      better-response steps in the induced game G_{Π,C,F} (partial
///      adjustment: real miners do not instantly re-equilibrate);
///   4. records prices, weights, hashrate shares and equilibrium status.
///
/// The output time series are exactly what Figure 1 plots: exchange rates
/// (1a) and per-coin hashrate (1b).
///
/// The default engine decomposes each epoch into flat `sim::EventCore`
/// events — one kPriceTick and one kFeeUpdate per coin, then one
/// kDecisionEpoch — dispatched by enum switch; the legacy plain epoch loop
/// (`sim::EngineKind::kLegacy`) is retained as the reference. Both paths
/// call the same per-coin sub-steps in the same order, so they consume the
/// RNG identically and the epoch records are bit-identical
/// (`tests/test_sim.cpp`, `bench_des --compare-scan`).

namespace goc::market {

/// Static + dynamic description of one simulated coin.
struct CoinSpec {
  std::string name;
  double block_subsidy = 12.5;    ///< native units per block
  double blocks_per_hour = 6.0;   ///< protocol target cadence
  std::unique_ptr<PriceProcess> price;
  FeeMarket fees;

  CoinSpec(std::string coin_name, double subsidy, double blocks_hour,
           std::unique_ptr<PriceProcess> price_process, FeeMarket fee_market)
      : name(std::move(coin_name)),
        block_subsidy(subsidy),
        blocks_per_hour(blocks_hour),
        price(std::move(price_process)),
        fees(std::move(fee_market)) {}
};

struct MarketOptions {
  double epoch_hours = 1.0;
  std::size_t epochs = 24 * 30;
  /// Better-response steps allowed per epoch (partial adjustment). 0 means
  /// "run to convergence every epoch".
  std::uint64_t br_steps_per_epoch = 8;
  SchedulerKind scheduler = SchedulerKind::kRandomMiner;
  std::uint64_t seed = 2021;
  /// Weight quantization denominator for Rational::from_double.
  std::uint64_t weight_denominator = 1u << 20;
  /// Flat event core (default) or the legacy epoch loop (reference).
  sim::EngineKind engine = sim::EngineKind::kFlat;
};

/// One epoch of recorded market state.
struct EpochRecord {
  double t_hours = 0.0;
  std::vector<double> prices;           ///< per coin
  std::vector<double> weights;          ///< per coin (fiat per epoch)
  std::vector<double> hashrate_share;   ///< per coin, fraction of Σm
  std::uint64_t br_steps = 0;           ///< steps actually taken this epoch
  bool at_equilibrium = false;          ///< w.r.t. this epoch's weights
};

class MarketSimulator {
 public:
  /// `miner_powers` defines Π (positive integers, any order); one CoinSpec
  /// per coin.
  MarketSimulator(std::vector<std::int64_t> miner_powers,
                  std::vector<CoinSpec> coins, MarketOptions options);

  /// Runs the full horizon and returns one record per epoch. The first
  /// record reflects the state after the first epoch.
  std::vector<EpochRecord> run();

  /// Injects a whale fee (native units) into `coin`'s pool before the next
  /// epoch — the manipulation lever for the whale-attack example.
  void inject_whale(std::size_t coin, double fee);

  const Configuration& configuration() const noexcept { return config_; }
  std::size_t num_coins() const noexcept { return coins_.size(); }
  const CoinSpec& coin(std::size_t i) const { return coins_.at(i); }

  /// The most recent epoch's game (weights as of that epoch). Valid after
  /// at least one epoch has run.
  const Game& current_game() const;

 private:
  // One epoch = advance every coin's price, accrue its fees / derive its
  // weight, then let the game adjust. The legacy loop calls the sub-steps
  // inline; the flat engine dispatches them as kPriceTick / kFeeUpdate /
  // kDecisionEpoch events — identical call order, identical RNG draws.
  void step_coin_price(std::size_t c, EpochRecord& record);
  void step_coin_fees(std::size_t c, EpochRecord& record,
                      std::vector<Rational>& weights);
  void finish_epoch(EpochRecord& record, std::vector<Rational>& weights);
  EpochRecord step_epoch(double t_hours);
  std::vector<EpochRecord> run_flat();

  std::shared_ptr<const System> system_;
  std::vector<CoinSpec> coins_;
  MarketOptions options_;
  Rng rng_;
  std::unique_ptr<Scheduler> scheduler_;
  Configuration config_;
  std::unique_ptr<Game> game_;  // rebuilt each epoch with fresh weights
};

}  // namespace goc::market
