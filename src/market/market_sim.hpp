#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "dynamics/best_response_index.hpp"
#include "dynamics/scheduler.hpp"
#include "market/fee_market.hpp"
#include "market/price_process.hpp"
#include "sim/event_core.hpp"

/// \file market_sim.hpp
/// The multi-coin market simulator — the substrate for experiment E1/E2
/// (Figure 1a/1b).
///
/// Each coin has an exchange-rate process, a fee market, and protocol
/// constants (block subsidy, block cadence). Per epoch the simulator:
///   1. advances every coin's price and accrues fees;
///   2. derives the coin *weight* F(c) = (blocks/epoch × subsidy + fees) ×
///      price — the paper's "reward the coin divides among its miners",
///      quantized into exact rationals at the game boundary;
///   3. lets the miner population take up to `br_steps_per_epoch`
///      better-response steps in the induced game G_{Π,C,F} (partial
///      adjustment: real miners do not instantly re-equilibrate);
///   4. records prices, weights, hashrate shares and equilibrium status.
///
/// The output time series are exactly what Figure 1 plots: exchange rates
/// (1a) and per-coin hashrate (1b).
///
/// The default engine decomposes each epoch into flat `sim::EventCore`
/// events — one kPriceTick and one kFeeUpdate per coin, then one
/// kDecisionEpoch — dispatched by enum switch, and drives the adjustment
/// through the zero-rebuild epoch path: an `EpochWorkspace` arena holds
/// one `Game` whose rewards are swapped in place per epoch
/// (`Game::reweight`) and one `BestResponseIndex` that is
/// reweight-invalidated instead of reconstructed, so a steady-state epoch
/// performs no heap allocation. The legacy plain epoch loop
/// (`sim::EngineKind::kLegacy`) is retained as the reference: it rebuilds
/// the game and runs the schedulers' scan path every epoch. Both engines
/// call the same per-coin sub-steps in the same order and consume the RNG
/// identically, so the epoch records are bit-identical
/// (`tests/test_sim.cpp`, `bench_des --compare-scan`).

namespace goc::market {

/// Static + dynamic description of one simulated coin.
struct CoinSpec {
  std::string name;
  double block_subsidy = 12.5;    ///< native units per block
  double blocks_per_hour = 6.0;   ///< protocol target cadence
  std::unique_ptr<PriceProcess> price;
  FeeMarket fees;

  CoinSpec(std::string coin_name, double subsidy, double blocks_hour,
           std::unique_ptr<PriceProcess> price_process, FeeMarket fee_market)
      : name(std::move(coin_name)),
        block_subsidy(subsidy),
        blocks_per_hour(blocks_hour),
        price(std::move(price_process)),
        fees(std::move(fee_market)) {}

  /// Deep copy, including the price process's full runtime state
  /// (`PriceProcess::clone`). Replica factories stamp independent coin
  /// lists from one prototype instead of hand-rebuilding them.
  CoinSpec clone() const {
    return CoinSpec(name, block_subsidy, blocks_per_hour, price->clone(),
                    fees);
  }
};

struct MarketOptions {
  double epoch_hours = 1.0;
  std::size_t epochs = 24 * 30;
  /// Better-response steps allowed per epoch (partial adjustment). 0 means
  /// "run to convergence every epoch".
  std::uint64_t br_steps_per_epoch = 8;
  SchedulerKind scheduler = SchedulerKind::kRandomMiner;
  std::uint64_t seed = 2021;
  /// Weight quantization denominator for Rational::from_double.
  std::uint64_t weight_denominator = 1u << 20;
  /// Flat event core (default) or the legacy epoch loop (reference).
  sim::EngineKind engine = sim::EngineKind::kFlat;
};

/// One epoch of recorded market state.
struct EpochRecord {
  double t_hours = 0.0;
  std::vector<double> prices;           ///< per coin
  std::vector<double> weights;          ///< per coin (fiat per epoch)
  std::vector<double> hashrate_share;   ///< per coin, fraction of Σm
  std::uint64_t br_steps = 0;           ///< steps actually taken this epoch
  bool at_equilibrium = false;          ///< w.r.t. this epoch's weights
};

/// Preallocated per-simulation arena for the epoch hot loop.
///
/// Everything an epoch mutates lives here, sized once: the quantized
/// weight scratch, the induced game (whose rewards are swapped *in place*
/// by `Game::reweight` — the system, access policy and the game object's
/// address never change), and, on the flat engine, the incremental
/// best-response index (reweight-invalidated per epoch, never rebuilt from
/// scratch). After construction a steady-state epoch allocates nothing:
/// weights are copied into the reward function's existing storage, the
/// index rescans into its preallocated strips, and the adjustment loop
/// runs `pick_indexed` over it. The legacy engine reuses only the weight
/// scratch and the game *slot* (it genuinely rebuilds a `Game` per epoch —
/// that is the reference behavior the fast path is checked against).
struct EpochWorkspace {
  std::vector<Rational> weights;  ///< this epoch's F(c), quantized
  Game game;                      ///< reweighted in place each epoch
  /// Flat engine only: drives the schedulers' `pick_indexed` path.
  std::optional<dynamics::BestResponseIndex> index;
  std::size_t epochs_run = 0;

  EpochWorkspace(std::shared_ptr<const System> system,
                 const Configuration& config, bool build_index)
      : weights(system->num_coins(), Rational(1)),
        game(std::move(system),
             RewardFunction::constant(config.system().num_coins(),
                                      Rational(1))) {
    if (build_index) index.emplace(game, config);
  }
};

class MarketSimulator {
 public:
  /// `miner_powers` defines Π (positive integers, any order); one CoinSpec
  /// per coin.
  MarketSimulator(std::vector<std::int64_t> miner_powers,
                  std::vector<CoinSpec> coins, MarketOptions options);

  /// Runs the full horizon and returns one record per epoch. The first
  /// record reflects the state after the first epoch.
  std::vector<EpochRecord> run();

  /// Injects a whale fee (native units) into `coin`'s pool before the next
  /// epoch — the manipulation lever for the whale-attack example.
  void inject_whale(std::size_t coin, double fee);

  const Configuration& configuration() const noexcept { return config_; }
  std::size_t num_coins() const noexcept { return coins_.size(); }
  const CoinSpec& coin(std::size_t i) const { return coins_.at(i); }

  /// The most recent epoch's game (weights as of that epoch). Valid after
  /// at least one epoch has run (throws std::invalid_argument before
  /// that). The reference is *stable across epochs*: it aliases the
  /// workspace-owned game, which is reweighted in place rather than
  /// reallocated, and stays valid for the simulator's lifetime (the
  /// simulator must not be moved while the reference is held).
  const Game& current_game() const;

 private:
  // One epoch = advance every coin's price, accrue its fees / derive its
  // weight, then let the game adjust. The legacy loop calls the sub-steps
  // inline; the flat engine dispatches them as kPriceTick / kFeeUpdate /
  // kDecisionEpoch events — identical call order, identical RNG draws.
  void step_coin_price(std::size_t c, EpochRecord& record);
  void step_coin_fees(std::size_t c, EpochRecord& record,
                      std::vector<Rational>& weights);
  void finish_epoch(EpochRecord& record, std::vector<Rational>& weights);
  EpochRecord step_epoch(double t_hours);
  std::vector<EpochRecord> run_flat();
  // Creates the workspace on first use. Deferred to run() rather than the
  // constructor because scenario factories return simulators by value and
  // the index must bind the configuration at its final address.
  void ensure_workspace();

  std::shared_ptr<const System> system_;
  std::vector<CoinSpec> coins_;
  MarketOptions options_;
  Rng rng_;
  std::unique_ptr<Scheduler> scheduler_;
  Configuration config_;
  std::unique_ptr<EpochWorkspace> ws_;  // arena; created lazily by run()
};

}  // namespace goc::market
