#pragma once

#include <cstdint>
#include <vector>

#include "chain/chain_sim.hpp"
#include "sim/trajectory.hpp"

/// \file fig1_replay.hpp
/// High-fidelity Figure 1b replay: price shocks × chain-level dynamics.
///
/// The epoch market simulator (scenario.hpp) reproduces Figure 1's shape
/// at the *game* level — miners settle near the weight-proportional
/// split. The real November 2017 episode had richer structure: BCH
/// hashrate briefly *exceeded* BTC's, because profit-chasing miners react
/// to per-hash profitability at the *current difficulty*, and BCH's EDA
/// rule kept slashing difficulty whenever the chain stalled. This module
/// couples the scripted exchange-rate shock into the discrete-event chain
/// simulator (fiat block reward = subsidy × price(t), via the chain
/// simulator's reward hook) with myopic miners and real DAAs — producing
/// the crossover and the post-shock sawtooth.

namespace goc::market {

struct Fig1ReplayParams {
  std::size_t miners = 40;
  double days = 30.0;
  double shock_day = 12.0;
  double revert_day = 15.0;
  double major_price0 = 7400.0;
  double minor_price0 = 620.0;
  double minor_spike_factor = 3.1;
  double major_dip_factor = 0.80;
  double minor_revert_factor = 0.42;
  double major_recover_factor = 1.22;
  /// Fraction of hashpower willing to switch per hour (loyalists stay).
  double reevaluation_fraction = 0.3;
  /// Relative profitability margin required to switch (friction).
  double hysteresis = 0.08;
  std::uint64_t seed = 1711;
  /// Event engine for the underlying chain simulator (legacy = reference).
  sim::EngineKind engine = sim::EngineKind::kFlat;
  /// Decision-epoch execution mode of the underlying chain simulator
  /// (`chain::ChainSimOptions::epoch_lanes`): 0 keeps the sequential
  /// policy scan, >= 1 selects the sharded simultaneous-move epoch (a
  /// *different* — equally valid — dynamics whose results are
  /// bit-identical at any lane count).
  std::size_t epoch_lanes = 0;
};

struct Fig1ReplayPoint {
  double t_hours = 0.0;
  double major_price = 0.0;
  double minor_price = 0.0;
  double major_hash = 0.0;       ///< hash-units
  double minor_hash = 0.0;
  double minor_difficulty = 0.0; ///< the EDA chain's difficulty
};

struct Fig1ReplayResult {
  std::vector<Fig1ReplayPoint> series;  ///< hourly
  double peak_minor_share = 0.0;        ///< max minor/(major+minor)
  double peak_day = 0.0;
  std::uint64_t migrations = 0;
  /// Time-averaged minor-chain hashrate share before the shock, inside the
  /// flip window [shock, revert], and after the reversal — the three
  /// phases of Figure 1b.
  double pre_shock_share = 0.0;
  double flip_window_share = 0.0;
  double post_revert_share = 0.0;
};

/// Runs the coupled replay. Chain 0 = major (fixed-window DAA), chain 1 =
/// minor (EDA). Deterministic for a fixed seed.
Fig1ReplayResult run_fig1_replay(const Fig1ReplayParams& params = {});

/// Metric names of `run_fig1_replay_batch` rows.
const std::vector<std::string>& fig1_replay_metrics();

/// One `fig1_replay_metrics()` row from a finished replay — shared by the
/// batch adapter and the golden-replay recorder (replay/golden.hpp).
std::vector<double> fig1_replica_metrics(const Fig1ReplayResult& result);

/// FNV-1a over every deterministic field of a replay result (the hourly
/// series included) — same trajectory-hash contract as
/// `sim::chain_result_hash`.
std::uint64_t fig1_result_hash(const Fig1ReplayResult& result) noexcept;

/// Monte Carlo over the replay: R replicas with per-replica seeds derived
/// from `options.root_seed` (`params.seed` is overridden), fanned across
/// the thread pool; reports {peak_minor_share, peak_day, pre_shock_share,
/// flip_window_share, post_revert_share, migrations} with mean/CI —
/// bit-identical at any thread count.
sim::TrajectoryBatchResult run_fig1_replay_batch(
    const Fig1ReplayParams& params, const sim::TrajectoryBatchOptions& options);

}  // namespace goc::market
