#pragma once

#include <memory>
#include <vector>

#include "market/market_sim.hpp"

/// \file scenario.hpp
/// Scripted market scenarios.
///
/// `fork_flip_scenario` replays the November 2017 BTC/BCH episode that the
/// paper's Figure 1 documents: a dominant coin ("BTC") and a minor spin-off
/// ("BCH") trade sideways until a scripted shock multiplies the minor
/// coin's exchange rate severalfold while the major dips — flipping the
/// weight ordering for a window and pulling miners across, after which the
/// rates partially revert and so does the hashrate. Magnitudes are
/// calibrated to the public charts (BCH ≈ $600 → $1,900 spike; BTC ≈
/// $7,400 → $5,900 dip around Nov 12, 2017).

namespace goc::market {

struct ForkFlipParams {
  std::size_t miners = 64;
  std::int64_t min_power = 50;
  std::int64_t max_power = 4000;
  double days = 30.0;
  double shock_day = 12.0;   ///< day of the flip
  double revert_day = 15.0;  ///< partial reversal
  double major_price0 = 7400.0;
  double minor_price0 = 620.0;
  double minor_spike_factor = 3.1;   ///< minor price multiplier at the shock
  double major_dip_factor = 0.80;    ///< major price multiplier at the shock
  double minor_revert_factor = 0.42; ///< minor multiplier at the reversal
  double major_recover_factor = 1.22;
  std::uint64_t seed = 1711;         ///< November 2017
};

/// Builds the simulator (two coins: index 0 = major/"BTC", 1 = minor/"BCH").
MarketSimulator fork_flip_scenario(const ForkFlipParams& params = {});

/// A generic N-coin market with Pareto miner powers and GBM prices sized as
/// "majors plus tail" — used by the market-explorer example and stress
/// tests.
MarketSimulator random_market_scenario(std::size_t miners, std::size_t coins,
                                       double days, std::uint64_t seed);

}  // namespace goc::market
