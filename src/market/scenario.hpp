#pragma once

#include <memory>
#include <vector>

#include "market/market_sim.hpp"

/// \file scenario.hpp
/// Scripted market scenarios.
///
/// `fork_flip_scenario` replays the November 2017 BTC/BCH episode that the
/// paper's Figure 1 documents: a dominant coin ("BTC") and a minor spin-off
/// ("BCH") trade sideways until a scripted shock multiplies the minor
/// coin's exchange rate severalfold while the major dips — flipping the
/// weight ordering for a window and pulling miners across, after which the
/// rates partially revert and so does the hashrate. Magnitudes are
/// calibrated to the public charts (BCH ≈ $600 → $1,900 spike; BTC ≈
/// $7,400 → $5,900 dip around Nov 12, 2017).

namespace goc::market {

/// A reusable market-scenario prototype: the miner power profile, one
/// prototype CoinSpec per coin, and the run options. Monte Carlo batches
/// stamp one independent simulator per replica with `make_simulator(seed)`
/// — coins are deep-cloned (`CoinSpec::clone`, price-process state
/// included) and only the seed differs — instead of hand-rebuilding the
/// coin list in every replica factory.
struct Scenario {
  std::vector<std::int64_t> miner_powers;
  std::vector<CoinSpec> coins;
  MarketOptions options;

  /// Deep copy of the coin prototypes.
  std::vector<CoinSpec> clone_coins() const;

  /// A fresh simulator over cloned coins, with `options.seed` replaced by
  /// `seed`. The prototype itself is untouched and reusable.
  MarketSimulator make_simulator(std::uint64_t seed) const;
};

struct ForkFlipParams {
  std::size_t miners = 64;
  std::int64_t min_power = 50;
  std::int64_t max_power = 4000;
  double days = 30.0;
  double shock_day = 12.0;   ///< day of the flip
  double revert_day = 15.0;  ///< partial reversal
  double major_price0 = 7400.0;
  double minor_price0 = 620.0;
  double minor_spike_factor = 3.1;   ///< minor price multiplier at the shock
  double major_dip_factor = 0.80;    ///< major price multiplier at the shock
  double minor_revert_factor = 0.42; ///< minor multiplier at the reversal
  double major_recover_factor = 1.22;
  std::uint64_t seed = 1711;         ///< November 2017
};

/// The fork-flip prototype (two coins: index 0 = major/"BTC", 1 =
/// minor/"BCH"), ready for replica stamping.
Scenario fork_flip_prototype(const ForkFlipParams& params = {});

/// Builds the simulator directly (equivalent to
/// `fork_flip_prototype(params).make_simulator(params.seed)`).
MarketSimulator fork_flip_scenario(const ForkFlipParams& params = {});

/// A generic N-coin market prototype with Pareto miner powers and
/// jump-diffusion prices sized as "majors plus tail".
Scenario random_market_prototype(std::size_t miners, std::size_t coins,
                                 double days, std::uint64_t seed);

/// Builds the simulator directly — used by the market-explorer example and
/// stress tests.
MarketSimulator random_market_scenario(std::size_t miners, std::size_t coins,
                                       double days, std::uint64_t seed);

}  // namespace goc::market
