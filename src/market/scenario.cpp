#include "market/scenario.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace goc::market {
namespace {

std::vector<std::int64_t> pareto_powers(std::size_t miners, std::int64_t lo,
                                        std::int64_t hi, Rng& rng) {
  std::vector<std::int64_t> powers;
  powers.reserve(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    const double raw = rng.pareto(static_cast<double>(lo), 1.16);
    powers.push_back(
        std::min<std::int64_t>(hi, static_cast<std::int64_t>(std::ceil(raw))));
  }
  return powers;
}

}  // namespace

std::vector<CoinSpec> Scenario::clone_coins() const {
  std::vector<CoinSpec> copies;
  copies.reserve(coins.size());
  for (const CoinSpec& c : coins) copies.push_back(c.clone());
  return copies;
}

MarketSimulator Scenario::make_simulator(std::uint64_t seed) const {
  MarketOptions replica_options = options;
  replica_options.seed = seed;
  return MarketSimulator(miner_powers, clone_coins(), replica_options);
}

Scenario fork_flip_prototype(const ForkFlipParams& params) {
  GOC_CHECK_ARG(params.miners >= 2, "scenario needs at least two miners");
  GOC_CHECK_ARG(params.shock_day < params.revert_day &&
                    params.revert_day < params.days,
                "shock must precede reversal within the horizon");
  Rng rng(params.seed);

  const double shock_h = params.shock_day * 24.0;
  const double revert_h = params.revert_day * 24.0;

  std::vector<CoinSpec> coins;
  // Major coin: deep fee market, low drift, moderate vol.
  coins.emplace_back(
      "BTC", 12.5, 6.0,
      std::make_unique<ScheduledShockProcess>(
          std::make_unique<GbmProcess>(params.major_price0, 0.002, 0.035),
          std::vector<ScheduledShockProcess::Shock>{
              {shock_h, params.major_dip_factor},
              {revert_h, params.major_recover_factor}}),
      FeeMarket(/*tx_per_hour=*/12000.0, /*fee_scale=*/0.0002,
                /*fee_shape=*/1.8));
  // Minor spin-off: thinner fees, higher vol, scripted spike + reversal.
  coins.emplace_back(
      "BCH", 12.5, 6.0,
      std::make_unique<ScheduledShockProcess>(
          std::make_unique<GbmProcess>(params.minor_price0, 0.001, 0.06),
          std::vector<ScheduledShockProcess::Shock>{
              {shock_h, params.minor_spike_factor},
              {revert_h, params.minor_revert_factor}}),
      FeeMarket(/*tx_per_hour=*/900.0, /*fee_scale=*/0.0002,
                /*fee_shape=*/1.8));

  Scenario scenario;
  scenario.miner_powers =
      pareto_powers(params.miners, params.min_power, params.max_power, rng);
  scenario.coins = std::move(coins);
  scenario.options.epoch_hours = 1.0;
  scenario.options.epochs = static_cast<std::size_t>(params.days * 24.0);
  scenario.options.br_steps_per_epoch = 6;
  scenario.options.seed = params.seed;
  return scenario;
}

MarketSimulator fork_flip_scenario(const ForkFlipParams& params) {
  return fork_flip_prototype(params).make_simulator(params.seed);
}

Scenario random_market_prototype(std::size_t miners, std::size_t coins,
                                 double days, std::uint64_t seed) {
  GOC_CHECK_ARG(coins >= 1, "market needs at least one coin");
  Rng rng(seed);
  std::vector<CoinSpec> specs;
  specs.reserve(coins);
  for (std::size_t c = 0; c < coins; ++c) {
    // Geometric size decay from the top coin, mild idiosyncratic vol.
    const double price0 = 5000.0 / std::pow(1.9, static_cast<double>(c));
    specs.emplace_back(
        "coin" + std::to_string(c), 12.5, 6.0,
        std::make_unique<JumpDiffusionProcess>(price0, 0.0, 0.05, 0.15, 0.0, 0.12),
        FeeMarket(3000.0 / std::pow(2.0, static_cast<double>(c)), 0.0002, 1.8));
  }
  Scenario scenario;
  scenario.miner_powers = pareto_powers(miners, 50, 4000, rng);
  scenario.coins = std::move(specs);
  scenario.options.epoch_hours = 1.0;
  scenario.options.epochs = static_cast<std::size_t>(days * 24.0);
  scenario.options.br_steps_per_epoch = 6;
  scenario.options.seed = seed;
  return scenario;
}

MarketSimulator random_market_scenario(std::size_t miners, std::size_t coins,
                                       double days, std::uint64_t seed) {
  return random_market_prototype(miners, coins, days, seed)
      .make_simulator(seed);
}

}  // namespace goc::market
