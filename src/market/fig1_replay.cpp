#include "market/fig1_replay.hpp"

#include <algorithm>
#include <cmath>

#include "market/price_process.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc::market {
namespace {

constexpr double kSubsidy = 12.5;          // coins per block, both chains
constexpr double kTargetInterval = 1.0 / 6.0;  // hours per block

/// Precomputes an hourly price path (deterministic for the rng).
std::vector<double> price_path(double price0, double vol_daily,
                               const std::vector<ScheduledShockProcess::Shock>& shocks,
                               std::size_t hours, Rng& rng) {
  ScheduledShockProcess process(
      std::make_unique<GbmProcess>(price0, 0.0, vol_daily), shocks);
  std::vector<double> path;
  path.reserve(hours + 1);
  path.push_back(process.price());
  for (std::size_t h = 0; h < hours; ++h) {
    path.push_back(process.step(1.0, rng));
  }
  return path;
}

}  // namespace

Fig1ReplayResult run_fig1_replay(const Fig1ReplayParams& params) {
  GOC_CHECK_ARG(params.miners >= 8, "replay needs a meaningful population");
  GOC_CHECK_ARG(params.shock_day < params.revert_day &&
                    params.revert_day < params.days,
                "shock must precede reversal within the horizon");
  Rng rng(params.seed);
  const auto hours = static_cast<std::size_t>(params.days * 24.0);
  const double shock_h = params.shock_day * 24.0;
  const double revert_h = params.revert_day * 24.0;

  // Exogenous price paths (Figure 1a).
  const std::vector<double> major_price =
      price_path(params.major_price0, 0.035,
                 {{shock_h, params.major_dip_factor},
                  {revert_h, params.major_recover_factor}},
                 hours, rng);
  const std::vector<double> minor_price =
      price_path(params.minor_price0, 0.06,
                 {{shock_h, params.minor_spike_factor},
                  {revert_h, params.minor_revert_factor}},
                 hours, rng);

  // Miner population: heavy-tailed, ~1/8 starting on the minor chain
  // (post-fork loyalists), the rest on the major chain.
  std::vector<double> powers;
  std::vector<std::size_t> assignment;
  double major_mass = 0.0;
  double minor_mass = 0.0;
  for (std::size_t i = 0; i < params.miners; ++i) {
    const double p = std::min(4000.0, std::ceil(rng.pareto(50.0, 1.16)));
    powers.push_back(p);
    const std::size_t chain = (i % 8 == 0) ? 1 : 0;
    assignment.push_back(chain);
    (chain == 0 ? major_mass : minor_mass) += p;
  }
  GOC_ASSERT(minor_mass > 0.0, "minor chain needs initial loyalists");

  // Difficulties calibrated to the initial split (both at protocol cadence).
  std::vector<chain::ChainSpec> chains;
  chains.push_back(chain::ChainSpec{
      "major", major_mass * kTargetInterval, kTargetInterval,
      kSubsidy * major_price.front(),
      std::make_unique<chain::FixedWindowRetarget>(72, kTargetInterval)});
  chains.push_back(chain::ChainSpec{
      "minor", minor_mass * kTargetInterval, kTargetInterval,
      kSubsidy * minor_price.front(),
      std::make_unique<chain::EmergencyAdjuster>(72, kTargetInterval,
                                                 /*gap=*/1.0, 0.20)});

  chain::ChainSimOptions options;
  options.duration_hours = static_cast<double>(hours);
  options.decision_interval_hours = 1.0;
  options.policy = chain::MinerPolicy::kMyopicDifficulty;
  options.reevaluation_fraction = params.reevaluation_fraction;
  options.myopic_hysteresis = params.hysteresis;
  options.seed = params.seed ^ 0xF161;
  options.engine = params.engine;
  options.epoch_lanes = params.epoch_lanes;

  chain::MultiChainSimulator sim(std::move(powers), std::move(chains), options,
                                 std::move(assignment));
  sim.set_reward_hook([&](std::size_t chain_index, double t_hours) {
    const auto h = std::min(static_cast<std::size_t>(t_hours),
                            hours);
    const double price =
        chain_index == 0 ? major_price[h] : minor_price[h];
    return kSubsidy * price;
  });

  const chain::ChainSimResult raw = sim.run();

  Fig1ReplayResult result;
  result.migrations = raw.migrations;
  result.series.reserve(raw.timeline.size());
  double pre_sum = 0.0, flip_sum = 0.0, post_sum = 0.0;
  std::size_t pre_n = 0, flip_n = 0, post_n = 0;
  for (const chain::TimelinePoint& point : raw.timeline) {
    const auto h = std::min(static_cast<std::size_t>(point.t_hours), hours);
    Fig1ReplayPoint out;
    out.t_hours = point.t_hours;
    out.major_price = major_price[h];
    out.minor_price = minor_price[h];
    out.major_hash = point.hashrate[0];
    out.minor_hash = point.hashrate[1];
    out.minor_difficulty = point.difficulty[1];
    result.series.push_back(out);
    const double total = out.major_hash + out.minor_hash;
    if (total > 0.0) {
      const double share = out.minor_hash / total;
      if (share > result.peak_minor_share) {
        result.peak_minor_share = share;
        result.peak_day = point.t_hours / 24.0;
      }
      if (point.t_hours < shock_h) {
        pre_sum += share;
        ++pre_n;
      } else if (point.t_hours < revert_h) {
        flip_sum += share;
        ++flip_n;
      } else {
        post_sum += share;
        ++post_n;
      }
    }
  }
  if (pre_n > 0) result.pre_shock_share = pre_sum / static_cast<double>(pre_n);
  if (flip_n > 0) result.flip_window_share = flip_sum / static_cast<double>(flip_n);
  if (post_n > 0) result.post_revert_share = post_sum / static_cast<double>(post_n);
  return result;
}

const std::vector<std::string>& fig1_replay_metrics() {
  static const std::vector<std::string> kNames = {
      "peak_minor_share", "peak_day",          "pre_shock_share",
      "flip_window_share", "post_revert_share", "migrations"};
  return kNames;
}

std::vector<double> fig1_replica_metrics(const Fig1ReplayResult& result) {
  return {result.peak_minor_share,
          result.peak_day,
          result.pre_shock_share,
          result.flip_window_share,
          result.post_revert_share,
          static_cast<double>(result.migrations)};
}

std::uint64_t fig1_result_hash(const Fig1ReplayResult& result) noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const Fig1ReplayPoint& p : result.series) {
    fnv::mix_bytes(h, p.t_hours);
    fnv::mix_bytes(h, p.major_price);
    fnv::mix_bytes(h, p.minor_price);
    fnv::mix_bytes(h, p.major_hash);
    fnv::mix_bytes(h, p.minor_hash);
    fnv::mix_bytes(h, p.minor_difficulty);
  }
  fnv::mix_bytes(h, result.peak_minor_share);
  fnv::mix_bytes(h, result.peak_day);
  fnv::mix_bytes(h, result.migrations);
  fnv::mix_bytes(h, result.pre_shock_share);
  fnv::mix_bytes(h, result.flip_window_share);
  fnv::mix_bytes(h, result.post_revert_share);
  return h;
}

sim::TrajectoryBatchResult run_fig1_replay_batch(
    const Fig1ReplayParams& params,
    const sim::TrajectoryBatchOptions& options) {
  return sim::run_trajectory_batch(
      fig1_replay_metrics(), options,
      [&params](std::size_t, std::uint64_t seed) {
        Fig1ReplayParams replica = params;
        replica.seed = seed;
        return fig1_replica_metrics(run_fig1_replay(replica));
      });
}

}  // namespace goc::market
