#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file better_equilibrium.hpp
/// Section 4: "there is often a better equilibrium".
///
/// Under Assumptions 1–2, Proposition 2 states that for every equilibrium s
/// there is a miner p and another equilibrium s' with u_p(s') > u_p(s) — so
/// some miner always has an incentive to move the system (the motivation
/// for the reward-design mechanism of Section 5). The proof constructs two
/// distinct equilibria (Lemma 2) and applies the welfare identity of
/// Observation 3 (Claim 4).

namespace goc {

/// Claim 7: with p, p' on the same coin and m_p ≤ m_{p'}, stability of p
/// implies stability of p'. Exposed as a checkable predicate for tests.
bool claim7_implies_stable(const Game& game, const Configuration& s, MinerId p,
                           MinerId p_prime);

/// The Lemma 2 construction: two configurations built by seating the two
/// largest miners on the two heaviest coins in opposite orders and greedily
/// inserting everyone else (Claim 5). The two configurations always differ;
/// under Assumptions 1–2 both are equilibria (callers can verify with
/// is_equilibrium). Requires at least two miners and two coins.
std::pair<Configuration, Configuration> lemma2_two_configurations(const Game& game);

/// A Claim 4 witness: a miner strictly better off in another equilibrium.
struct BetterEquilibriumWitness {
  MinerId miner;
  Configuration better;   ///< equilibrium where `miner` gains
  Rational payoff_before;
  Rational payoff_after;  ///< > payoff_before
};

/// Searches `equilibria` for a witness improving on `s` (which must itself
/// be an equilibrium in the list's game). Returns the witness with the
/// largest payoff gain, or nullopt if `s` is payoff-maximal for every miner
/// across `equilibria`.
std::optional<BetterEquilibriumWitness> find_better_equilibrium(
    const Game& game, const Configuration& s,
    const std::vector<Configuration>& equilibria);

}  // namespace goc
