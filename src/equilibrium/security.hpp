#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file security.hpp
/// Coin-security metrics — the §6 "bad configuration" extension.
///
/// The paper's Discussion flags that a manipulator might drive the system
/// toward a configuration "in which a particular miner will have a
/// dominant position in a coin, killing (at least for a while) the basic
/// guarantee of non-manipulation (security) for that coin". This module
/// quantifies domination and searches equilibria for attacker-favorable
/// targets; experiment E12 combines it with the reward-design mechanism to
/// measure how often an attacker can *provably park* the system in a state
/// where it majority-controls a coin.

namespace goc {

/// The largest single-miner share of coin c's mass in s (0 for an empty
/// coin). A share above 1/2 means one miner can censor/rewrite that coin.
Rational domination_share(const Game& game, const Configuration& s, CoinId c);

/// The miner holding a strict majority of c's mass, if any.
std::optional<MinerId> majority_controller(const Game& game,
                                           const Configuration& s, CoinId c);

/// Per-configuration security summary.
struct SecurityReport {
  /// max miner share per coin (0 for empty coins).
  std::vector<Rational> max_share;
  /// Majority controller per coin (nullopt when none).
  std::vector<std::optional<MinerId>> controller;
  /// Number of coins with a strict-majority controller.
  std::size_t majority_controlled = 0;
  /// Number of occupied coins.
  std::size_t occupied = 0;

  std::string to_string() const;
};

SecurityReport security_report(const Game& game, const Configuration& s);

/// An attacker-favorable target: an equilibrium where `attacker` holds its
/// maximal share of some coin.
struct DominationTarget {
  Configuration equilibrium;
  CoinId coin;
  Rational attacker_share;  ///< attacker's fraction of the coin's mass
};

/// Scans `equilibria` for the one maximizing the attacker's share of its
/// own coin. Returns nullopt when the list is empty. Combined with
/// Algorithm 2 (`run_reward_design`), this is the §6 attack: steer the
/// system to the returned equilibrium, then stop paying — the attacker
/// keeps its dominant position indefinitely because the target is stable.
std::optional<DominationTarget> best_domination_target(
    const Game& game, MinerId attacker,
    const std::vector<Configuration>& equilibria);

}  // namespace goc
